"""Memoized LatencyModel vs the recompute-every-call reference.

The fast tests here are tier-1: they pin the memoization's correctness,
including across the fault injector's mid-run ``erratum_enabled`` toggle.
The ``wallclock``-marked micro-benchmark sweeps a much larger argument
grid and times the cached path; it is excluded from the default pytest
run (see ``pyproject.toml``) and runs via
``pytest -m wallclock tests/hw/test_timing_memo.py``.
"""

import time

import pytest

from repro.hw.config import SCCConfig
from repro.hw.timing import LatencyModel
from repro.hw.topology import Topology


def models(**config_overrides):
    """(memoized, reference) pair over the standard 48-core geometry."""
    topo = Topology()
    return (LatencyModel(SCCConfig(**config_overrides), topo, cache=True),
            LatencyModel(SCCConfig(**config_overrides), topo, cache=False))


#: A small but representative argument grid: local access, same-tile
#: remote, cross-chip corners, plus aligned/padded byte counts.
CORE_PAIRS = [(0, 0), (0, 1), (1, 0), (0, 47), (47, 0), (13, 13), (5, 29)]
NBYTES = [1, 31, 32, 33, 64, 4416, 4417]


class TestMemoizedEqualsReference:
    @pytest.mark.parametrize("erratum", [True, False])
    def test_all_methods_match(self, erratum):
        memo, ref = models(erratum_enabled=erratum)
        for a, o in CORE_PAIRS:
            assert memo.mpb_access(a, o) == ref.mpb_access(a, o)
            assert memo.flag_write(a, o) == ref.flag_write(a, o)
            assert memo.flag_notify(a, o) == ref.flag_notify(a, o)
            assert memo.dram_access(a) == ref.dram_access(a)
            for nbytes in NBYTES:
                assert (memo.mpb_write_bytes(a, o, nbytes)
                        == ref.mpb_write_bytes(a, o, nbytes))
                assert (memo.mpb_read_bytes(a, o, nbytes)
                        == ref.mpb_read_bytes(a, o, nbytes))
                assert (memo.mpb_stream_read(a, o, nbytes)
                        == ref.mpb_stream_read(a, o, nbytes))
                assert (memo.mpb_stream_write(a, o, nbytes)
                        == ref.mpb_stream_write(a, o, nbytes))
        for nbytes in NBYTES:
            assert (memo.private_copy_bytes(nbytes)
                    == ref.private_copy_bytes(nbytes))
        for n in (0, 1, 552):
            assert memo.reduce_doubles(n) == ref.reduce_doubles(n)

    def test_repeated_lookups_stable(self):
        memo, ref = models()
        first = memo.mpb_write_bytes(0, 1, 552 * 8)
        for _ in range(3):
            assert memo.mpb_write_bytes(0, 1, 552 * 8) == first
        assert first == ref.mpb_write_bytes(0, 1, 552 * 8)

    def test_erratum_toggle_switches_tables(self):
        """The fault injector flips ``erratum_enabled`` on a *live* config;
        the memo must serve the other level's values, not stale ones."""
        memo, _ = models(erratum_enabled=True)
        ref_fixed = LatencyModel(SCCConfig(erratum_enabled=False),
                                 Topology(), cache=False)
        buggy_local = memo.mpb_access(3, 3)       # populate erratum table
        memo.config.erratum_enabled = False       # what the injector does
        assert memo.mpb_access(3, 3) == ref_fixed.mpb_access(3, 3)
        assert memo.mpb_access(3, 3) != buggy_local
        memo.config.erratum_enabled = True        # toggle back
        assert memo.mpb_access(3, 3) == buggy_local
        assert (memo.mpb_write_bytes(3, 3, 64)
                == LatencyModel(SCCConfig(erratum_enabled=True), Topology(),
                                cache=False).mpb_write_bytes(3, 3, 64))

    def test_invalidate_resnapshots_mutated_fields(self):
        memo, _ = models()
        before = memo.flag_write(0, 1)
        memo.config.flag_write_extra_cycles += 100
        memo.invalidate()
        after = memo.flag_write(0, 1)
        expected = LatencyModel(memo.config, memo.topology,
                                cache=False).flag_write(0, 1)
        assert after == expected
        assert after > before


@pytest.mark.wallclock
class TestMicroBenchmark:
    """Large-grid identity sweep + cached-path timing (not tier-1)."""

    def test_full_grid_identity_and_speed(self):
        memo, ref = models()
        pairs = [(a, o) for a in range(0, 48, 5) for o in range(0, 48, 7)]
        sizes = list(range(0, 4500, 93)) + [1, 31, 33]
        for a, o in pairs:
            for nbytes in sizes:
                assert (memo.mpb_write_bytes(a, o, nbytes)
                        == ref.mpb_write_bytes(a, o, nbytes))
                assert (memo.mpb_read_bytes(a, o, nbytes)
                        == ref.mpb_read_bytes(a, o, nbytes))
        # Warm-table lookups should beat recomputation comfortably; use a
        # generous 1.2x bound so the assertion never flakes on CI noise
        # while still catching a memoization that silently stopped caching.
        args = [(a, o, n) for a, o in pairs for n in sizes[:20]]
        t0 = time.perf_counter()
        for a, o, n in args * 5:
            memo.mpb_write_bytes(a, o, n)
        cached_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for a, o, n in args * 5:
            ref.mpb_write_bytes(a, o, n)
        reference_s = time.perf_counter() - t0
        assert cached_s * 1.2 < reference_s, (
            f"memoized path ({cached_s:.4f}s) is not faster than the "
            f"reference ({reference_s:.4f}s)")
