"""Unit tests for the SCC configuration."""

import pytest

from repro.hw.config import CLOCK_PRESETS, SCCConfig, config_for_preset


class TestDefaults:
    def test_standard_preset_clocks(self):
        cfg = SCCConfig()
        assert cfg.core_freq_hz == 533_000_000
        assert cfg.mesh_freq_hz == 800_000_000
        assert cfg.dram_freq_hz == 800_000_000

    def test_derived_counts(self):
        cfg = SCCConfig()
        assert cfg.num_tiles == 24
        assert cfg.num_cores == 48
        assert cfg.doubles_per_line == 4
        assert cfg.mpb_payload_bytes == 8192 - 192

    def test_erratum_enabled_by_default(self):
        assert SCCConfig().erratum_enabled

    def test_clock_objects(self):
        cfg = SCCConfig()
        assert cfg.core_clock().ps_per_cycle == 1876
        assert cfg.mesh_clock().ps_per_cycle == 1250


class TestValidation:
    def test_bad_topology_rejected(self):
        with pytest.raises(ValueError):
            SCCConfig(mesh_cols=0)

    def test_bad_line_size_rejected(self):
        with pytest.raises(ValueError):
            SCCConfig(l1_line_bytes=12)

    def test_flag_region_must_fit(self):
        with pytest.raises(ValueError):
            SCCConfig(mpb_bytes_per_core=128, mpb_flag_bytes=192)

    def test_mpb_must_be_line_aligned(self):
        with pytest.raises(ValueError):
            SCCConfig(mpb_bytes_per_core=8200)

    def test_bad_frequency_rejected(self):
        with pytest.raises(ValueError):
            SCCConfig(core_freq_hz=0)


class TestCopy:
    def test_copy_overrides(self):
        base = SCCConfig()
        variant = base.copy(erratum_enabled=False)
        assert not variant.erratum_enabled
        assert base.erratum_enabled
        assert variant.core_freq_hz == base.core_freq_hz

    def test_copy_validates(self):
        with pytest.raises(ValueError):
            SCCConfig().copy(mesh_rows=-1)


class TestPresets:
    def test_all_presets_build(self):
        for name in CLOCK_PRESETS:
            cfg = config_for_preset(name)
            assert cfg.num_cores == 48

    def test_preset_800(self):
        cfg = config_for_preset("800_800_800")
        assert cfg.core_freq_hz == 800_000_000

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            config_for_preset("9000_9000_9000")

    def test_preset_with_override(self):
        cfg = config_for_preset("533_800_800", erratum_enabled=False)
        assert not cfg.erratum_enabled
