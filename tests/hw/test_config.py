"""Unit tests for the SCC configuration."""

import pytest

from repro.hw.config import CLOCK_PRESETS, SCCConfig, config_for_preset


class TestDefaults:
    def test_standard_preset_clocks(self):
        cfg = SCCConfig()
        assert cfg.core_freq_hz == 533_000_000
        assert cfg.mesh_freq_hz == 800_000_000
        assert cfg.dram_freq_hz == 800_000_000

    def test_derived_counts(self):
        cfg = SCCConfig()
        assert cfg.num_tiles == 24
        assert cfg.num_cores == 48
        assert cfg.doubles_per_line == 4
        assert cfg.mpb_payload_bytes == 8192 - 192

    def test_erratum_enabled_by_default(self):
        assert SCCConfig().erratum_enabled

    def test_clock_objects(self):
        cfg = SCCConfig()
        assert cfg.core_clock().ps_per_cycle == 1876
        assert cfg.mesh_clock().ps_per_cycle == 1250


class TestValidation:
    def test_bad_topology_rejected(self):
        with pytest.raises(ValueError):
            SCCConfig(mesh_cols=0)

    def test_bad_line_size_rejected(self):
        with pytest.raises(ValueError):
            SCCConfig(l1_line_bytes=12)

    def test_flag_region_must_fit(self):
        with pytest.raises(ValueError):
            SCCConfig(mpb_bytes_per_core=128, mpb_flag_bytes=192)

    def test_mpb_must_be_line_aligned(self):
        with pytest.raises(ValueError):
            SCCConfig(mpb_bytes_per_core=8200)

    def test_bad_frequency_rejected(self):
        with pytest.raises(ValueError):
            SCCConfig(core_freq_hz=0)


class TestCopy:
    def test_copy_overrides(self):
        base = SCCConfig()
        variant = base.copy(erratum_enabled=False)
        assert not variant.erratum_enabled
        assert base.erratum_enabled
        assert variant.core_freq_hz == base.core_freq_hz

    def test_copy_validates(self):
        with pytest.raises(ValueError):
            SCCConfig().copy(mesh_rows=-1)


class TestPresets:
    def test_all_presets_build(self):
        for name in CLOCK_PRESETS:
            cfg = config_for_preset(name)
            assert cfg.num_cores == 48

    def test_preset_800(self):
        cfg = config_for_preset("800_800_800")
        assert cfg.core_freq_hz == 800_000_000

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            config_for_preset("9000_9000_9000")

    def test_preset_with_override(self):
        cfg = config_for_preset("533_800_800", erratum_enabled=False)
        assert not cfg.erratum_enabled


class TestValidationMessages:
    """Every rejection names the offending field and the constraint."""

    def test_nonpositive_mesh_cols_message(self):
        with pytest.raises(ValueError, match="mesh_cols must be positive"):
            SCCConfig(mesh_cols=0)

    def test_nonpositive_mesh_rows_message(self):
        with pytest.raises(ValueError, match="mesh_rows must be positive"):
            SCCConfig(mesh_rows=-3)

    def test_nonpositive_cores_per_tile_message(self):
        with pytest.raises(ValueError,
                           match="cores_per_tile must be positive"):
            SCCConfig(cores_per_tile=0)

    def test_flag_region_not_line_multiple(self):
        # 100 B is not a multiple of the 32 B cache-line/flag granularity.
        with pytest.raises(ValueError,
                           match="cache-line/flag granularity"):
            SCCConfig(mpb_flag_bytes=100)

    def test_flag_region_must_be_positive(self):
        with pytest.raises(ValueError,
                           match="mpb_flag_bytes must be positive"):
            SCCConfig(mpb_flag_bytes=0)

    def test_flag_region_must_fit_in_mpb(self):
        with pytest.raises(ValueError, match="larger than its flag region"):
            SCCConfig(mpb_bytes_per_core=192, mpb_flag_bytes=192)

    def test_line_bytes_must_hold_whole_doubles(self):
        with pytest.raises(ValueError, match="l1_line_bytes"):
            SCCConfig(l1_line_bytes=12)

    def test_frequency_message_names_field(self):
        with pytest.raises(ValueError, match="mesh_freq_hz must be positive"):
            SCCConfig(mesh_freq_hz=-1)


class TestRankCount:
    def test_valid_counts_accepted(self):
        cfg = SCCConfig()
        for cores in (1, 2, 47, 48):
            cfg.check_rank_count(cores)  # must not raise

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError, match="core count must be positive"):
            SCCConfig().check_rank_count(0)

    def test_negative_cores_rejected(self):
        with pytest.raises(ValueError, match="core count must be positive"):
            SCCConfig().check_rank_count(-4)

    def test_count_exceeding_mesh_rejected(self):
        with pytest.raises(ValueError, match="'mesh:6x4' has only 48"):
            SCCConfig().check_rank_count(49)

    def test_limit_follows_topology(self):
        small = SCCConfig(mesh_cols=2, mesh_rows=2, cores_per_tile=2)
        small.check_rank_count(8)
        with pytest.raises(ValueError, match="'mesh:2x2' has only 8"):
            small.check_rank_count(9)

    def test_limit_follows_topology_spec(self):
        cluster = SCCConfig(topology="cluster:2x24")
        cluster.check_rank_count(48)
        with pytest.raises(ValueError, match="'cluster:2x24' has only 48"):
            cluster.check_rank_count(49)
