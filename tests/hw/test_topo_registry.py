"""The topology registry: spec parsing, caching, config/timing plumbing."""

import pytest

from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.hw.topo import (
    available_topologies,
    get_topology,
    register_topology,
)
from repro.hw.topology import Topology, default_topology


class TestSpecParsing:
    def test_default_chip(self):
        topo = get_topology("mesh:6x4")
        assert (topo.cols, topo.rows, topo.cores_per_tile) == (6, 4, 2)
        assert topo.num_cores == 48
        assert not topo.torus and topo.chips == 1

    def test_cores_per_tile_suffix(self):
        topo = get_topology("mesh:4x4x4")
        assert topo.cores_per_tile == 4
        assert topo.num_cores == 64

    def test_torus_family(self):
        topo = get_topology("torus:6x4")
        assert topo.torus
        assert topo.hops(0, 10) == 1  # wraps where the mesh takes 5

    def test_cluster_factoring(self):
        topo = get_topology("cluster:2x24")
        assert (topo.cols, topo.rows) == (4, 3)
        assert topo.chips == 2
        assert topo.num_cores == 48

    def test_cluster_of_full_chips(self):
        topo = get_topology("cluster:2x48")
        assert (topo.cols, topo.rows) == (6, 4)
        assert topo.num_cores == 96

    def test_mc_option(self):
        topo = get_topology("mesh:8x8+mc=0.0;7.7")
        assert topo.mc_routers() == [(0, 0), (7, 7)]

    def test_weight_option(self):
        topo = get_topology("mesh:6x4+w=2.0-3.0:4")
        assert topo.link_weights == (((2, 0), (3, 0), 4),)

    @pytest.mark.parametrize("spec", [
        "mesh:6",              # missing rows
        "mesh:6x4x2x2",        # too many dims
        "mesh:ax4",            # non-numeric
        "mesh:0x4",            # zero dim
        "mesh:6x4+mc=",        # empty option value
        "mesh:6x4+w=0.0-2.0:3",   # non-adjacent link
        "mesh:6x4+zz=1",       # unknown option
        "cluster:2x24x2",      # cluster takes exactly two fields
        "cluster:2x23",        # odd cores per chip
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ValueError, match="malformed topology spec"):
            get_topology(spec)

    def test_unknown_family_lists_known(self):
        with pytest.raises(KeyError, match="unknown topology family"):
            get_topology("hypercube:4")

    def test_builtin_families_listed(self):
        assert {"mesh", "torus", "cluster"} <= set(available_topologies())


class TestRegistry:
    def test_instances_are_cached(self):
        assert get_topology("mesh:5x5") is get_topology("mesh:5x5")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_topology("mesh", lambda body: Topology())

    def test_replace_allows_override(self):
        from repro.hw import topo

        marker = Topology(cols=2, rows=2)
        register_topology("_test_family", lambda body: marker)
        try:
            register_topology("_test_family", lambda body: marker,
                              replace=True)
            assert get_topology("_test_family:anything") is marker
        finally:
            topo._FACTORIES.pop("_test_family", None)
            get_topology.cache_clear()


class TestConfigPlumbing:
    def test_default_key_matches_mesh_fields(self):
        assert SCCConfig().topology_key() == "mesh:6x4"

    def test_spec_overrides_key(self):
        cfg = SCCConfig(topology="cluster:2x24")
        assert cfg.topology_key() == "cluster:2x24"
        assert cfg.num_cores == 48
        assert cfg.num_tiles == 24

    def test_resolved_topology_default_is_registry_instance(self):
        cfg = SCCConfig()
        assert cfg.resolved_topology() is get_topology("mesh:6x4")

    def test_machine_uses_config_topology(self):
        machine = Machine(SCCConfig(topology="mesh:4x4"))
        assert machine.topology is get_topology("mesh:4x4")
        assert machine.topology.num_cores == 32

    def test_default_topology_equals_registry_default(self):
        assert default_topology() == get_topology("mesh:6x4")

    def test_bad_spec_fails_validate(self):
        with pytest.raises(ValueError):
            SCCConfig(topology="mesh:0x4").validate()

    def test_negative_inter_chip_costs_rejected(self):
        with pytest.raises(ValueError):
            SCCConfig(inter_chip_access_mesh_cycles=-1).validate()
        with pytest.raises(ValueError):
            SCCConfig(inter_chip_line_mesh_cycles=-1).validate()


class TestInterChipTiming:
    def test_cross_chip_access_costs_more(self):
        machine = Machine(SCCConfig(topology="cluster:2x24"))
        model = machine.latency
        same = model.mpb_access(0, 2)      # neighbouring tiles, chip 0
        cross = model.mpb_access(0, 24)    # gateway to gateway, chip 1
        assert cross > same
        # Gateway-to-gateway is zero mesh hops, like a same-tile access,
        # so the difference is exactly the round-trip board surcharge.
        cfg = machine.config
        assert cross - model.mpb_access(0, 1) == model.mesh_cycles(
            2 * cfg.inter_chip_access_mesh_cycles)

    def test_single_chip_pays_no_surcharge(self):
        base = Machine(SCCConfig())
        spec = Machine(SCCConfig(topology="mesh:6x4"))
        for a, b in ((0, 0), (0, 2), (0, 47), (13, 29)):
            assert base.latency.mpb_access(a, b) == \
                spec.latency.mpb_access(a, b)

    def test_cross_chip_bulk_transfer_scales_with_lines(self):
        machine = Machine(SCCConfig(topology="cluster:2x24"))
        model = machine.latency
        one_line = model.mpb_write_bytes(0, 24, 32)
        two_lines = model.mpb_write_bytes(0, 24, 64)
        local_one = model.mpb_write_bytes(0, 2, 32)
        local_two = model.mpb_write_bytes(0, 2, 64)
        # Each extra line pays the per-line board-crossing cost on top of
        # the local per-line cost.
        assert (two_lines - one_line) > (local_two - local_one)
