"""Non-default topology shapes: degenerate meshes, tori, weights, chips."""

import pytest

from repro.hw.topology import Topology


class TestDegenerateShapes:
    """1xN / Nx1 meshes: corners alias, routing stays one-dimensional."""

    def test_row_mesh_mc_corners_deduped(self):
        topo = Topology(cols=5, rows=1)
        assert topo.mc_routers() == [(0, 0), (4, 0)]

    def test_column_mesh_mc_corners_deduped(self):
        topo = Topology(cols=1, rows=5)
        assert topo.mc_routers() == [(0, 0), (0, 4)]

    def test_single_tile_mesh_one_mc(self):
        topo = Topology(cols=1, rows=1)
        assert topo.mc_routers() == [(0, 0)]
        assert topo.max_hops() == 0

    def test_row_mesh_hops_are_linear(self):
        topo = Topology(cols=5, rows=1)
        assert topo.hops(0, 8) == 4          # tile 0 -> tile 4
        assert topo.max_hops() == 4
        assert topo.xy_route(0, 8) == [(0, 0), (1, 0), (2, 0),
                                       (3, 0), (4, 0)]

    def test_column_mesh_hops_are_linear(self):
        topo = Topology(cols=1, rows=5)
        assert topo.hops(0, 8) == 4
        assert topo.xy_route(0, 8) == [(0, 0), (0, 1), (0, 2),
                                       (0, 3), (0, 4)]

    def test_mc_of_core_on_row_mesh(self):
        topo = Topology(cols=5, rows=1)
        assert topo.mc_of_core(0) == (0, 0)
        assert topo.mc_of_core(9) == (4, 0)


class TestLargeMesh:
    def test_8x8_counts_and_diameter(self):
        topo = Topology(cols=8, rows=8)
        assert topo.num_tiles == 64
        assert topo.num_cores == 128
        assert topo.max_hops() == 14

    def test_8x8_xy_routing_is_x_first(self):
        topo = Topology(cols=8, rows=8)
        # core 0 at (0,0); core of tile 63 at (7,7)
        route = topo.xy_route(0, 127)
        assert route[0] == (0, 0)
        assert route[-1] == (7, 7)
        assert route[:8] == [(x, 0) for x in range(8)]
        assert topo.hops(0, 127) == 14


class TestTorus:
    def test_wraparound_shortens_hops(self):
        mesh = Topology(cols=6, rows=4)
        torus = Topology(cols=6, rows=4, torus=True)
        # tile 0 -> tile 5: 5 hops on the mesh, 1 wrap hop on the torus
        assert mesh.hops(0, 10) == 5
        assert torus.hops(0, 10) == 1

    def test_wraparound_route_steps_backwards(self):
        torus = Topology(cols=6, rows=4, torus=True)
        assert torus.xy_route(0, 10) == [(0, 0), (5, 0)]

    def test_torus_diameter(self):
        torus = Topology(cols=6, rows=4, torus=True)
        assert torus.max_hops() == 5  # 3 along x (wrapped) + 2 along y

    def test_tie_takes_non_wrapping_direction(self):
        torus = Topology(cols=4, rows=1, torus=True)
        # (0,0) -> (2,0): both directions are 2 hops; route must not wrap.
        assert torus.xy_route(0, 4) == [(0, 0), (1, 0), (2, 0)]

    def test_torus_neighbors_include_wrap_links(self):
        torus = Topology(cols=6, rows=4, torus=True)
        assert set(torus.neighbors(0)) == {1, 5, 6, 18}


class TestLinkWeights:
    def test_weighted_link_inflates_route_cost(self):
        topo = Topology(link_weights=(((2, 0), (3, 0), 4),))
        # Route 4->6 = tile 2 -> tile 3 crosses exactly the slow link.
        assert topo.hops(4, 6) == 4
        # A route that avoids the slow link is unchanged.
        assert topo.hops(0, 2) == 1

    def test_weight_applies_both_directions(self):
        topo = Topology(link_weights=(((3, 0), (2, 0), 4),))
        assert topo.hops(6, 4) == 4

    def test_non_adjacent_link_rejected(self):
        with pytest.raises(ValueError, match="adjacent"):
            Topology(link_weights=(((0, 0), (2, 0), 3),))

    def test_out_of_range_link_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            Topology(link_weights=(((0, 0), (0, 4), 2),))

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            Topology(link_weights=(((0, 0), (1, 0), 0),))

    def test_duplicate_link_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            Topology(link_weights=(((0, 0), (1, 0), 2),
                                   ((1, 0), (0, 0), 3)))


class TestMCPlacement:
    def test_explicit_placement_wins(self):
        topo = Topology(mc_placement=((2, 1), (3, 2)))
        assert topo.mc_routers() == [(2, 1), (3, 2)]

    def test_out_of_range_placement_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            Topology(mc_placement=((6, 0),))

    def test_duplicate_placement_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            Topology(mc_placement=((0, 0), (0, 0)))

    def test_empty_placement_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Topology(mc_placement=())


class TestMultiChip:
    @pytest.fixture
    def board(self):
        return Topology(cols=4, rows=3, chips=2)

    def test_counts(self, board):
        assert board.tiles_per_chip == 12
        assert board.num_tiles == 24
        assert board.num_cores == 48

    def test_chip_of(self, board):
        assert board.chip_of(0) == 0
        assert board.chip_of(23) == 0
        assert board.chip_of(24) == 1
        assert board.chip_of(47) == 1

    def test_coords_are_chip_local(self, board):
        # Core 24 is tile 12, the first tile of chip 1 -> local (0, 0).
        assert board.core_coords(24) == (0, 0)
        assert board.core_coords(0) == (0, 0)

    def test_chip_crossings(self, board):
        assert board.chip_crossings(0, 23) == 0
        assert board.chip_crossings(0, 24) == 1
        assert board.chip_crossings(47, 0) == 1

    def test_cross_chip_hops_route_via_gateways(self, board):
        # Core 22 sits on tile 11 = local (3, 2): 5 hops to its gateway.
        # Core 24 sits on the remote gateway tile itself: 0 hops.
        assert board.hops(22, 24) == 5
        route = board.xy_route(22, 24)
        assert route[0] == (3, 2)
        assert route[-1] == (0, 0)

    def test_same_chip_hops_unchanged(self, board):
        flat = Topology(cols=4, rows=3)
        for a, b in ((0, 5), (2, 22), (7, 19)):
            assert board.hops(a, b) == flat.hops(a, b)
            assert (board.hops(24 + a, 24 + b) == flat.hops(a, b))

    def test_snake_ring_covers_all_cores_chipwise(self, board):
        order = board.snake_ring_order()
        assert sorted(order) == list(range(48))
        # All of chip 0 is visited before any core of chip 1.
        assert max(order.index(c) for c in range(24)) < \
            min(order.index(c) for c in range(24, 48))

    def test_invalid_chip_count_rejected(self):
        with pytest.raises(ValueError, match="chip count"):
            Topology(chips=0)
