"""Unit tests for the optional MPB port-contention model."""

import numpy as np
import pytest

from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.rcce.api import comm_buffer
from repro.rcce.transfer import put_bytes


def machine(contention):
    return Machine(SCCConfig(mesh_cols=2, mesh_rows=1,
                             model_mpb_contention=contention))


def test_ports_created_only_when_enabled():
    assert machine(False).mpb_ports is None
    ports = machine(True).mpb_ports
    assert ports is not None and len(ports) == 4


def _two_writers_elapsed(contention: bool) -> tuple[int, int]:
    """Cores 0 and 1 write simultaneously into core 2's MPB; returns
    (elapsed, wait_port_total)."""
    m = machine(contention)
    data = np.zeros(3200, dtype=np.uint8)

    def program(env):
        if env.rank in (0, 1):
            region = comm_buffer(m, env.core_of_rank(2))
            yield from put_bytes(env, region, data, at=env.rank * 3200)
        else:
            yield from env.compute(0)

    result = m.run_spmd(program)
    waits = sum(a.get("wait_port") for a in result.accounts)
    return result.elapsed_ps, waits


def test_contention_serializes_same_target():
    free, waits_free = _two_writers_elapsed(False)
    contended, waits = _two_writers_elapsed(True)
    assert waits_free == 0
    assert waits > 0
    # Serialized: roughly twice the single-copy time.
    assert contended > 1.7 * free


def _two_disjoint_writers_elapsed(contention: bool) -> int:
    """Cores 0 and 1 write into different MPBs: no port conflict."""
    m = machine(contention)
    data = np.zeros(3200, dtype=np.uint8)

    def program(env):
        if env.rank in (0, 1):
            region = comm_buffer(m, env.core_of_rank(env.rank + 2))
            yield from put_bytes(env, region, data)
        else:
            yield from env.compute(0)

    return m.run_spmd(program).elapsed_ps


def test_disjoint_targets_unaffected():
    assert (_two_disjoint_writers_elapsed(True)
            == _two_disjoint_writers_elapsed(False))


def test_collectives_still_correct_with_contention():
    m = machine(True)
    from repro.core.registry import make_communicator
    comm = make_communicator(m, "lightweight")
    rng = np.random.default_rng(3)
    inputs = [rng.normal(size=100) for _ in range(4)]

    def program(env):
        return (yield from comm.allreduce(env, inputs[env.rank]))

    result = m.run_spmd(program)
    np.testing.assert_allclose(result.values[0], np.sum(inputs, axis=0),
                               rtol=1e-12)


def test_contention_never_speeds_collectives_up():
    """With the rendezvous flag protocol, the owner's put and the
    neighbour's get of the same MPB are already serialized by the
    handshake, so the ring collectives see little to no port contention —
    a structural property this test documents (the direct two-writer test
    above shows the lock does bite when accesses genuinely overlap)."""
    def allgather_time(contention):
        m = Machine(SCCConfig(model_mpb_contention=contention))
        from repro.core.registry import make_communicator
        comm = make_communicator(m, "lightweight")
        data = np.zeros(552)

        def program(env):
            yield from comm.allgather(env, data)

        return m.run_spmd(program).elapsed_ps

    assert allgather_time(True) >= allgather_time(False)
