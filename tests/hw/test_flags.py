"""Dedicated tests for MPB flags and their modeled access costs."""

import pytest

from repro.hw.config import SCCConfig
from repro.hw.machine import Machine


def machine(erratum=True):
    return Machine(SCCConfig(mesh_cols=2, mesh_rows=1,
                             erratum_enabled=erratum))


def test_set_costs_writer_the_mpb_write_latency():
    m = machine()
    flag = m.flag(3, "x")  # remote to core 0

    def program(env):
        if env.rank == 0:
            t0 = env.now
            yield from flag.set_by(env.core)
            return env.now - t0
        yield from env.compute(0)

    result = m.run_spmd(program)
    assert result.values[0] == m.latency.flag_write(0, 3)


def test_local_set_cheaper_without_erratum():
    def cost(erratum):
        m = machine(erratum)
        flag = m.flag(0, "x")

        def program(env):
            if env.rank == 0:
                t0 = env.now
                yield from flag.set_by(env.core)
                return env.now - t0
            yield from env.compute(0)

        return m.run_spmd(program).values[0]

    assert cost(erratum=False) < cost(erratum=True)


def test_wait_accounts_as_wait_flag():
    m = machine()
    flag = m.flag(1, "y")

    def program(env):
        if env.rank == 0:
            yield from env.compute(4000)
            yield from flag.set_by(env.core)
        elif env.rank == 1:
            yield from flag.wait_set(env.core)
        else:
            yield from env.compute(0)

    result = m.run_spmd(program)
    assert result.accounts[1].get("wait_flag") > 0


def test_wait_includes_notify_latency():
    m = machine()
    flag = m.flag(1, "z")

    def program(env):
        if env.rank == 0:
            yield from env.compute(1000)
            yield from flag.set_by(env.core)
            return env.now
        elif env.rank == 1:
            yield from flag.wait_set(env.core)
            return env.now
        yield from env.compute(0)

    result = m.run_spmd(program)
    set_time, observed = result.values[0], result.values[1]
    assert observed == set_time + m.latency.flag_notify(1, 1)


def test_wait_clear_and_force():
    m = machine()
    flag = m.flag(0, "w")
    flag.force(True)
    assert flag.value

    def program(env):
        if env.rank == 1:
            yield from env.compute(500)
            yield from flag.clear_by(env.core)
        elif env.rank == 0:
            yield from flag.wait_clear(env.core)
            return env.now
        else:
            yield from env.compute(0)

    result = m.run_spmd(program)
    assert result.values[0] > 0
    assert not flag.value


def test_many_waiters_all_resume():
    m = machine()
    flag = m.flag(0, "broadcasty")

    def program(env):
        if env.rank == 0:
            yield from env.compute(2000)
            yield from flag.set_by(env.core)
            return None
        yield from flag.wait_set(env.core)
        return env.now

    result = m.run_spmd(program)
    resumed = [v for v in result.values[1:]]
    assert all(t is not None and t > 0 for t in resumed)
    # Different cores have different notify latencies (hop counts).
    assert len(set(resumed)) >= 1
