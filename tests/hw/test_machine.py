"""Unit tests for Machine, Core, CoreEnv and the SPMD launcher."""

import pytest

from repro.hw.config import SCCConfig
from repro.hw.machine import Machine


def small_machine(**over):
    """A 2x1-tile (4-core) machine for cheap tests."""
    cfg = SCCConfig(mesh_cols=2, mesh_rows=1, **over)
    return Machine(cfg)


class TestConstruction:
    def test_default_machine_has_48_cores(self):
        m = Machine()
        assert m.num_cores == 48
        assert len(m.cores) == 48
        assert len(m.mpbs) == 48

    def test_small_machine(self):
        m = small_machine()
        assert m.num_cores == 4


class TestFlags:
    def test_flag_created_on_demand_and_cached(self):
        m = small_machine()
        f1 = m.flag(0, "sent")
        f2 = m.flag(0, "sent")
        assert f1 is f2
        assert not f1.value

    def test_flag_distinct_per_owner_and_name(self):
        m = small_machine()
        assert m.flag(0, "sent") is not m.flag(1, "sent")
        assert m.flag(0, "sent") is not m.flag(0, "ready")

    def test_flag_owner_range_checked(self):
        m = small_machine()
        with pytest.raises(ValueError):
            m.flag(99, "x")

    def test_flag_timed_set_and_wait(self):
        m = small_machine()
        flag = m.flag(1, "sync")

        def setter(env):
            yield from env.compute(100)
            yield from flag.set_by(env.core)

        def waiter(env):
            yield from flag.wait_set(env.core)
            return env.now

        def program(env):
            if env.rank == 0:
                return (yield from setter(env))
            elif env.rank == 1:
                return (yield from waiter(env))
            yield from env.compute(0)

        result = m.run_spmd(program)
        # Waiter resumed after: 100 compute cycles + remote flag write +
        # notify latency. All positive -> strictly after the set.
        assert result.values[1] > m.latency.core_cycles(100)


class TestRunSPMD:
    def test_all_ranks_run_and_return(self):
        m = small_machine()

        def program(env):
            yield from env.compute(10)
            return env.rank * 2

        result = m.run_spmd(program)
        assert result.values == [0, 2, 4, 6]

    def test_elapsed_is_makespan(self):
        m = small_machine()

        def program(env):
            yield from env.compute(100 * (env.rank + 1))

        result = m.run_spmd(program)
        assert result.elapsed_ps == m.latency.core_cycles(400)

    def test_rank_subset(self):
        m = small_machine()

        def program(env):
            yield from env.compute(1)
            return (env.rank, env.size, env.core_id)

        result = m.run_spmd(program, ranks=[1, 3])
        assert result.values == [(0, 2, 1), (1, 2, 3)]

    def test_args_passed_through(self):
        m = small_machine()

        def program(env, a, b=0):
            yield from env.compute(1)
            return a + b + env.rank

        result = m.run_spmd(program, 10, b=5)
        assert result.values[2] == 17

    def test_empty_ranks_rejected(self):
        m = small_machine()
        with pytest.raises(ValueError):
            m.run_spmd(lambda env: iter(()), ranks=[])

    def test_accounts_collected(self):
        m = small_machine()

        def program(env):
            yield from env.compute(1000)

        result = m.run_spmd(program)
        for acct in result.accounts:
            assert acct.get("compute") == m.latency.core_cycles(1000)
        assert result.account_fraction("compute") == 1.0

    def test_sequential_launches_share_clock(self):
        m = small_machine()

        def program(env):
            yield from env.compute(10)

        r1 = m.run_spmd(program)
        r2 = m.run_spmd(program)
        # Both launches measure their own elapsed time.
        assert r1.elapsed_ps == r2.elapsed_ps > 0


class TestCore:
    def test_consume_serializes_on_cpu_lock(self):
        m = small_machine()
        core = m.cores[0]
        done = []

        def user(env_unused, tag, dur):
            yield from core.consume(dur, "compute")
            done.append((tag, m.sim.now))

        m.sim.process(user(None, "a", 1000))
        m.sim.process(user(None, "b", 500))
        m.sim.run()
        # b started only after a released the lock.
        assert done == [("a", 1000), ("b", 1500)]

    def test_wait_accounts_time(self):
        m = small_machine()
        core = m.cores[0]

        def waiter():
            yield from core.wait(m.sim.timeout(777), "wait_flag")

        m.sim.process(waiter())
        m.sim.run()
        assert core.account.get("wait_flag") == 777


class TestCoreEnv:
    def test_env_handles(self):
        m = small_machine()

        def program(env):
            yield from env.compute(1)
            assert env.my_mpb() is m.mpbs[env.core_id]
            assert env.mpb_of_rank(0) is m.mpbs[0]
            assert env.config is m.config
            assert env.latency is m.latency
            return env.flag(0, "f").owner

        result = m.run_spmd(program)
        assert result.values == [0, 0, 0, 0]

    def test_sleep_does_not_hold_cpu(self):
        m = small_machine()

        def program(env):
            if env.rank == 0:
                yield from env.sleep(1000)
            else:
                yield from env.compute(1)

        result = m.run_spmd(program)
        assert result.accounts[0].get("idle") == 1000
