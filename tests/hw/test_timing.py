"""Unit tests for the hardware latency model."""

import pytest

from repro.hw.config import SCCConfig
from repro.hw.timing import LatencyModel
from repro.hw.topology import Topology


@pytest.fixture
def model():
    return LatencyModel(SCCConfig(), Topology())


@pytest.fixture
def fixed_model():
    """Model with the erratum fixed."""
    return LatencyModel(SCCConfig(erratum_enabled=False), Topology())


class TestLineArithmetic:
    def test_lines_exact(self, model):
        assert model.lines(32) == 1
        assert model.lines(64) == 2

    def test_lines_round_up(self, model):
        assert model.lines(1) == 1
        assert model.lines(33) == 2

    def test_lines_zero(self, model):
        assert model.lines(0) == 0

    def test_lines_negative_rejected(self, model):
        with pytest.raises(ValueError):
            model.lines(-1)

    def test_padded_tail_detection(self, model):
        # 4 doubles = 32 B = exactly one line: no padding
        assert not model.has_padded_tail(4 * 8)
        # 5 doubles = 40 B: padded tail
        assert model.has_padded_tail(5 * 8)
        # 600 doubles (a Fig. 9 "lower spike end"): no padding
        assert not model.has_padded_tail(600 * 8)
        assert model.has_padded_tail(601 * 8)


class TestMPBAccess:
    def test_local_access_with_erratum(self, model):
        """Paper IV-D: 45 core cycles + 8 mesh cycles with the workaround."""
        expected = 45 * 1876 + 8 * 1250
        assert model.mpb_access(0, 0) == expected

    def test_local_access_without_erratum(self, fixed_model):
        """Paper IV-D: 15 core cycles on a fixed chip."""
        assert fixed_model.mpb_access(0, 0) == 15 * 1876

    def test_erratum_slows_local_access_3x(self, model, fixed_model):
        ratio = model.mpb_access(0, 0) / fixed_model.mpb_access(0, 0)
        assert ratio > 3.0

    def test_remote_access_grows_with_hops(self, model):
        near = model.mpb_access(0, 2)    # 1 hop
        far = model.mpb_access(0, 47)    # 8 hops
        assert far > near

    def test_same_tile_remote_access_nonzero_mesh(self, model):
        # Cores 0 and 1 share a tile: 0 hops but still a mesh interface.
        same_tile = model.mpb_access(0, 1)
        assert same_tile > model.core_cycles(45)

    def test_local_with_erratum_close_to_offchip(self, model):
        """Paper IV-D: the workaround makes local MPB accesses 'come close
        to the transmission latency required for off-chip memory'."""
        local = model.mpb_access(0, 0)
        dram = model.dram_access(0)
        assert local > dram * 0.5


class TestDram:
    def test_dram_formula(self, model):
        """40 core cycles + 8*d mesh cycles."""
        # Core 0 sits on tile (0,0), which hosts its MC router: d = 0.
        assert model.dram_access(0) == 40 * 1876
        # Core 16 -> tile 8 at (2,1); MC at (0,0): d = 3.
        assert model.dram_access(16) == 40 * 1876 + 8 * 3 * 1250


class TestBulkCopies:
    def test_zero_bytes_free(self, model):
        assert model.mpb_write_bytes(0, 5, 0) == 0
        assert model.mpb_read_bytes(0, 5, 0) == 0
        assert model.mpb_stream_read(0, 5, 0) == 0
        assert model.mpb_stream_write(0, 0, 0) == 0
        assert model.private_copy_bytes(0) == 0

    def test_write_scales_with_lines(self, model):
        one = model.mpb_write_bytes(0, 4, 32)
        two = model.mpb_write_bytes(0, 4, 64)
        per_line = two - one
        assert per_line > 0
        # affine: 10 lines cost startup + 10 * per_line
        ten = model.mpb_write_bytes(0, 4, 320)
        assert ten == one + 9 * per_line

    def test_partial_line_costs_full_line(self, model):
        assert model.mpb_write_bytes(0, 4, 33) == model.mpb_write_bytes(0, 4, 64)

    def test_read_more_expensive_than_write(self, model):
        """MPB reads are round trips; writes are posted through the WCB."""
        assert (model.mpb_read_bytes(0, 4, 3200)
                > model.mpb_write_bytes(0, 4, 3200))

    def test_stream_write_local_erratum_penalty(self, model, fixed_model):
        """The MPB-direct Allreduce writes results into the *local* MPB;
        with the erratum each line pays the packet-to-self mesh cost on
        top of the per-line pipeline cost."""
        buggy = model.mpb_stream_write(3, 3, 3200)
        fixed = fixed_model.mpb_stream_write(3, 3, 3200)
        assert buggy > fixed
        per_line_extra = (buggy - fixed - (model.mpb_access(3, 3)
                                           - fixed_model.mpb_access(3, 3)))
        lines = model.lines(3200)
        assert per_line_extra == lines * model.mesh_cycles(
            model.config.mpb_local_bug_mesh_cycles)

    def test_private_first_touch_vs_cached(self, model):
        first = model.private_first_touch(16, 3200)
        cached = model.private_copy_bytes(3200)
        assert first > 3 * cached


class TestReduction:
    def test_reduce_cost_linear(self, model):
        assert model.reduce_doubles(100) == 10 * model.reduce_doubles(10)

    def test_reduce_zero(self, model):
        assert model.reduce_doubles(0) == 0

    def test_reduce_negative_rejected(self, model):
        with pytest.raises(ValueError):
            model.reduce_doubles(-4)
