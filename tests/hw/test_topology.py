"""Unit tests for the SCC mesh topology."""

import pytest

from repro.hw.topology import Topology, default_topology


@pytest.fixture
def topo():
    return Topology()


class TestGeometry:
    def test_standard_counts(self, topo):
        assert topo.num_tiles == 24
        assert topo.num_cores == 48

    def test_tile_of_core(self, topo):
        assert topo.tile_of(0) == 0
        assert topo.tile_of(1) == 0
        assert topo.tile_of(2) == 1
        assert topo.tile_of(47) == 23

    def test_tile_coords_row_major(self, topo):
        assert topo.tile_coords(0) == (0, 0)
        assert topo.tile_coords(5) == (5, 0)
        assert topo.tile_coords(6) == (0, 1)
        assert topo.tile_coords(23) == (5, 3)

    def test_cores_of_tile(self, topo):
        assert topo.cores_of_tile(0) == (0, 1)
        assert topo.cores_of_tile(23) == (46, 47)

    def test_same_tile(self, topo):
        assert topo.same_tile(0, 1)
        assert not topo.same_tile(1, 2)

    def test_out_of_range_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.tile_of(48)
        with pytest.raises(ValueError):
            topo.tile_of(-1)
        with pytest.raises(ValueError):
            topo.tile_coords(24)
        with pytest.raises(ValueError):
            topo.cores_of_tile(-1)

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Topology(cols=0)


class TestRouting:
    def test_same_tile_zero_hops(self, topo):
        assert topo.hops(0, 1) == 0

    def test_adjacent_tiles_one_hop(self, topo):
        assert topo.hops(0, 2) == 1   # tile 0 -> tile 1
        assert topo.hops(0, 12) == 1  # tile 0 -> tile 6 (next row)

    def test_diameter_corners(self, topo):
        # core 0 (tile 0 at (0,0)) to core 47 (tile 23 at (5,3))
        assert topo.hops(0, 47) == 8
        assert topo.max_hops() == 8

    def test_hops_symmetric(self, topo):
        for a, b in [(0, 47), (3, 30), (10, 11), (22, 22)]:
            assert topo.hops(a, b) == topo.hops(b, a)

    def test_xy_route_endpoints_and_length(self, topo):
        path = topo.xy_route(0, 47)
        assert path[0] == (0, 0)
        assert path[-1] == (5, 3)
        assert len(path) == topo.hops(0, 47) + 1

    def test_xy_route_goes_x_first(self, topo):
        path = topo.xy_route(0, 47)
        # X varies before Y does
        ys = [p[1] for p in path]
        assert ys[:6] == [0] * 6

    def test_xy_route_steps_are_unit(self, topo):
        path = topo.xy_route(47, 0)
        for (x0, y0), (x1, y1) in zip(path, path[1:]):
            assert abs(x0 - x1) + abs(y0 - y1) == 1

    def test_average_hops_value(self, topo):
        # For a 6x4 mesh the mean distance over distinct tiles is known to
        # be (exactly) computable; sanity-bound it instead of hardcoding.
        avg = topo.average_hops()
        assert 2.5 < avg < 4.0


class TestMemoryControllers:
    def test_four_controllers_at_corners(self, topo):
        assert topo.mc_routers() == [(0, 0), (5, 0), (0, 3), (5, 3)]

    def test_quadrant_assignment(self, topo):
        assert topo.mc_of_core(0) == (0, 0)
        assert topo.mc_of_core(47) == (5, 3)
        # core 10 -> tile 5 at (5, 0): right-top quadrant
        assert topo.mc_of_core(10) == (5, 0)

    def test_hops_to_mc_bounds(self, topo):
        for core in topo.cores():
            assert 0 <= topo.hops_to_mc(core) <= 3


class TestOrderings:
    def test_ring_order_is_identity(self, topo):
        assert topo.ring_order() == list(range(48))

    def test_snake_ring_visits_every_core_once(self, topo):
        order = topo.snake_ring_order()
        assert sorted(order) == list(range(48))

    def test_snake_ring_neighbor_tiles_adjacent(self, topo):
        order = topo.snake_ring_order()
        for a, b in zip(order, order[1:]):
            assert topo.hops(a, b) <= 1

    def test_neighbors_of_corner_tile(self, topo):
        assert sorted(topo.neighbors(0)) == [1, 6]

    def test_neighbors_of_center_tile(self, topo):
        assert len(list(topo.neighbors(8))) == 4


def test_default_topology_cached():
    assert default_topology() is default_topology()
