"""Unit tests for MPB storage, regions and allocation."""

import numpy as np
import pytest

from repro.hw.mpb import MPB, MPBError, MPBRegion, as_bytes


@pytest.fixture
def mpb():
    return MPB(core_id=3, size=8192, line_bytes=32, flag_bytes=192)


class TestRawAccess:
    def test_write_then_read_roundtrip(self, mpb):
        data = np.arange(64, dtype=np.uint8)
        mpb.write(256, data)
        assert np.array_equal(mpb.read(256, 64), data)

    def test_read_returns_copy(self, mpb):
        mpb.write(0, np.ones(8, dtype=np.uint8))
        out = mpb.read(0, 8)
        out[:] = 9
        assert mpb.read(0, 8)[0] == 1

    def test_out_of_bounds_write(self, mpb):
        with pytest.raises(MPBError):
            mpb.write(8190, np.zeros(8, dtype=np.uint8))

    def test_out_of_bounds_read(self, mpb):
        with pytest.raises(MPBError):
            mpb.read(-1, 4)
        with pytest.raises(MPBError):
            mpb.read(8192, 1)

    def test_flag_region_exceeding_size_rejected(self):
        with pytest.raises(MPBError):
            MPB(0, size=128, line_bytes=32, flag_bytes=128)


class TestAllocation:
    def test_alloc_starts_after_flags_line_aligned(self, mpb):
        region = mpb.alloc(100)
        assert region.offset == 192  # 192 is already 32-aligned
        assert region.size == 100

    def test_alloc_alignment(self, mpb):
        mpb.alloc(10)
        second = mpb.alloc(10)
        assert second.offset % 32 == 0

    def test_alloc_exhaustion(self, mpb):
        mpb.alloc(8000)
        with pytest.raises(MPBError):
            mpb.alloc(64)

    def test_alloc_invalid_size(self, mpb):
        with pytest.raises(MPBError):
            mpb.alloc(0)

    def test_reset_alloc(self, mpb):
        mpb.alloc(4000)
        mpb.reset_alloc()
        region = mpb.alloc(4000)
        assert region.offset == 192

    def test_free_bytes(self, mpb):
        before = mpb.free_bytes
        mpb.alloc(320)
        assert mpb.free_bytes == before - 320

    def test_payload_bytes(self, mpb):
        assert mpb.payload_bytes == 8000

    def test_clear(self, mpb):
        region = mpb.alloc(32)
        region.write(np.ones(32, dtype=np.uint8))
        mpb.clear()
        assert mpb.read(region.offset, 32).sum() == 0
        assert mpb.free_bytes == 8000


class TestRegion:
    def test_region_write_read(self, mpb):
        region = mpb.alloc(256)
        payload = np.arange(32, dtype=np.float64)
        region.write(payload)
        back = region.read(256).view(np.float64)
        assert np.array_equal(back, payload)

    def test_region_write_at_offset(self, mpb):
        region = mpb.alloc(64)
        region.write(np.full(16, 7, dtype=np.uint8), at=48)
        assert region.read(16, at=48)[0] == 7

    def test_region_overflow_write(self, mpb):
        region = mpb.alloc(64)
        with pytest.raises(MPBError):
            region.write(np.zeros(65, dtype=np.uint8))

    def test_region_overflow_read(self, mpb):
        region = mpb.alloc(64)
        with pytest.raises(MPBError):
            region.read(65)

    def test_read_into(self, mpb):
        region = mpb.alloc(64)
        data = np.linspace(0, 1, 8)
        region.write(data)
        out = np.empty(8, dtype=np.float64)
        region.read_into(out)
        assert np.array_equal(out, data)

    def test_owner(self, mpb):
        assert mpb.alloc(32).owner == 3

    def test_halves_line_aligned(self, mpb):
        region = mpb.alloc(4000)
        lo, hi = region.halves()
        assert lo.offset == region.offset
        assert lo.size == hi.size
        assert lo.size % 32 == 0
        assert hi.offset == lo.offset + lo.size

    def test_halves_too_small(self, mpb):
        region = MPBRegion(mpb, 192, 32)
        with pytest.raises(MPBError):
            region.halves()


class TestAsBytes:
    def test_float_view(self):
        arr = np.ones(4, dtype=np.float64)
        raw = as_bytes(arr)
        assert raw.dtype == np.uint8
        assert raw.size == 32

    def test_non_contiguous_handled(self):
        arr = np.arange(16, dtype=np.float64)[::2]
        raw = as_bytes(arr)
        assert raw.size == 64
