"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_sizes, build_parser, main


class TestParseSizes:
    def test_range_spec(self):
        assert _parse_sizes("10:20:5") == [10, 15]

    def test_comma_list(self):
        assert _parse_sizes("552,575,576") == [552, 575, 576]

    def test_single_value(self):
        assert _parse_sizes("42") == [42]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["teleport"])

    def test_fig9_requires_valid_panel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9", "9z"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "48" in out
        assert "533" in out
        assert "erratum" in out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "552" in out and "575" in out

    def test_fig9_small(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CORES", "8")
        assert main(["fig9", "9f", "--sizes", "64,96", "--cores", "8"]) == 0
        out = capsys.readouterr().out
        assert "blocking" in out and "mpb" in out

    def test_sweep_small(self, capsys):
        assert main(["sweep", "allreduce", "--stacks", "blocking",
                     "lightweight", "--sizes", "64", "--cores", "8"]) == 0
        out = capsys.readouterr().out
        assert "lightweight" in out

    def test_stepwise_small(self, capsys):
        assert main(["stepwise", "--size", "96", "--cores", "8"]) == 0
        out = capsys.readouterr().out
        assert "combined" in out

    def test_gcmc_small(self, capsys):
        assert main(["gcmc", "--cycles", "1", "--particles", "24",
                     "--stack", "lightweight"]) == 0
        out = capsys.readouterr().out
        assert "final energy" in out

    def test_fig10_small(self, capsys):
        assert main(["fig10", "--cycles", "1",
                     "--stacks", "lightweight", "blocking"]) == 0
        out = capsys.readouterr().out
        assert "blocking" in out

    def test_paper_digest(self, capsys):
        assert main(["paper", "--cycles", "1"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 6" in out
        assert "Section IV" in out
        assert "Fig. 10" in out


class TestBenchCommand:
    def test_bench_sweep_with_cache_dir(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        argv = ["bench", "allreduce", "--stacks", "blocking", "lightweight",
                "--sizes", "16,20", "--cores", "4", "--jobs", "1",
                "--cache-dir", str(cache)]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "blocking" in cold and "lightweight" in cold
        assert "4 points" in cold
        assert "simulated 4" in cold
        assert main(argv) == 0  # second run is served from the cache
        warm = capsys.readouterr().out
        assert "cache hits 4" in warm and "simulated 0" in warm

    def test_bench_no_cache_writes_nothing(self, capsys, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(tmp_path))
        assert main(["bench", "barrier", "--stacks", "lightweight",
                     "--sizes", "8", "--cores", "4", "--jobs", "1",
                     "--no-cache"]) == 0
        assert "cache hits 0" in capsys.readouterr().out
        assert not any(tmp_path.rglob("*.json"))

    def test_bench_wallclock_out(self, capsys, tmp_path):
        import json

        out = tmp_path / "wall.json"
        assert main(["bench", "bcast", "--stacks", "lightweight",
                     "--sizes", "8", "--cores", "4", "--jobs", "1",
                     "--no-cache", "--wallclock-out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "bcast"
        assert payload["points"] == 1
        assert payload["simulated"] == 1

    def test_bench_smoke_small(self, capsys, tmp_path):
        import json

        out = tmp_path / "BENCH_wallclock.json"
        assert main(["bench", "--smoke", "--sizes", "8,12", "--cores", "4",
                     "--jobs", "2", "--wallclock-out", str(out)]) == 0
        digest = capsys.readouterr().out
        assert "events/s" in digest
        assert "bit-identical across all paths: True" in digest
        data = json.loads(out.read_text())
        assert data["schema"] == 1
        assert data["kernel"]["events_per_second"] > 0
        assert data["sweeps"][0]["bit_identical"] is True

    def test_bench_rejects_unknown_stack(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--stacks", "openmpi"])


class TestSynthCommand:
    def test_synth_one_point_with_frontier(self, capsys):
        assert main(["synth", "--kinds", "scan", "--cores", "5",
                     "--sizes", "64", "--frontier", "--verify"]) == 0
        out = capsys.readouterr().out
        assert "best " in out
        assert "frontier" in out
        assert "candidates/s" in out
        assert "verified" in out

    def test_synth_smoke(self, capsys):
        assert main(["synth", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "synthesized candidates verified" in out
        assert "synthesized winner at" in out

    def test_synth_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["synth", "--kinds", "gather"])


class TestTuneCommand:
    def test_partial_retune_merges(self, capsys, tmp_path):
        out = tmp_path / "table.json"
        assert main(["tune", "--kinds", "scan", "--cores", "2", "4",
                     "--sizes", "8,64", "--out", str(out),
                     "--fresh"]) == 0
        capsys.readouterr()
        assert main(["tune", "--kinds", "bcast", "--cores", "4",
                     "--sizes", "64", "--out", str(out)]) == 0
        merged = capsys.readouterr().out
        assert "merged 1 re-tuned entries" in merged

        from repro.sched.select import SelectionTable
        table = SelectionTable.load(out)
        assert set(table.kinds()) == {"scan", "bcast"}
        assert len(table.entries["scan"]) == 4
        assert table.meta["ps"] == [2, 4]
        assert table.meta["sizes"] == [8, 64]

    def test_fresh_discards_existing(self, capsys, tmp_path):
        out = tmp_path / "table.json"
        assert main(["tune", "--kinds", "scan", "--cores", "2",
                     "--sizes", "8", "--out", str(out)]) == 0
        assert main(["tune", "--kinds", "bcast", "--cores", "2",
                     "--sizes", "8", "--out", str(out), "--fresh"]) == 0
        from repro.sched.select import SelectionTable
        assert SelectionTable.load(out).kinds() == ("bcast",)

    def test_no_synth_reproduces_hand_tables(self, capsys, tmp_path):
        from repro.sched.builders import builder_names
        from repro.sched.select import SelectionTable

        out = tmp_path / "table.json"
        assert main(["tune", "--kinds", "scan", "--cores", "8",
                     "--sizes", "1024", "--out", str(out), "--fresh",
                     "--no-synth"]) == 0
        table = SelectionTable.load(out)
        for algo in table.entries["scan"].values():
            assert algo in builder_names("scan")
