"""Unit tests for text-table rendering."""

import pytest

from repro.util.tables import format_table


def test_basic_table():
    text = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert "a" in lines[0] and "bb" in lines[0]
    assert "2.50" in text
    assert "4.25" in text


def test_float_format_override():
    text = format_table(["x"], [[3.14159]], float_fmt="{:.4f}")
    assert "3.1416" in text


def test_column_width_adapts():
    text = format_table(["h"], [["a-very-long-cell"]])
    assert "a-very-long-cell" in text


def test_empty_rows():
    text = format_table(["only", "headers"], [])
    assert "only" in text


def test_row_arity_checked():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [[1]])
