"""Unit tests for the timeline/Gantt utilities."""

import numpy as np
import pytest

from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.sim.trace import TimeAccount, Tracer, TraceRecord
from repro.util.timeline import Timeline, render_accounts_bar


class TestTimeline:
    def test_empty(self):
        assert "(empty timeline)" in Timeline().render()

    def test_manual_spans(self):
        tl = Timeline()
        tl.add_span("core0", 0, 1_000_000, "send")
        tl.add_span("core1", 500_000, 2_000_000, "recv")
        text = tl.render(width=40)
        assert "core0" in text and "core1" in text
        assert "S" in text and "R" in text

    def test_negative_span_rejected(self):
        with pytest.raises(ValueError):
            Timeline().add_span("x", 10, 5, "send")

    def test_feed_from_begin_end_records(self):
        records = [
            TraceRecord(0, "core0", "send.begin", 1),
            TraceRecord(100, "core0", "send.end", 1),
            TraceRecord(50, "core1", "recv.begin", 0),
            TraceRecord(150, "core1", "recv.end", 0),
        ]
        tl = Timeline().feed(records)
        assert tl.spans["core0"] == [(0, 100, "send")]
        assert tl.spans["core1"] == [(50, 150, "recv")]

    def test_unmatched_end_ignored(self):
        tl = Timeline().feed([TraceRecord(5, "c", "send.end", 0)])
        assert not tl.spans

    def test_feed_from_real_simulation(self):
        """A traced collective produces a renderable timeline."""
        tracer = Tracer(enabled=True)
        machine = Machine(SCCConfig(mesh_cols=2, mesh_rows=1),
                          tracer=tracer)
        comm = make_communicator(machine, "lightweight")
        data = np.arange(64, dtype=np.float64)

        def program(env):
            yield from comm.allreduce(env, data + env.rank)

        machine.run_spmd(program)
        assert len(tracer) > 0
        tl = Timeline().feed(tracer.records)
        assert len(tl.spans) == 4  # every core sent and received
        text = tl.render()
        assert "core0" in text

    def test_blocking_layer_also_traces(self):
        tracer = Tracer(enabled=True)
        machine = Machine(SCCConfig(mesh_cols=2, mesh_rows=1),
                          tracer=tracer)
        comm = make_communicator(machine, "blocking")

        def program(env):
            if env.rank == 0:
                yield from comm.send(env, np.zeros(8), 1)
            elif env.rank == 1:
                out = np.empty(8)
                yield from comm.recv(env, out, 0)
            else:
                yield from env.compute(0)

        machine.run_spmd(program)
        tags = {r.tag for r in tracer.records}
        assert {"send.begin", "send.end", "recv.begin", "recv.end"} <= tags


class TestAccountsBar:
    def test_renders_proportions(self):
        acct = TimeAccount({"compute": 50, "wait_flag": 50})
        text = render_accounts_bar([acct], width=10)
        bar_line = text.splitlines()[0]
        assert bar_line.count("#") == 5
        assert bar_line.count(".") == 5

    def test_zero_account(self):
        text = render_accounts_bar([TimeAccount()], width=10)
        assert "core0" in text

    def test_custom_labels(self):
        text = render_accounts_bar([TimeAccount({"compute": 1})],
                                   labels=["rank7"])
        assert "rank7" in text

    def test_unknown_state_rendered_as_question(self):
        acct = TimeAccount({"exotic": 100})
        text = render_accounts_bar([acct], width=10)
        assert "?" in text
