"""The schedule synthesizer: names, search, cost memoization, integration."""

import numpy as np
import pytest

from repro.core.blocks import balanced_partition
from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.sched.builders import build_schedule, builder_names
from repro.sched.cost import (
    estimate_schedule_cost,
    invalidate_schedule_costs,
    schedule_cost_key,
)
from repro.sched.synth import (
    CHUNK_GRID_PIPELINE,
    CHUNK_GRID_TRANSFORM,
    base_builder,
    build_synth_schedule,
    candidate_names,
    default_model,
    parse_synth_name,
    synth_repertoire,
    synthesize,
)


class TestNameGrammar:
    def test_pipeline_name(self):
        assert parse_synth_name("scan", "synth/pipeline_c8") == (None, 8)

    def test_transform_name(self):
        assert parse_synth_name("allreduce", "synth/rsag+c4") == \
            ("rsag", 4)
        assert base_builder("allreduce", "synth/rsag+c4") == "rsag"

    def test_base_with_underscores(self):
        assert parse_synth_name(
            "allreduce", "synth/recursive_doubling+c2") == \
            ("recursive_doubling", 2)

    @pytest.mark.parametrize("bad", [
        "rsag",                      # missing prefix
        "synth/rsag",                # no chunk suffix
        "synth/rsag+c0",             # chunk count < 1
        "synth/rsag+cx",             # non-numeric
        "synth/mpich+c2",            # unknown base
        "synth/pipeline_c",          # empty count
    ])
    def test_malformed_names_rejected(self, bad):
        with pytest.raises(KeyError, match="synth"):
            parse_synth_name("allreduce", bad)

    def test_pipeline_needs_chain_kind(self):
        with pytest.raises(KeyError, match="pipeline"):
            parse_synth_name("allgather", "synth/pipeline_c4")


class TestRegistryIntegration:
    def test_build_schedule_routes_synth_names(self):
        part = balanced_partition(16, 4)
        sched = build_schedule("allreduce", "synth/rsag+c2", 4, 16,
                               part=part)
        assert sched.name == "synth/rsag+c2"
        assert sched.meta["chunks"] == 2

    def test_pipeline_resolves(self):
        sched = build_schedule("scan", "synth/pipeline_c4", 4, 16)
        assert sched.name == "synth/pipeline_c4"
        assert sched.kind == "scan"

    def test_unknown_name_still_helpful(self):
        with pytest.raises(KeyError, match="synth"):
            build_schedule("allreduce", "synth/nope+c2", 4, 16)

    def test_cached_instances_reused(self):
        a = build_synth_schedule("scan", "synth/pipeline_c4", 4, 16)
        b = build_synth_schedule("scan", "synth/pipeline_c4", 4, 16)
        assert a is b


class TestCandidateSpace:
    def test_gated_small_points(self):
        assert candidate_names("allreduce", 1, 64) == ()
        assert candidate_names("allreduce", 8, 1) == ()

    def test_chunks_capped_by_payload(self):
        names = candidate_names("scan", 8, 3)
        assert "synth/pipeline_c2" in names
        assert "synth/pipeline_c4" not in names

    def test_transforms_cover_every_builder(self):
        names = candidate_names("allgather", 8, 64)
        for base in builder_names("allgather"):
            for c in CHUNK_GRID_TRANSFORM:
                assert f"synth/{base}+c{c}" in names
        # allgather has no chain pipeline
        assert not any("pipeline" in n for n in names)

    def test_pipelines_only_for_chain_kinds(self):
        names = candidate_names("scan", 8, 1024)
        for c in CHUNK_GRID_PIPELINE:
            assert f"synth/pipeline_c{c}" in names


class TestSynthesize:
    @pytest.fixture(scope="class")
    def model(self):
        return default_model()

    def test_candidates_sorted_and_complete(self, model):
        res = synthesize("allreduce", 8, 64, model)
        costs = [c.cost for c in res.candidates]
        assert costs == sorted(costs)
        names = {c.name for c in res.candidates}
        assert set(builder_names("allreduce")) <= names
        assert res.best is res.candidates[0]
        assert not res.best_hand.synthesized

    def test_frontier_is_pareto(self, model):
        res = synthesize("scan", 8, 1024, model)
        for a in res.frontier:
            assert not any(b.dominates(a) for b in res.candidates)
        # the overall winner always survives
        assert res.best.name in {c.name for c in res.frontier}

    def test_pipeline_wins_long_scan(self, model):
        """The acceptance point: a synthesized schedule out-prices every
        hand algorithm for the long-vector scan region."""
        res = synthesize("scan", 8, 1024, model)
        assert res.best.synthesized
        assert res.best.name.startswith("synth/pipeline_c")
        assert res.best.cost < res.best_hand.cost

    def test_verify_mode(self, model):
        res = synthesize("bcast", 5, 16, model, verify=True)
        assert res.candidates

    def test_rounds_reported(self, model):
        res = synthesize("bcast", 4, 64, model)
        by_name = {c.name: c for c in res.candidates}
        assert by_name["synth/pipeline_c4"].rounds > \
            by_name["synth/pipeline_c2"].rounds

    def test_repertoire_sweep_small(self):
        scheds = list(synth_repertoire(ps=(2, 3), sizes=(1, 8)))
        assert scheds
        assert all(s.name.startswith("synth/") for s in scheds)


class TestCostMemo:
    def make_model(self):
        return default_model()

    def test_key_distinguishes_chunk_layout(self):
        part = balanced_partition(64, 8)
        base = build_schedule("allreduce", "rsag", 8, 64, part=part)
        chunked = build_schedule("allreduce", "synth/rsag+c2", 8, 64,
                                 part=part)
        ka = schedule_cost_key(base, blocking=False, overhead=None)
        kb = schedule_cost_key(chunked, blocking=False, overhead=None)
        assert ka != kb

    def test_key_distinguishes_structure_same_name(self):
        """Two schedules sharing (kind, name, p, n) but with different
        step lists (the verifier's broken fixtures do this) must not
        share a cost entry."""
        import dataclasses

        part = balanced_partition(64, 8)
        base = build_schedule("allgather", "ring", 8, 64, part=part)
        mutated = dataclasses.replace(base,
                                      plans=base.plans[1:] + base.plans[:1])
        assert schedule_cost_key(base, blocking=False, overhead=None) != \
            schedule_cost_key(mutated, blocking=False, overhead=None)

    def test_whole_schedule_cost_memoized(self):
        model = self.make_model()
        part = balanced_partition(64, 8)
        sched = build_schedule("allreduce", "rsag", 8, 64, part=part)
        first = estimate_schedule_cost(sched, model)
        memo = model._memo[model.config.erratum_enabled]
        key = schedule_cost_key(sched, blocking=False, overhead=None)
        assert memo[key] == first
        assert estimate_schedule_cost(sched, model) == first

    def test_invalidate_mirrors_latency_model(self):
        model = self.make_model()
        part = balanced_partition(64, 8)
        for name in ("rsag", "recursive_doubling"):
            sched = build_schedule("allreduce", name, 8, 64, part=part)
            estimate_schedule_cost(sched, model)
            estimate_schedule_cost(sched, model, blocking=True)
        dropped = invalidate_schedule_costs(model)
        assert dropped == 4
        memo = model._memo[model.config.erratum_enabled]
        assert not any(isinstance(k, tuple) and k and k[0] == "schedcost"
                       for k in memo)
        # primitive-level entries survive the schedule-cost flush
        assert memo

    def test_invalidate_empty_model(self):
        assert invalidate_schedule_costs(self.make_model()) == 0


class TestEngineRoundTrip:
    def run_collective(self, kind, algo, p, n):
        machine = Machine(SCCConfig())
        comm = make_communicator(machine, "lightweight_balanced")
        rng = np.random.default_rng(20120901)
        inputs = [np.round(rng.normal(size=n) * 8) for _ in range(p)]

        def program(env):
            if kind == "allreduce":
                return (yield from comm.allreduce(env, inputs[env.rank],
                                                  algo=algo))
            if kind == "scan":
                return (yield from comm.scan(env, inputs[env.rank],
                                             algo=algo))
            raise AssertionError(kind)

        run = machine.run_spmd(program, ranks=list(range(p)))
        return inputs, run.values

    def test_chunked_transform_bit_exact(self):
        inputs, values = self.run_collective(
            "allreduce", "sched:synth/rsag+c2", 5, 70)
        expected = np.sum(inputs, axis=0)
        for got in values:
            assert np.array_equal(got, expected)

    def test_pipeline_bit_exact(self):
        inputs, values = self.run_collective(
            "scan", "sched:synth/pipeline_c4", 5, 70)
        for rank, got in enumerate(values):
            assert np.array_equal(got, np.sum(inputs[:rank + 1], axis=0))
