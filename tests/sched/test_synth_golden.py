"""Golden virtual-time results for the synthesized repertoire.

The BSP cost model only *ranks* candidates; these tests pin the claims
that matter on the simulator itself, measuring **completion time** (the
instant the last rank finishes, ``SPMDResult.elapsed_ps``) rather than
the paper's rank-0 convention — a pipeline's root exits rounds before
the chain drains, so rank-0 timing would flatter it dishonestly.

Three pinned facts:

* pipelined chain schedules beat the best hand algorithm for the
  long-vector scan region, on both stack families — the synthesis PR's
  headline win;
* a pipelined bcast beats scatter_allgather at small rank counts and
  long vectors (at p >= 16 the tree's log depth wins again, which is
  why the selection table only picks pipelines where it does);
* the *chunked transform* of the ring allgather never beats its base on
  the non-blocking stack: sub-messages stay in their original rounds,
  so per-chunk issue/complete overheads add with nothing overlapped to
  pay for them.  ``docs/schedules.md`` documents this negative result;
  this test keeps it true (if chunked rings ever start winning, the
  search grids should be revisited).
"""

import numpy as np
import pytest

from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine


def completion_us(stack: str, kind: str, name: str, p: int,
                  n: int) -> float:
    machine = Machine(SCCConfig())
    comm = make_communicator(machine, stack)
    rng = np.random.default_rng(20120901)
    inputs = [rng.normal(size=n) for _ in range(p)]
    algo = f"sched:{name}"

    def program(env):
        if kind == "scan":
            return (yield from comm.scan(env, inputs[env.rank],
                                         algo=algo))
        if kind == "bcast":
            buf = inputs[env.rank].copy()
            return (yield from comm.bcast(env, buf, algo=algo))
        if kind == "allgather":
            return (yield from comm.allgather(env, inputs[env.rank],
                                              algo=algo))
        raise AssertionError(kind)

    result = machine.run_spmd(program, ranks=list(range(p)))
    return result.elapsed_us


class TestPipelineWins:
    @pytest.mark.parametrize("stack,p,n,c,margin", [
        # full chip, non-blocking: 1444us vs 2190us (1.5x)
        ("lightweight_balanced", 48, 2048, 32, 1.4),
        # full chip, rendezvous stack: 2020us vs 12605us (6.2x) — the
        # convoying that k-synchronous pipelining exists to break
        ("blocking", 48, 2048, 32, 5.0),
        # small partition: 657us vs 1122us (1.7x)
        ("lightweight_balanced", 8, 2048, 16, 1.6),
    ])
    def test_pipeline_scan_beats_recursive_doubling(self, stack, p, n, c,
                                                    margin):
        pipe = completion_us(stack, "scan", f"synth/pipeline_c{c}", p, n)
        hand = completion_us(stack, "scan", "recursive_doubling", p, n)
        assert hand / pipe >= margin, \
            f"pipeline {pipe:.1f}us vs recursive_doubling {hand:.1f}us"

    def test_pipeline_bcast_beats_tree_small_p(self):
        pipe = completion_us("lightweight_balanced", "bcast",
                             "synth/pipeline_c16", 8, 4096)
        hand = completion_us("lightweight_balanced", "bcast",
                             "scatter_allgather", 8, 4096)
        assert hand / pipe >= 1.1, \
            f"pipeline {pipe:.1f}us vs scatter_allgather {hand:.1f}us"


class TestChunkedRingCharacterization:
    def test_chunked_ring_allgather_never_helps_nonblocking(self):
        """The honest negative result: on lightweight_balanced the ring
        allgather is copy-bound with perfect overlap already, so the
        chunk transform's extra per-message constants only add."""
        base = completion_us("lightweight_balanced", "allgather",
                             "ring", 8, 1024)
        chunked = completion_us("lightweight_balanced", "allgather",
                                "synth/ring+c2", 8, 1024)
        assert chunked >= base
        # ...but the damage is bounded: chunking is a granularity
        # knob, not a cliff (within 5% here).
        assert chunked <= base * 1.05
