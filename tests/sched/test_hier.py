"""Hierarchical (leader-based) schedules: grammar, validity, equivalence."""

import numpy as np
import pytest

from repro.analysis.schedverify import assert_valid_schedule
from repro.hw.config import SCCConfig
from repro.hw.timing import LatencyModel
from repro.hw.topo import get_topology
from repro.sched.builders import build_schedule
from repro.sched.hier import (
    HIER_KINDS,
    build_hier_schedule,
    group_bounds,
    hier_candidate_names,
    parse_hier_name,
)
from repro.sched.interp import check_schedule_numeric, int_inputs, interpret
from repro.sched.select import SelectionTable, select_algo


class TestNameGrammar:
    def test_parse_returns_group_count(self):
        assert parse_hier_name("allreduce", "hier/g2") == 2
        assert parse_hier_name("bcast", "hier/g16") == 16

    @pytest.mark.parametrize("name", [
        "hierg2",          # missing prefix
        "hier/2",          # missing g
        "hier/gx",         # non-numeric
        "hier/g1",         # fewer than two groups
        "hier/g",          # empty count
    ])
    def test_malformed_names_rejected(self, name):
        with pytest.raises(KeyError, match="hier/g<G>"):
            parse_hier_name("allreduce", name)

    def test_unscheduled_kind_rejected(self):
        with pytest.raises(KeyError, match="no hierarchical builder"):
            parse_hier_name("alltoall", "hier/g2")

    def test_build_schedule_routes_hier_names(self):
        sched = build_schedule("allreduce", "hier/g2", 8, 4)
        assert sched.name == "hier/g2"
        assert sched.meta["groups"] == 2

    def test_too_many_groups_rejected(self):
        with pytest.raises(ValueError, match="needs at least"):
            build_hier_schedule("allreduce", "hier/g4", 3, 4)


class TestGroupBounds:
    def test_even_split(self):
        assert group_bounds(48, 2) == [(0, 24), (24, 48)]

    def test_remainder_goes_to_first_groups(self):
        assert group_bounds(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_bounds_cover_all_ranks(self):
        for p in (4, 6, 7, 48, 96):
            for g in (2, 3, 4):
                bounds = group_bounds(p, g)
                assert bounds[0][0] == 0 and bounds[-1][1] == p
                for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                    assert hi == lo


class TestValidity:
    @pytest.mark.parametrize("kind", HIER_KINDS)
    @pytest.mark.parametrize("p", [4, 6, 48])
    @pytest.mark.parametrize("groups", [2, 3])
    def test_schedules_verify_and_compute(self, kind, p, groups):
        root = 0 if kind == "allreduce" else p - 1
        sched = build_hier_schedule(kind, f"hier/g{groups}", p, 8,
                                    root=root)
        assert_valid_schedule(sched)
        check_schedule_numeric(sched)


class TestFlatEquivalence:
    """hier allreduce produces bit-identical results to the flat
    algorithms: inputs are integer-valued doubles, so IEEE sums are exact
    regardless of association order."""

    @pytest.mark.parametrize("p", [4, 6, 96])
    @pytest.mark.parametrize("groups", [2, 3])
    def test_allreduce_matches_flat(self, p, groups):
        n = 16
        inputs = int_inputs(p, n)
        hier = interpret(
            build_hier_schedule("allreduce", f"hier/g{groups}", p, n),
            inputs)
        flat = interpret(
            build_schedule("allreduce", "recursive_doubling", p, n),
            inputs)
        for r in range(p):
            assert np.array_equal(hier[r], flat[r])

    @pytest.mark.parametrize("p", [4, 6, 96])
    def test_reduce_matches_flat_at_root(self, p):
        n = 16
        root = p - 1
        inputs = int_inputs(p, n)
        hier = interpret(
            build_hier_schedule("reduce", "hier/g2", p, n, root=root),
            inputs)
        flat = interpret(
            build_schedule("reduce", "binomial", p, n, root=root),
            inputs)
        assert np.array_equal(hier[root], flat[root])


class TestCandidates:
    def test_single_chip_offers_no_candidates(self):
        topo = get_topology("mesh:6x4")
        assert hier_candidate_names("allreduce", 48, topo) == ()
        assert hier_candidate_names("allreduce", 48, None) == ()

    def test_cluster_offers_chip_count_and_two(self):
        topo = get_topology("cluster:3x16")
        assert hier_candidate_names("allreduce", 48, topo) == \
            ("hier/g3", "hier/g2")

    def test_duplicate_group_counts_collapse(self):
        topo = get_topology("cluster:2x24")
        assert hier_candidate_names("allreduce", 48, topo) == ("hier/g2",)

    def test_unscheduled_kind_offers_nothing(self):
        topo = get_topology("cluster:2x24")
        assert hier_candidate_names("alltoall", 48, topo) == ()

    def test_select_algo_picks_hier_on_cluster(self):
        config = SCCConfig(topology="cluster:2x24")
        model = LatencyModel(config, config.resolved_topology())
        assert select_algo("allreduce", 48, 8, model) == "hier/g2"


class TestSchemaTwoTable:
    def test_record_and_pick_per_topology(self):
        table = SelectionTable(meta={"topology": "mesh:6x4"})
        table.record("allreduce", 48, 8, "recursive_doubling")
        table.record("allreduce", 48, 8, "hier/g2",
                     topology="cluster:2x24")
        assert table.pick("allreduce", 48, 8) == "recursive_doubling"
        assert table.pick("allreduce", 48, 8,
                          topology="cluster:2x24") == "hier/g2"

    def test_unknown_topology_returns_none(self):
        table = SelectionTable()
        table.record("allreduce", 48, 8, "recursive_doubling")
        assert table.pick("allreduce", 48, 8,
                          topology="cluster:9x10") is None

    def test_json_round_trip_keeps_sub_tables(self):
        table = SelectionTable(meta={"topology": "mesh:6x4"})
        table.record("allreduce", 48, 8, "recursive_doubling")
        table.record("allreduce", 48, 8, "hier/g2",
                     topology="cluster:2x24")
        loaded = SelectionTable.from_json(table.to_json())
        assert loaded.pick("allreduce", 48, 8,
                           topology="cluster:2x24") == "hier/g2"
        assert loaded.pick("allreduce", 48, 8) == "recursive_doubling"

    def test_merge_routes_foreign_topology_to_sub_table(self):
        base = SelectionTable(meta={"topology": "mesh:6x4"})
        base.record("allreduce", 48, 8, "recursive_doubling")
        cluster = SelectionTable(meta={"topology": "cluster:2x24"})
        cluster.record("allreduce", 48, 8, "hier/g2")
        base.merge(cluster)
        assert base.pick("allreduce", 48, 8) == "recursive_doubling"
        assert base.pick("allreduce", 48, 8,
                         topology="cluster:2x24") == "hier/g2"


class TestSimulatedWin:
    def test_hier_beats_flat_allreduce_on_cluster(self):
        """The acceptance property: on the multi-chip topology the
        two-group hierarchy crosses the slow board link once instead of
        every round, and the full simulator agrees with the cost model."""
        from repro.bench.runner import measure_collective

        config = SCCConfig(topology="cluster:2x24")
        hier = measure_collective("allreduce", "lightweight_balanced", 8,
                                  cores=48, config=config,
                                  algo="sched:hier/g2")
        flat = measure_collective("allreduce", "lightweight_balanced", 8,
                                  cores=48, config=config,
                                  algo="sched:recursive_doubling")
        assert hier < flat
