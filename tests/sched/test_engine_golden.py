"""Golden bit-identity: schedule engine == seed algorithms, in virtual time.

The schedule engine must not merely compute the right answer — for the
default repertoire it must charge *exactly* the virtual time of the
hand-written seed algorithms on every stack, so that swapping the
dispatch layer underneath the figures is invisible.  Two tiers:

* the full variant matrix at small rank counts (p = 2 and 5, covering
  the power-of-two and odd/general tree paths) on all five native
  stacks;
* every collective kind x stack at the paper-scale rank counts
  p = 47 and 48, rotating which algorithm variant is exercised so the
  whole repertoire is also covered at large p.

``measure_collective`` returns the rank-0 latency in microseconds from
a deterministic simulation; equality is exact float equality.
"""

import numpy as np
import pytest

from repro.bench.runner import measure_collective
from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine

STACKS = ("blocking", "ircce", "lightweight", "lightweight_balanced",
          "mpb")

#: (kind, algorithm, per-rank doubles) — sizes pick each algorithm's
#: natural regime (>= 64 doubles is "long" under the 512-byte rule).
VARIANTS = (
    ("allreduce", "rsag", 70),
    ("allreduce", "reduce_bcast", 20),
    ("allreduce", "recursive_doubling", 20),
    ("allreduce", "recursive_halving", 70),
    ("reduce", "binomial", 20),
    ("reduce", "rsg", 70),
    ("bcast", "binomial", 20),
    ("bcast", "scatter_allgather", 70),
    ("allgather", "ring", 20),
    ("allgather", "bruck", 20),
    ("reduce_scatter", "ring", 40),
    ("alltoall", "pairwise", 8),
)

VARIANTS_BY_KIND = {}
for kind, name, size in VARIANTS:
    VARIANTS_BY_KIND.setdefault(kind, []).append((name, size))


def assert_identical(kind, stack, size, cores, algo):
    native = measure_collective(kind, stack, size, cores=cores,
                                algo=algo)
    sched = measure_collective(kind, stack, size, cores=cores,
                               algo=f"sched:{algo}")
    assert sched == native, (
        f"{kind}:{algo} on {stack} p={cores} n={size}: "
        f"schedule {sched}us != native {native}us")


@pytest.mark.parametrize("stack", STACKS)
@pytest.mark.parametrize("cores", [2, 5])
@pytest.mark.parametrize("kind,algo,size", VARIANTS)
def test_variant_matrix_small_p(kind, algo, size, cores, stack):
    assert_identical(kind, stack, size, cores, algo)


@pytest.mark.parametrize("cores", [47, 48])
@pytest.mark.parametrize("stack", STACKS)
@pytest.mark.parametrize("kind", sorted(VARIANTS_BY_KIND))
def test_every_kind_and_stack_at_scale(kind, stack, cores):
    variants = VARIANTS_BY_KIND[kind]
    algo, size = variants[STACKS.index(stack) % len(variants)]
    assert_identical(kind, stack, size, cores, algo)


def scan_latencies(stack, cores, algo, size=20):
    machine = Machine(SCCConfig())
    comm = make_communicator(machine, stack)
    rng = np.random.default_rng(20120901)
    inputs = [rng.normal(size=size) for _ in range(cores)]

    def program(env):
        yield from comm.barrier(env)
        start = env.now
        result = yield from comm.scan(env, inputs[env.rank], algo=algo)
        return env.now - start, result

    run = machine.run_spmd(program, ranks=list(range(cores)))
    return ([v[0] for v in run.values], [v[1] for v in run.values])


@pytest.mark.parametrize("stack", STACKS)
@pytest.mark.parametrize("cores", [2, 5, 47, 48])
def test_scan_bit_identity(stack, cores):
    native_t, native_v = scan_latencies(stack, cores,
                                        "recursive_doubling")
    sched_t, sched_v = scan_latencies(stack, cores,
                                      "sched:recursive_doubling")
    assert sched_t == native_t
    for a, b in zip(native_v, sched_v):
        assert np.array_equal(a, b)


@pytest.mark.parametrize("kind,short,long", [
    ("allreduce", 20, 70),
    ("bcast", 20, 70),
    ("reduce", 20, 70),
])
def test_default_selection_unchanged(kind, short, long):
    # algo=None must keep the seed's 512-byte threshold rule: the
    # explicit native names reproduce it exactly on either side.
    from repro.sched.builders import DEFAULT_ALGOS

    short_name, long_name = DEFAULT_ALGOS[kind]
    for stack in ("blocking", "lightweight_balanced"):
        assert measure_collective(kind, stack, short, cores=5) == \
            measure_collective(kind, stack, short, cores=5,
                               algo=short_name)
        assert measure_collective(kind, stack, long, cores=5) == \
            measure_collective(kind, stack, long, cores=5,
                               algo=long_name)


def test_unknown_algorithms_rejected():
    with pytest.raises(KeyError, match="allgather"):
        measure_collective("allgather", "blocking", 8, cores=2,
                           algo="hypercube")
    with pytest.raises(KeyError, match="known"):
        measure_collective("allreduce", "blocking", 8, cores=2,
                           algo="sched:hypercube")
