"""Builder-level structure: registries, caching, baked orderings."""

import pytest

from repro.core.blocks import balanced_partition, standard_partition
from repro.sched.builders import (
    BUILDERS,
    DEFAULT_ALGOS,
    SCHEDULED_KINDS,
    all_schedules,
    build_schedule,
    builder_names,
)
from repro.sched.ir import Exchange, Rotate


def test_every_kind_has_builders_and_defaults():
    assert set(DEFAULT_ALGOS) == set(SCHEDULED_KINDS)
    for kind, (short, long) in DEFAULT_ALGOS.items():
        assert short in BUILDERS[kind]
        assert long in BUILDERS[kind]


def test_builder_names_sorted():
    for kind in SCHEDULED_KINDS:
        names = builder_names(kind)
        assert names == tuple(sorted(names))


def test_unknown_kind_and_name_list_known():
    with pytest.raises(KeyError, match="barrier"):
        build_schedule("barrier", "ring", 4, 8)
    with pytest.raises(KeyError, match="bruck"):
        build_schedule("allgather", "nope", 4, 8)


def test_build_is_cached():
    part = standard_partition(64, 4)
    a = build_schedule("allreduce", "rsag", 4, 64, part=part)
    b = build_schedule("allreduce", "rsag", 4, 64, part=part)
    assert a is b
    c = build_schedule("allreduce", "rsag", 4, 64,
                       part=balanced_partition(64, 4))
    assert c is not a or part.sizes == balanced_partition(64, 4).sizes


@pytest.mark.parametrize("p", [1, 2, 3, 4, 5, 48])
def test_plans_cover_every_rank(p):
    part = standard_partition(8, p)
    for sched in all_schedules(p, 8, part=part):
        assert len(sched.plans) == sched.p == p


def test_ring_send_first_is_odd_even():
    part = standard_partition(8, 4)
    sched = build_schedule("allgather", "ring", 4, 8, part=part)
    for me, plan in enumerate(sched.plans):
        for step in plan:
            if isinstance(step, Exchange) and step.send_peer is not None \
                    and step.recv_peer is not None:
                assert step.send_first == (me % 2 == 0)


def test_pairwise_send_first_is_rank_comparison():
    sched = build_schedule("alltoall", "pairwise", 4, 2)
    for me, plan in enumerate(sched.plans):
        for step in plan:
            if isinstance(step, Exchange):
                assert step.send_first == (me < step.send_peer)


def test_partitioned_meta_records_sizes():
    part = balanced_partition(70, 5)
    for kind, name in [("allreduce", "rsag"), ("reduce", "rsg"),
                       ("bcast", "scatter_allgather"),
                       ("reduce_scatter", "ring")]:
        sched = build_schedule(kind, name, 5, 70, part=part)
        assert tuple(sched.meta["part_sizes"]) == part.sizes


def test_bruck_always_rotates():
    # The seed's bruck_allgather pays the final rotation even at p=1;
    # bit-identity depends on the builder emitting it unconditionally.
    for p in (1, 2, 5):
        sched = build_schedule("allgather", "bruck", p, 4)
        assert any(isinstance(s, Rotate)
                   for plan in sched.plans for s in plan)


def test_root_changes_tree_shape():
    a = build_schedule("bcast", "binomial", 4, 8, root=0)
    b = build_schedule("bcast", "binomial", 4, 8, root=2)
    assert a.meta["root"] == 0 and b.meta["root"] == 2
    assert a.plans != b.plans
