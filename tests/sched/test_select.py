"""Cost model, selection table, and the tuned stack."""

import json

import numpy as np
import pytest

from repro.core.blocks import standard_partition
from repro.core.registry import (
    STACKS,
    available_stacks,
    make_communicator,
    register_stack,
)
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.hw.timing import LatencyModel
from repro.hw.topology import default_topology
from repro.sched.builders import SCHEDULED_KINDS, build_schedule, builder_names
from repro.sched.cost import estimate_schedule_cost
from repro.sched.select import (
    DEFAULT_SIZES,
    SelectionTable,
    TunedCommunicator,
    build_selection_table,
    default_table_path,
    known_algorithm,
    select_algo,
)


@pytest.fixture(scope="module")
def model():
    cfg = SCCConfig()
    topo = default_topology(cfg.mesh_cols, cfg.mesh_rows,
                            cfg.cores_per_tile)
    return LatencyModel(cfg, topo)


class TestCostModel:
    def test_positive_and_deterministic(self, model):
        part = standard_partition(64, 8)
        sched = build_schedule("allreduce", "rsag", 8, 64, part=part)
        a = estimate_schedule_cost(sched, model)
        assert a > 0
        assert estimate_schedule_cost(sched, model) == a

    def test_cost_grows_with_size(self, model):
        costs = []
        for n in (8, 64, 512):
            part = standard_partition(n, 8)
            sched = build_schedule("allreduce", "rsag", 8, n, part=part)
            costs.append(estimate_schedule_cost(sched, model))
        assert costs == sorted(costs) and costs[0] < costs[-1]

    def test_blocking_never_cheaper(self, model):
        part = standard_partition(64, 8)
        sched = build_schedule("allgather", "ring", 8, 64, part=part)
        nb = estimate_schedule_cost(sched, model, blocking=False)
        b = estimate_schedule_cost(sched, model, blocking=True)
        assert b >= nb


class TestSelectAlgo:
    def test_returns_known_algorithm(self, model):
        for kind in SCHEDULED_KINDS:
            name = select_algo(kind, 8, 64, model)
            assert known_algorithm(kind, name)

    def test_trees_short_pipelines_long(self, model):
        assert select_algo("allreduce", 8, 2, model) in (
            "recursive_doubling", "reduce_bcast")
        assert select_algo("allreduce", 8, 1024, model) in (
            "rsag", "recursive_halving")
        assert select_algo("bcast", 8, 2, model) == "binomial"
        # With the synthesized repertoire in the running, a pipelined
        # chain wins the long-vector bcast point; the hand-only search
        # still picks the paper's two-phase tree.
        assert select_algo("bcast", 8, 1024, model) == \
            "synth/pipeline_c32"
        assert select_algo("bcast", 8, 1024, model, synth=False) == \
            "scatter_allgather"

    def test_known_algorithm_grammar(self):
        assert known_algorithm("allreduce", "rsag")
        assert known_algorithm("allreduce", "synth/rsag+c4")
        assert known_algorithm("scan", "synth/pipeline_c8")
        assert not known_algorithm("allreduce", "mpich")
        assert not known_algorithm("allreduce", "synth/bogus+c4")
        assert not known_algorithm("allgather", "synth/pipeline_c8")


class TestSelectionTable:
    def make(self):
        table = SelectionTable()
        table.record("allreduce", 8, 64, "rsag")
        table.record("allreduce", 8, 4, "recursive_doubling")
        table.record("allreduce", 48, 64, "recursive_halving")
        return table

    def test_exact_and_nearest_pick(self):
        table = self.make()
        assert table.pick("allreduce", 8, 64) == "rsag"
        # nearest n at the same p
        assert table.pick("allreduce", 8, 70) == "rsag"
        assert table.pick("allreduce", 8, 5) == "recursive_doubling"
        # nearest p dominates n distance
        assert table.pick("allreduce", 47, 1) == "recursive_halving"
        assert table.pick("bcast", 8, 64) is None

    def test_json_round_trip(self, tmp_path):
        table = self.make()
        path = table.save(tmp_path / "table.json")
        loaded = SelectionTable.load(path)
        assert loaded.entries == table.entries

    def test_bad_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            SelectionTable.from_json(json.dumps({"schema": 999}))

    def test_build_covers_grid(self):
        table = build_selection_table(["bcast"], ps=(2, 8),
                                      sizes=(4, 600))
        assert set(table.entries["bcast"]) == {
            (2, 4), (2, 600), (8, 4), (8, 600)}
        for algo in table.entries["bcast"].values():
            assert known_algorithm("bcast", algo)

    def test_build_hand_only(self):
        table = build_selection_table(["bcast"], ps=(8,), sizes=(600,),
                                      synth=False)
        assert table.meta["synth"] is False
        for algo in table.entries["bcast"].values():
            assert algo in builder_names("bcast")

    def test_merge_overlays_entries_and_meta(self):
        base = self.make()
        base.meta = {"ps": [8, 48], "sizes": [4, 64], "synth": False}
        part = SelectionTable(meta={"ps": [4], "sizes": [64],
                                    "synth": True})
        part.record("allreduce", 8, 64, "synth/rsag+c2")
        part.record("bcast", 8, 64, "binomial")
        base.merge(part)
        # re-tuned point replaced, untouched points survive
        assert base.pick("allreduce", 8, 64) == "synth/rsag+c2"
        assert base.pick("allreduce", 8, 4) == "recursive_doubling"
        assert base.pick("allreduce", 48, 64) == "recursive_halving"
        assert base.pick("bcast", 8, 64) == "binomial"
        assert base.meta["ps"] == [4, 8, 48]
        assert base.meta["sizes"] == [4, 64]
        assert base.meta["synth"] is True

    def test_committed_table_loads(self):
        # benchmarks/results/selection_table.json is checked in;
        # regenerate with `python -m repro tune` after model changes.
        table = SelectionTable.load(default_table_path())
        assert set(table.kinds()) == set(SCHEDULED_KINDS)
        for size in DEFAULT_SIZES:
            assert known_algorithm("allreduce",
                                   table.pick("allreduce", 48, size))

    def test_committed_table_has_synth_winners(self):
        # The acceptance artifact of the synthesis PR: at least one
        # synthesized schedule out-prices every hand algorithm somewhere
        # in the committed grid.
        table = SelectionTable.load(default_table_path())
        assert table.meta.get("synth") is True
        synth_picks = {algo
                       for points in table.entries.values()
                       for algo in points.values()
                       if algo.startswith("synth/")}
        assert synth_picks, "no synthesized winner in the committed table"


class TestRegistry:
    def test_paper_tuples_unchanged(self):
        assert STACKS == ("rckmpi", "blocking", "ircce", "lightweight",
                          "lightweight_balanced", "mpb")

    def test_available_includes_tuned(self):
        stacks = available_stacks()
        assert stacks[:len(STACKS)] == STACKS
        assert "tuned" in stacks

    def test_unknown_stack_lists_known_sorted(self):
        with pytest.raises(KeyError) as err:
            make_communicator(Machine(SCCConfig()), "bogus")
        listed = str(err.value).split("known: ")[1].rstrip("\"'").split(
            ", ")
        assert listed == sorted(listed)
        assert "tuned" in listed

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_stack("blocking", lambda machine: None)


class TestTunedStack:
    def make(self, **kwargs):
        machine = Machine(SCCConfig())
        return machine, TunedCommunicator(machine, **kwargs)

    def test_registered_composition(self):
        machine = Machine(SCCConfig())
        comm = make_communicator(machine, "tuned")
        assert isinstance(comm, TunedCommunicator)
        assert comm.name == "tuned"
        assert not comm.blocking

    def test_pick_uses_table(self):
        table = SelectionTable()
        table.record("allreduce", 4, 16, "recursive_doubling")
        _, comm = self.make(table=table)
        assert comm.pick_algo("allreduce", 4, 16) == \
            "sched:recursive_doubling"

    def test_pick_accepts_synth_table_entry(self):
        table = SelectionTable()
        table.record("scan", 4, 64, "synth/pipeline_c4")
        _, comm = self.make(table=table)
        assert comm.pick_algo("scan", 4, 64) == "sched:synth/pipeline_c4"

    def test_pick_falls_back_to_cost_model(self, tmp_path):
        _, comm = self.make(table_path=tmp_path / "missing.json")
        name = comm.pick_algo("allreduce", 4, 16)
        assert name.startswith("sched:")
        assert known_algorithm("allreduce", name.removeprefix("sched:"))

    def test_collectives_correct(self):
        machine, comm = self.make()
        p, n = 5, 70
        rng = np.random.default_rng(7)
        inputs = [np.round(rng.normal(size=n) * 8) for _ in range(p)]

        def program(env):
            total = yield from comm.allreduce(env, inputs[env.rank])
            rows = yield from comm.allgather(env, inputs[env.rank])
            prefix = yield from comm.scan(env, inputs[env.rank])
            return total, rows, prefix

        run = machine.run_spmd(program, ranks=list(range(p)))
        expected_sum = np.sum(inputs, axis=0)
        expected_rows = np.stack(inputs)
        for rank, (total, rows, prefix) in enumerate(run.values):
            assert np.array_equal(total, expected_sum)
            assert np.array_equal(rows, expected_rows)
            assert np.array_equal(prefix,
                                  np.sum(inputs[:rank + 1], axis=0))

    def test_explicit_algo_passes_through(self):
        machine, comm = self.make()
        n = 16
        inputs = [np.full(n, float(r)) for r in range(4)]

        def program(env):
            return (yield from comm.allreduce(env, inputs[env.rank],
                                              algo="recursive_doubling"))

        run = machine.run_spmd(program, ranks=list(range(4)))
        assert np.array_equal(run.values[0], np.sum(inputs, axis=0))
