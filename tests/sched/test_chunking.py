"""Chunked transforms and pipelined chain builders (repro.sched.chunking)."""

import pytest

from repro.analysis.schedverify import assert_valid_schedule
from repro.core.blocks import balanced_partition
from repro.sched.builders import build_schedule, builder_names
from repro.sched.chunking import (
    PIPELINE_BUILDERS,
    build_pipeline_bcast,
    chunk_bounds,
    chunk_schedule,
)
from repro.sched.interp import check_schedule_numeric
from repro.sched.ir import CopyBlock, Exchange, Recv, Rotate, Send


class TestChunkBounds:
    def test_even_split(self):
        assert chunk_bounds(0, 8, 2) == [(0, 4), (4, 8)]

    def test_remainder_goes_to_leading_chunks(self):
        assert chunk_bounds(0, 7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_offset_preserved(self):
        assert chunk_bounds(10, 14, 2) == [(10, 12), (12, 14)]

    def test_clamps_to_element_count(self):
        assert chunk_bounds(0, 2, 8) == [(0, 1), (1, 2)]

    def test_single_chunk(self):
        assert chunk_bounds(3, 9, 1) == [(3, 9)]


class TestChunkTransform:
    def base(self, kind="allgather", name="ring", p=4, n=8):
        part = balanced_partition(n, p)
        return build_schedule(kind, name, p, n, part=part)

    def test_identity_below_two_chunks(self):
        sched = self.base()
        assert chunk_schedule(sched, 1) is sched
        assert chunk_schedule(sched, 0) is sched

    def test_naming_and_meta(self):
        chunked = chunk_schedule(self.base(), 2)
        assert chunked.name == "ring+c2"
        assert chunked.meta["chunks"] == 2
        assert chunked.meta["base"] == "ring"

    def test_transfers_split_rounds_preserved(self):
        sched = self.base()
        chunked = chunk_schedule(sched, 2)
        for plan, cplan in zip(sched.plans, chunked.plans):
            base_x = [s for s in plan if isinstance(s, Exchange)]
            chunk_x = [s for s in cplan if isinstance(s, Exchange)]
            assert len(chunk_x) == 2 * len(base_x)
            assert ([s.round for s in base_x for _ in range(2)]
                    == [s.round for s in chunk_x])
            # both sides of every sub-exchange carry matching lengths
            for s in chunk_x:
                assert (s.send.hi - s.send.lo) == (s.recv.hi - s.recv.lo)

    def test_local_steps_kept_whole(self):
        sched = self.base("allgather", "bruck")
        chunked = chunk_schedule(sched, 4)
        for plan, cplan in zip(sched.plans, chunked.plans):
            local = [s for s in plan if isinstance(s, (CopyBlock, Rotate))]
            clocal = [s for s in cplan
                      if isinstance(s, (CopyBlock, Rotate))]
            assert local == clocal

    @pytest.mark.parametrize("kind", sorted(
        {"allreduce", "reduce", "bcast", "allgather", "reduce_scatter",
         "alltoall", "scan"}))
    def test_every_builder_chunks_clean(self, kind):
        p, n = 5, 70
        part = balanced_partition(n, p)
        for name in builder_names(kind):
            sched = build_schedule(kind, name, p, n, part=part)
            for c in (2, 4):
                chunked = chunk_schedule(sched, c)
                assert_valid_schedule(chunked)


class TestPipelineBuilders:
    def test_registry_covers_chain_kinds(self):
        assert set(PIPELINE_BUILDERS) == {"bcast", "reduce", "scan",
                                          "allreduce"}

    def test_interior_rank_shape(self):
        part = balanced_partition(8, 4)
        sched = build_pipeline_bcast(4, 8, part, 0, 2)
        plan = sched.plans[1]  # interior rank: prime, steady-state, drain
        assert isinstance(plan[0], Recv)
        assert isinstance(plan[-1], Send)
        assert any(isinstance(s, Exchange) for s in plan)

    def test_root_only_sends(self):
        part = balanced_partition(8, 4)
        sched = build_pipeline_bcast(4, 8, part, 0, 2)
        # beyond the uncharged in->work staging copy, the root only sends
        assert all(isinstance(s, (Send, CopyBlock))
                   for s in sched.plans[0])
        assert sum(isinstance(s, Send) for s in sched.plans[0]) == 2

    @pytest.mark.parametrize("kind", sorted(PIPELINE_BUILDERS))
    @pytest.mark.parametrize("c", [1, 2, 4])
    def test_verified_and_numerically_exact(self, kind, c):
        p, n = 5, 16
        part = balanced_partition(n, p)
        sched = PIPELINE_BUILDERS[kind](p, n, part, 0, c)
        assert sched.name == f"pipeline_c{c}"
        assert_valid_schedule(sched)
        check_schedule_numeric(sched)

    def test_nontrivial_root(self):
        part = balanced_partition(12, 4)
        for kind in ("bcast", "reduce"):
            sched = PIPELINE_BUILDERS[kind](4, 12, part, 2, 3)
            assert sched.meta["root"] == 2
            assert_valid_schedule(sched)
            check_schedule_numeric(sched)

    def test_chunk_count_clamps_to_payload(self):
        part = balanced_partition(2, 4)
        sched = PIPELINE_BUILDERS["bcast"](4, 2, part, 0, 8)
        assert_valid_schedule(sched)
        check_schedule_numeric(sched)


class TestRoundStructure:
    def test_pipeline_rounds_grow_with_chunks(self):
        """More chunks -> more (cheaper) rounds: the k in k-synchronous."""
        part = balanced_partition(32, 4)

        def rounds(c):
            sched = PIPELINE_BUILDERS["bcast"](4, 32, part, 0, c)
            return len({s.round for plan in sched.plans for s in plan
                        if s.round is not None})

        assert rounds(1) < rounds(2) < rounds(4)

    def test_transform_keeps_round_count(self):
        part = balanced_partition(8, 4)
        sched = build_schedule("allgather", "ring", 4, 8, part=part)
        chunked = chunk_schedule(sched, 4)

        def rounds(s):
            return {x.round for plan in s.plans for x in plan
                    if x.round is not None}

        assert rounds(chunked) == rounds(sched)
