"""IR-level invariants: step validation and schedule structure."""

import pytest

from repro.sched.ir import (
    COMM_STEPS,
    CopyBlock,
    Exchange,
    Interval,
    Recv,
    ReduceRecv,
    Rotate,
    Schedule,
    Send,
)


def iv(lo, hi, buf="work"):
    return Interval(buf, lo, hi)


class TestInterval:
    def test_nels_and_str(self):
        assert iv(2, 6).nels == 4
        assert str(iv(2, 6)) == "work[2:6]"

    def test_empty_interval_is_legal(self):
        assert iv(3, 3).nels == 0

    @pytest.mark.parametrize("lo,hi", [(-1, 3), (5, 2)])
    def test_bad_bounds_rejected(self, lo, hi):
        with pytest.raises(ValueError):
            iv(lo, hi)


class TestExchange:
    def test_one_sided_send(self):
        step = Exchange(send_peer=1, send=iv(0, 4),
                        recv_peer=None, recv=None)
        assert step.recv is None

    def test_sides_must_pair(self):
        with pytest.raises(ValueError):
            Exchange(send_peer=1, send=None, recv_peer=None, recv=None)
        with pytest.raises(ValueError):
            Exchange(send_peer=None, send=iv(0, 4),
                     recv_peer=None, recv=None)

    def test_neither_side_rejected(self):
        with pytest.raises(ValueError):
            Exchange(send_peer=None, send=None,
                     recv_peer=None, recv=None)

    def test_reduce_needs_receive(self):
        with pytest.raises(ValueError):
            Exchange(send_peer=1, send=iv(0, 4),
                     recv_peer=None, recv=None, reduce=True)


class TestCopyBlock:
    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CopyBlock(iv(0, 4, "in"), iv(0, 3))

    def test_uncharged_by_default(self):
        assert not CopyBlock(iv(0, 4, "in"), iv(0, 4)).charged


class TestSchedule:
    def make(self, p=2):
        plans = tuple((Send(1 - r, iv(0, 4)),) for r in range(p))
        return Schedule("bcast", "test", p, 4,
                        {"in": 4, "work": 4}, plans)

    def test_label_and_total_steps(self):
        sched = self.make()
        assert sched.label == "bcast:test"
        assert sched.total_steps() == 2

    def test_plan_count_must_match_p(self):
        with pytest.raises(ValueError):
            Schedule("bcast", "test", 3, 4, {"in": 4, "work": 4},
                     ((), ()))

    def test_steps_are_frozen(self):
        step = Send(0, iv(0, 4))
        with pytest.raises(AttributeError):
            step.peer = 1

    def test_comm_steps_catalogue(self):
        assert Send in COMM_STEPS
        assert Recv in COMM_STEPS
        assert ReduceRecv in COMM_STEPS
        assert Exchange in COMM_STEPS
        assert CopyBlock not in COMM_STEPS
        assert Rotate not in COMM_STEPS
