"""The documentation stays healthy: links resolve, examples run.

Wires ``tools/check_docs.py`` into the test suite.  Set
``REPRO_SKIP_EXAMPLE_SMOKE=1`` to skip the (seconds-scale) example runs
when iterating on unrelated code.
"""

import os
import pathlib
import sys

import pytest

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import check_docs  # noqa: E402


class TestLinkChecker:
    def test_all_repo_links_resolve(self):
        assert check_docs.check_links() == []

    def test_covers_the_documentation_set(self):
        names = {os.path.basename(p) for p in check_docs.doc_files()}
        assert {"README.md", "api.md", "observability.md",
                "collectives.md"} <= names

    def test_detects_broken_links(self, tmp_path, monkeypatch):
        docs = tmp_path / "docs"
        docs.mkdir()
        (tmp_path / "good.md").write_text("[ok](docs/bad.md)\n")
        (docs / "bad.md").write_text(
            "[yes](../good.md) [no](missing.md#frag)\n")
        monkeypatch.setattr(check_docs, "REPO_ROOT", str(tmp_path))
        failures = check_docs.check_links()
        assert len(failures) == 1
        assert "docs/bad.md:1" in failures[0]
        assert "missing.md" in failures[0]

    def test_external_and_anchor_links_skipped(self, tmp_path, monkeypatch):
        docs = tmp_path / "docs"
        docs.mkdir()
        (tmp_path / "r.md").write_text(
            "[a](https://example.org/x) [b](#section) [c](mailto:x@y.z)\n")
        monkeypatch.setattr(check_docs, "REPO_ROOT", str(tmp_path))
        assert check_docs.check_links() == []

    def test_cli_entrypoint(self, capsys):
        assert check_docs.main(["--links"]) == 0


class TestCliCoverage:
    def test_all_subcommands_documented(self):
        assert check_docs.check_cli() == []

    def test_introspects_the_real_parser(self):
        names = check_docs.cli_subcommands()
        assert names == sorted(names)
        assert {"fig9", "sweep", "tune", "lint"} <= set(names)

    def test_detects_undocumented_subcommand(self, tmp_path, monkeypatch):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "api.md").write_text("python -m repro sweep\n")
        monkeypatch.setattr(check_docs, "REPO_ROOT", str(tmp_path))
        failures = check_docs.check_cli()
        assert failures
        assert any("'tune'" in f for f in failures)
        assert not any("'sweep'" in f for f in failures)

    def test_cli_entrypoint(self, capsys):
        assert check_docs.main(["--cli"]) == 0


class TestCliFlagCoverage:
    def test_all_flags_documented(self):
        assert check_docs.check_cli_flags() == []

    def test_introspects_the_real_parser(self):
        flags = check_docs.cli_flags()
        assert "--engine" in flags["sweep"]
        assert "--engine" in flags["bench"]
        assert "--jobs" in flags["bench"]
        assert all("--help" not in longs for longs in flags.values())

    def test_detects_undocumented_flag(self, tmp_path, monkeypatch):
        docs = tmp_path / "docs"
        docs.mkdir()
        # A reference that names every flag except --engine.
        documented = {
            flag
            for longs in check_docs.cli_flags().values()
            for flag in longs if flag != "--engine"
        }
        (docs / "api.md").write_text(" ".join(sorted(documented)) + "\n")
        monkeypatch.setattr(check_docs, "REPO_ROOT", str(tmp_path))
        failures = check_docs.check_cli_flags()
        assert failures
        assert all("'--engine'" in f for f in failures)

    def test_cli_entrypoint(self, capsys):
        assert check_docs.main(["--cli-flags"]) == 0


@pytest.mark.skipif(os.environ.get("REPRO_SKIP_EXAMPLE_SMOKE") == "1",
                    reason="example smoke runs disabled by env")
class TestExamplesSmoke:
    def test_every_example_runs_with_smoke(self):
        scripts = check_docs.example_scripts()
        assert len(scripts) >= 7
        assert check_docs.check_examples() == []
