"""Unit tests for the RCKMPI packetized channel."""

import numpy as np
import pytest

from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.rckmpi.channel import RCKMPIP2P, WINDOW_PACKETS, reset_channels
from repro.rckmpi.api import RCKMPICommunicator


def machine(cores=4):
    return Machine(SCCConfig(mesh_cols=cores // 2, mesh_rows=1))


class TestChannel:
    def test_roundtrip(self):
        m = machine()
        layer = RCKMPIP2P(m)
        payload = np.linspace(0, 9, 777)  # multiple packets, odd tail

        def program(env):
            if env.rank == 0:
                req = yield from layer.isend(env, payload, 1)
                yield from layer.wait(env, req)
            elif env.rank == 1:
                out = np.empty(777)
                req = yield from layer.irecv(env, out, 0)
                yield from layer.wait(env, req)
                return out
            else:
                yield from env.compute(0)

        result = m.run_spmd(program)
        assert np.array_equal(result.values[1], payload)

    def test_eager_send_completes_without_receiver(self):
        """MPICH-style eager protocol: a small send does not rendezvous."""
        m = machine()
        layer = RCKMPIP2P(m)
        done_at = {}

        def program(env):
            if env.rank == 0:
                req = yield from layer.isend(env, np.zeros(16), 1)
                yield from layer.wait(env, req)
                done_at["send"] = env.now
            elif env.rank == 1:
                yield from env.compute(10_000_000)  # receiver very late
                out = np.empty(16)
                req = yield from layer.irecv(env, out, 0)
                yield from layer.wait(env, req)
                done_at["recv"] = env.now
            else:
                yield from env.compute(0)

        m.run_spmd(program)
        # The sender finished long before the receiver even posted.
        assert done_at["send"] < m.latency.core_cycles(10_000_000)

    def test_window_backpressure(self):
        """A long message stalls after WINDOW_PACKETS packets until the
        receiver drains the channel."""
        m = machine()
        layer = RCKMPIP2P(m)
        packet = m.config.rckmpi_packet_bytes
        nbytes = packet * (WINDOW_PACKETS + 3)
        done_at = {}

        def program(env):
            if env.rank == 0:
                req = yield from layer.isend(
                    env, np.zeros(nbytes, dtype=np.uint8), 1)
                yield from layer.wait(env, req)
                done_at["send"] = env.now
            elif env.rank == 1:
                yield from env.compute(5_000_000)
                out = np.empty(nbytes, dtype=np.uint8)
                req = yield from layer.irecv(env, out, 0)
                yield from layer.wait(env, req)
            else:
                yield from env.compute(0)

        m.run_spmd(program)
        # The sender could NOT finish before the receiver started.
        assert done_at["send"] > m.latency.core_cycles(5_000_000)

    def test_unordered_ring_does_not_deadlock(self):
        """Eager buffering removes the odd-even requirement entirely."""
        m = machine(4)
        comm = RCKMPICommunicator(m)

        def program(env):
            right = (env.rank + 1) % env.size
            left = (env.rank - 1) % env.size
            out = np.empty(32)
            sreq = yield from comm.p2p.isend(env, np.full(32, 1.0), right)
            rreq = yield from comm.p2p.irecv(env, out, left)
            yield from comm.p2p.wait_all(env, [sreq, rreq])
            return out[0]

        result = m.run_spmd(program)
        assert result.values == [1.0] * 4

    def test_zero_byte_message(self):
        m = machine()
        layer = RCKMPIP2P(m)

        def program(env):
            if env.rank == 0:
                req = yield from layer.isend(env, np.empty(0), 1)
                yield from layer.wait(env, req)
            elif env.rank == 1:
                out = np.empty(0)
                req = yield from layer.irecv(env, out, 0)
                yield from layer.wait(env, req)
                return True
            else:
                yield from env.compute(0)

        result = m.run_spmd(program)
        assert result.values[1] is True

    def test_reset_channels(self):
        m = machine()
        layer = RCKMPIP2P(m)
        layer._channel(0, 1)
        assert "rckmpi.chan" in m.services
        reset_channels(m)
        assert "rckmpi.chan" not in m.services


class TestRCKMPICommunicator:
    def test_uses_balanced_partition(self):
        m = machine()
        comm = RCKMPICommunicator(m)
        part = comm.partition(10, 4)
        assert part.sizes == (3, 3, 2, 2)

    def test_allreduce_correct_at_48_cores(self):
        m = Machine(SCCConfig())
        comm = RCKMPICommunicator(m)
        rng = np.random.default_rng(0)
        inputs = [rng.normal(size=100) for _ in range(48)]

        def program(env):
            return (yield from comm.allreduce(env, inputs[env.rank]))

        result = m.run_spmd(program)
        np.testing.assert_allclose(result.values[17],
                                   np.sum(inputs, axis=0), rtol=1e-12)

    def test_smooth_scaling_no_line_spikes(self):
        """RCKMPI's byte-granular channel: no period-4 spike (Fig. 9)."""
        from repro.bench.runner import measure_collective
        lat = {n: measure_collective("allreduce", "rckmpi", n, cores=8,
                                     config=SCCConfig(mesh_cols=4,
                                                      mesh_rows=1))
               for n in (600, 601, 602, 603, 604)}
        aligned = 0.5 * (lat[600] + lat[604])
        for n in (601, 602, 603):
            assert lat[n] / aligned < 1.02, f"spike at {n}"
