"""Span reassembly: nesting, attribution, exclusive-time arithmetic."""

import numpy as np
import pytest

from repro.core import make_communicator
from repro.hw import Machine, SCCConfig
from repro.obs.spans import (
    COLLECTIVE_SPANS,
    collective_spans,
    extract_spans,
    phase_times,
    round_times,
    span,
)
from repro.sim.trace import TraceRecord, Tracer


def rec(t, actor, tag, detail=None):
    return TraceRecord(t, actor, tag, detail)


class TestExtractSpans:
    def test_flat_span(self):
        spans = extract_spans([rec(10, "core0", "copy.begin"),
                               rec(30, "core0", "copy.end")])
        (sp,) = spans
        assert (sp.actor, sp.name) == ("core0", "copy")
        assert (sp.start_ps, sp.end_ps, sp.duration_ps) == (10, 30, 20)
        assert sp.depth == 0 and sp.parent is None and sp.children == []

    def test_nesting_parent_child(self):
        spans = extract_spans([
            rec(0, "core0", "round.begin", 0),
            rec(5, "core0", "copy.begin"),
            rec(15, "core0", "copy.end"),
            rec(20, "core0", "reduce.begin"),
            rec(30, "core0", "reduce.end"),
            rec(40, "core0", "round.end", 0),
        ])
        by_name = {s.name: s for s in spans}
        outer = by_name["round"]
        assert by_name["copy"].parent is outer
        assert by_name["reduce"].parent is outer
        assert by_name["copy"].depth == 1
        assert [c.name for c in outer.children] == ["copy", "reduce"]
        # Exclusive = 40 total - 10 copy - 10 reduce.
        assert outer.exclusive_ps() == 20

    def test_actors_do_not_interleave(self):
        spans = extract_spans([
            rec(0, "core0", "send.begin"),
            rec(1, "core1", "recv.begin"),
            rec(2, "core0", "send.end"),
            rec(3, "core1", "recv.end"),
        ])
        assert {(s.actor, s.name, s.depth) for s in spans} == {
            ("core0", "send", 0), ("core1", "recv", 0)}

    def test_unclosed_span_dropped(self):
        spans = extract_spans([rec(0, "core0", "round.begin"),
                               rec(5, "core0", "copy.begin"),
                               rec(9, "core0", "copy.end")])
        assert [s.name for s in spans] == ["copy"]

    def test_unmatched_end_ignored(self):
        assert extract_spans([rec(5, "core0", "copy.end")]) == []

    def test_point_records_ignored(self):
        assert extract_spans([rec(5, "core0", "flag.set"),
                              rec(6, "core0", "deadlock")]) == []

    def test_sorted_by_start_then_outermost_first(self):
        spans = extract_spans([
            rec(0, "core0", "round.begin"),
            rec(0, "core0", "copy.begin"),
            rec(5, "core0", "copy.end"),
            rec(9, "core0", "round.end"),
        ])
        assert [s.name for s in spans] == ["round", "copy"]


class TestAttribution:
    RECORDS = [
        rec(0, "core0", "round.begin", 0),
        rec(2, "core0", "copy.begin"),
        rec(6, "core0", "copy.end"),
        rec(10, "core0", "round.end", 0),
        rec(10, "core0", "round.begin", 1),
        rec(11, "core0", "copy.begin"),
        rec(17, "core0", "copy.end"),
        rec(20, "core0", "round.end", 1),
        rec(0, "core1", "round.begin", 0),
        rec(8, "core1", "round.end", 0),
    ]

    def test_phase_times_exclusive_and_additive(self):
        spans = extract_spans(self.RECORDS)
        times = phase_times(spans)
        assert times["copy"] == 4 + 6
        # round exclusive: (10-4) + (10-6) on core0, 8 on core1.
        assert times["round"] == 6 + 4 + 8
        # Additivity: phases sum to total top-level spanned time.
        top = sum(s.duration_ps for s in spans if s.depth == 0)
        assert sum(times.values()) == top

    def test_phase_times_by_actor(self):
        times = phase_times(extract_spans(self.RECORDS), by_actor=True)
        assert times["core1"] == {"round": 8}
        assert times["core0"]["copy"] == 10

    def test_round_times_keyed_by_detail(self):
        rounds = round_times(extract_spans(self.RECORDS))
        assert rounds[0] == {"core0": 10, "core1": 8}
        assert rounds[1] == {"core0": 10}


class TestSpanContextManager:
    def test_disabled_tracer_is_shared_noop(self):
        class Env:
            class sim:
                tracer = Tracer(enabled=False)
                san = None
        a, b = span(Env, "copy"), span(Env, "reduce", 7)
        assert a is b  # one shared object, no allocation per call site
        with a:
            pass
        assert Env.sim.tracer.records == []

    def test_enabled_tracer_emits_pair(self):
        tracer = Tracer(enabled=True)

        class Env:
            now = 42
            core_id = 3

            class sim:
                san = None
        Env.sim.tracer = tracer
        with span(Env, "copy", detail=128):
            Env.now = 99
        tags = [(r.time_ps, r.actor, r.tag, r.detail)
                for r in tracer.records]
        assert tags == [(42, "core3", "copy.begin", 128),
                        (99, "core3", "copy.end", 128)]


class TestInstrumentedCollectives:
    """The communication layers really emit the documented span tree."""

    @pytest.fixture(scope="class")
    def traced(self):
        tracer = Tracer(enabled=True)
        machine = Machine(SCCConfig(), tracer=tracer)
        comm = make_communicator(machine, "mpb")
        rng = np.random.default_rng(1)
        inputs = [rng.normal(size=64) for _ in range(8)]

        def program(env):
            out = yield from comm.allreduce(env, inputs[env.rank])
            return out

        result = machine.run_spmd(program, ranks=list(range(8)))
        assert np.allclose(result.values[0], np.sum(inputs, axis=0))
        return extract_spans(tracer.records)

    def test_every_core_has_one_collective_span(self, traced):
        tops = collective_spans(traced)
        assert sorted(s.actor for s in tops) == [f"core{i}"
                                                 for i in range(8)]
        assert all(s.name == "allreduce" for s in tops)

    def test_rounds_nest_under_collective(self, traced):
        rounds = [s for s in traced if s.name == "round"]
        assert rounds
        assert all(s.parent is not None
                   and s.parent.name in COLLECTIVE_SPANS + ("round",)
                   for s in rounds)

    def test_phases_nest_under_rounds(self, traced):
        phases = [s for s in traced if s.name in ("sync", "reduce")
                  and s.depth > 0]
        assert phases
        assert all(s.parent.name in ("round", "allreduce")
                   for s in phases)

    def test_spans_cover_positive_time_within_parent(self, traced):
        for s in traced:
            assert s.duration_ps >= 0
            if s.parent is not None:
                assert s.parent.start_ps <= s.start_ps
                assert s.end_ps <= s.parent.end_ps
                assert s.parent.exclusive_ps() >= 0
