"""Exporters: Chrome trace_event schema validity and flat metrics."""

import csv
import io
import json

import numpy as np
import pytest

from repro.bench.stats import comm_stats
from repro.core import make_communicator
from repro.hw import Machine, SCCConfig
from repro.obs.export import (
    WAIT_STATES,
    account_metrics,
    chrome_trace_events,
    link_traffic,
    mpb_counters,
    run_metrics,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.sim.trace import Tracer


@pytest.fixture(scope="module")
def traced_run():
    """One traced 8-core Allreduce with traffic counters enabled."""
    tracer = Tracer(enabled=True)
    machine = Machine(SCCConfig(), tracer=tracer)
    comm_stats(machine)
    # lightweight routes through the p2p layer, so the traffic counters
    # see every message (mpb-direct bypasses p2p for the Allreduce body).
    comm = make_communicator(machine, "lightweight")
    rng = np.random.default_rng(2)
    inputs = [rng.normal(size=64) for _ in range(8)]

    def program(env):
        yield from comm.allreduce(env, inputs[env.rank])

    result = machine.run_spmd(program, ranks=list(range(8)))
    return machine, result, tracer.records


class TestChromeTrace:
    def test_events_are_json_serializable(self, traced_run):
        _, _, records = traced_run
        events = chrome_trace_events(records)
        json.dumps(events)  # must not raise

    def test_event_schema(self, traced_run):
        _, _, records = traced_run
        for ev in chrome_trace_events(records):
            assert ev["ph"] in ("X", "M", "i")
            assert isinstance(ev["name"], str)
            assert isinstance(ev["pid"], int)
            assert isinstance(ev["tid"], int)
            if ev["ph"] == "X":
                assert isinstance(ev["ts"], (int, float))
                assert isinstance(ev["dur"], (int, float))
                assert ev["dur"] >= 0
            if ev["ph"] == "i":
                assert ev["s"] == "t"

    def test_thread_names_cover_all_cores(self, traced_run):
        _, _, records = traced_run
        events = chrome_trace_events(records)
        names = {ev["args"]["name"] for ev in events if ev["ph"] == "M"}
        assert names == {f"core{i}" for i in range(8)}

    def test_span_records_become_duration_events(self, traced_run):
        _, _, records = traced_run
        events = chrome_trace_events(records)
        assert not any(ev["name"].endswith(".begin")
                       or ev["name"].endswith(".end") for ev in events)
        begins = sum(1 for r in records if r.tag.endswith(".begin"))
        ends = sum(1 for r in records if r.tag.endswith(".end"))
        xs = sum(1 for ev in events if ev["ph"] == "X")
        assert xs == min(begins, ends)

    def test_write_round_trips(self, tmp_path, traced_run):
        _, _, records = traced_run
        path = tmp_path / "run.trace.json"
        write_chrome_trace(str(path), records)
        loaded = json.loads(path.read_text())
        assert isinstance(loaded, list) and loaded
        assert {"name", "ph", "pid", "tid"} <= set(loaded[0])


class TestAccountMetrics:
    def test_busy_plus_wait_is_total(self, traced_run):
        _, result, _ = traced_run
        for row in account_metrics(result.accounts):
            assert row["busy_ps"] + row["wait_ps"] == row["total_ps"]
            assert row["busy_pct"] + row["wait_pct"] == pytest.approx(100.0)

    def test_agrees_with_time_accounts(self, traced_run):
        _, result, _ = traced_run
        rows = account_metrics(result.accounts)
        for row, acct in zip(rows, result.accounts):
            assert row["total_ps"] == acct.total()
            assert row["wait_ps"] == sum(acct.get(s) for s in WAIT_STATES)
            assert row["states"] == acct.states

    def test_empty_account_is_all_zero(self):
        from repro.sim.trace import TimeAccount
        (row,) = account_metrics([TimeAccount()])
        assert row["total_ps"] == 0
        assert row["busy_pct"] == 0.0 and row["wait_pct"] == 0.0


class TestTrafficAndMPB:
    def test_link_traffic_attributes_to_mesh_links(self, traced_run):
        machine, _, _ = traced_run
        links = link_traffic(machine)
        assert links, "comm_stats was enabled; links must be attributed"
        for link in links:
            assert len(link["from"]) == 2 and len(link["to"]) == 2
            # XY neighbours only: one hop per link.
            dx = abs(link["from"][0] - link["to"][0])
            dy = abs(link["from"][1] - link["to"][1])
            assert dx + dy == 1
            assert link["messages"] > 0 and link["bytes"] >= 0

    def test_link_traffic_empty_without_counters(self):
        machine = Machine(SCCConfig())
        assert link_traffic(machine) == []

    def test_mpb_counters_count_real_io(self, traced_run):
        machine, _, _ = traced_run
        rows = mpb_counters(machine)
        assert len(rows) == machine.num_cores
        used = [r for r in rows if r["writes"] or r["reads"]]
        assert len(used) >= 8  # the 8 participating cores moved bytes
        for row in used:
            assert row["write_bytes"] >= row["writes"]  # >= 1 B per write


class TestRunMetrics:
    def test_structure_and_consistency(self, traced_run):
        machine, result, _ = traced_run
        metrics = run_metrics(machine, result, meta={"kind": "allreduce"})
        assert metrics["meta"] == {"kind": "allreduce"}
        assert metrics["elapsed_us"] == result.elapsed_us
        assert 0.0 <= metrics["wait_fraction"] <= 1.0
        total = sum(r["total_ps"] for r in metrics["cores"])
        wait = sum(r["wait_ps"] for r in metrics["cores"])
        assert metrics["wait_fraction"] == pytest.approx(
            wait / total if total else 0.0)

    def test_json_and_csv_writers(self, tmp_path, traced_run):
        machine, result, _ = traced_run
        metrics = run_metrics(machine, result)
        jpath = tmp_path / "m.json"
        write_metrics_json(str(jpath), metrics)
        assert json.loads(jpath.read_text())["cores"]

        buf = io.StringIO()
        write_metrics_csv(buf, metrics)
        rows = list(csv.DictReader(io.StringIO(buf.getvalue())))
        assert len(rows) == len(result.accounts)
        for row in rows:
            assert int(row["busy_ps"]) + int(row["wait_ps"]) \
                == int(row["total_ps"])
