"""The profiling driver: tables, exports, the zero-overhead guarantee,
and the ``python -m repro profile`` subcommand."""

import json
import re

import pytest

from repro.cli import main
from repro.obs.profile import CollectiveProfile, profile_collective


@pytest.fixture(scope="module")
def prof():
    return profile_collective("allreduce", "mpb", 64, cores=8)


class TestProfileCollective:
    def test_returns_bundle(self, prof):
        assert isinstance(prof, CollectiveProfile)
        assert (prof.kind, prof.stack, prof.size, prof.cores) \
            == ("allreduce", "mpb", 64, 8)
        assert prof.records and prof.spans
        assert len(prof.result.accounts) == 8
        assert prof.elapsed_us > 0

    def test_tracing_has_zero_simulated_overhead(self):
        traced = profile_collective("allreduce", "lightweight", 64, cores=8)
        untraced = profile_collective("allreduce", "lightweight", 64,
                                      cores=8, trace=False)
        assert untraced.records == [] and untraced.spans == []
        assert traced.elapsed_us == untraced.elapsed_us
        for a, b in zip(traced.result.accounts, untraced.result.accounts):
            assert a.states == b.states

    def test_wait_table_agrees_with_accounts(self, prof):
        """The acceptance criterion: printed busy/wait percentages are the
        TimeAccount totals, re-derived independently here."""
        from repro.obs.export import WAIT_STATES
        table = prof.wait_profile_table()
        for i, acct in enumerate(prof.result.accounts):
            total = acct.total()
            wait = 100.0 * sum(acct.get(s) for s in WAIT_STATES) / total
            row = next(l for l in table.splitlines()
                       if l.strip().startswith(f"core{i} "))
            cells = row.split()
            assert float(cells[2]) == pytest.approx(100.0 - wait, abs=0.005)
            assert float(cells[3]) == pytest.approx(wait, abs=0.005)

    def test_wait_table_has_all_row_and_title(self, prof):
        table = prof.wait_profile_table(max_rows=2)
        assert "wait profile: allreduce on stack 'mpb'" in table
        assert re.search(r"^\s*ALL\b", table, re.M)
        assert "core2" not in table  # max_rows honored (ALL row stays)

    def test_phase_table_lists_instrumented_phases(self, prof):
        table = prof.phase_table()
        for phase in ("copy", "reduce", "sync"):
            assert phase in table
        # Percent column sums to ~100 (rows start after title/header/rule).
        pcts = [float(line.split()[-1]) for line in table.splitlines()[3:]]
        assert sum(pcts) == pytest.approx(100.0, abs=0.5)

    def test_write_exports_all_files(self, prof, tmp_path):
        paths = prof.write(str(tmp_path))
        assert set(paths) == {"trace", "metrics_json", "metrics_csv"}
        events = json.loads((tmp_path / "profile_allreduce_mpb_64"
                             ".trace.json").read_text())
        assert isinstance(events, list)
        assert any(ev["ph"] == "X" and ev["name"] == "allreduce"
                   for ev in events)
        metrics = json.loads(open(paths["metrics_json"]).read())
        assert metrics["meta"]["stack"] == "mpb"
        assert metrics["mesh_links"], "profile runs enable comm_stats"

    def test_rejects_too_many_cores(self):
        with pytest.raises(ValueError, match="cores"):
            profile_collective("allreduce", "mpb", 64, cores=64)


class TestProfileCLI:
    def test_profile_subcommand(self, capsys, tmp_path):
        assert main(["profile", "allreduce", "--stack", "mpb",
                     "--sizes", "64", "--cores", "8",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wait profile: allreduce on stack 'mpb'" in out
        assert "phase breakdown" in out
        assert "wrote" in out
        trace = tmp_path / "profile_allreduce_mpb_64.trace.json"
        events = json.loads(trace.read_text())
        assert isinstance(events, list) and events
        assert all(ev["ph"] in ("X", "M", "i") for ev in events)

    def test_profile_multiple_sizes(self, capsys, tmp_path):
        assert main(["profile", "barrier", "--stack", "blocking",
                     "--sizes", "8,16", "--cores", "8",
                     "--out", str(tmp_path)]) == 0
        assert (tmp_path / "profile_barrier_blocking_8.trace.json").exists()
        assert (tmp_path / "profile_barrier_blocking_16.trace.json").exists()

    def test_profile_no_trace(self, capsys, tmp_path):
        assert main(["profile", "allreduce", "--stack", "lightweight",
                     "--sizes", "64", "--cores", "8", "--no-trace",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "wait profile" in out
        assert "phase breakdown" not in out

    def test_profile_rejects_unknown_stack(self):
        with pytest.raises(SystemExit):
            main(["profile", "allreduce", "--stack", "warp-drive",
                  "--sizes", "64"])
