"""GCMC chaos trials: statistical-envelope classification + exit codes."""

from dataclasses import replace

import numpy as np
import pytest

from repro.faults.campaign import (
    CHAOS_PROFILES,
    STAT_WRONG,
    CampaignResult,
    TrialResult,
    run_gcmc_campaign,
    run_gcmc_trial,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine

SCC = SCCConfig(mesh_cols=4, mesh_rows=1)

#: Same deterministic corruption seed as tests/ensemble/test_gates.py.
CORRUPTION_SEED = 6


@pytest.fixture(scope="module")
def summary():
    from repro.ensemble.summary import EnsembleSummary

    return EnsembleSummary.load()


def test_clean_trial_is_ok(summary):
    trial = run_gcmc_trial(summary, FaultPlan(), config=SCC)
    assert trial.kind == "gcmc"
    assert trial.outcome == "ok"
    assert trial.survived


def test_silent_corruption_classified_statistically_wrong(summary):
    plan = replace(CHAOS_PROFILES["default"], seed=CORRUPTION_SEED,
                   payload_corrupt_prob=1.0, payload_corrupt_max=1,
                   checksums=False)
    trial = run_gcmc_trial(summary, plan, config=SCC)
    assert trial.outcome == STAT_WRONG
    assert not trial.survived
    assert "PC" in trial.detail
    assert trial.fault_counts.get("payload_corrupt") == 1


def test_gcmc_campaign_table_and_failures(summary):
    plan_wrong = replace(CHAOS_PROFILES["default"], seed=CORRUPTION_SEED,
                         payload_corrupt_prob=1.0, payload_corrupt_max=1,
                         checksums=False)
    trials = [
        run_gcmc_trial(summary, FaultPlan(), config=SCC),
        run_gcmc_trial(summary, plan_wrong, config=SCC),
    ]
    camp = CampaignResult(profile="default", trials=trials)
    table = camp.survival_table()
    assert STAT_WRONG in table
    assert [t.outcome for t in camp.failures()] == [STAT_WRONG]
    assert camp.outcomes() == {"ok": 1, STAT_WRONG: 1}


def test_collective_campaign_table_has_no_gcmc_column():
    trial = TrialResult(kind="allreduce", stack="blocking", seed=1,
                        outcome="ok")
    table = CampaignResult(profile="off", trials=[trial]).survival_table()
    assert STAT_WRONG not in table


def test_run_gcmc_campaign_sweeps_stacks(summary):
    camp = run_gcmc_campaign(summary, profile="off",
                             stacks=("lightweight_balanced",),
                             seeds=(1,), config=SCC)
    assert len(camp.trials) == 1
    assert camp.trials[0].outcome == "ok"
    assert not camp.failures()


def test_chaos_cli_exits_nonzero_on_statistical_wrongness(monkeypatch,
                                                          capsys):
    """``python -m repro chaos --app gcmc`` must fail CI when any trial
    is (statistically) wrong — the contract the workflow relies on."""
    import repro.faults.campaign as campaign_mod
    from repro.cli import main

    wrong = TrialResult(kind="gcmc", stack="lightweight_balanced", seed=3,
                        outcome=STAT_WRONG, detail="2 PC(s) outside")

    def fake_campaign(summary, **kwargs):
        return CampaignResult(profile=kwargs.get("profile", "light"),
                              trials=[wrong])

    monkeypatch.setattr(campaign_mod, "run_gcmc_campaign", fake_campaign)
    rc = main(["chaos", "--app", "gcmc", "--seeds", "3"])
    assert rc == 1
    out = capsys.readouterr().out
    assert "CONTRACT VIOLATION" in out
    assert STAT_WRONG in out


def test_payload_corruption_budget_caps_at_max():
    machine = Machine(SCCConfig())
    inj = FaultInjector(FaultPlan(payload_corrupt_prob=1.0,
                                  payload_corrupt_max=1)).install(machine)
    region = machine.mpbs[0].alloc(64)
    region.write(np.zeros(64, dtype=np.uint8))
    assert inj.maybe_corrupt(region, 64, actor="test")
    # Budget exhausted: further opportunities are refused, however high
    # the probability.
    assert not inj.maybe_corrupt(region, 64, actor="test")
    assert not inj.maybe_corrupt(region, 64, actor="test", boost=True)
    assert inj.counts["payload_corrupt"] == 1


def test_unlimited_budget_keeps_corrupting():
    machine = Machine(SCCConfig())
    inj = FaultInjector(FaultPlan(payload_corrupt_prob=1.0)).install(machine)
    region = machine.mpbs[0].alloc(64)
    region.write(np.zeros(64, dtype=np.uint8))
    assert inj.maybe_corrupt(region, 64, actor="test")
    assert inj.maybe_corrupt(region, 64, actor="test")
    assert inj.counts["payload_corrupt"] == 2


def test_budget_plan_validation():
    with pytest.raises(ValueError, match="payload_corrupt_max"):
        FaultPlan(payload_corrupt_max=-1)
