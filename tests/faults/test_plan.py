"""FaultPlan validation and derived properties."""

import pytest

from repro.faults import FaultPlan


class TestValidation:
    def test_default_plan_valid_and_inert(self):
        plan = FaultPlan()
        assert not plan.any_faults

    def test_probability_out_of_range(self):
        with pytest.raises(ValueError, match="flag_drop_prob"):
            FaultPlan(flag_drop_prob=1.5)
        with pytest.raises(ValueError, match="mesh_jitter_prob"):
            FaultPlan(mesh_jitter_prob=-0.1)

    def test_nonpositive_magnitudes_rejected(self):
        with pytest.raises(ValueError, match="congestion_cycles"):
            FaultPlan(congestion_cycles=0)
        with pytest.raises(ValueError, match="core_stall_cycles"):
            FaultPlan(core_stall_cycles=-5)

    def test_retry_budget_must_allow_one_attempt(self):
        with pytest.raises(ValueError, match="max_retries"):
            FaultPlan(max_retries=0)

    def test_fallback_threshold_positive(self):
        with pytest.raises(ValueError, match="mpb_fallback_threshold"):
            FaultPlan(mpb_fallback_threshold=0)

    def test_negative_toggle_time_rejected(self):
        with pytest.raises(ValueError, match="erratum_toggle_at_ps"):
            FaultPlan(erratum_toggle_at_ps=-1)


class TestDerived:
    def test_with_seed_keeps_rates(self):
        plan = FaultPlan(flag_drop_prob=0.25, seed=1)
        reseeded = plan.with_seed(99)
        assert reseeded.seed == 99
        assert reseeded.flag_drop_prob == 0.25
        assert plan.seed == 1  # original untouched (frozen)

    def test_any_faults_reflects_each_class(self):
        assert FaultPlan(mesh_jitter_prob=0.1).any_faults
        assert FaultPlan(flag_stale_prob=0.1).any_faults
        assert FaultPlan(payload_corrupt_prob=0.1).any_faults
        assert FaultPlan(core_stall_prob=0.1).any_faults
        assert FaultPlan(mpb_fault_epoch_prob=0.1).any_faults
        assert FaultPlan(erratum_toggle_at_ps=1000).any_faults
        # Hardening knobs alone inject nothing.
        assert not FaultPlan(max_retries=3, checksums=False).any_faults
