"""FaultInjector mechanics: determinism, hooks, typed give-ups."""

import numpy as np
import pytest

from repro.faults import (
    FaultInjector,
    FaultPlan,
    FlagFaultError,
    MPBFaultError,
    TransferFaultError,
)
from repro.faults.campaign import run_trial
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine


def test_install_is_exclusive():
    machine = Machine(SCCConfig())
    FaultInjector(FaultPlan()).install(machine)
    with pytest.raises(RuntimeError):
        FaultInjector(FaultPlan()).install(machine)


def test_same_seed_same_run():
    plan = FaultPlan(mesh_jitter_prob=0.2, flag_drop_prob=0.05,
                     flag_stale_prob=0.1, core_stall_prob=0.05, seed=11)
    a = run_trial("allreduce", "lightweight", plan, size=32, cores=4)
    b = run_trial("allreduce", "lightweight", plan, size=32, cores=4)
    assert a.outcome == b.outcome
    assert a.elapsed_us == b.elapsed_us
    assert a.fault_counts == b.fault_counts


def test_different_seed_different_faults():
    base = FaultPlan(mesh_jitter_prob=0.2, flag_stale_prob=0.1,
                     core_stall_prob=0.05)
    runs = {
        seed: run_trial("allreduce", "lightweight", base.with_seed(seed),
                        size=32, cores=4)
        for seed in (1, 2, 3)
    }
    latencies = {t.elapsed_us for t in runs.values()}
    assert len(latencies) > 1  # the seed actually steers the injection


def test_rank_consistent_epoch_classification():
    plan = FaultPlan(mpb_fault_epoch_prob=0.5, seed=4)
    a = FaultInjector(plan)
    b = FaultInjector(plan)
    for epoch in range(32):
        assert a.mpb_epoch_faulty(epoch) == b.mpb_epoch_faulty(epoch)
    # The classification must not depend on unrelated stream draws.
    c = FaultInjector(plan)
    c.rng.random(1000)  # desynchronize the shared stream
    for epoch in range(32):
        assert c.mpb_epoch_faulty(epoch) == a.mpb_epoch_faulty(epoch)


def test_degradation_threshold_counts_past_epochs():
    plan = FaultPlan(mpb_fault_epoch_prob=1.0, mpb_fallback_threshold=2,
                     seed=0)
    inj = FaultInjector(plan)
    assert not inj.mpb_degraded(0)  # no history yet
    assert not inj.mpb_degraded(1)  # one faulty epoch < threshold 2
    assert inj.mpb_degraded(2)
    assert inj.mpb_degraded(10)


def test_certain_flag_drop_raises_typed_error():
    # Every write (and rewrite) lost -> the write-verify loop must give
    # up with a FlagFaultError, not hang.
    plan = FaultPlan(flag_drop_prob=1.0, max_retries=3, seed=0)
    t = run_trial("barrier", "blocking", plan, size=8, cores=4)
    assert t.outcome == "fault"
    assert "flag write lost" in t.detail


def test_certain_corruption_raises_typed_error():
    # Every MPB payload write corrupted -> retransmits can never deliver
    # a clean chunk; the hardened transfer gives up with a typed error.
    plan = FaultPlan(payload_corrupt_prob=1.0, max_retries=3, seed=0)
    t = run_trial("allreduce", "lightweight", plan, size=32, cores=4)
    assert t.outcome == "fault"
    assert t.fault_counts.get("retransmit", 0) > 0


def test_moderate_corruption_recovered_by_retransmit():
    plan = FaultPlan(payload_corrupt_prob=0.3, seed=3)
    t = run_trial("allreduce", "lightweight", plan, size=48, cores=4)
    assert t.outcome == "ok", t.detail
    assert t.fault_counts.get("payload_corrupt", 0) > 0
    assert t.fault_counts.get("retransmit", 0) > 0


def test_corruption_without_checksums_is_silent():
    # The why of the checksum layer: with it disabled, the same fault
    # regime silently corrupts results instead of being caught.
    plan = FaultPlan(payload_corrupt_prob=1.0, checksums=False, seed=3)
    t = run_trial("allreduce", "lightweight", plan, size=48, cores=4)
    assert t.outcome == "wrong"


def test_stalls_and_jitter_slow_but_do_not_break():
    plan = FaultPlan(core_stall_prob=0.3, core_stall_cycles=2000,
                     mesh_jitter_prob=0.5, seed=5)
    clean = run_trial("allreduce", "lightweight", FaultPlan(),
                      size=32, cores=4)
    noisy = run_trial("allreduce", "lightweight", plan, size=32, cores=4)
    assert clean.outcome == noisy.outcome == "ok"
    assert noisy.elapsed_us > clean.elapsed_us
    assert noisy.fault_counts.get("core_stall", 0) > 0


def test_erratum_toggle_fires_at_scheduled_time():
    config = SCCConfig(erratum_enabled=True)
    machine = Machine(config)
    inj = FaultInjector(FaultPlan(erratum_toggle_at_ps=1000)).install(machine)

    def program(env):
        yield from env.core.consume(10_000, "compute")

    machine.run_spmd(program, ranks=[0])
    assert config.erratum_enabled is False
    assert inj.counts.get("erratum_toggle") == 1


def test_corrupt_flips_exactly_one_byte():
    machine = Machine(SCCConfig())
    inj = FaultInjector(FaultPlan(payload_corrupt_prob=1.0)).install(machine)
    region = machine.mpbs[0].alloc(64)
    data = np.zeros(64, dtype=np.uint8)
    region.write(data)
    assert inj.maybe_corrupt(region, 64, actor="test")
    readback = region.read(64)
    assert np.count_nonzero(readback) == 1
    assert readback.max() == 0xFF


def test_typed_errors_carry_context():
    inj = FaultInjector(FaultPlan())
    with pytest.raises(TransferFaultError) as exc_info:
        inj.raise_fault("transfer", "retransmit budget exhausted",
                        actor="core1", peer=2, seq=7)
    err = exc_info.value
    assert err.kind == "transfer"
    assert err.context["peer"] == 2
    assert "seq=7" in str(err)
    with pytest.raises(FlagFaultError):
        inj.raise_fault("flag_write", "lost")
    with pytest.raises(MPBFaultError):
        inj.raise_fault("mpb", "corrupt")
