"""Fault injection disabled must cost exactly zero.

The acceptance bar for the whole subsystem: with no injector installed —
or with an installed injector whose rates are all zero — every collective
latency is *bit-identical* to the pre-subsystem simulator.  Every hook
site therefore guards on ``machine.faults is not None`` and the hardened
protocol paths only activate when a fault can actually fire.
"""

import numpy as np
import pytest

from repro.bench.runner import program_for
from repro.core.ops import SUM
from repro.core.registry import STACKS, make_communicator
from repro.faults import FaultInjector, FaultPlan
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine

# Pre-PR golden latencies (the calibration lock's values): the zero-rate
# injector must reproduce them exactly, not just approximately.
GOLDEN_ALLREDUCE_552 = {
    "blocking": 2927.6,
    "ircce": 2315.8,
    "lightweight": 1405.9,
    "lightweight_balanced": 1125.4,
    "mpb": 1024.8,
    "rckmpi": 5831.2,
}


def _elapsed_ps(kind: str, stack: str, size: int, cores: int,
                plan: FaultPlan | None) -> int:
    """Rank-0 latency in integer picoseconds, optionally with an
    installed (but possibly inert) injector."""
    machine = Machine(SCCConfig())
    if plan is not None:
        FaultInjector(plan).install(machine)
    comm = make_communicator(machine, stack)
    rng = np.random.default_rng(20120901)
    inputs = [rng.normal(size=size) for _ in range(cores)]
    program = program_for(kind, comm, inputs, SUM)
    result = machine.run_spmd(program, ranks=list(range(cores)))
    return int(result.values[0])


@pytest.mark.parametrize("stack", STACKS)
def test_zero_rate_injector_is_bit_identical(stack):
    bare = _elapsed_ps("allreduce", stack, 64, 8, None)
    inert = _elapsed_ps("allreduce", stack, 64, 8, FaultPlan())
    assert inert == bare


@pytest.mark.parametrize("kind", ["reduce_scatter", "allgather", "bcast",
                                  "barrier", "alltoall"])
def test_zero_rate_identity_across_kinds(kind):
    bare = _elapsed_ps(kind, "lightweight", 48, 6, None)
    inert = _elapsed_ps(kind, "lightweight", 48, 6, FaultPlan())
    assert inert == bare


def test_checksums_knob_alone_changes_nothing_without_rates():
    # checksums=True is the FaultPlan default; the hardened transfer
    # path models its CRC as folded into the per-line copy costs, so an
    # inert plan with checksums on is still timing-identical.
    bare = _elapsed_ps("allreduce", "ircce", 96, 6, None)
    hardened = _elapsed_ps("allreduce", "ircce", 96, 6,
                           FaultPlan(checksums=True))
    assert hardened == bare


@pytest.mark.parametrize("stack", ["lightweight_balanced", "mpb"])
def test_goldens_survive_inert_injector(stack):
    """The calibration-lock goldens, re-measured with an inert injector
    installed: the pre-PR numbers to the same tolerance the lock uses."""
    machine = Machine(SCCConfig())
    FaultInjector(FaultPlan()).install(machine)
    comm = make_communicator(machine, stack)
    rng = np.random.default_rng(20120901)
    inputs = [rng.normal(size=552) for _ in range(48)]
    program = program_for("allreduce", comm, inputs, SUM)
    result = machine.run_spmd(program, ranks=list(range(48)))
    latency_us = int(result.values[0]) / 1e6
    assert latency_us == pytest.approx(GOLDEN_ALLREDUCE_552[stack],
                                       rel=1e-3)
