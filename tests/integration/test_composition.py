"""Stress: random compositions of collectives on one machine must keep
producing correct results and strictly advancing simulated time."""

import numpy as np
import pytest

from repro.core.ops import SUM
from repro.core.registry import STACKS, make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine

P = 8


@pytest.mark.parametrize("stack", list(STACKS))
def test_mixed_collective_sequence(stack):
    """A fixed but diverse sequence: every collective back-to-back, with
    all results checked against NumPy."""
    machine = Machine(SCCConfig(mesh_cols=P // 2, mesh_rows=1))
    comm = make_communicator(machine, stack)
    rng = np.random.default_rng(0)
    vec = [rng.normal(size=96) for _ in range(P)]
    rows = [rng.normal(size=(P, 12)) for _ in range(P)]

    def program(env):
        r = env.rank
        checks = []

        ar = yield from comm.allreduce(env, vec[r])
        checks.append(("allreduce", ar, np.sum(vec, axis=0)))

        yield from comm.barrier(env)

        bc = np.array(vec[0]) if r == 0 else np.empty(96)
        yield from comm.bcast(env, bc, 0)
        checks.append(("bcast", bc, vec[0]))

        rd = yield from comm.reduce(env, vec[r], SUM, 3)
        if r == 3:
            checks.append(("reduce", rd, np.sum(vec, axis=0)))

        ag = yield from comm.allgather(env, vec[r][:8])
        checks.append(("allgather", ag,
                       np.stack([v[:8] for v in vec])))

        a2a = yield from comm.alltoall(env, rows[r])
        checks.append(("alltoall", a2a,
                       np.stack([rows[src][r] for src in range(P)])))

        ar2 = yield from comm.allreduce(env, ar)
        checks.append(("allreduce2", ar2, P * np.sum(vec, axis=0)))

        for name, got, want in checks:
            np.testing.assert_allclose(got, want, rtol=1e-9,
                                       err_msg=f"{name} on rank {r}")
        return env.now

    result = machine.run_spmd(program)
    assert min(result.values) > 0


def test_time_advances_monotonically_across_operations():
    machine = Machine(SCCConfig(mesh_cols=P // 2, mesh_rows=1))
    comm = make_communicator(machine, "lightweight_balanced")
    data = np.zeros(64)

    def program(env):
        stamps = [env.now]
        for _ in range(5):
            yield from comm.allreduce(env, data)
            stamps.append(env.now)
        return stamps

    result = machine.run_spmd(program)
    for stamps in result.values:
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)


def test_two_machines_do_not_interfere():
    """State (flags, services, MPBs) is per-machine."""
    m1 = Machine(SCCConfig(mesh_cols=2, mesh_rows=1))
    m2 = Machine(SCCConfig(mesh_cols=2, mesh_rows=1))
    c1 = make_communicator(m1, "lightweight")
    c2 = make_communicator(m2, "blocking")
    data = np.arange(32, dtype=np.float64)

    def program_for(comm):
        def program(env):
            return (yield from comm.allreduce(env, data + env.rank))
        return program

    r1 = m1.run_spmd(program_for(c1))
    r2 = m2.run_spmd(program_for(c2))
    expected = 4 * data + 6
    np.testing.assert_allclose(r1.values[0], expected)
    np.testing.assert_allclose(r2.values[0], expected)
    assert m1.sim is not m2.sim
