"""Determinism: identical runs produce identical simulated timings."""

import numpy as np

from repro.bench.runner import measure_collective
from repro.core.registry import STACKS, make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine


def test_every_stack_latency_reproducible():
    for stack in STACKS:
        a = measure_collective("allreduce", stack, 96, cores=8,
                               config=SCCConfig())
        b = measure_collective("allreduce", stack, 96, cores=8,
                               config=SCCConfig())
        assert a == b, f"stack {stack} non-deterministic"


def test_repeated_ops_on_one_machine_have_stable_cost():
    """After the first call warms flags up, repeated collectives on the
    same machine cost the same simulated time."""
    machine = Machine(SCCConfig(mesh_cols=4, mesh_rows=1))
    comm = make_communicator(machine, "lightweight_balanced")
    data = np.arange(96, dtype=np.float64)

    def program(env):
        stamps = []
        for _ in range(4):
            t0 = env.now
            yield from comm.allreduce(env, data + env.rank)
            stamps.append(env.now - t0)
        return stamps

    result = machine.run_spmd(program)
    durations = result.values[0]
    # All iterations after the first must be identical.
    assert len(set(durations[1:])) == 1


def test_trace_records_are_reproducible():
    from repro.sim.trace import Tracer

    def run():
        tracer = Tracer(enabled=True)
        machine = Machine(SCCConfig(mesh_cols=2, mesh_rows=1),
                          tracer=tracer)
        comm = make_communicator(machine, "lightweight")

        def program(env):
            yield from comm.barrier(env)

        machine.run_spmd(program)
        return machine.sim.now

    assert run() == run()
