"""Calibration lock: golden simulated latencies at the paper's key point.

The `SCCConfig` software-cost constants were calibrated once against the
paper's Section-IV speedup chain (see docs/timing-model.md) and then
frozen.  These golden values pin the calibration: an unintended change to
the timing model, the protocol structure, or the algorithms shows up here
as an exact-number diff, separate from the (looser) shape assertions in
the benchmark suite.

If you change the model *deliberately*, re-derive the goldens with:
    python -m repro stepwise
and update both this file and EXPERIMENTS.md.
"""

import pytest

from repro.bench.runner import measure_collective

# Simulated microseconds, Allreduce, n = 552 doubles, 48 cores,
# standard preset, erratum active.
GOLDEN_ALLREDUCE_552 = {
    "blocking": 2927.6,
    "ircce": 2315.8,
    "lightweight": 1405.9,
    "lightweight_balanced": 1125.4,
    "mpb": 1024.8,
    "rckmpi": 5831.2,
}


@pytest.mark.parametrize("stack,expected",
                         sorted(GOLDEN_ALLREDUCE_552.items()))
def test_allreduce_golden_latency(stack, expected):
    measured = measure_collective("allreduce", stack, 552)
    assert measured == pytest.approx(expected, rel=1e-3), (
        f"{stack}: {measured:.1f}us vs golden {expected:.1f}us — "
        "the timing model changed; see this file's docstring")


def test_stepwise_chain_locked():
    lat = {stack: measure_collective("allreduce", stack, 552)
           for stack in GOLDEN_ALLREDUCE_552 if stack != "rckmpi"}
    assert lat["blocking"] / lat["ircce"] == pytest.approx(1.264, abs=0.01)
    assert lat["ircce"] / lat["lightweight"] == pytest.approx(1.647,
                                                              abs=0.01)
    assert (lat["lightweight"] / lat["lightweight_balanced"]
            == pytest.approx(1.249, abs=0.01))
    assert (lat["lightweight_balanced"] / lat["mpb"]
            == pytest.approx(1.098, abs=0.01))
