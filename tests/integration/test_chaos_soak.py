"""Seeded chaos soak: every collective x stack survives injected faults.

The hardening contract, asserted over the full kinds x stacks matrix:
under a seeded fault campaign every run either completes *bit-correct*
or terminates with a *typed* error (FaultError subtype, WatchdogTimeout,
DeadlockError) carrying per-process diagnostics — never a silent hang,
never silently corrupted results.

Runs under the ``chaos`` pytest marker with the fast ``light`` profile
by default; scale up via ``REPRO_CHAOS_PROFILE=heavy`` and
``REPRO_CHAOS_SEEDS=1:11``.
"""

import os
import subprocess
import sys

import pytest

from repro.faults.campaign import (
    CHAOS_KINDS,
    CHAOS_PROFILES,
    run_campaign,
    run_trial,
)
from repro.obs.export import chrome_trace_events
from repro.obs.spans import extract_spans

REPO_ROOT = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))


def _seeds():
    spec = os.environ.get("REPRO_CHAOS_SEEDS", "1:3")
    if ":" in spec:
        start, stop = (int(x) for x in spec.split(":"))
        return tuple(range(start, stop))
    return tuple(int(x) for x in spec.split(","))


@pytest.fixture(scope="module")
def campaign():
    return run_campaign(
        profile=os.environ.get("REPRO_CHAOS_PROFILE", "light"),
        seeds=_seeds(), size=32, cores=4)


@pytest.mark.chaos
class TestSoak:
    def test_every_trial_survives(self, campaign):
        bad = campaign.failures()
        assert not bad, "\n".join(
            f"{t.kind}/{t.stack} seed={t.seed}: {t.outcome} {t.detail}"
            for t in bad)

    def test_no_silent_corruption(self, campaign):
        assert not [t for t in campaign.trials if t.outcome == "wrong"]

    def test_full_matrix_covered(self, campaign):
        pairs = {(t.kind, t.stack) for t in campaign.trials}
        from repro.core.registry import STACKS
        assert len(pairs) == len(CHAOS_KINDS) * len(STACKS)

    def test_faults_were_actually_injected(self, campaign):
        # A soak that injects nothing proves nothing.
        totals = campaign.fault_totals()
        assert sum(totals.values()) > 0
        assert any(k in totals for k in
                   ("flag_drop", "flag_stale", "mesh_jitter"))

    def test_typed_errors_carry_diagnostics(self, campaign):
        for t in campaign.trials:
            if t.outcome in ("fault", "watchdog", "deadlock"):
                assert t.detail  # message, not a bare exception class

    def test_survival_table_renders(self, campaign):
        table = campaign.survival_table()
        assert "survival %" in table
        for stack in campaign.by_stack():
            assert stack in table


@pytest.mark.chaos
class TestObservability:
    """Faults, retries and fallbacks must be visible in exported traces."""

    def test_fault_instants_reach_chrome_trace(self):
        plan = CHAOS_PROFILES["heavy"].with_seed(2)
        t = run_trial("allreduce", "lightweight", plan, size=64, cores=4,
                      trace=True)
        assert t.survived
        fault_tags = {r.tag for r in t.records
                      if r.tag.startswith("fault.")}
        assert fault_tags, "no fault.* records in a heavy-profile trial"
        events = chrome_trace_events(t.records)
        instant_names = {e["name"] for e in events if e.get("ph") == "i"}
        assert fault_tags <= instant_names

    def test_retry_spans_emitted_on_retransmit(self):
        from repro.faults.plan import FaultPlan
        plan = FaultPlan(payload_corrupt_prob=0.4, seed=3)
        t = run_trial("allreduce", "lightweight", plan, size=64, cores=4,
                      trace=True)
        assert t.outcome == "ok", t.detail
        assert t.fault_counts.get("retransmit", 0) > 0
        spans = extract_spans(t.records)
        assert any(sp.name == "retry" for sp in spans)

    def test_fallback_spans_emitted_on_degradation(self):
        from repro.faults.plan import FaultPlan
        plan = FaultPlan(mpb_fault_epoch_prob=1.0, mpb_fallback_threshold=1,
                         max_retries=64, seed=7)
        t = run_trial("allreduce", "mpb", plan, size=96, cores=6, iters=3,
                      trace=True)
        assert t.outcome == "ok", t.detail
        assert t.fault_counts.get("mpb_fallback", 0) > 0
        spans = extract_spans(t.records)
        assert any(sp.name == "fallback" for sp in spans)

    def test_metrics_report_fault_section(self):
        from repro.faults import FaultInjector, FaultPlan
        from repro.hw.config import SCCConfig
        from repro.hw.machine import Machine
        from repro.obs.export import run_metrics

        machine = Machine(SCCConfig())
        FaultInjector(FaultPlan(core_stall_prob=1.0,
                                seed=1)).install(machine)

        def program(env):
            yield from env.core.consume(10_000, "compute")

        result = machine.run_spmd(program, ranks=[0, 1])
        metrics = run_metrics(machine, result)
        assert metrics["faults"]["seed"] == 1
        assert metrics["faults"]["counts"].get("core_stall", 0) > 0


@pytest.mark.chaos
def test_run_chaos_tool_smoke():
    """tools/run_chaos.py must run a tiny campaign and exit 0."""
    proc = subprocess.run(
        [sys.executable, os.path.join(REPO_ROOT, "tools", "run_chaos.py"),
         "--profile", "light", "--seeds", "1", "--cores", "4",
         "--size", "16", "--kinds", "barrier", "bcast"],
        capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr
    assert "survival %" in proc.stdout
