"""Failure injection: misuse must fail loudly, not hang silently.

The simulator's deadlock detector turns every would-be infinite hang into
a :class:`~repro.sim.errors.DeadlockError` naming the stuck processes, so
programming errors that stall a real SCC forever (missing participants,
length mismatches, wrong roots) surface as clean test failures here.
"""

import numpy as np
import pytest

from repro.core import MPBAllreduceError, make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.sim.errors import DeadlockError


def machine(cores=4):
    return Machine(SCCConfig(mesh_cols=cores // 2, mesh_rows=1))


class TestMissingParticipant:
    @pytest.mark.parametrize("stack", ["blocking", "lightweight"])
    def test_rank_skipping_collective_deadlocks(self, stack):
        m = machine()
        comm = make_communicator(m, stack)
        data = np.zeros(64)

        def program(env):
            if env.rank == 2:
                return None  # silently drops out of the collective
            yield from comm.allreduce(env, data)

        with pytest.raises(DeadlockError) as exc:
            m.run_spmd(program)
        # The error names at least one stuck rank.
        assert "rank" in str(exc.value)

    def test_missing_barrier_participant_deadlocks(self):
        m = machine()
        comm = make_communicator(m, "blocking")

        def program(env):
            if env.rank == 0:
                return None
            yield from comm.barrier(env)

        with pytest.raises(DeadlockError):
            m.run_spmd(program)


class TestSizeMismatch:
    def test_receiver_expecting_more_chunks_deadlocks(self):
        """Sender transmits one MPB chunk; receiver waits for a second
        sent-flag round that never comes."""
        m = machine()
        from repro.rcce.api import RCCE
        rcce = RCCE(m)
        chunk = m.config.mpb_payload_bytes

        def program(env):
            if env.rank == 0:
                yield from rcce.send(env, np.zeros(chunk, dtype=np.uint8), 1)
            elif env.rank == 1:
                out = np.empty(chunk * 2, dtype=np.uint8)
                yield from rcce.recv(env, out, 0)
            else:
                yield from env.compute(0)

        with pytest.raises(DeadlockError):
            m.run_spmd(program)


class TestRootMismatch:
    def test_disagreeing_bcast_roots_deadlock(self):
        m = machine()
        comm = make_communicator(m, "blocking")

        def program(env):
            buf = np.zeros(16)
            root = 0 if env.rank < 2 else 1  # half the ranks disagree
            yield from comm.bcast(env, buf, root)

        with pytest.raises(DeadlockError):
            m.run_spmd(program)


class TestResourceLimits:
    def test_mpb_allreduce_rejects_oversized_blocks(self):
        """Vectors whose blocks exceed the MPB double-buffer half must be
        rejected with a clear error, not corrupt neighbouring state."""
        m = machine()
        comm = make_communicator(m, "mpb")
        half_doubles = (m.config.mpb_payload_bytes // 2) // 8
        n = (half_doubles + 8) * 4  # blocks of half_doubles + 8 at p=4

        def program(env):
            data = np.zeros(n)
            yield from comm.allreduce(env, data)

        with pytest.raises(MPBAllreduceError):
            m.run_spmd(program)

    def test_oversized_mpb_write_raises(self):
        from repro.hw.mpb import MPBError
        m = machine()
        with pytest.raises(MPBError):
            m.mpbs[0].alloc(m.config.mpb_bytes_per_core * 2)


class TestExceptionPropagation:
    def test_application_exception_reaches_caller(self):
        m = machine()

        def program(env):
            yield from env.compute(10)
            if env.rank == 1:
                raise RuntimeError("application bug on rank 1")

        with pytest.raises(RuntimeError, match="rank 1"):
            m.run_spmd(program)

    def test_machine_stays_usable_after_failed_run(self):
        m = machine()

        def bad(env):
            yield from env.compute(1)
            raise ValueError("boom")

        with pytest.raises(ValueError):
            m.run_spmd(bad)

        def good(env):
            yield from env.compute(1)
            return env.rank

        result = m.run_spmd(good)
        assert result.values == [0, 1, 2, 3]
