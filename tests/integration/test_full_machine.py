"""Full-scale integration: 48-core behaviour the paper depends on."""

import numpy as np
import pytest

from repro.bench.runner import measure_collective
from repro.core.registry import STACKS, make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine


class TestFullMachineCorrectness:
    @pytest.mark.parametrize("stack", list(STACKS))
    def test_allreduce_48_cores(self, stack):
        machine = Machine(SCCConfig())
        comm = make_communicator(machine, stack)
        rng = np.random.default_rng(99)
        inputs = [rng.normal(size=552) for _ in range(48)]
        expected = np.sum(inputs, axis=0)

        def program(env):
            return (yield from comm.allreduce(env, inputs[env.rank]))

        result = machine.run_spmd(program)
        for value in result.values:
            np.testing.assert_allclose(value, expected, rtol=1e-12)


class TestPaperOrderings:
    def test_stack_latency_ordering_at_552(self):
        """The Fig. 9f ordering at the application's vector size."""
        lat = {stack: measure_collective("allreduce", stack, 552)
               for stack in STACKS}
        assert lat["rckmpi"] > lat["blocking"]
        assert lat["blocking"] > lat["ircce"]
        assert lat["ircce"] > lat["lightweight"]
        assert lat["lightweight"] > lat["lightweight_balanced"]
        assert lat["lightweight_balanced"] > lat["mpb"]

    def test_spike_follows_line_alignment_full_vector(self):
        """Allgather sends whole vectors: multiples of 4 doubles (complete
        L1 lines) are the cheap sizes; anything else pays the padded-tail
        extra transfer (period-4 spikes, Section V-A)."""
        lat = {n: measure_collective("allgather", "lightweight", n)
               for n in (600, 601, 602, 603, 604)}
        for n in (601, 602, 603):
            assert lat[n] > lat[600]
            assert lat[n] > lat[604]

    def test_spike_follows_block_alignment_ring(self):
        """The ring collectives transfer *blocks*; the pacing block is the
        standard split's first block (n//48 + n%48 elements), so the dip
        sits where that block is line-aligned: at n = 553 the first block
        is 36 elements (aligned), at 552 and 554..556 it is padded."""
        lat = {n: measure_collective("allreduce", "lightweight", n)
               for n in range(552, 557)}
        assert lat[553] < lat[552]
        assert lat[553] < lat[554]
        assert lat[553] < lat[556]

    def test_sawtooth_peak_and_drop(self):
        """Unbalanced latency ramps toward 575 and collapses at 576."""
        lat575 = measure_collective("allreduce", "lightweight", 575)
        lat576 = measure_collective("allreduce", "lightweight", 576)
        lat553 = measure_collective("allreduce", "lightweight", 553)
        assert lat575 > lat576 * 1.2
        assert lat575 > lat553 * 1.05


class TestProfilingClaims:
    def test_blocking_app_round_has_substantial_wait(self):
        """Paper Section IV-A: profiling shows heavy rcce_wait_until time
        under the blocking stack during ring exchanges."""
        machine = Machine(SCCConfig())
        comm = make_communicator(machine, "blocking")
        rng = np.random.default_rng(1)
        inputs = [rng.normal(size=552) for _ in range(48)]

        def program(env):
            for _ in range(2):
                yield from comm.allreduce(env, inputs[env.rank])

        result = machine.run_spmd(program)
        max_wait = max(
            (a.get("wait_flag") + a.get("wait_request")) / a.total()
            for a in result.accounts)
        assert max_wait > 0.25

    def test_imbalanced_blocks_leave_cores_idle(self):
        """Paper Section IV-C: with the standard 552-element split, cores
        processing general-size blocks idle while the first-block core
        works — balanced splitting reduces the idle share."""
        def wait_share(stack):
            machine = Machine(SCCConfig())
            comm = make_communicator(machine, stack)
            rng = np.random.default_rng(1)
            inputs = [rng.normal(size=552) for _ in range(48)]

            def program(env):
                yield from comm.reduce_scatter(env, inputs[env.rank])

            result = machine.run_spmd(program)
            total = sum(a.total() for a in result.accounts)
            waits = sum(a.get("wait_flag") + a.get("wait_request")
                        for a in result.accounts)
            return waits / total

        assert wait_share("lightweight") > wait_share("lightweight_balanced")
