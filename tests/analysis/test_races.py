"""Unit tests for the happens-before race detector.

Four layers, innermost out:

* the vector-clock algebra itself (hypothesis property tests:
  join is a least upper bound, happens-before is a partial order);
* HB-edge construction from flag edges (release/acquire, cumulative
  release sequences, program order, attributed forces) driven through
  tiny hand-built SPMD programs;
* diagnostic identity (:meth:`RaceDiagnostic.key` is order- and
  rule-agnostic, :meth:`~RaceDiagnostic.orientation` is not);
* the cost contract, both directions — detector absent is golden
  bit-identical, detector installed preserves virtual time and event
  counts exactly and stays inside a wall-clock budget.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.races import (
    Access,
    RaceDetector,
    RaceDiagnostic,
    RaceError,
    vc_concurrent,
    vc_join,
    vc_leq,
    vc_zero,
)
from repro.bench.runner import program_for
from repro.core.ops import SUM
from repro.core.registry import STACKS, make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.rcce.transfer import get_bytes, put_bytes

# Pre-subsystem golden latencies (the calibration lock's values for
# allreduce n=552 p=48, in us; same table tests/faults and the sanitizer
# zero-overhead suites pin).
GOLDEN_ALLREDUCE_552 = {
    "blocking": 2927.6,
    "ircce": 2315.8,
    "lightweight": 1405.9,
    "lightweight_balanced": 1125.4,
    "mpb": 1024.8,
    "rckmpi": 5831.2,
}

_PAYLOAD = np.arange(64, dtype=np.uint8)

clocks = st.lists(st.integers(min_value=0, max_value=2**40),
                  min_size=4, max_size=4).map(
                      lambda xs: np.array(xs, dtype=np.int64))


class TestVectorClockAlgebra:
    @given(clocks, clocks, clocks)
    @settings(max_examples=200, deadline=None)
    def test_join_associative_commutative_idempotent(self, a, b, c):
        assert np.array_equal(vc_join(vc_join(a, b), c),
                              vc_join(a, vc_join(b, c)))
        assert np.array_equal(vc_join(a, b), vc_join(b, a))
        assert np.array_equal(vc_join(a, a), a)

    @given(clocks, clocks)
    @settings(max_examples=200, deadline=None)
    def test_join_is_least_upper_bound(self, a, b):
        j = vc_join(a, b)
        assert vc_leq(a, j) and vc_leq(b, j)
        # Least: any common upper bound dominates the join.
        assert vc_leq(j, vc_join(j, a))

    @given(clocks, clocks, clocks)
    @settings(max_examples=200, deadline=None)
    def test_leq_is_a_partial_order(self, a, b, c):
        assert vc_leq(a, a)
        if vc_leq(a, b) and vc_leq(b, a):
            assert np.array_equal(a, b)
        if vc_leq(a, b) and vc_leq(b, c):
            assert vc_leq(a, c)

    @given(clocks, clocks, clocks)
    @settings(max_examples=200, deadline=None)
    def test_join_monotonic(self, a, b, c):
        if vc_leq(a, b):
            assert vc_leq(vc_join(a, c), vc_join(b, c))

    @given(clocks, clocks)
    @settings(max_examples=200, deadline=None)
    def test_concurrency_symmetric_and_irreflexive(self, a, b):
        assert vc_concurrent(a, b) == vc_concurrent(b, a)
        assert not vc_concurrent(a, a)
        # Exactly one of: ordered one way, the other way, or concurrent
        # (with equality folded into both leqs).
        assert vc_leq(a, b) or vc_leq(b, a) or vc_concurrent(a, b)

    def test_zero_is_bottom(self):
        z = vc_zero(4)
        v = np.array([3, 1, 4, 1], dtype=np.int64)
        assert vc_leq(z, v)
        assert np.array_equal(vc_join(z, v), v)


def _detect(builder, ranks=2):
    machine = Machine()
    detector = RaceDetector().install(machine)
    program = builder(machine)
    machine.run_spmd(program, ranks=list(range(ranks)))
    return detector


class TestHappensBeforeEdges:
    """HB-edge construction from flag edges, on minimal SPMD programs."""

    def test_flag_edge_orders_publish(self):
        """write -> release -> acquire -> read is the canonical clean
        protocol: the detector must stay silent."""
        def builder(machine):
            region = machine.mpbs[1].alloc(_PAYLOAD.size)
            sent = machine.flag(1, "t.sent")

            def program(env):
                if env.rank == 1:
                    yield from put_bytes(env, region, _PAYLOAD)
                    yield from sent.set_by(env.core)
                else:
                    yield from sent.wait_set(env.core)
                    yield from get_bytes(env, region, _PAYLOAD.size)
            return program

        _detect(builder).assert_clean()

    def test_missing_edge_is_reported(self):
        """The same data movement with the wait removed has no HB edge:
        the read races the write even though it happens later."""
        def builder(machine):
            region = machine.mpbs[1].alloc(_PAYLOAD.size)

            def program(env):
                if env.rank == 1:
                    yield from put_bytes(env, region, _PAYLOAD)
                else:
                    yield from env.sleep(10_000_000)
                    yield from get_bytes(env, region, _PAYLOAD.size)
            return program

        detector = _detect(builder)
        assert "race-latency-coincidence" in detector.counts()
        with pytest.raises(RaceError):
            detector.assert_clean()

    def test_program_order_covers_same_core(self):
        """A core's own accesses are ordered by program order — no flag
        needed to read back your own write."""
        def builder(machine):
            region = machine.mpbs[0].alloc(_PAYLOAD.size)

            def program(env):
                if env.rank == 0:
                    yield from put_bytes(env, region, _PAYLOAD)
                    yield from get_bytes(env, region, _PAYLOAD.size)
                    yield from put_bytes(env, region, _PAYLOAD[::-1].copy())
                else:
                    yield from env.sleep(1_000)
            return program

        _detect(builder).assert_clean()

    def test_happens_before_is_transitive_across_cores(self):
        """0 -(flag)-> 1 -(flag)-> 2 orders 2's read after 0's write
        even though 0 and 2 never synchronize directly."""
        def builder(machine):
            region = machine.mpbs[0].alloc(_PAYLOAD.size)
            f01 = machine.flag(1, "t.f01")
            f12 = machine.flag(2, "t.f12")

            def program(env):
                if env.rank == 0:
                    yield from put_bytes(env, region, _PAYLOAD)
                    yield from f01.set_by(env.core)
                elif env.rank == 1:
                    yield from f01.wait_set(env.core)
                    yield from f12.set_by(env.core)
                else:
                    yield from f12.wait_set(env.core)
                    yield from get_bytes(env, region, _PAYLOAD.size)
            return program

        _detect(builder, ranks=3).assert_clean()

    def test_release_sequence_is_cumulative(self):
        """A reused flag keeps its earlier releases: acquiring the
        second set also orders after everything before the first."""
        def builder(machine):
            region = machine.mpbs[1].alloc(_PAYLOAD.size)
            sent = machine.flag(1, "t.sent")

            def program(env):
                if env.rank == 1:
                    yield from put_bytes(env, region, _PAYLOAD)
                    yield from sent.set_by(env.core)
                    yield from sent.clear_by(env.core)
                    yield from sent.set_by(env.core)
                else:
                    yield from env.sleep(5_000_000)
                    yield from sent.wait_set(env.core)
                    yield from get_bytes(env, region, _PAYLOAD.size)
            return program

        _detect(builder).assert_clean()

    def test_observed_flag_orders_flag_writers(self):
        """set -> observe -> clear by another core is the RCCE handshake
        shape and must not be a flag race."""
        def builder(machine):
            sent = machine.flag(1, "t.sent")

            def program(env):
                if env.rank == 1:
                    yield from sent.set_by(env.core)
                else:
                    yield from sent.wait_set(env.core)
                    yield from sent.clear_by(env.core)
            return program

        _detect(builder).assert_clean()

    def test_attributed_force_is_a_release(self):
        """force(value, actor=...) (the announcement channel) carries
        the actor's clock: waiters synchronize with it."""
        def builder(machine):
            region = machine.mpbs[1].alloc(_PAYLOAD.size)
            note = machine.flag(0, "t.note")

            def program(env):
                if env.rank == 1:
                    yield from put_bytes(env, region, _PAYLOAD)
                    note.force(True, actor=env.core_id)
                else:
                    yield from note.wait_set(env.core)
                    yield from get_bytes(env, region, _PAYLOAD.size)
            return program

        _detect(builder).assert_clean()

    def test_unattributed_force_orders_nothing(self):
        """A bare setup force carries no clock — readers relying on it
        for ordering are racing."""
        def builder(machine):
            region = machine.mpbs[1].alloc(_PAYLOAD.size)
            note = machine.flag(0, "t.note")

            def program(env):
                if env.rank == 1:
                    yield from put_bytes(env, region, _PAYLOAD)
                    note.force(True)
                else:
                    yield from note.wait_set(env.core)
                    yield from get_bytes(env, region, _PAYLOAD.size)
            return program

        detector = _detect(builder)
        assert "race-latency-coincidence" in detector.counts()

    def test_clocks_advance_and_stay_monotonic(self):
        machine = Machine()
        detector = RaceDetector().install(machine)
        region = machine.mpbs[0].alloc(_PAYLOAD.size)
        sent = machine.flag(0, "t.sent")
        snapshots = []

        def program(env):
            if env.rank == 0:
                yield from put_bytes(env, region, _PAYLOAD)
                snapshots.append(detector.clock_of(0))
                yield from sent.set_by(env.core)
                snapshots.append(detector.clock_of(0))
            else:
                yield from sent.wait_set(env.core)
                snapshots.append(detector.clock_of(1))

        machine.run_spmd(program, ranks=[0, 1])
        after_write, after_release, after_acquire = snapshots
        assert after_write[0] >= 1
        assert vc_leq(after_write, after_release)
        assert not np.array_equal(after_write, after_release)
        # The acquire pulled the releaser's component across cores.
        assert after_acquire[0] >= after_release[0]


class TestDiagnosticIdentity:
    def _diag(self, first, second, rule):
        return RaceDiagnostic(time_ps=1, rule=rule, owner=3, first=first,
                              second=second, offset=192, nbytes=64)

    def test_key_is_order_and_rule_agnostic(self):
        w = Access(core=1, clock=5, op="write", time_ps=10)
        r = Access(core=2, clock=3, op="read", time_ps=20)
        forward = self._diag(w, r, "race-guarded-payload")
        flipped = self._diag(r, w, "race-mpb-rw")
        assert forward.key() == flipped.key()
        assert forward.orientation() != flipped.orientation()

    def test_key_separates_locations(self):
        w = Access(core=1, clock=5, op="write", time_ps=10)
        r = Access(core=2, clock=3, op="read", time_ps=20)
        mpb = self._diag(w, r, "race-mpb-wr")
        flag = RaceDiagnostic(time_ps=1, rule="race-flag-set-set", owner=3,
                              first=w, second=r, flag="t.go")
        assert mpb.key() != flag.key()


def _run(stack, size, cores, detected):
    machine = Machine(SCCConfig())
    if detected:
        RaceDetector().install(machine)
    comm = make_communicator(machine, stack)
    rng = np.random.default_rng(20120901)
    inputs = [rng.normal(size=size) for _ in range(cores)]
    program = program_for("allreduce", comm, inputs, SUM)
    result = machine.run_spmd(program, ranks=list(range(cores)))
    return int(result.values[0]), machine.sim.events_processed


class TestCostContract:
    @pytest.mark.parametrize("stack", STACKS)
    def test_goldens_without_detector(self, stack):
        """No detector installed: the seed latencies are untouched."""
        elapsed_ps, _ = _run(stack, 552, 48, detected=False)
        assert elapsed_ps / 1e6 == pytest.approx(
            GOLDEN_ALLREDUCE_552[stack], rel=1e-3)

    @pytest.mark.parametrize("stack", STACKS)
    def test_enabled_detector_is_bit_identical(self, stack):
        bare = _run(stack, 64, 8, detected=False)
        on = _run(stack, 64, 8, detected=True)
        assert on == bare

    def test_enabling_costs_under_budget(self):
        """Wall-clock budget: detecting the smoke point costs < 5x
        (measured ~1.5-2.5x; the slack keeps loaded CI hosts green —
        same contract as the sanitizer's)."""
        def best(detected):
            samples = []
            for _ in range(2):
                started = time.perf_counter()
                _run("lightweight", 96, 48, detected=detected)
                samples.append(time.perf_counter() - started)
            return min(samples)

        assert best(True) < 5 * best(False)
