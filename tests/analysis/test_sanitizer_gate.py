"""CI gates: clean protocol stacks sanitize clean; known-bad ones don't.

Two directions, both required for the sanitizer to mean anything:

* **Clean gate** — every collective kind at 2/47/48 cores (and every
  stack for Allreduce) runs under the sanitizer with zero diagnostics.
  A finding here is a protocol bug in the shipped stacks.
* **Detector gate** — every known-bad fixture schedule from
  :mod:`repro.analysis.fixtures` triggers its documented rule.  Silence
  here means the sanitizer lost a detector.

Plus the regression pinning the cross-call MPB-Allreduce handshake bug
this subsystem found (see docs/static-analysis.md): re-forcing the
``ready`` flags on every entry loses a notification and — under core
stalls — deadlocks the ring.
"""

import numpy as np
import pytest

from repro.analysis.fixtures import FIXTURES, run_fixture
from repro.analysis.sanitizer import Sanitizer
from repro.bench.runner import KINDS, program_for
from repro.core.ops import SUM
from repro.core.registry import STACKS, make_communicator
from repro.faults import FaultInjector, FaultPlan
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.sim.errors import DeadlockError

pytestmark = pytest.mark.sanitize

GATE_CORES = (2, 47, 48)


def _run_sanitized(kind, stack, size, cores, calls=1, plan=None):
    machine = Machine(SCCConfig())
    if plan is not None:
        FaultInjector(plan).install(machine)
    san = Sanitizer().install(machine)
    comm = make_communicator(machine, stack)
    rng = np.random.default_rng(20120901)
    inputs = [rng.normal(size=size) for _ in range(cores)]
    program = program_for(kind, comm, inputs, SUM)
    result = machine.run_spmd(program, ranks=list(range(cores)))
    return san, result


class TestCleanGate:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("cores", GATE_CORES)
    def test_every_kind_sanitizes_clean(self, kind, cores):
        san, _ = _run_sanitized(kind, "lightweight", 96, cores)
        san.assert_clean()

    @pytest.mark.parametrize("stack", STACKS)
    def test_every_stack_sanitizes_clean_at_full_chip(self, stack):
        san, _ = _run_sanitized("allreduce", stack, 96, 48)
        san.assert_clean()

    @pytest.mark.parametrize("stack", ["blocking", "ircce", "mpb"])
    def test_short_protocol_paths_sanitize_clean(self, stack):
        # size 8 stays under the long-message threshold: the one-line
        # eager paths and their flag handshakes.
        san, _ = _run_sanitized("allreduce", stack, 8, 47)
        san.assert_clean()

    def test_repeated_collectives_share_state_cleanly(self):
        # Back-to-back calls on one machine: cross-call flag and MPB
        # slot reuse must also satisfy the discipline.
        machine = Machine(SCCConfig())
        san = Sanitizer().install(machine)
        comm = make_communicator(machine, "mpb")
        rng = np.random.default_rng(20120901)
        inputs = [rng.normal(size=96) for _ in range(8)]

        def program(env):
            out = None
            for _ in range(3):
                out = yield from comm.allreduce(env, inputs[env.rank], SUM)
            return out

        result = machine.run_spmd(program, ranks=list(range(8)))
        san.assert_clean()
        for value in result.values:
            np.testing.assert_allclose(value, sum(inputs))


class TestDetectorGate:
    @pytest.mark.parametrize("fixture", FIXTURES, ids=lambda f: f.name)
    def test_known_bad_schedule_is_flagged(self, fixture):
        san = run_fixture(fixture)
        counts = san.counts()
        for rule in fixture.rules:
            assert rule in counts, (
                f"fixture {fixture.name!r} should trigger {rule!r}; "
                f"got {counts}")

    def test_fixture_diagnostics_carry_context(self):
        san = run_fixture(FIXTURES[0])               # read-before-publish
        diag = san.diagnostics[0]
        assert diag.actor == 0
        assert diag.owner == 1
        assert diag.time_ps > 0


class TestCrossCallRegression:
    """The bug the sanitizer found in the seed MPB-direct Allreduce.

    The seed forced ``mpbar.ready.* = True`` on *every* call entry.  The
    handshake is self-restoring, so on re-entry the force is usually a
    no-op — but a producer can finish a call and re-enter while its
    consumer still owes the final ``ready`` hand-back of the previous
    call; the force then masks the pending hand-back and the two calls'
    handshakes interleave.  Fault-free this surfaces as a lost ``ready``
    notification; with core stalls the ring deadlocks.  The fix
    initializes each (core, half) once and trusts the handshake after.
    """

    STALL_PLAN = dict(core_stall_prob=0.05, core_stall_cycles=50_000,
                      seed=7)

    @staticmethod
    def _machine(emulate_seed_behaviour, plan):
        machine = Machine(SCCConfig())
        if plan is not None:
            FaultInjector(plan).install(machine)
        san = Sanitizer().install(machine)
        comm = make_communicator(machine, "mpb")
        rng = np.random.default_rng(20120901)
        inputs = [rng.normal(size=96) for _ in range(8)]

        def program(env):
            out = None
            for _ in range(2):
                if emulate_seed_behaviour:
                    for half in (0, 1):
                        env.machine.flag(
                            env.core_id, f"mpbar.ready.{half}").force(True)
                out = yield from comm.allreduce(env, inputs[env.rank], SUM)
            return out

        return machine, san, program, inputs

    def test_seed_behaviour_flagged_fault_free(self):
        machine, san, program, _ = self._machine(True, None)
        machine.run_spmd(program, ranks=list(range(8)))
        assert "flag-double-set" in san.counts()

    def test_seed_behaviour_deadlocks_under_stalls(self):
        machine, san, program, _ = self._machine(
            True, FaultPlan(**self.STALL_PLAN))
        with pytest.raises(DeadlockError):
            machine.run_spmd(program, ranks=list(range(8)))
        assert "write-while-reader-pending" in san.counts()

    def test_fixed_handshake_survives_stalls_clean(self):
        machine, san, program, inputs = self._machine(
            False, FaultPlan(**self.STALL_PLAN))
        result = machine.run_spmd(program, ranks=list(range(8)))
        san.assert_clean()
        for value in result.values:
            np.testing.assert_allclose(value, sum(inputs))
