"""Unit tests of the sanitizer's shadow state machine.

These drive the hooks directly (raw region accesses with explicit
actors, hook-level flag writes) so each transition of
UNWRITTEN -> WRITTEN -> PUBLISHED -> CONSUMED (+ STALE) is pinned in
isolation; the end-to-end behaviour on real protocol schedules lives in
``test_sanitizer_gate.py``.
"""

import numpy as np
import pytest

from repro.analysis.sanitizer import (
    ByteState,
    Diagnostic,
    RULES,
    Sanitizer,
    SanitizerError,
)
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.hw.mpb import MPBError

PAYLOAD = np.arange(48, dtype=np.uint8)


@pytest.fixture()
def machine():
    return Machine(SCCConfig())


@pytest.fixture()
def san(machine):
    return Sanitizer().install(machine)


def _flag(machine, owner=0, name="t.sent"):
    return machine.flag(owner, name)


def _write(machine, actor, owner=0):
    """Timed-style write by ``actor`` into a fresh slot of ``owner``."""
    region = machine.mpbs[owner].alloc(PAYLOAD.size)
    region.write(PAYLOAD, actor=actor)
    return region


class TestLifecycle:
    def test_install_wires_every_hook_site(self, machine, san):
        assert machine.san is san
        assert machine.sim.san is san
        assert all(mpb.san is san for mpb in machine.mpbs)

    def test_double_install_rejected(self, machine, san):
        with pytest.raises(RuntimeError):
            Sanitizer().install(machine)

    def test_uninstall_detaches_everything(self, machine, san):
        san.uninstall()
        assert machine.san is None
        assert machine.sim.san is None
        assert all(mpb.san is None for mpb in machine.mpbs)

    def test_rules_catalogue_matches_reporting(self):
        # Every rule string used by _report must be in the catalogue
        # (docs and tests key off RULES).
        assert len(set(RULES)) == len(RULES)


class TestByteStateMachine:
    def test_clean_publish_consume_cycle(self, machine, san):
        region = _write(machine, actor=1)
        san.on_flag_write(_flag(machine), True, 1)   # publish
        region.read(PAYLOAD.size, actor=2)           # consume
        assert san.total_findings == 0

    def test_read_before_publish(self, machine, san):
        region = _write(machine, actor=1)
        region.read(PAYLOAD.size, actor=2)
        assert san.counts() == {"read-before-publish": 1}

    def test_writer_may_read_back_own_unpublished_bytes(self, machine, san):
        region = _write(machine, actor=1)
        region.read(PAYLOAD.size, actor=1)           # write-verify pattern
        assert san.total_findings == 0

    def test_uninit_read(self, machine, san):
        region = machine.mpbs[0].alloc(PAYLOAD.size)
        region.read(PAYLOAD.size, actor=2)
        assert san.counts() == {"uninit-read": 1}

    def test_setup_writes_are_exempt_and_published(self, machine, san):
        region = machine.mpbs[0].alloc(PAYLOAD.size)
        region.write(PAYLOAD)                        # actor=None: setup
        region.read(PAYLOAD.size, actor=2)
        assert san.total_findings == 0

    def test_write_while_reader_pending(self, machine, san):
        region = _write(machine, actor=1)
        san.on_flag_write(_flag(machine), True, 1)
        region.write(PAYLOAD, actor=1)               # reader never consumed
        assert "write-while-reader-pending" in san.counts()

    def test_overwrite_after_consumption_is_clean(self, machine, san):
        region = _write(machine, actor=1)
        san.on_flag_write(_flag(machine), True, 1)
        region.read(PAYLOAD.size, actor=2)
        region.write(PAYLOAD, actor=1)               # slot was drained
        assert san.total_findings == 0

    def test_consumer_reread_is_stale(self, machine, san):
        region = _write(machine, actor=1)
        san.on_flag_write(_flag(machine), True, 1)
        region.read(PAYLOAD.size, actor=2)
        region.read(PAYLOAD.size, actor=2)           # same reader again
        assert san.counts() == {"stale-read": 1}

    def test_second_consumer_is_legal_multicast(self, machine, san):
        region = _write(machine, actor=1)
        san.on_flag_write(_flag(machine), True, 1)
        region.read(PAYLOAD.size, actor=2)
        region.read(PAYLOAD.size, actor=3)           # different reader
        assert san.total_findings == 0

    def test_corruption_makes_bytes_stale(self, machine, san):
        region = _write(machine, actor=1)
        san.on_flag_write(_flag(machine), True, 1)
        san.on_corrupt(region.mpb, region.offset + 3)
        region.read(PAYLOAD.size, actor=2)
        assert "stale-read" in san.counts()

    def test_rewrite_repairs_stale_bytes(self, machine, san):
        region = _write(machine, actor=1)
        san.on_flag_write(_flag(machine), True, 1)
        san.on_corrupt(region.mpb, region.offset + 3)
        region.read(PAYLOAD.size, actor=2)
        region.write(PAYLOAD, actor=1)               # repair
        san.on_flag_write(_flag(machine), True, 1)
        region.read(PAYLOAD.size, actor=2)
        assert san.counts() == {"stale-read": 1}     # only the first read


class TestAllocationRules:
    def test_alloc_over_published_bytes(self, machine, san):
        mpb = machine.mpbs[0]
        region = mpb.alloc(PAYLOAD.size)
        region.write(PAYLOAD, actor=1)
        san.on_flag_write(_flag(machine), True, 1)
        mpb.reset_alloc()
        mpb.alloc(PAYLOAD.size)                      # same slot, unread
        assert san.counts() == {"overlapping-alloc": 1}

    def test_alloc_over_consumed_bytes_is_clean(self, machine, san):
        mpb = machine.mpbs[0]
        region = mpb.alloc(PAYLOAD.size)
        region.write(PAYLOAD, actor=1)
        san.on_flag_write(_flag(machine), True, 1)
        region.read(PAYLOAD.size, actor=2)
        mpb.reset_alloc()
        mpb.alloc(PAYLOAD.size)
        assert san.total_findings == 0

    def test_clear_resets_all_shadow_state(self, machine, san):
        region = _write(machine, actor=1)
        region.mpb.clear()
        fresh = machine.mpbs[0].alloc(PAYLOAD.size)
        fresh.read(PAYLOAD.size, actor=2)
        assert san.counts() == {"uninit-read": 1}    # back to UNWRITTEN

    def test_oob_read_recorded_then_raises(self, machine, san):
        region = machine.mpbs[0].alloc(32)
        with pytest.raises(MPBError):
            region.read(region.size + 1, actor=2)
        assert san.counts() == {"oob-access": 1}

    def test_oob_raw_write_recorded(self, machine, san):
        with pytest.raises(MPBError):
            machine.mpbs[0].write(machine.mpbs[0].size, PAYLOAD, actor=1)
        assert san.counts() == {"oob-access": 1}


class TestFlagRules:
    def test_double_set_is_lost_notification(self, machine, san):
        flag = _flag(machine)
        san.on_flag_write(flag, True, 1)
        flag.force(True)                             # apply like _write_by
        san.on_flag_write(flag, True, 2)
        # force() resets shadow tracking, so emulate the timed apply by
        # checking against the counted diagnostics instead.
        assert "flag-double-set" in san.counts()

    def test_double_clear(self, machine, san):
        flag = _flag(machine)                        # starts clear
        san.on_flag_write(flag, False, 1)
        assert san.counts() == {"flag-double-clear": 1}

    def test_unobserved_clear_by_other_core(self, machine, san):
        flag = _flag(machine)
        san.on_flag_write(flag, True, 1)
        flag.gate.set()
        san.on_flag_write(flag, False, 2)            # nobody ever waited
        assert "flag-unobserved-clear" in san.counts()

    def test_observed_clear_is_clean(self, machine, san):
        flag = _flag(machine)
        san.on_flag_write(flag, True, 1)
        flag.gate.set()
        san.on_flag_observed(flag, True, 2)
        san.on_flag_write(flag, False, 2)
        assert san.total_findings == 0

    def test_set_publishes_only_the_setters_pending_writes(self, machine,
                                                          san):
        mine = _write(machine, actor=1, owner=1)
        theirs = _write(machine, actor=2, owner=2)
        san.on_flag_write(_flag(machine), True, 1)   # publishes core 1 only
        mine.read(PAYLOAD.size, actor=3)
        assert san.total_findings == 0
        theirs.read(PAYLOAD.size, actor=3)
        assert san.counts() == {"read-before-publish": 1}

    def test_force_resets_tracking_without_publishing(self, machine, san):
        region = _write(machine, actor=1)
        flag = _flag(machine)
        flag.force(True)                             # untimed bookkeeping
        region.read(PAYLOAD.size, actor=2)
        assert san.counts() == {"read-before-publish": 1}


class TestReporting:
    def test_diagnostic_carries_span_context(self, machine, san):
        san.on_span_enter(1, "allreduce", None)
        san.on_span_enter(1, "round", 3)
        region = _write(machine, actor=1)
        region.read(PAYLOAD.size, actor=1)
        san.on_span_exit(1, "round")
        san.on_span_exit(1, "allreduce")
        region.read(PAYLOAD.size, actor=2)           # actor 2: empty stack
        diag = san.diagnostics[0]
        assert diag.rule == "read-before-publish"
        assert diag.spans == ()
        # Re-trigger with actor 1 inside spans.
        san.on_span_enter(1, "allreduce", None)
        san.on_span_enter(1, "round", 7)
        fresh = _write(machine, actor=2)
        fresh.read(PAYLOAD.size, actor=1)
        inside = san.diagnostics[-1]
        assert inside.spans == ("allreduce", "round")
        assert inside.round == 7
        assert "round=7" in str(inside)

    def test_assert_clean_raises_with_catalogue(self, machine, san):
        region = machine.mpbs[0].alloc(8)
        region.read(8, actor=1)
        with pytest.raises(SanitizerError) as err:
            san.assert_clean()
        assert "uninit-read" in str(err.value)
        assert err.value.diagnostics == san.diagnostics

    def test_diagnostics_capped_but_counted(self, machine):
        san = Sanitizer(max_diagnostics=3).install(machine)
        region = machine.mpbs[0].alloc(8)
        for _ in range(10):
            region.read(8, actor=1)
        assert len(san.diagnostics) == 3
        assert san.total_findings == 10

    def test_str_formats_site(self):
        diag = Diagnostic(time_ps=1500, rule="uninit-read", actor=4,
                          owner=7, offset=64, nbytes=8)
        text = str(diag)
        assert "uninit-read" in text
        assert "core4" in text
        assert "mpb[7][64:72]" in text
