"""CI self-check: the repo's own source tree passes its own lint.

This runs in the default test selection, so any PR that reintroduces a
wall-clock read, an unseeded RNG, an unrouted MPB access or an unused
import into ``src/repro`` fails the suite — the standing static gate
the runtime sanitizer complements.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.lint import default_root, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]
ENV = {**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")}


def test_src_tree_is_lint_clean():
    findings = lint_paths([default_root()])
    assert findings == [], "\n".join(str(f) for f in findings)


def test_cli_lint_subcommand_passes():
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint"],
        cwd=REPO_ROOT, capture_output=True, text=True, env=ENV,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_lint_reports_findings_nonzero(tmp_path):
    bad = tmp_path / "repro" / "sim" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint", str(bad)],
        cwd=REPO_ROOT, capture_output=True, text=True, env=ENV,
    )
    assert proc.returncode == 1
    assert f"{bad}:4:" in proc.stdout
    assert "wallclock-time" in proc.stdout


def test_static_checks_gate_passes_without_external_tools():
    # ruff/mypy may or may not be installed; the gate must succeed either
    # way on a clean tree (missing tools are SKIPPED, never failures).
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "run_static_checks.py")],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro-lint" in proc.stdout
