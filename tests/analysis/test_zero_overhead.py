"""The sanitizer's cost contract, both directions.

* **Disabled = absent.**  With no sanitizer installed, every hook site
  is one ``is not None`` check; collective latencies and the simulator's
  event count must be bit-identical to the pre-subsystem goldens (the
  calibration lock's values, same table the fault subsystem pins).
* **Enabled = pure observation.**  Even *with* the sanitizer installed,
  latencies and event counts are unchanged — it reads the machine but
  never consumes virtual time — and the wall-clock slowdown stays under
  a 5x budget on the smoke point.
"""

import time

import numpy as np
import pytest

from repro.analysis.sanitizer import Sanitizer
from repro.bench.runner import program_for
from repro.core.ops import SUM
from repro.core.registry import STACKS, make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine

# Pre-subsystem golden latencies (see tests/faults/test_zero_overhead.py:
# the calibration lock's values for allreduce n=552 p=48, in us).
GOLDEN_ALLREDUCE_552 = {
    "blocking": 2927.6,
    "ircce": 2315.8,
    "lightweight": 1405.9,
    "lightweight_balanced": 1125.4,
    "mpb": 1024.8,
    "rckmpi": 5831.2,
}


def _run(stack, size, cores, sanitized):
    machine = Machine(SCCConfig())
    if sanitized:
        Sanitizer().install(machine)
    comm = make_communicator(machine, stack)
    rng = np.random.default_rng(20120901)
    inputs = [rng.normal(size=size) for _ in range(cores)]
    program = program_for("allreduce", comm, inputs, SUM)
    result = machine.run_spmd(program, ranks=list(range(cores)))
    return int(result.values[0]), machine.sim.events_processed


@pytest.mark.parametrize("stack", STACKS)
def test_goldens_without_sanitizer(stack):
    """The hook wiring alone (no sanitizer installed) left the seed
    latencies untouched."""
    elapsed_ps, _ = _run(stack, 552, 48, sanitized=False)
    assert elapsed_ps / 1e6 == pytest.approx(GOLDEN_ALLREDUCE_552[stack],
                                             rel=1e-3)


@pytest.mark.parametrize("stack", STACKS)
def test_enabled_sanitizer_is_bit_identical(stack):
    bare_ps, bare_events = _run(stack, 64, 8, sanitized=False)
    on_ps, on_events = _run(stack, 64, 8, sanitized=True)
    assert on_ps == bare_ps
    assert on_events == bare_events


def test_kernel_events_metric_path_unchanged():
    """The events/sec baseline (BENCH_wallclock.json's kernel metric)
    counts the same events with the sanitizer installed: observation
    adds zero simulator events."""
    bare_ps, bare_events = _run("lightweight_balanced", 552, 48,
                                sanitized=False)
    on_ps, on_events = _run("lightweight_balanced", 552, 48,
                            sanitized=True)
    assert (on_ps, on_events) == (bare_ps, bare_events)


def test_enabling_costs_under_budget():
    """Wall-clock budget: sanitizing the smoke point costs < 5x.

    Measured overhead is ~1.5-2.5x; 5x is the contract so the check
    stays robust on loaded CI hosts (best-of-two on each side).
    """
    def best(sanitized):
        samples = []
        for _ in range(2):
            started = time.perf_counter()
            _run("lightweight", 96, 48, sanitized=sanitized)
            samples.append(time.perf_counter() - started)
        return min(samples)

    assert best(True) < 5 * best(False)
