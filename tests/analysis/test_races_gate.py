"""CI gates for the race detector + interleaving explorer.

Mirrors the sanitizer's two-sided gate at the happens-before layer:

* **Clean gate** — the shipped collective stacks produce zero race
  candidates (every kind at 2/47/48 cores on the lightweight stack,
  every stack for Allreduce at full chip, plus synthesized winners from
  the committed selection table).  Because detection is exhaustive over
  *all* legal orderings — not just the observed one — a clean run here
  is a much stronger statement than the sanitizer's.
* **Detector gate** — every known-racy fixture triggers exactly its
  documented rule, and the adversarial explorer *confirms* the
  confirmable ones by actually reproducing a reordered execution under
  a bounded timing perturbation (the two deliberately unconfirmable
  fixtures exercise the benign verdict).

The explorer itself is deterministic: exploring the same scenario twice
must yield identical verdicts.
"""

import pytest

from repro.analysis.fixtures import (
    RACE_FIXTURES,
    race_fixture,
    race_fixture_scenario,
    run_race_fixture,
)
from repro.analysis.races import (
    collective_scenario,
    explore,
    run_detected,
    synth_winner_scenarios,
)
from repro.bench.runner import KINDS
from repro.core.registry import STACKS

pytestmark = pytest.mark.race

GATE_CORES = (2, 47, 48)


class TestCleanGate:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("cores", GATE_CORES)
    def test_every_kind_is_race_free(self, kind, cores):
        detector, failure = run_detected(
            collective_scenario(kind, "lightweight", cores, 96))
        assert failure is None
        detector.assert_clean()

    @pytest.mark.parametrize("stack", STACKS)
    def test_every_stack_is_race_free_at_full_chip(self, stack):
        detector, failure = run_detected(
            collective_scenario("allreduce", stack, 48, 96))
        assert failure is None
        detector.assert_clean()

    @pytest.mark.parametrize("stack", ["blocking", "ircce", "mpb"])
    def test_short_protocol_paths_are_race_free(self, stack):
        # size 8 stays under the long-message threshold: the one-line
        # eager paths and their flag handshakes.
        detector, failure = run_detected(
            collective_scenario("allreduce", stack, 47, 8))
        assert failure is None
        detector.assert_clean()

    def test_synth_winners_are_race_free(self):
        # Two winners keep the default run fast; `python -m repro race
        # --gate` covers the full repertoire.
        for scenario in synth_winner_scenarios(limit=2):
            detector, failure = run_detected(scenario)
            assert failure is None, scenario.name
            detector.assert_clean()


class TestDetectorGate:
    @pytest.mark.parametrize("fixture", RACE_FIXTURES, ids=lambda f: f.name)
    def test_known_racy_schedule_is_flagged(self, fixture):
        detector = run_race_fixture(fixture)
        rules = {d.rule for d in detector.diagnostics}
        assert set(fixture.rules) <= rules, (
            f"fixture {fixture.name!r} should trigger {fixture.rules}; "
            f"got {sorted(rules)}")

    def test_fixture_diagnostics_carry_context(self):
        detector = run_race_fixture(race_fixture("flag-before-payload"))
        diag = detector.diagnostics[0]
        assert diag.time_ps > 0
        assert diag.owner == 1
        assert {diag.first.core, diag.second.core} == {0, 1}
        assert diag.first.time_ps <= diag.second.time_ps


class TestExplorer:
    def test_confirms_a_real_reordered_execution(self):
        """The acceptance-criterion witness: a perturbed re-execution of
        the write/write fixture actually lands the two writes in the
        opposite order, same race key, flipped orientation."""
        fixture = race_fixture("unordered-write-write")
        report = explore(race_fixture_scenario(fixture))
        assert len(report.verdicts) == 1
        verdict = report.verdicts[0]
        assert verdict.confirmed
        assert verdict.witness is not None
        assert verdict.witness.key() == verdict.baseline.key()
        assert (verdict.witness.orientation()
                != verdict.baseline.orientation())

    @pytest.mark.parametrize("name", ["flag-before-payload",
                                      "flag-race-set-clear"])
    def test_confirms_flag_protocol_fixtures(self, name):
        report = explore(race_fixture_scenario(race_fixture(name)))
        assert report.confirmed, name

    def test_classifies_unflippable_candidate_benign(self):
        """A reversed alloc-vs-write replay produces no conflicting
        access at all, so the candidate must survive the whole budget
        and come back benign."""
        report = explore(
            race_fixture_scenario(race_fixture("alloc-without-ack")))
        assert len(report.verdicts) == 1
        assert not report.verdicts[0].confirmed
        assert report.runs == 9      # the full 3-level x 3-seed budget

    def test_exploration_is_deterministic(self):
        scenario = race_fixture_scenario(
            race_fixture("unordered-write-write"))
        first = explore(scenario)
        second = explore(scenario)
        assert [(v.key, v.confirmed, v.perturbation)
                for v in first.verdicts] == \
               [(v.key, v.confirmed, v.perturbation)
                for v in second.verdicts]
        assert first.runs == second.runs
