"""The AST lint's rules fire on synthetic bad code and respect waivers.

Each rule gets a minimal offending module written under a fake
``repro/<pkg>/`` directory (the rules are package-scoped), plus a
matching negative case showing the idiomatic form passes.
"""

from pathlib import Path

from repro.analysis.lint import (
    Finding,
    default_root,
    lint_file,
    lint_paths,
    main,
)


def _module(tmp_path: Path, pkg: str, source: str,
            name: str = "mod.py") -> Path:
    path = tmp_path / "repro" / pkg / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


def _rules(findings: list[Finding]) -> set[str]:
    return {f.rule for f in findings}


class TestWallclockRule:
    def test_time_time_in_sim_flagged(self, tmp_path):
        path = _module(tmp_path, "sim",
                       "import time\n\ndef f():\n    return time.time()\n")
        assert _rules(lint_file(path)) == {"wallclock-time"}

    def test_perf_counter_from_import_flagged(self, tmp_path):
        path = _module(tmp_path, "hw",
                       "from time import perf_counter\n\n"
                       "def f():\n    return perf_counter()\n")
        assert "wallclock-time" in _rules(lint_file(path))

    def test_datetime_now_flagged(self, tmp_path):
        path = _module(tmp_path, "core",
                       "from datetime import datetime\n\n"
                       "def f():\n    return datetime.now()\n")
        assert "wallclock-time" in _rules(lint_file(path))

    def test_bench_package_exempt(self, tmp_path):
        path = _module(tmp_path, "bench",
                       "import time\n\ndef f():\n    return time.time()\n")
        assert lint_file(path) == []


class TestUnseededRandomRule:
    def test_unseeded_default_rng_flagged(self, tmp_path):
        path = _module(tmp_path, "rcce",
                       "import numpy as np\n\n"
                       "def f():\n    return np.random.default_rng()\n")
        assert _rules(lint_file(path)) == {"unseeded-random"}

    def test_seeded_default_rng_passes(self, tmp_path):
        path = _module(tmp_path, "rcce",
                       "import numpy as np\n\n"
                       "def f(seed):\n    return np.random.default_rng(seed)\n")
        assert lint_file(path) == []

    def test_legacy_np_random_flagged(self, tmp_path):
        path = _module(tmp_path, "core",
                       "import numpy as np\n\n"
                       "def f():\n    return np.random.randint(4)\n")
        assert "unseeded-random" in _rules(lint_file(path))

    def test_stdlib_random_flagged(self, tmp_path):
        path = _module(tmp_path, "sim",
                       "import random\n\n"
                       "def f():\n    return random.random()\n")
        assert "unseeded-random" in _rules(lint_file(path))


class TestMpbDirectWriteRule:
    BAD = ("from repro.hw.mpb import MPBRegion\n\n"
           "def f(region: MPBRegion, raw):\n    region.write(raw)\n")

    def test_direct_write_outside_transfer_layer_flagged(self, tmp_path):
        path = _module(tmp_path, "core", self.BAD)
        assert _rules(lint_file(path)) == {"mpb-direct-write"}

    def test_rcce_package_is_the_transfer_layer(self, tmp_path):
        # The direct call is sanctioned there (only the actor attribution
        # rule still applies to it).
        rules = _rules(lint_file(_module(tmp_path, "rcce", self.BAD)))
        assert "mpb-direct-write" not in rules

    def test_module_without_mpb_import_exempt(self, tmp_path):
        # `.write` on arbitrary objects (files, profiles) is fine.
        path = _module(tmp_path, "obs",
                       "def f(fh):\n    fh.write('x')\n")
        assert lint_file(path) == []

    def test_raw_data_poke_flagged(self, tmp_path):
        path = _module(tmp_path, "faults",
                       "from repro.hw.mpb import MPB\n\n"
                       "def f(mpb: MPB):\n    mpb.data[0] = 1\n")
        assert "mpb-direct-write" in _rules(lint_file(path))

    def test_waiver_comment_above(self, tmp_path):
        path = _module(
            tmp_path, "core",
            "from repro.hw.mpb import MPBRegion\n\n"
            "def f(region: MPBRegion, raw):\n"
            "    # repro-lint: allow=mpb-direct-write\n"
            "    region.write(raw)\n")
        assert lint_file(path) == []

    def test_waiver_same_line(self, tmp_path):
        path = _module(
            tmp_path, "core",
            "from repro.hw.mpb import MPBRegion\n\n"
            "def f(region: MPBRegion, raw):\n"
            "    region.write(raw)  # repro-lint: allow=mpb-direct-write\n")
        assert lint_file(path) == []

    def test_waiver_is_rule_specific(self, tmp_path):
        path = _module(
            tmp_path, "core",
            "from repro.hw.mpb import MPBRegion\n\n"
            "def f(region: MPBRegion, raw):\n"
            "    region.write(raw)  # repro-lint: allow=span-unpaired\n")
        assert "mpb-direct-write" in _rules(lint_file(path))


class TestUnattributedAccessRule:
    def test_transfer_layer_write_without_actor_flagged(self, tmp_path):
        path = _module(tmp_path, "rcce",
                       "def f(region, raw):\n    region.write(raw)\n")
        assert _rules(lint_file(path)) == {"unattributed-access"}

    def test_transfer_layer_write_with_actor_passes(self, tmp_path):
        path = _module(tmp_path, "rcce",
                       "def f(region, raw, me):\n"
                       "    region.write(raw, actor=me)\n")
        assert lint_file(path) == []

    def test_force_without_actor_flagged_anywhere(self, tmp_path):
        path = _module(tmp_path, "core",
                       "def f(flag):\n    flag.force(True)\n")
        assert _rules(lint_file(path)) == {"unattributed-access"}

    def test_force_with_actor_passes(self, tmp_path):
        path = _module(tmp_path, "core",
                       "def f(flag, me):\n    flag.force(True, actor=me)\n")
        assert lint_file(path) == []

    def test_outside_transfer_layer_defers_to_direct_write(self, tmp_path):
        # In `core` the raw .write is mpb-direct-write territory; the
        # attribution rule must not double-report the same call.
        path = _module(tmp_path, "core",
                       "from repro.hw.mpb import MPBRegion\n\n"
                       "def f(region: MPBRegion, raw):\n"
                       "    region.write(raw)\n")
        assert _rules(lint_file(path)) == {"mpb-direct-write"}

    def test_waiver_for_setup_force(self, tmp_path):
        path = _module(
            tmp_path, "core",
            "def f(flag):\n"
            "    flag.force(False)  # repro-lint: allow=unattributed-access\n")
        assert lint_file(path) == []


class TestSpanRules:
    def test_bare_span_call_flagged(self, tmp_path):
        path = _module(tmp_path, "obs",
                       "from repro.obs.spans import span\n\n"
                       "def f(env):\n    span(env, 'copy')\n")
        assert "span-unpaired" in _rules(lint_file(path))

    def test_with_span_passes(self, tmp_path):
        path = _module(tmp_path, "obs",
                       "from repro.obs.spans import span\n\n"
                       "def f(env):\n"
                       "    with span(env, 'copy'):\n        pass\n")
        assert lint_file(path) == []

    def test_unpaired_begin_literal_flagged(self, tmp_path):
        path = _module(tmp_path, "obs",
                       "def f(tracer, now):\n"
                       "    tracer.emit(now, 'core0', 'send.begin', None)\n")
        assert _rules(lint_file(path)) == {"trace-begin-end"}

    def test_paired_literals_pass(self, tmp_path):
        path = _module(tmp_path, "obs",
                       "def f(tracer, now):\n"
                       "    tracer.emit(now, 'c', 'send.begin', None)\n"
                       "    tracer.emit(now, 'c', 'send.end', None)\n")
        assert lint_file(path) == []


class TestFloatTimeEqRule:
    def test_us_name_equality_flagged(self, tmp_path):
        path = _module(tmp_path, "util",
                       "def f(elapsed_us, expected):\n"
                       "    return elapsed_us == expected\n")
        assert _rules(lint_file(path)) == {"float-time-eq"}

    def test_ps_to_us_call_equality_flagged(self, tmp_path):
        path = _module(tmp_path, "util",
                       "from repro.sim.clock import ps_to_us\n\n"
                       "def f(ps, expected):\n"
                       "    return ps_to_us(ps) != expected\n")
        assert "float-time-eq" in _rules(lint_file(path))

    def test_integer_ps_comparison_passes(self, tmp_path):
        path = _module(tmp_path, "util",
                       "def f(elapsed_ps, expected):\n"
                       "    return elapsed_ps == expected\n")
        assert lint_file(path) == []


class TestUnusedImportRule:
    def test_unused_import_flagged(self, tmp_path):
        path = _module(tmp_path, "util",
                       "import os\n\n\ndef f():\n    return 1\n")
        assert _rules(lint_file(path)) == {"unused-import"}

    def test_quoted_annotation_counts_as_use(self, tmp_path):
        path = _module(tmp_path, "util",
                       "from typing import TYPE_CHECKING\n\n"
                       "if TYPE_CHECKING:\n"
                       "    from repro.hw.machine import Machine\n\n"
                       "def f(machine: 'Machine') -> None:\n    pass\n")
        assert lint_file(path) == []

    def test_init_py_reexports_exempt(self, tmp_path):
        path = _module(tmp_path, "util",
                       "from os import sep\n", name="__init__.py")
        assert lint_file(path) == []


class TestDriver:
    def test_syntax_error_is_a_finding(self, tmp_path):
        path = _module(tmp_path, "util", "def f(:\n")
        findings = lint_file(path)
        assert _rules(findings) == {"syntax-error"}

    def test_finding_format_is_clickable(self, tmp_path):
        path = _module(tmp_path, "sim",
                       "import time\n\ndef f():\n    return time.time()\n")
        text = str(lint_file(path)[0])
        assert text.startswith(f"{path}:4:")
        assert "wallclock-time" in text

    def test_lint_paths_recurses_directories(self, tmp_path):
        _module(tmp_path, "sim",
                "import time\n\ndef f():\n    return time.time()\n")
        _module(tmp_path, "hw", "import os\n", name="other.py")
        findings = lint_paths([tmp_path])
        assert _rules(findings) == {"wallclock-time", "unused-import"}

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = _module(tmp_path, "util", "def f():\n    return 1\n")
        assert main([str(clean)]) == 0
        bad = _module(tmp_path, "sim",
                      "import time\n\ndef f():\n    return time.time()\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr()
        assert "wallclock-time" in out.out
        assert main([str(tmp_path / "nope.py")]) == 2

    def test_default_root_is_the_package_tree(self):
        root = default_root()
        assert root.name == "repro"
        assert (root / "analysis" / "lint.py").is_file()
