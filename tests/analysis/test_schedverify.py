"""The static schedule verifier: clean repertoire, flagged fixtures."""

import pytest

from repro.analysis.sched_fixtures import broken_schedules
from repro.analysis.schedverify import (
    RULES,
    ScheduleVerifyError,
    assert_valid_schedule,
    simulate_schedule,
    verify_repertoire,
    verify_schedule,
)
from repro.core.blocks import standard_partition
from repro.sched.builders import all_schedules, build_schedule
from repro.sched.ir import Interval, Recv, Schedule, Send


def test_shipped_repertoire_is_clean():
    part = standard_partition(8, 4)
    for sched in all_schedules(4, 8, part=part):
        assert verify_schedule(sched) == []


def test_verify_repertoire_sweep():
    assert verify_repertoire(ps=(1, 2, 3, 5), sizes=(1, 8)) > 0


@pytest.mark.parametrize("name", sorted(broken_schedules()))
def test_broken_fixture_trips_its_rule(name):
    sched, expected_rule = broken_schedules()[name]
    diagnostics = verify_schedule(sched)
    assert expected_rule in {d.rule for d in diagnostics}, (
        f"{name}: expected {expected_rule}, got "
        f"{[str(d) for d in diagnostics]}")


def test_at_least_three_fixtures():
    # The verifier's own regression floor: several distinct bug classes.
    fixtures = broken_schedules()
    assert len(fixtures) >= 3
    assert len({rule for _, rule in fixtures.values()}) >= 3
    for _, rule in fixtures.values():
        assert rule in RULES


def test_assert_valid_raises_with_catalogue_rule():
    sched, rule = broken_schedules()["truncated_send"]
    with pytest.raises(ScheduleVerifyError) as err:
        assert_valid_schedule(sched)
    assert rule in str(err.value)
    assert all(d.rule in RULES for d in err.value.diagnostics)


def _two_rank(plan0, plan1, kind="bcast", n=4):
    return Schedule(kind, "handmade", 2, n, {"in": n, "work": n},
                    (tuple(plan0), tuple(plan1)))


def test_self_message_flagged():
    whole = Interval("work", 0, 4)
    sched = _two_rank([Send(0, whole)], [])
    assert "self-message" in {d.rule for d in verify_schedule(sched)}


def test_bad_peer_flagged():
    whole = Interval("work", 0, 4)
    sched = _two_rank([Send(7, whole)], [])
    assert "bad-peer" in {d.rule for d in verify_schedule(sched)}


def test_symbolic_interpreter_moves_atoms():
    whole_in = Interval("in", 0, 4)
    whole_work = Interval("work", 0, 4)
    sched = _two_rank([Send(1, whole_in)], [Recv(0, whole_work)])
    state = simulate_schedule(sched)
    # Rank 1's work now holds rank 0's input atoms, element by element.
    for j in range(4):
        assert state[1]["work"][j] == {(0, j): 1}
    # Rank 0's input is untouched.
    for j in range(4):
        assert state[0]["in"][j] == {(0, j): 1}


def test_diagnostic_str_mentions_schedule_and_rule():
    sched, rule = broken_schedules()["oob_interval"]
    diag = verify_schedule(sched)[0]
    text = str(diag)
    assert sched.label in text
    assert diag.rule in text
