"""Unit tests for series statistics and report formatting."""

import pytest

from repro.bench.report import (
    Series,
    format_series_table,
    format_speedup_summary,
    max_speedup,
    mean_speedup,
    speedup_series,
)


@pytest.fixture
def base():
    return Series("blocking", (10, 20), (100.0, 200.0))


@pytest.fixture
def fast():
    return Series("optimized", (10, 20), (50.0, 50.0))


class TestSeries:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Series("x", (1, 2), (1.0,))

    def test_from_lists(self):
        s = Series.from_lists("a", [1], [2.0])
        assert s.sizes == (1,)

    def test_mean(self, base):
        assert base.mean() == 150.0

    def test_at(self, base):
        assert base.at(20) == 200.0
        with pytest.raises(KeyError):
            base.at(999)


class TestSpeedups:
    def test_pointwise(self, base, fast):
        assert speedup_series(base, fast) == [2.0, 4.0]

    def test_mean(self, base, fast):
        assert mean_speedup(base, fast) == 3.0

    def test_max_with_location(self, base, fast):
        ratio, at = max_speedup(base, fast)
        assert (ratio, at) == (4.0, 20)

    def test_grid_mismatch_rejected(self, base):
        other = Series("y", (10, 30), (1.0, 2.0))
        with pytest.raises(ValueError):
            speedup_series(base, other)


class TestFormatting:
    def test_table_contains_all_labels_and_sizes(self, base, fast):
        table = format_series_table([base, fast])
        assert "blocking" in table and "optimized" in table
        assert " 10 " in table or "10" in table
        assert "200.0" in table

    def test_empty_table(self):
        assert "(no series)" in format_series_table([])

    def test_table_grid_mismatch_rejected(self, base):
        other = Series("y", (10, 30), (1.0, 2.0))
        with pytest.raises(ValueError):
            format_series_table([base, other])

    def test_speedup_summary(self, base, fast):
        text = format_speedup_summary(base, [fast])
        assert "optimized" in text
        assert "3.00x" in text
        assert "@ 20" in text
