"""The analytic engine: accuracy contract, fallbacks, and sweep wiring.

The accuracy contract is the load-bearing test: for every collective
kind the builder repertoire can express, at p in {2, 47, 48} on both a
blocking and a non-blocking stack, the closed-form estimate must stay
within :data:`repro.bench.analytic.DEFAULT_DRIFT_TOL` relative error of
the simulated latency.  The bound was calibrated from exactly this grid
(worst measured point +34%, blocking reduce_scatter at short vectors);
if a cost-model change pushes any family past it, auto-mode sweeps
would start raising :class:`EngineDriftError` in users' hands — this
test catches that first.
"""

import pytest

from repro.bench.analytic import (
    DEFAULT_DRIFT_TOL,
    EngineDriftError,
    analytic_latency_us,
    default_drift_tol,
    default_validate,
    validation_sample,
)
from repro.bench.executor import ResultCache, SweepPoint, run_sweep
from repro.bench.runner import KINDS, measure_collective

SCHEDULED_KINDS = tuple(k for k in KINDS if k != "barrier")


# --------------------------------------------------------------------- #
# Accuracy: every kind, boundary rank counts, both pricing regimes
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("cores", [2, 47, 48])
@pytest.mark.parametrize("kind", SCHEDULED_KINDS)
@pytest.mark.parametrize("stack", ["blocking", "lightweight_balanced"])
def test_estimate_within_tolerance(kind, stack, cores):
    point = SweepPoint(kind=kind, stack=stack, size=32, cores=cores)
    estimate = analytic_latency_us(point)
    assert estimate is not None, f"{kind} unexpectedly unpriceable"
    simulated = measure_collective(kind, stack, 32, cores=cores)
    drift = abs(estimate - simulated) / simulated
    assert drift <= DEFAULT_DRIFT_TOL, (
        f"{kind}/{stack} p={cores}: analytic {estimate:.2f}us vs "
        f"sim {simulated:.2f}us ({drift:.1%} > {DEFAULT_DRIFT_TOL:.0%})")


def test_estimate_within_tolerance_long_vectors():
    # The paper's application size on the flagship stack.
    point = SweepPoint(kind="allreduce", stack="lightweight_balanced",
                       size=552, cores=48)
    estimate = analytic_latency_us(point)
    simulated = measure_collective("allreduce", "lightweight_balanced",
                                   552, cores=48)
    assert abs(estimate - simulated) / simulated <= DEFAULT_DRIFT_TOL


# --------------------------------------------------------------------- #
# Fallbacks
# --------------------------------------------------------------------- #
def test_barrier_is_unpriceable():
    point = SweepPoint(kind="barrier", stack="blocking", size=1, cores=48)
    assert analytic_latency_us(point) is None


def test_rckmpi_is_unpriceable():
    point = SweepPoint(kind="allreduce", stack="rckmpi", size=32, cores=48)
    assert analytic_latency_us(point) is None


def test_single_rank_is_unpriceable():
    point = SweepPoint(kind="allreduce", stack="blocking", size=32, cores=1)
    assert analytic_latency_us(point) is None


def test_non_identity_rank_order_is_unpriceable():
    point = SweepPoint(kind="allreduce", stack="blocking", size=32,
                       cores=4, rank_order=(3, 2, 1, 0))
    assert analytic_latency_us(point) is None


def test_mpb_long_vector_default_is_unpriceable():
    # The mpb stack's long-vector default is the MPB-direct allreduce,
    # which has no builder port.
    point = SweepPoint(kind="allreduce", stack="mpb", size=552, cores=48)
    assert analytic_latency_us(point) is None


def test_unknown_schedule_name_is_unpriceable():
    # ring is not an allreduce builder; the simulator owns the error.
    point = SweepPoint(kind="allreduce", stack="lightweight_balanced",
                       size=552, cores=48, algo="sched:ring")
    assert analytic_latency_us(point) is None


def test_explicit_algorithm_is_priced():
    point = SweepPoint(kind="allreduce", stack="lightweight_balanced",
                       size=32, cores=48, algo="sched:recursive_doubling")
    estimate = analytic_latency_us(point)
    simulated = measure_collective(
        "allreduce", "lightweight_balanced", 32, cores=48,
        algo="sched:recursive_doubling")
    assert estimate is not None
    assert abs(estimate - simulated) / simulated <= DEFAULT_DRIFT_TOL


# --------------------------------------------------------------------- #
# Engine wiring through run_sweep
# --------------------------------------------------------------------- #
def _points():
    return [SweepPoint(kind="allreduce", stack="lightweight_balanced",
                       size=n, cores=2) for n in (8, 16, 32)]


def test_unknown_engine_rejected():
    with pytest.raises(ValueError, match="unknown engine"):
        run_sweep(_points(), cache=False, engine="quantum")


def test_sim_engine_reports_no_analytic_points():
    outcome = run_sweep(_points(), cache=False, engine="sim")
    assert outcome.analytic == 0
    assert outcome.validated == 0
    assert outcome.misses == 3


def test_analytic_engine_prices_without_simulating():
    outcome = run_sweep(_points(), cache=False, engine="analytic")
    assert outcome.analytic == 3
    assert outcome.validated == 0
    assert outcome.misses == 0  # nothing simulated at all
    expected = [analytic_latency_us(p) for p in _points()]
    assert outcome.latencies == expected


def test_analytic_engine_simulates_fallback_points():
    points = _points() + [SweepPoint(kind="barrier", stack="blocking",
                                     size=1, cores=2)]
    outcome = run_sweep(points, cache=False, engine="analytic")
    assert outcome.analytic == 3
    assert outcome.misses == 1  # the barrier fell back to the simulator
    assert outcome.latencies[3] == measure_collective(
        "barrier", "blocking", 1, cores=2)


def test_auto_engine_validates_and_reports_drift(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_VALIDATE", "2")
    outcome = run_sweep(_points(), cache=False, engine="auto")
    assert outcome.analytic == 3
    assert outcome.validated == 2
    assert 0.0 < abs(outcome.max_drift) <= default_drift_tol()
    # Auto reports the analytic values for priced points.
    assert outcome.latencies == [analytic_latency_us(p) for p in _points()]


def test_auto_engine_raises_on_drift(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DRIFT_TOL", "1e-9")
    with pytest.raises(EngineDriftError) as excinfo:
        run_sweep(_points(), cache=False, engine="auto")
    assert excinfo.value.tolerance == pytest.approx(1e-9)
    assert excinfo.value.drifts
    assert "--engine sim" in str(excinfo.value)


def test_analytic_estimates_never_enter_the_cache(tmp_path):
    store = ResultCache(tmp_path)
    run_sweep(_points(), cache=store, engine="analytic")
    assert len(store) == 0
    # Auto's validation runs are real simulations and are cached.
    monkey_validate = 1
    import os
    old = os.environ.get("REPRO_BENCH_VALIDATE")
    os.environ["REPRO_BENCH_VALIDATE"] = str(monkey_validate)
    try:
        outcome = run_sweep(_points(), cache=store, engine="auto")
    finally:
        if old is None:
            os.environ.pop("REPRO_BENCH_VALIDATE", None)
        else:
            os.environ["REPRO_BENCH_VALIDATE"] = old
    assert outcome.validated == 1
    assert len(store) == 1


# --------------------------------------------------------------------- #
# Deterministic validation sampling + env knobs
# --------------------------------------------------------------------- #
def test_validation_sample_is_deterministic_and_covers_extremes():
    sample = validation_sample(100, 5)
    assert sample == validation_sample(100, 5)
    assert sample[0] == 0 and sample[-1] == 99
    assert sample == sorted(set(sample))


def test_validation_sample_edge_cases():
    assert validation_sample(0, 3) == []
    assert validation_sample(5, 0) == []
    assert validation_sample(3, 7) == [0, 1, 2]
    assert validation_sample(9, 1) == [4]


def test_env_knob_defaults_and_errors(monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_VALIDATE", raising=False)
    monkeypatch.delenv("REPRO_BENCH_DRIFT_TOL", raising=False)
    assert default_validate() == 3
    assert default_drift_tol() == DEFAULT_DRIFT_TOL
    monkeypatch.setenv("REPRO_BENCH_VALIDATE", "seven")
    with pytest.raises(ValueError, match="REPRO_BENCH_VALIDATE"):
        default_validate()
    monkeypatch.setenv("REPRO_BENCH_DRIFT_TOL", "-1")
    with pytest.raises(ValueError, match="positive"):
        default_drift_tol()
