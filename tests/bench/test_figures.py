"""Unit tests for the figure definitions (small grids, small machines)."""

import pytest

from repro.apps.gcmc.config import GCMCConfig
from repro.bench.figures import (
    FIG9_PANELS,
    FIG10_PAPER_RUNTIMES,
    fig6,
    fig9,
    fig10,
)


class TestFig9:
    def test_panels_cover_all_collectives(self):
        kinds = {kind for kind, _ in FIG9_PANELS.values()}
        assert kinds == {"allgather", "alltoall", "reduce_scatter", "bcast",
                         "reduce", "allreduce"}

    def test_mpb_stack_only_in_9f(self):
        for figure, (_kind, stacks) in FIG9_PANELS.items():
            assert ("mpb" in stacks) == (figure == "9f")

    def test_unknown_panel(self):
        with pytest.raises(KeyError):
            fig9("9z")

    def test_small_panel_runs(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CORES", "8")
        result = fig9("9f", sizes=[64, 96])
        assert result.kind == "allreduce"
        assert {s.label for s in result.series} == {
            "rckmpi", "blocking", "ircce", "lightweight",
            "lightweight_balanced", "mpb"}
        assert result.mean_speedup_vs_blocking("lightweight") > 1.0
        rendered = result.render()
        assert "Fig. 9f" in rendered
        assert "speedups" in rendered

    def test_baseline_accessor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CORES", "8")
        result = fig9("9c", sizes=[64])
        assert result.baseline.label == "blocking"
        assert result.optimized().label == "lightweight_balanced"


class TestFig6:
    def test_render_contains_paper_rows(self):
        text = fig6()
        assert "528" in text and "552" in text and "575" in text
        assert "3.2" in text  # the ~3.2:1 middle-row ratio
        assert "5.3" in text  # the ~5.3:1 worst-case ratio


class TestFig10:
    def test_small_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CORES", "8")
        cfg = GCMCConfig(initial_particles=24, capacity=48, box=6.0)
        result = fig10(cycles=2, stacks=("blocking", "mpb"),
                       app_config=cfg)
        assert result.runtimes_us["blocking"] > result.runtimes_us["mpb"]
        assert result.final_particles > 0
        text = result.render()
        assert "blocking" in text and "mpb" in text

    def test_paper_runtime_table_complete(self):
        assert set(FIG10_PAPER_RUNTIMES) == {
            "rckmpi", "blocking", "ircce", "lightweight",
            "lightweight_balanced", "mpb"}
