"""Unit tests for the benchmark runner and sweeps."""

import numpy as np
import pytest

from repro.bench import runner
from repro.bench.runner import (
    CollectiveBench,
    default_cores,
    default_sizes,
    measure_collective,
    parse_sizes_spec,
    sweep,
)
from repro.hw.config import SCCConfig

SMALL = dict(cores=4, config=SCCConfig(mesh_cols=2, mesh_rows=1))


class TestMeasure:
    def test_latency_positive(self):
        us = measure_collective("allreduce", "lightweight", 64, **SMALL)
        assert us > 0

    def test_deterministic(self):
        a = measure_collective("allreduce", "blocking", 64, **SMALL)
        b = measure_collective("allreduce", "blocking", 64, **SMALL)
        assert a == b

    def test_all_kinds_run(self):
        for kind in ("allreduce", "reduce", "reduce_scatter", "allgather",
                     "alltoall", "bcast", "barrier"):
            us = measure_collective(kind, "lightweight", 32, **SMALL)
            assert us > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(KeyError):
            measure_collective("scan", "blocking", 8, **SMALL)

    def test_unknown_stack_rejected(self):
        with pytest.raises(KeyError):
            measure_collective("allreduce", "openmpi", 8, **SMALL)

    def test_too_many_cores_rejected(self):
        with pytest.raises(ValueError):
            measure_collective("allreduce", "blocking", 8, cores=99,
                               config=SCCConfig(mesh_cols=2, mesh_rows=1))

    def test_rank_count_checked_before_machine_build(self, monkeypatch):
        """An oversubscribed sweep point must fail with the clear
        check_rank_count message, not whatever Machine construction
        happens to raise first."""
        def exploding_machine(config):
            raise AssertionError("Machine was constructed before the "
                                 "rank-count check")

        monkeypatch.setattr(runner, "Machine", exploding_machine)
        with pytest.raises(ValueError, match="has only"):
            measure_collective("allreduce", "blocking", 8, cores=99,
                               config=SCCConfig(mesh_cols=2, mesh_rows=1))

    def test_rank_order_permutation(self):
        us = measure_collective(
            "allreduce", "lightweight", 64, cores=4,
            config=SCCConfig(mesh_cols=2, mesh_rows=1),
            rank_order=[3, 1, 2, 0])
        assert us > 0

    def test_stack_ordering_blocking_slowest(self):
        blocking = measure_collective("allreduce", "blocking", 96, **SMALL)
        optimized = measure_collective("allreduce", "lightweight_balanced",
                                       96, **SMALL)
        assert blocking > optimized


class TestSweep:
    def test_sweep_shape(self):
        sizes = [16, 32]
        data = sweep("allreduce", ["blocking", "lightweight"], sizes,
                     cores=4)
        assert set(data) == {"blocking", "lightweight"}
        assert all(len(v) == 2 for v in data.values())

    def test_collective_bench_dataclass(self):
        bench = CollectiveBench("bcast", ["lightweight"], sizes=[8],
                                cores=4)
        out = bench.run()
        assert len(out["lightweight"]) == 1


class TestEnvKnobs:
    def test_default_sizes_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SIZES", "10:20:5")
        assert default_sizes() == [10, 15]

    def test_default_cores_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CORES", "12")
        assert default_cores() == 12

    def test_default_sizes_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SIZES", raising=False)
        sizes = default_sizes()
        assert sizes[0] == 500
        assert sizes[-1] <= 700


class TestSizesSpec:
    """parse_sizes_spec rejects malformed/empty specs with clear errors."""

    def test_valid_spec(self):
        assert parse_sizes_spec("500:701:7")[:2] == [500, 507]

    @pytest.mark.parametrize("spec", ["", "10", "10:20", "10:20:5:1",
                                      "a:20:5", "10:b:5", "10:20:c",
                                      "10;20;5"])
    def test_malformed_spec_names_env_var_and_format(self, spec):
        with pytest.raises(ValueError) as exc:
            parse_sizes_spec(spec)
        message = str(exc.value)
        assert "REPRO_BENCH_SIZES" in message
        assert "start:stop:step" in message
        assert repr(spec) in message

    @pytest.mark.parametrize("spec", ["10:20:0", "10:20:-5"])
    def test_nonpositive_step_rejected(self, spec):
        with pytest.raises(ValueError, match="step must be positive"):
            parse_sizes_spec(spec)

    @pytest.mark.parametrize("spec", ["20:10:5", "10:10:5"])
    def test_empty_range_rejected(self, spec):
        with pytest.raises(ValueError, match="range is empty"):
            parse_sizes_spec(spec)

    def test_custom_source_label(self):
        with pytest.raises(ValueError, match="--sizes"):
            parse_sizes_spec("oops", source="--sizes")

    def test_default_sizes_propagates_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SIZES", "500-700-7")
        with pytest.raises(ValueError, match="REPRO_BENCH_SIZES"):
            default_sizes()
