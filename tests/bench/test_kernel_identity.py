"""Bit-identity golden pins for the slimmed simulator kernel.

The event-loop optimizations (inline first-callback slots, direct heap
pushes, ``Timeout.__init__`` writing its slots without the ``super()``
chain, the GC pause, the per-channel lock caches) are pure wall-clock
work: they must not move virtual time or the event count by a single
unit.  These tests pin both for representative collectives — any kernel
change that alters dispatch order, event accounting, or modeled latency
shows up here as an exact-value mismatch, not a tolerance creep.

The constants were produced by the straightforward pre-optimization
kernel and re-verified against the slimmed one; sizes 553/554 exercise
the padded-tail path (RCCE's extra put/get call, the paper's period-4
spikes).
"""

import pytest

from repro.bench.wallclock import kernel_events_metric

#: (stack, size) -> (events processed, simulated elapsed microseconds).
GOLDEN = {
    ("lightweight_balanced", 552): (104529, 1186.929),
    ("lightweight_balanced", 554): (104561, 1185.517),
    ("blocking", 552): (47899, 2987.329),
    ("ircce", 552): (107692, 2461.687),
}


@pytest.mark.parametrize("stack,size", sorted(GOLDEN))
def test_kernel_bit_identity(stack, size):
    metric = kernel_events_metric(stack=stack, size=size, cores=48,
                                  repeats=1)
    events, simulated_us = GOLDEN[(stack, size)]
    assert metric["events"] == events
    assert metric["simulated_us"] == pytest.approx(simulated_us, abs=0.001)


def test_kernel_is_deterministic_across_repeats():
    a = kernel_events_metric(size=552, cores=48, repeats=1)
    b = kernel_events_metric(size=552, cores=48, repeats=1)
    assert a["events"] == b["events"]
    assert a["simulated_us"] == b["simulated_us"]
