"""Tests for the parallel, cached sweep executor.

The executor's contract is strict: whatever combination of worker pool
and result cache serves a sweep, the latencies must be bit-identical to
running ``measure_collective`` in a plain sequential loop.
"""

import dataclasses

import pytest

from repro.bench.executor import (
    CACHE_SCHEMA,
    ResultCache,
    SweepPoint,
    code_fingerprint,
    default_jobs,
    fingerprint,
    run_sweep,
)
from repro.bench.runner import KINDS, CollectiveBench, measure_collective
from repro.hw.config import SCCConfig

SMALL_CONFIG = dict(mesh_cols=2, mesh_rows=1)


def small_point(**overrides):
    defaults = dict(kind="allreduce", stack="lightweight", size=16,
                    cores=4, config=SCCConfig(**SMALL_CONFIG))
    defaults.update(overrides)
    return SweepPoint(**defaults)


class TestDeterminism:
    """Parallel executor + cache return bit-identical latencies."""

    @pytest.mark.parametrize("kind", KINDS)
    def test_parallel_matches_sequential_2_cores(self, kind):
        points = [SweepPoint(kind=kind, stack="lightweight", size=8,
                             cores=2, config=SCCConfig(**SMALL_CONFIG))
                  for _ in range(2)]
        seq = run_sweep(points, jobs=1, cache=False)
        par = run_sweep(points, jobs=2, cache=False)
        reference = measure_collective(kind, "lightweight", 8, cores=2,
                                       config=SCCConfig(**SMALL_CONFIG))
        assert seq.latencies == par.latencies
        assert seq.latencies == [reference, reference]

    @pytest.mark.parametrize("kind", KINDS)
    def test_parallel_matches_sequential_48_cores(self, kind):
        points = [SweepPoint(kind=kind, stack="lightweight", size=8,
                             cores=48)]
        seq = run_sweep(points, jobs=1, cache=False)
        par = run_sweep(points, jobs=2, cache=False)
        reference = measure_collective(kind, "lightweight", 8, cores=48)
        assert seq.latencies == par.latencies == [reference]

    def test_cache_round_trip_is_bit_identical(self, tmp_path):
        store = ResultCache(tmp_path)
        points = [small_point(size=n) for n in (13, 16, 21)]
        cold = run_sweep(points, jobs=1, cache=store)
        warm = run_sweep(points, jobs=1, cache=store)
        uncached = run_sweep(points, jobs=1, cache=False)
        assert cold.latencies == warm.latencies == uncached.latencies
        assert cold.misses == 3 and cold.hits == 0
        assert warm.hits == 3 and warm.misses == 0

    def test_collective_bench_parallel_matches_sequential(self):
        def bench():
            return CollectiveBench(
                "allreduce", ["blocking", "lightweight"], sizes=[16, 20],
                cores=4, config_factory=lambda: SCCConfig(**SMALL_CONFIG))

        seq = bench().run(jobs=1, cache=False)
        par = bench().run(jobs=2, cache=False)
        assert seq == par

    def test_reassembly_order_is_stacks_major(self):
        bench = CollectiveBench(
            "allreduce", ["blocking", "lightweight"], sizes=[16, 20],
            cores=4, config_factory=lambda: SCCConfig(**SMALL_CONFIG))
        data = bench.run(jobs=1, cache=False)
        assert list(data) == ["blocking", "lightweight"]
        for stack in data:
            assert data[stack] == [
                measure_collective("allreduce", stack, n, cores=4,
                                   config=SCCConfig(**SMALL_CONFIG))
                for n in (16, 20)
            ]


class TestFingerprint:
    def test_stable_for_equal_points(self):
        assert fingerprint(small_point()) == fingerprint(small_point())

    def test_every_coordinate_matters(self):
        base = fingerprint(small_point())
        variants = [
            small_point(kind="bcast"),
            small_point(stack="blocking"),
            small_point(size=17),
            small_point(cores=2),
            small_point(op="max"),
            small_point(seed=7),
            small_point(rank_order=(3, 1, 2, 0)),
        ]
        fps = [fingerprint(p) for p in variants]
        assert base not in fps
        assert len(set(fps)) == len(fps)

    def test_config_field_busts_fingerprint(self):
        base = fingerprint(small_point())
        tweaked = small_point(
            config=SCCConfig(**SMALL_CONFIG, erratum_enabled=False))
        assert fingerprint(tweaked) != base

    def test_seed_busts_cache(self, tmp_path):
        store = ResultCache(tmp_path)
        run_sweep([small_point()], jobs=1, cache=store)
        outcome = run_sweep([small_point(seed=99)], jobs=1, cache=store)
        assert outcome.misses == 1  # the seeded point was not served stale

    def test_config_field_busts_cache(self, tmp_path):
        store = ResultCache(tmp_path)
        run_sweep([small_point()], jobs=1, cache=store)
        tweaked = small_point(
            config=SCCConfig(**SMALL_CONFIG, put_line_core_cycles=111))
        outcome = run_sweep([tweaked], jobs=1, cache=store)
        assert outcome.misses == 1

    def test_code_fingerprint_is_hex_and_cached(self):
        fp = code_fingerprint()
        assert len(fp) == 64
        int(fp, 16)
        assert code_fingerprint() is fp  # lru_cache


class TestResultCache:
    def test_get_on_missing_entry(self, tmp_path):
        assert ResultCache(tmp_path).get("ab" * 32) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultCache(tmp_path)
        fp = fingerprint(small_point())
        path = store.path_for(fp)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert store.get(fp) is None

    def test_schema_drift_is_a_miss(self, tmp_path):
        store = ResultCache(tmp_path)
        fp = fingerprint(small_point())
        store.put(fp, 12.5, small_point())
        record = store.path_for(fp).read_text()
        store.path_for(fp).write_text(
            record.replace(f'"schema": {CACHE_SCHEMA}', '"schema": 999'))
        assert store.get(fp) is None

    def test_len_and_clear(self, tmp_path):
        store = ResultCache(tmp_path)
        run_sweep([small_point(size=n) for n in (16, 20)],
                  jobs=1, cache=store)
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0


class TestKnobs:
    def test_default_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "3")
        assert default_jobs() == 3

    def test_default_jobs_auto(self, monkeypatch):
        import os
        monkeypatch.setenv("REPRO_BENCH_JOBS", "0")
        assert default_jobs() == (os.cpu_count() or 1)

    def test_default_jobs_malformed(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_JOBS", "many")
        with pytest.raises(ValueError, match="REPRO_BENCH_JOBS"):
            default_jobs()

    def test_cache_env_disables(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_CACHE", "0")
        monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(tmp_path))
        outcome = run_sweep([small_point()], jobs=1, cache=None)
        assert outcome.misses == 1
        assert len(ResultCache(tmp_path)) == 0  # nothing was written

    def test_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_BENCH_CACHE", "1")
        monkeypatch.setenv("REPRO_BENCH_CACHE_DIR", str(tmp_path))
        run_sweep([small_point()], jobs=1, cache=None)
        assert len(ResultCache(tmp_path)) == 1

    def test_point_is_picklable(self):
        import pickle

        point = small_point(rank_order=(3, 1, 2, 0))
        clone = pickle.loads(pickle.dumps(point))
        assert dataclasses.asdict(clone) == dataclasses.asdict(point)
