"""Message-count invariants: the algorithms' structure, made testable."""

import math

import numpy as np
import pytest

from repro.bench.stats import CommStats, comm_stats
from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine

P = 8


def run_with_stats(stack, program_factory, cores=P):
    machine = Machine(SCCConfig(mesh_cols=(cores + 1) // 2, mesh_rows=1))
    stats = comm_stats(machine)  # enable recording
    comm = make_communicator(machine, stack)
    machine.run_spmd(program_factory(comm), ranks=range(cores))
    return stats


class TestCommStatsObject:
    def test_record_and_totals(self):
        stats = CommStats()
        stats.record(0, 1, 100)
        stats.record(0, 1, 50)
        stats.record(2, 0, 10)
        assert stats.total_messages == 3
        assert stats.total_bytes == 160
        assert stats.messages_sent_by(0) == 2
        assert stats.messages_received_by(0) == 1
        assert stats.bytes_sent_by(0) == 150
        assert stats.partners_of(0) == {1, 2}

    def test_reset(self):
        stats = CommStats()
        stats.record(0, 1, 8)
        stats.reset()
        assert stats.total_messages == 0

    def test_disabled_by_default(self):
        """Without comm_stats(machine), nothing is recorded (zero cost)."""
        machine = Machine(SCCConfig(mesh_cols=2, mesh_rows=1))
        comm = make_communicator(machine, "lightweight")

        def program(env):
            yield from comm.barrier(env)

        machine.run_spmd(program)
        assert "p2p.stats" not in machine.services


class TestAlgorithmStructure:
    def test_ring_reduce_scatter_message_count(self):
        """Ring: every rank sends exactly p-1 messages."""
        data = np.arange(64, dtype=np.float64)

        def factory(comm):
            def program(env):
                yield from comm.reduce_scatter(env, data + env.rank)
            return program

        stats = run_with_stats("lightweight", factory)
        for core in range(P):
            assert stats.messages_sent_by(core) == P - 1
            # Ring neighbours only.
            assert stats.partners_of(core) == {(core - 1) % P,
                                               (core + 1) % P}

    def test_rsag_allreduce_message_count(self):
        """ReduceScatter + Allgather: 2(p-1) messages per rank."""
        data = np.arange(96, dtype=np.float64)

        def factory(comm):
            def program(env):
                yield from comm.allreduce(env, data)
            return program

        stats = run_with_stats("lightweight", factory)
        for core in range(P):
            assert stats.messages_sent_by(core) == 2 * (P - 1)

    def test_binomial_bcast_total_messages(self):
        """A broadcast tree delivers exactly p-1 messages in total."""
        def factory(comm):
            def program(env):
                buf = np.zeros(4)  # below the long threshold -> binomial
                yield from comm.bcast(env, buf, 0)
            return program

        stats = run_with_stats("lightweight", factory)
        assert stats.total_messages == P - 1

    def test_alltoall_all_pairs_exactly_once(self):
        def factory(comm):
            def program(env):
                matrix = np.zeros((env.size, 8))
                yield from comm.alltoall(env, matrix)
            return program

        stats = run_with_stats("lightweight", factory)
        for src in range(P):
            for dst in range(P):
                if src == dst:
                    continue
                assert stats.by_pair.get((src, dst), (0, 0))[0] == 1

    def test_allgather_bytes_conserved(self):
        """Ring allgather moves exactly (p-1) * n doubles per rank."""
        n = 100

        def factory(comm):
            def program(env):
                yield from comm.allgather(env, np.zeros(n))
            return program

        stats = run_with_stats("lightweight", factory)
        for core in range(P):
            assert stats.bytes_sent_by(core) == (P - 1) * n * 8

    def test_dissemination_barrier_rounds(self):
        """ceil(log2 p) zero-byte sends per rank."""
        def factory(comm):
            def program(env):
                yield from comm.barrier(env)
            return program

        stats = run_with_stats("lightweight", factory)
        rounds = math.ceil(math.log2(P))
        for core in range(P):
            assert stats.messages_sent_by(core) == rounds
        assert stats.total_bytes == 0

    def test_rckmpi_records_too(self):
        def factory(comm):
            def program(env):
                yield from comm.allreduce(env, np.zeros(64))
            return program

        stats = run_with_stats("rckmpi", factory)
        assert stats.total_messages > 0
