"""Unit tests for the virial-route pressure observable."""

import numpy as np
import pytest

from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.particles import ParticleSystem
from repro.apps.gcmc.shortrange import (
    measure_pressure,
    pair_virial_with_set,
    total_virial,
)


def empty_system(box=10.0, **over):
    cfg = GCMCConfig(initial_particles=0, capacity=16, box=box, **over)
    return ParticleSystem(cfg)


class TestPairVirial:
    def test_empty_set(self):
        system = empty_system()
        assert pair_virial_with_set(system, np.zeros(3), 0.0,
                                    np.array([], dtype=int)) == 0.0

    def test_lj_minimum_zero_force(self):
        """At the LJ minimum r = 2^(1/6) the radial force vanishes."""
        system = empty_system()
        r_min = 2.0 ** (1.0 / 6.0)
        system.insert_particle(0, np.array([1.0, 1.0, 1.0]), 0.0)
        system.insert_particle(1, np.array([1.0 + r_min, 1.0, 1.0]), 0.0)
        w = pair_virial_with_set(system, system.positions[0], 0.0,
                                 np.array([1]))
        assert w == pytest.approx(0.0, abs=1e-10)

    def test_repulsive_core_positive_virial(self):
        system = empty_system()
        system.insert_particle(0, np.array([1.0, 1.0, 1.0]), 0.0)
        system.insert_particle(1, np.array([1.9, 1.0, 1.0]), 0.0)  # r < min
        w = pair_virial_with_set(system, system.positions[0], 0.0,
                                 np.array([1]))
        assert w > 0

    def test_attractive_tail_negative_virial(self):
        system = empty_system()
        system.insert_particle(0, np.array([1.0, 1.0, 1.0]), 0.0)
        system.insert_particle(1, np.array([2.5, 1.0, 1.0]), 0.0)  # r > min
        w = pair_virial_with_set(system, system.positions[0], 0.0,
                                 np.array([1]))
        assert w < 0

    def test_virial_matches_numerical_derivative(self):
        """w(r) = -r dU/dr, checked against finite differences of the
        pair energy for a charged pair."""
        from repro.apps.gcmc.shortrange import pair_energy_with_set
        system = empty_system()
        system.insert_particle(0, np.array([1.0, 1.0, 1.0]), 1.0)
        r = 1.7
        h = 1e-6

        def u_at(dist):
            system.move_particle(0, np.array([1.0, 1.0, 1.0]))
            probe = np.array([1.0 + dist, 1.0, 1.0])
            e, _ = pair_energy_with_set(system, probe, -1.0, np.array([0]))
            return e

        dudr = (u_at(r + h) - u_at(r - h)) / (2 * h)
        probe = np.array([1.0 + r, 1.0, 1.0])
        w = pair_virial_with_set(system, probe, -1.0, np.array([0]))
        assert w == pytest.approx(-r * dudr, rel=1e-5)


class TestPressure:
    def test_empty_box_zero_pressure(self):
        assert measure_pressure(empty_system()) == 0.0

    def test_ideal_gas_limit(self):
        """Two far-apart particles: P = N T / V."""
        system = empty_system(box=20.0, cutoff=2.5)
        system.insert_particle(0, np.array([1.0, 1.0, 1.0]), 0.0)
        system.insert_particle(1, np.array([15.0, 15.0, 15.0]), 0.0)
        expected = 2 * system.config.temperature / system.config.volume
        assert measure_pressure(system) == pytest.approx(expected)

    def test_lattice_in_attractive_well_below_ideal(self):
        """Lattice spacing 1.25 sigma sits in the LJ attractive well:
        the virial is negative and the pressure drops below ideal."""
        cfg = GCMCConfig(initial_particles=64, capacity=64, box=5.0)
        system = ParticleSystem(cfg)
        p = measure_pressure(system)
        assert np.isfinite(p)
        assert p < cfg.initial_particles * cfg.temperature / cfg.volume

    def test_compressed_lattice_above_ideal(self):
        """Squeeze the same lattice into the repulsive core: P > ideal."""
        cfg = GCMCConfig(initial_particles=64, capacity=64, box=4.0,
                         cutoff=2.0)
        system = ParticleSystem(cfg)
        p = measure_pressure(system)
        assert p > cfg.initial_particles * cfg.temperature / cfg.volume

    def test_total_virial_deterministic(self):
        cfg = GCMCConfig(initial_particles=32, capacity=32, box=6.0)
        a = total_virial(ParticleSystem(cfg))
        b = total_virial(ParticleSystem(cfg))
        assert a == b
