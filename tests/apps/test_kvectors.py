"""Unit tests for the Ewald reciprocal-vector construction."""

import numpy as np
import pytest

from repro.apps.gcmc.kvectors import build_kvectors


def test_paper_count_276():
    """The paper's 276 complex coefficients."""
    kvecs, coeff = build_kvectors(276, box=10.0, alpha=0.9)
    assert kvecs.shape == (276, 3)
    assert coeff.shape == (276,)


def test_no_zero_vector():
    kvecs, _ = build_kvectors(100, box=8.0, alpha=1.0)
    norms = np.linalg.norm(kvecs, axis=1)
    assert norms.min() > 0


def test_half_space_property():
    """No vector and its negation may both appear (F[-k] = conj(F[k]))."""
    kvecs, _ = build_kvectors(276, box=8.0, alpha=1.0)
    rounded = {tuple(np.round(v, 9)) for v in kvecs}
    for v in kvecs:
        assert tuple(np.round(-v, 9)) not in rounded


def test_sorted_by_magnitude():
    kvecs, _ = build_kvectors(100, box=8.0, alpha=1.0)
    norms2 = np.sum(kvecs * kvecs, axis=1)
    assert np.all(np.diff(norms2) > -1e-12)


def test_coefficients_positive_and_decaying():
    kvecs, coeff = build_kvectors(276, box=8.0, alpha=0.8)
    assert np.all(coeff > 0)
    # Larger |k| -> exponentially smaller weight (on sorted vectors the
    # last coefficient must be far below the first).
    assert coeff[-1] < coeff[0]


def test_scaling_with_box():
    small, _ = build_kvectors(50, box=5.0, alpha=1.0)
    large, _ = build_kvectors(50, box=10.0, alpha=1.0)
    # Reciprocal vectors shrink as the box grows.
    assert np.linalg.norm(large[0]) == pytest.approx(
        np.linalg.norm(small[0]) / 2)


def test_deterministic():
    a, ca = build_kvectors(276, box=8.0, alpha=0.9)
    b, cb = build_kvectors(276, box=8.0, alpha=0.9)
    assert np.array_equal(a, b)
    assert np.array_equal(ca, cb)


def test_invalid_count():
    with pytest.raises(ValueError):
        build_kvectors(0, box=8.0, alpha=1.0)


def test_explicit_kmax_too_small():
    with pytest.raises(ValueError):
        build_kvectors(1000, box=8.0, alpha=1.0, kmax=1)
