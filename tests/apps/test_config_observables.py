"""Unit tests for the GCMC config and observables."""

import pytest

from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.observables import Observables


class TestConfig:
    def test_defaults_valid(self):
        cfg = GCMCConfig()
        assert cfg.n_kvectors == 276  # the paper's coefficient count
        assert cfg.beta == pytest.approx(1.0 / cfg.temperature)
        assert cfg.volume == pytest.approx(cfg.box ** 3)

    def test_copy_overrides(self):
        cfg = GCMCConfig().copy(temperature=2.0)
        assert cfg.temperature == 2.0
        assert GCMCConfig().temperature != 2.0

    @pytest.mark.parametrize("bad", [
        {"box": -1.0},
        {"temperature": 0.0},
        {"cutoff": 100.0},
        {"initial_particles": 10_000},
        {"p_insert": 0.6, "p_delete": 0.5},
        {"n_kvectors": 0},
    ])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError):
            GCMCConfig(**bad)


class TestObservables:
    def test_empty(self):
        obs = Observables()
        assert obs.mean_energy == 0.0
        assert obs.acceptance_ratio == 0.0
        assert obs.energy_variance == 0.0

    def test_running_means(self):
        obs = Observables()
        obs.record(-10.0, 5, "TRANSLATE", True)
        obs.record(-20.0, 7, "INSERT", False)
        assert obs.samples == 2
        assert obs.mean_energy == -15.0
        assert obs.mean_particles == 6.0
        assert obs.acceptance_ratio == 0.5

    def test_variance(self):
        obs = Observables()
        for e in (1.0, 3.0):
            obs.record(e, 1, "TRANSLATE", True)
        assert obs.energy_variance == pytest.approx(1.0)

    def test_by_action_counters(self):
        obs = Observables()
        obs.record(0.0, 1, "INSERT", True)
        obs.record(0.0, 1, "INSERT", False)
        assert obs.by_action["INSERT"] == {"tried": 2, "accepted": 1}

    def test_summary_keys(self):
        obs = Observables()
        obs.record(1.0, 2, "DELETE", True)
        summary = obs.summary()
        assert {"samples", "mean_energy", "energy_variance",
                "mean_particles", "acceptance_ratio",
                "by_action"} <= set(summary)


class TestBlockAveraging:
    def _filled(self, values):
        obs = Observables()
        for v in values:
            obs.record(v, 1, "TRANSLATE", True)
        return obs

    def test_constant_series_zero_error(self):
        obs = self._filled([5.0] * 12)
        mean, err = obs.block_average(3)
        assert mean == 5.0
        assert err == 0.0

    def test_mean_matches_full_mean_when_blocks_tile(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        obs = self._filled(values)
        mean, err = obs.block_average(2)
        assert mean == pytest.approx(3.5)
        assert err > 0

    def test_trailing_partial_block_dropped(self):
        obs = self._filled([1.0, 1.0, 1.0, 99.0])
        mean, _ = obs.block_average(3)
        assert mean == 1.0

    def test_single_block_zero_error(self):
        obs = self._filled([1.0, 2.0])
        mean, err = obs.block_average(2)
        assert mean == 1.5 and err == 0.0

    def test_invalid_block_sizes(self):
        obs = self._filled([1.0])
        with pytest.raises(ValueError):
            obs.block_average(0)
        with pytest.raises(ValueError):
            obs.block_average(5)


class TestWelfordAccumulator:
    def test_variance_stable_under_large_offset(self):
        # The reason running sums were replaced: with a mean of 1e9 the
        # naive sum/sum-of-squares variance loses every significant
        # digit to cancellation, the Welford form does not.
        obs = Observables()
        offset = 1.0e9
        for v in (1.0, 2.0, 3.0):
            obs.record(offset + v, 1, "TRANSLATE", True)
        assert obs.mean_energy == pytest.approx(offset + 2.0)
        assert obs.energy_variance == pytest.approx(2.0 / 3.0, rel=1e-9)

    def test_variance_matches_population_definition(self):
        obs = Observables()
        values = [-3.0, 1.0, 4.0, 4.0]
        for v in values:
            obs.record(v, 1, "INSERT", False)
        mean = sum(values) / len(values)
        expected = sum((v - mean) ** 2 for v in values) / len(values)
        assert obs.energy_variance == pytest.approx(expected, rel=1e-12)

    def test_action_counts_default_to_zero(self):
        obs = Observables()
        obs.record(-1.0, 1, "TRANSLATE", True)
        assert obs.action_counts("TRANSLATE") == {"tried": 1, "accepted": 1}
        assert obs.action_counts("DELETE") == {"tried": 0, "accepted": 0}
        # by_action holds plain int counters per action name.
        assert obs.by_action == {"TRANSLATE": {"tried": 1, "accepted": 1}}
