"""Integration tests for the GCMC driver (serial and on the simulator)."""

import numpy as np
import pytest

from repro.apps.gcmc import GCMCConfig, run_gcmc, run_gcmc_serial
from repro.apps.gcmc.kvectors import build_kvectors
from repro.apps.gcmc.serial import full_energy
from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine


CFG = GCMCConfig(initial_particles=48, capacity=96, box=6.0)
RANKS = 8


def machine():
    return Machine(SCCConfig(mesh_cols=4, mesh_rows=1))


class TestSerial:
    def test_deterministic(self):
        a = run_gcmc_serial(CFG, 15, nranks=RANKS)
        b = run_gcmc_serial(CFG, 15, nranks=RANKS)
        assert a.final_energy == b.final_energy
        assert a.final_particles == b.final_particles

    def test_energy_bookkeeping_consistent(self):
        """The incrementally tracked energy matches a from-scratch
        recomputation of the final configuration — the invariant the
        paper's Algorithm 1 lines 5/8 rely on."""
        result, system = run_gcmc_serial(CFG, 30, nranks=RANKS,
                                         return_system=True)
        kvecs, coeff = build_kvectors(CFG.n_kvectors, CFG.box, CFG.alpha)
        fresh = full_energy(system, kvecs, coeff, RANKS)
        assert fresh == pytest.approx(result.final_energy, abs=1e-8)

    def test_observables_recorded(self):
        result = run_gcmc_serial(CFG, 25, nranks=RANKS)
        obs = result.observables
        assert obs.samples == 25
        assert 0.0 <= obs.acceptance_ratio <= 1.0
        assert obs.mean_particles > 0
        assert set(obs.by_action) <= {"TRANSLATE", "INSERT", "DELETE"}

    def test_particle_count_tracks_moves(self):
        result = run_gcmc_serial(CFG, 40, nranks=RANKS)
        by = result.observables.by_action
        inserts = by.get("INSERT", {}).get("accepted", 0)
        deletes = by.get("DELETE", {}).get("accepted", 0)
        assert result.final_particles == CFG.initial_particles + inserts - deletes


class TestDistributed:
    def test_matches_serial_reference(self):
        serial = run_gcmc_serial(CFG, 10, nranks=RANKS)
        m = machine()
        comm = make_communicator(m, "lightweight_balanced")
        dist = run_gcmc(m, comm, CFG, 10)
        assert dist.final_particles == serial.final_particles
        assert dist.final_energy == pytest.approx(serial.final_energy,
                                                  rel=1e-9)
        assert dist.observables.by_action == serial.observables.by_action

    @pytest.mark.parametrize("stack", ["blocking", "ircce", "mpb", "rckmpi"])
    def test_identical_physics_across_stacks(self, stack):
        """Fig. 10's precondition: stacks change time, not results."""
        reference = run_gcmc_serial(CFG, 6, nranks=RANKS)
        m = machine()
        comm = make_communicator(m, stack)
        dist = run_gcmc(m, comm, CFG, 6)
        assert dist.final_particles == reference.final_particles
        assert dist.final_energy == pytest.approx(reference.final_energy,
                                                  rel=1e-9)

    def test_simulated_time_positive_and_stack_dependent(self):
        m1 = machine()
        blocking = run_gcmc(m1, make_communicator(m1, "blocking"), CFG, 4)
        m2 = machine()
        optimized = run_gcmc(
            m2, make_communicator(m2, "lightweight_balanced"), CFG, 4)
        assert blocking.elapsed_ps > 0
        assert optimized.elapsed_ps < blocking.elapsed_ps

    def test_wait_fraction_in_range(self):
        m = machine()
        result = run_gcmc(m, make_communicator(m, "blocking"), CFG, 4)
        assert 0.0 < result.wait_fraction() < 1.0

    def test_elapsed_us_property(self):
        m = machine()
        result = run_gcmc(m, make_communicator(m, "lightweight"), CFG, 2)
        assert result.elapsed_us == pytest.approx(result.elapsed_ps / 1e6)
