"""Unit tests for GCMC moves and acceptance rules."""

import math

import numpy as np
import pytest

from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.moves import (
    Action,
    Proposal,
    acceptance_probability,
    choose_action,
    choose_slot,
    propose_insertion,
    propose_translation,
)


@pytest.fixture
def cfg():
    return GCMCConfig(initial_particles=16, capacity=32, box=6.0)


class TestChoices:
    def test_action_distribution(self, cfg):
        rng = np.random.default_rng(1)
        actions = [choose_action(cfg, rng, 100) for _ in range(4000)]
        fractions = {a: actions.count(a) / len(actions) for a in Action}
        assert fractions[Action.INSERT] == pytest.approx(cfg.p_insert,
                                                         abs=0.03)
        assert fractions[Action.DELETE] == pytest.approx(cfg.p_delete,
                                                         abs=0.03)

    def test_no_delete_of_last_particle(self, cfg):
        rng = np.random.default_rng(2)
        actions = {choose_action(cfg, rng, 1) for _ in range(500)}
        assert Action.DELETE not in actions

    def test_choose_slot_uniform_over_active(self):
        rng = np.random.default_rng(3)
        active = np.array([2, 5, 11])
        seen = {choose_slot(rng, active) for _ in range(200)}
        assert seen == {2, 5, 11}


class TestProposals:
    def test_translation_within_box(self, cfg):
        rng = np.random.default_rng(4)
        for _ in range(50):
            pos = propose_translation(cfg, rng, np.array([0.1, 5.9, 3.0]))
            assert np.all(pos >= 0) and np.all(pos < cfg.box)

    def test_translation_bounded_step(self, cfg):
        rng = np.random.default_rng(5)
        old = np.array([3.0, 3.0, 3.0])
        for _ in range(50):
            new = propose_translation(cfg, rng, old)
            assert np.all(np.abs(new - old) <= cfg.max_displacement + 1e-12)

    def test_insertion_neutralizes(self, cfg):
        rng = np.random.default_rng(6)
        _, charge = propose_insertion(cfg, rng, net_charge=1.0)
        assert charge == -1.0
        _, charge = propose_insertion(cfg, rng, net_charge=-1.0)
        assert charge == 1.0


class TestAcceptance:
    def test_downhill_translation_always_accepted(self, cfg):
        assert acceptance_probability(cfg, Action.TRANSLATE, 10, -1.0) == 1.0

    def test_uphill_translation_boltzmann(self, cfg):
        p = acceptance_probability(cfg, Action.TRANSLATE, 10, 2.0)
        assert p == pytest.approx(math.exp(-cfg.beta * 2.0))

    def test_probability_bounded(self, cfg):
        for action in Action:
            for de in (-5.0, 0.0, 5.0):
                p = acceptance_probability(cfg, action, 20, de)
                assert 0.0 <= p <= 1.0

    def test_insert_favoured_by_high_mu(self):
        lo = GCMCConfig(mu=-10.0)
        hi = GCMCConfig(mu=+2.0)
        p_lo = acceptance_probability(lo, Action.INSERT, 50, 0.0)
        p_hi = acceptance_probability(hi, Action.INSERT, 50, 0.0)
        assert p_hi > p_lo

    def test_delete_favoured_by_low_mu(self):
        lo = GCMCConfig(mu=-10.0)
        hi = GCMCConfig(mu=+2.0)
        p_lo = acceptance_probability(lo, Action.DELETE, 50, 0.0)
        p_hi = acceptance_probability(hi, Action.DELETE, 50, 0.0)
        assert p_lo > p_hi

    @pytest.mark.parametrize("de", [-3.0, 0.0, 2.0, 6.0])
    @pytest.mark.parametrize("n", [5, 30, 200])
    def test_detailed_balance_insert_delete(self, cfg, de, n):
        """Metropolis detailed balance: with a = V/(N+1) e^(b mu - b dE),
        the insert move N->N+1 has p = min(1, a) and the reverse delete
        N+1->N has p = min(1, 1/a), so p_ins / p_del == a exactly."""
        p_ins = acceptance_probability(cfg, Action.INSERT, n, de)
        p_del = acceptance_probability(cfg, Action.DELETE, n + 1, -de)
        a = (cfg.volume / (n + 1)) * math.exp(cfg.beta * cfg.mu
                                              - cfg.beta * de)
        assert p_ins / p_del == pytest.approx(a, rel=1e-12)


class TestProposalWire:
    def test_pack_unpack_roundtrip(self):
        p = Proposal(Action.INSERT, 7, np.array([1.5, 2.5, 3.5]), -1.0)
        q = Proposal.unpack(p.pack())
        assert q.action == Action.INSERT
        assert q.slot == 7
        assert np.array_equal(q.position, p.position)
        assert q.charge == -1.0

    def test_wire_is_six_doubles(self):
        p = Proposal(Action.TRANSLATE, 0, np.zeros(3), 0.0)
        wire = p.pack()
        assert wire.shape == (6,)
        assert wire.dtype == np.float64
