"""Unit tests for particle storage and ownership."""

import numpy as np
import pytest

from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.particles import ParticleSystem


@pytest.fixture
def cfg():
    return GCMCConfig(initial_particles=32, capacity=64, box=6.0)


@pytest.fixture
def system(cfg):
    return ParticleSystem(cfg)


class TestInitialization:
    def test_initial_count(self, system):
        assert system.n_active == 32

    def test_positions_in_box(self, system):
        active = system.positions[system.active]
        assert np.all(active >= 0)
        assert np.all(active < 6.0)

    def test_charges_near_neutral(self, system):
        assert abs(system.net_charge()) <= 1.0

    def test_deterministic_init(self, cfg):
        a = ParticleSystem(cfg)
        b = ParticleSystem(cfg)
        assert np.array_equal(a.positions, b.positions)

    def test_zero_particles(self):
        cfg = GCMCConfig(initial_particles=0, capacity=8, box=6.0)
        assert ParticleSystem(cfg).n_active == 0


class TestOwnership:
    def test_owner_round_robin(self, system):
        assert system.owner_of(0, 8) == 0
        assert system.owner_of(9, 8) == 1

    def test_local_indices_partition_active_set(self, system):
        all_locals = np.concatenate(
            [system.local_indices(r, 8) for r in range(8)])
        assert sorted(all_locals) == sorted(system.active_indices())

    def test_local_indices_disjoint(self, system):
        a = set(system.local_indices(0, 4))
        b = set(system.local_indices(1, 4))
        assert not a & b


class TestMutation:
    def test_move_and_undo(self, system):
        old = system.move_particle(3, np.array([1.0, 2.0, 3.0]))
        assert np.allclose(system.positions[3], [1.0, 2.0, 3.0])
        system.move_particle(3, old)
        assert np.allclose(system.positions[3], old)

    def test_move_wraps_into_box(self, system):
        system.move_particle(0, np.array([7.5, -1.0, 3.0]))
        assert np.all(system.positions[0] >= 0)
        assert np.all(system.positions[0] < 6.0)

    def test_move_inactive_rejected(self, system):
        free = system.first_free_slot()
        with pytest.raises(ValueError):
            system.move_particle(free, np.zeros(3))

    def test_insert_delete_roundtrip(self, system):
        slot = system.first_free_slot()
        system.insert_particle(slot, np.array([1.0, 1.0, 1.0]), -1.0)
        assert system.n_active == 33
        pos, charge = system.delete_particle(slot)
        assert charge == -1.0
        assert system.n_active == 32

    def test_double_insert_rejected(self, system):
        with pytest.raises(ValueError):
            system.insert_particle(0, np.zeros(3), 1.0)

    def test_delete_inactive_rejected(self, system):
        free = system.first_free_slot()
        with pytest.raises(ValueError):
            system.delete_particle(free)

    def test_capacity_exhaustion(self):
        cfg = GCMCConfig(initial_particles=4, capacity=4, box=6.0)
        system = ParticleSystem(cfg)
        with pytest.raises(RuntimeError):
            system.first_free_slot()


class TestSnapshot:
    def test_snapshot_restore(self, system):
        snap = system.snapshot()
        system.move_particle(0, np.array([0.1, 0.2, 0.3]))
        system.delete_particle(1)
        system.restore(snap)
        assert system.n_active == 32
        fresh = ParticleSystem(system.config)
        assert np.array_equal(system.positions, fresh.positions)

    def test_snapshot_is_deep(self, system):
        snap = system.snapshot()
        system.positions[0, 0] += 1.0
        assert snap["positions"][0, 0] != system.positions[0, 0]

    def test_state_hash_changes_on_move(self, system):
        before = system.state_hash()
        system.move_particle(0, system.positions[0] + 0.5)
        assert system.state_hash() != before


class TestMinimumImage:
    def test_short_distance_unchanged(self, system):
        d = np.array([[1.0, -2.0, 0.5]])
        assert np.allclose(system.minimum_image(d), d)

    def test_wraps_long_distance(self, system):
        d = np.array([[5.0, -5.5, 0.0]])  # box = 6
        wrapped = system.minimum_image(d)
        assert np.allclose(wrapped, [[-1.0, 0.5, 0.0]])
