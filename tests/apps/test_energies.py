"""Unit tests for short-range and long-range energy computations."""

import math

import numpy as np
import pytest

from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.kvectors import build_kvectors
from repro.apps.gcmc.longrange import (
    local_structure_factor,
    pack_complex,
    reciprocal_energy,
    total_long_energy,
    unpack_complex,
)
from repro.apps.gcmc.particles import ParticleSystem
from repro.apps.gcmc.shortrange import (
    insertion_energy_local,
    pair_energy_with_set,
    self_energy,
    short_energy_local,
    total_short_energy,
)


@pytest.fixture
def cfg():
    return GCMCConfig(initial_particles=24, capacity=48, box=6.0)


@pytest.fixture
def system(cfg):
    return ParticleSystem(cfg)


class TestShortRange:
    def test_empty_set_zero(self, system):
        e, pairs = pair_energy_with_set(system, np.zeros(3), 1.0,
                                        np.array([], dtype=int))
        assert e == 0.0 and pairs == 0

    def test_lj_minimum_distance(self, cfg):
        """Two neutral particles at r = 2^(1/6) sit at the LJ minimum."""
        system = ParticleSystem(GCMCConfig(initial_particles=0, capacity=4,
                                           box=6.0))
        r_min = 2.0 ** (1.0 / 6.0)
        system.insert_particle(0, np.array([1.0, 1.0, 1.0]), 0.0)
        system.insert_particle(1, np.array([1.0 + r_min, 1.0, 1.0]), 0.0)
        e, _ = pair_energy_with_set(system, system.positions[0], 0.0,
                                    np.array([1]))
        assert e == pytest.approx(-1.0, rel=1e-9)

    def test_beyond_cutoff_zero(self):
        system = ParticleSystem(GCMCConfig(initial_particles=0, capacity=4,
                                           box=10.0, cutoff=2.5))
        system.insert_particle(0, np.array([1.0, 1.0, 1.0]), 1.0)
        system.insert_particle(1, np.array([4.0, 1.0, 1.0]), -1.0)
        e, pairs = pair_energy_with_set(system, system.positions[0], 1.0,
                                        np.array([1]))
        assert e == 0.0
        assert pairs == 1  # the pair was still *examined*

    def test_opposite_charges_attract(self):
        system = ParticleSystem(GCMCConfig(initial_particles=0, capacity=4,
                                           box=10.0))
        system.insert_particle(0, np.array([1.0, 1.0, 1.0]), 1.0)
        system.insert_particle(1, np.array([2.5, 1.0, 1.0]), -1.0)
        e_pair, _ = pair_energy_with_set(system, system.positions[0], 1.0,
                                         np.array([1]))
        # LJ at r=1.5 is small; the screened Coulomb term dominates and is
        # negative for opposite charges.
        assert e_pair < 0

    def test_local_shares_sum_to_short_energy(self, system):
        slot = int(system.active_indices()[0])
        whole, _ = pair_energy_with_set(
            system, system.positions[slot], float(system.charges[slot]),
            system.active_indices()[system.active_indices() != slot])
        shares = sum(short_energy_local(system, slot, r, 6)[0]
                     for r in range(6))
        assert shares == pytest.approx(whole, rel=1e-12)

    def test_insertion_energy_matches_after_insert(self, system):
        pos = np.array([3.3, 2.2, 1.1])
        before = sum(insertion_energy_local(system, pos, 1.0, r, 4)[0]
                     for r in range(4))
        slot = system.first_free_slot()
        system.insert_particle(slot, pos, 1.0)
        after = sum(short_energy_local(system, slot, r, 4)[0]
                    for r in range(4))
        assert before == pytest.approx(after, rel=1e-12)

    def test_self_energy_negative(self):
        assert self_energy(1.0, 0.9) < 0
        assert self_energy(-1.0, 0.9) == self_energy(1.0, 0.9)

    def test_total_short_energy_symmetric_count(self, system):
        """O(N^2) reference counts each pair once."""
        e1 = total_short_energy(system)
        # doubling charges quadruples the Coulomb part only; just check
        # the function is deterministic and finite here.
        assert math.isfinite(e1)
        assert e1 == total_short_energy(system)


class TestLongRange:
    def test_structure_factor_shares_sum(self, system, cfg):
        kvecs, coeff = build_kvectors(64, cfg.box, cfg.alpha)
        total, _ = local_structure_factor(system, kvecs, 0, 1)
        shares = sum(local_structure_factor(system, kvecs, r, 5)[0]
                     for r in range(5))
        np.testing.assert_allclose(shares, total, rtol=1e-12)

    def test_empty_rank_zero_factor(self, cfg):
        system = ParticleSystem(GCMCConfig(initial_particles=2, capacity=8,
                                           box=6.0))
        kvecs, _ = build_kvectors(16, 6.0, 0.9)
        # ranks beyond the particle count own nothing
        f, n = local_structure_factor(system, kvecs, 7, 8)
        assert n == 0
        assert np.all(f == 0)

    def test_pack_unpack_roundtrip(self):
        f = np.array([1 + 2j, -3.5 + 0.25j, 0j])
        packed = pack_complex(f)
        assert packed.shape == (6,)
        np.testing.assert_array_equal(unpack_complex(packed), f)

    def test_pack_276_gives_552(self):
        f = np.zeros(276, dtype=np.complex128)
        assert pack_complex(f).size == 552

    def test_unpack_odd_length_rejected(self):
        with pytest.raises(ValueError):
            unpack_complex(np.zeros(5))

    def test_reciprocal_energy_nonnegative(self, system, cfg):
        """|F|^2 with positive weights: the reciprocal sum is >= 0."""
        kvecs, coeff = build_kvectors(cfg.n_kvectors, cfg.box, cfg.alpha)
        assert total_long_energy(system, kvecs, coeff) >= 0

    def test_single_particle_invariant_to_position(self, cfg):
        """|F(k)| of one particle is independent of its position."""
        kvecs, coeff = build_kvectors(32, 6.0, 0.9)
        energies = []
        for pos in ([1.0, 2.0, 3.0], [4.4, 0.1, 5.9]):
            system = ParticleSystem(GCMCConfig(initial_particles=0,
                                               capacity=4, box=6.0))
            system.insert_particle(0, np.array(pos), 1.0)
            energies.append(total_long_energy(system, kvecs, coeff))
        assert energies[0] == pytest.approx(energies[1], rel=1e-12)

    def test_charge_scaling_quadratic(self, cfg):
        kvecs, coeff = build_kvectors(32, 6.0, 0.9)
        base = ParticleSystem(GCMCConfig(initial_particles=0, capacity=4,
                                         box=6.0))
        base.insert_particle(0, np.array([1.0, 2.0, 3.0]), 1.0)
        doubled = ParticleSystem(GCMCConfig(initial_particles=0, capacity=4,
                                            box=6.0))
        doubled.insert_particle(0, np.array([1.0, 2.0, 3.0]), 2.0)
        e1 = total_long_energy(base, kvecs, coeff)
        e2 = total_long_energy(doubled, kvecs, coeff)
        assert e2 == pytest.approx(4 * e1, rel=1e-12)
