"""Property-based sanity of the latency model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.config import SCCConfig
from repro.hw.timing import LatencyModel
from repro.hw.topology import Topology


def model(erratum=True):
    return LatencyModel(SCCConfig(erratum_enabled=erratum), Topology())


cores = st.integers(min_value=0, max_value=47)
sizes = st.integers(min_value=0, max_value=20_000)


@given(a=cores, b=cores, n=sizes)
@settings(max_examples=60)
def test_all_costs_nonnegative(a, b, n):
    m = model()
    assert m.mpb_access(a, b) > 0
    assert m.mpb_write_bytes(a, b, n) >= 0
    assert m.mpb_read_bytes(a, b, n) >= 0
    assert m.mpb_stream_read(a, b, n) >= 0
    assert m.mpb_stream_write(a, b, n) >= 0
    assert m.dram_access(a) > 0


@given(a=cores, b=cores, n=st.integers(1, 10_000))
@settings(max_examples=40)
def test_costs_monotone_in_size(a, b, n):
    m = model()
    assert m.mpb_write_bytes(a, b, n + 32) > m.mpb_write_bytes(a, b, n)
    assert m.mpb_read_bytes(a, b, n + 32) > m.mpb_read_bytes(a, b, n)


@given(a=cores, b=cores)
def test_access_symmetry_in_hops(a, b):
    """Remote access cost depends only on the hop count, so it is
    symmetric between distinct cores."""
    m = model()
    if a != b:
        assert m.mpb_access(a, b) == m.mpb_access(b, a)


@given(a=cores, n=st.integers(1, 10_000))
@settings(max_examples=40)
def test_erratum_never_cheapens_anything(a, n):
    buggy = model(erratum=True)
    fixed = model(erratum=False)
    assert buggy.mpb_access(a, a) > fixed.mpb_access(a, a)
    assert buggy.mpb_write_bytes(a, a, n) > fixed.mpb_write_bytes(a, a, n)
    # Remote accesses are untouched by the local-MPB erratum.
    other = (a + 2) % 48
    assert buggy.mpb_access(a, other) == fixed.mpb_access(a, other)


@given(a=cores, b=cores, n=sizes)
@settings(max_examples=40)
def test_read_at_least_as_costly_as_stream_read(a, b, n):
    """A full get (writes the private copy) costs at least the operand
    stream (which does not) minus the stream's extra per-line tax."""
    m = model()
    assert (m.mpb_read_bytes(a, b, n)
            + m.lines(n) * m.core_cycles(
                m.config.stream_read_extra_cycles)
            >= m.mpb_stream_read(a, b, n))


@given(n=sizes)
def test_lines_is_exact_ceiling(n):
    m = model()
    assert m.lines(n) == (n + 31) // 32
    assert m.has_padded_tail(n) == (n % 32 != 0)
