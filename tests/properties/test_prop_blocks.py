"""Property-based tests for block partitioning (optimization C)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import balanced_partition, standard_partition

counts = st.integers(min_value=0, max_value=5000)
ranks = st.integers(min_value=1, max_value=128)


@given(n=counts, p=ranks)
def test_standard_covers_exactly(n, p):
    part = standard_partition(n, p)
    assert sum(part.sizes) == n
    assert part.p == p


@given(n=counts, p=ranks)
def test_balanced_covers_exactly(n, p):
    part = balanced_partition(n, p)
    assert sum(part.sizes) == n
    assert part.p == p


@given(n=counts, p=ranks)
def test_slices_are_disjoint_and_ordered(n, p):
    for maker in (standard_partition, balanced_partition):
        part = maker(n, p)
        prev_stop = 0
        for b in range(p):
            s = part.slice_of(b)
            assert s.start == prev_stop
            assert s.stop - s.start == part.size(b)
            prev_stop = s.stop
        assert prev_stop == n


@given(n=counts, p=ranks)
def test_balanced_max_min_gap_at_most_one(n, p):
    part = balanced_partition(n, p)
    assert part.max_size() - part.min_size() <= 1


@given(n=counts, p=ranks)
def test_balanced_never_worse_than_standard(n, p):
    std = standard_partition(n, p)
    bal = balanced_partition(n, p)
    assert bal.max_size() <= std.max_size()
    assert bal.imbalance_ratio() <= std.imbalance_ratio() or (
        std.imbalance_ratio() == bal.imbalance_ratio() == 1.0)


@given(n=counts, p=ranks)
def test_standard_first_block_absorbs_remainder(n, p):
    part = standard_partition(n, p)
    assert part.size(0) == n // p + n % p
    for b in range(1, p):
        assert part.size(b) == n // p


@given(n=counts, p=ranks)
def test_balanced_sizes_monotonically_nonincreasing(n, p):
    part = balanced_partition(n, p)
    sizes = list(part.sizes)
    assert sizes == sorted(sizes, reverse=True)


@settings(max_examples=30)
@given(n=st.integers(min_value=1, max_value=2000),
       p=st.integers(min_value=1, max_value=64))
def test_offsets_match_cumulative_sums(n, p):
    part = balanced_partition(n, p)
    acc = 0
    for b in range(p):
        assert part.offset(b) == acc
        acc += part.size(b)
