"""Property-based tests for block partitioning (optimization C)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocks import balanced_partition, standard_partition

counts = st.integers(min_value=0, max_value=5000)
ranks = st.integers(min_value=1, max_value=128)


@given(n=counts, p=ranks)
def test_standard_covers_exactly(n, p):
    part = standard_partition(n, p)
    assert sum(part.sizes) == n
    assert part.p == p


@given(n=counts, p=ranks)
def test_balanced_covers_exactly(n, p):
    part = balanced_partition(n, p)
    assert sum(part.sizes) == n
    assert part.p == p


@given(n=counts, p=ranks)
def test_slices_are_disjoint_and_ordered(n, p):
    for maker in (standard_partition, balanced_partition):
        part = maker(n, p)
        prev_stop = 0
        for b in range(p):
            s = part.slice_of(b)
            assert s.start == prev_stop
            assert s.stop - s.start == part.size(b)
            prev_stop = s.stop
        assert prev_stop == n


@given(n=counts, p=ranks)
def test_balanced_max_min_gap_at_most_one(n, p):
    part = balanced_partition(n, p)
    assert part.max_size() - part.min_size() <= 1


@given(n=counts, p=ranks)
def test_balanced_never_worse_than_standard(n, p):
    std = standard_partition(n, p)
    bal = balanced_partition(n, p)
    assert bal.max_size() <= std.max_size()
    assert bal.imbalance_ratio() <= std.imbalance_ratio() or (
        std.imbalance_ratio() == bal.imbalance_ratio() == 1.0)


@given(n=counts, p=ranks)
def test_standard_first_block_absorbs_remainder(n, p):
    part = standard_partition(n, p)
    assert part.size(0) == n // p + n % p
    for b in range(1, p):
        assert part.size(b) == n // p


@given(n=counts, p=ranks)
def test_balanced_sizes_monotonically_nonincreasing(n, p):
    part = balanced_partition(n, p)
    sizes = list(part.sizes)
    assert sizes == sorted(sizes, reverse=True)


@settings(max_examples=30)
@given(n=st.integers(min_value=1, max_value=2000),
       p=st.integers(min_value=1, max_value=64))
def test_offsets_match_cumulative_sums(n, p):
    part = balanced_partition(n, p)
    acc = 0
    for b in range(p):
        assert part.offset(b) == acc
        acc += part.size(b)


# --------------------------------------------------------------------- #
# Edge cases the ring algorithms must tolerate: fewer elements than
# ranks (n < p), empty vectors (n == 0), and the off-by-one boundary
# n == p - 1.
# --------------------------------------------------------------------- #

@given(p=ranks, n=st.integers(min_value=0, max_value=127))
def test_fewer_elements_than_ranks(n, p):
    if n >= p:
        n = n % p  # force the n < p regime
    std = standard_partition(n, p)
    bal = balanced_partition(n, p)
    # Standard splitting degenerates: block 0 absorbs everything.
    assert std.size(0) == n
    assert all(std.size(b) == 0 for b in range(1, p))
    # Balanced splitting caps every block at one element (gap <= 1).
    assert bal.max_size() <= 1
    assert bal.max_size() - bal.min_size() <= 1
    assert sum(1 for s in bal.sizes if s == 1) == n


@given(p=ranks)
def test_empty_vector_is_trivially_balanced(p):
    for maker in (standard_partition, balanced_partition):
        part = maker(0, p)
        assert part.sizes == (0,) * p
        assert part.imbalance_ratio() == 1.0


@given(p=st.integers(min_value=2, max_value=128))
def test_one_less_element_than_ranks(p):
    n = p - 1
    std = standard_partition(n, p)
    bal = balanced_partition(n, p)
    # Standard: the whole vector lands on rank 0, imbalance unbounded.
    assert std.size(0) == n
    assert std.imbalance_ratio() == float("inf")
    # Balanced: exactly one empty block, all others one element.
    assert bal.sizes == (1,) * (p - 1) + (0,)
    assert bal.max_size() - bal.min_size() <= 1
