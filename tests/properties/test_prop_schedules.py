"""Numeric correctness of every schedule builder vs numpy references.

A machine-free interpreter executes the schedule IR on real numpy
buffers (eager sends, FIFO channels — the non-blocking semantics whose
deadlock-freedom the static verifier already proves), so the whole
repertoire can be checked at p = 47 and 48 in milliseconds instead of
full simulations.  Integer-valued doubles keep reductions exact.
"""

from collections import deque

import numpy as np
import pytest

from repro.core.blocks import standard_partition
from repro.core.ops import SUM
from repro.sched.builders import BUILDERS, build_schedule
from repro.sched.ir import CopyBlock, Exchange, Recv, ReduceRecv, Rotate, Send

PS = (2, 3, 47, 48)
SIZES = (1, 4, 70)


def interpret(sched, inputs, op=SUM):
    """Run a schedule on numpy buffers; returns per-rank work arrays."""
    state = [{"in": np.asarray(inputs[r], dtype=float).reshape(-1).copy(),
              "work": np.zeros(sched.buffers["work"])}
             for r in range(sched.p)]
    channels = {}
    pcs = [0] * sched.p
    half_done = [False] * sched.p

    def view(rank, iv):
        return state[rank][iv.buf][iv.lo:iv.hi]

    def pop(src, dst):
        chan = channels.get((src, dst))
        return chan.popleft() if chan else None

    progress = True
    while progress:
        progress = False
        for r in range(sched.p):
            while pcs[r] < len(sched.plans[r]):
                step = sched.plans[r][pcs[r]]
                if isinstance(step, Send):
                    channels.setdefault((r, step.peer), deque()).append(
                        view(r, step.data).copy())
                elif isinstance(step, Recv):
                    payload = pop(step.peer, r)
                    if payload is None:
                        break
                    view(r, step.data)[:] = payload
                elif isinstance(step, ReduceRecv):
                    payload = pop(step.peer, r)
                    if payload is None:
                        break
                    target = view(r, step.data)
                    target[:] = op(target, payload)
                elif isinstance(step, Exchange):
                    if step.send_peer is not None and not half_done[r]:
                        channels.setdefault(
                            (r, step.send_peer), deque()).append(
                                view(r, step.send).copy())
                        half_done[r] = True
                    if step.recv_peer is not None:
                        payload = pop(step.recv_peer, r)
                        if payload is None:
                            break
                        target = view(r, step.recv)
                        if step.reduce and target.size:
                            if step.reversed_fold:
                                target[:] = op(payload, target)
                            else:
                                target[:] = op(target, payload)
                        elif not step.reduce:
                            target[:] = payload
                    half_done[r] = False
                elif isinstance(step, CopyBlock):
                    view(r, step.dst)[:] = view(r, step.src)
                elif isinstance(step, Rotate):
                    buf = state[r][step.buf].reshape(step.rows, -1)
                    out = np.empty_like(buf)
                    for i in range(step.rows):
                        out[(step.shift + i) % step.rows] = buf[i]
                    buf[:] = out
                pcs[r] += 1
                progress = True
    assert all(pcs[r] == len(sched.plans[r]) for r in range(sched.p)), \
        "interpreter stalled (unmatched receive)"
    return [state[r]["work"] for r in range(sched.p)]


def int_inputs(p, n, seed=20120901):
    rng = np.random.default_rng(seed)
    return [rng.integers(-50, 50, size=n).astype(float)
            for _ in range(p)]


def cases(kind):
    return [(name, p, n) for name in sorted(BUILDERS[kind])
            for p in PS for n in SIZES]


@pytest.mark.parametrize("name,p,n", cases("allreduce"))
def test_allreduce_builders(name, p, n):
    inputs = int_inputs(p, n)
    sched = build_schedule("allreduce", name, p, n,
                           part=standard_partition(n, p))
    for work in interpret(sched, inputs):
        assert np.array_equal(work, np.sum(inputs, axis=0))


@pytest.mark.parametrize("name,p,n", cases("reduce"))
def test_reduce_builders(name, p, n):
    inputs = int_inputs(p, n)
    root = p - 1
    sched = build_schedule("reduce", name, p, n,
                           part=standard_partition(n, p), root=root)
    work = interpret(sched, inputs)
    assert np.array_equal(work[root], np.sum(inputs, axis=0))


@pytest.mark.parametrize("name,p,n", cases("bcast"))
def test_bcast_builders(name, p, n):
    inputs = int_inputs(p, n)
    root = p - 1
    sched = build_schedule("bcast", name, p, n,
                           part=standard_partition(n, p), root=root)
    for work in interpret(sched, inputs):
        assert np.array_equal(work, inputs[root])


@pytest.mark.parametrize("name,p,n", cases("allgather"))
def test_allgather_builders(name, p, n):
    inputs = int_inputs(p, n)
    sched = build_schedule("allgather", name, p, n)
    expected = np.concatenate(inputs)
    for work in interpret(sched, inputs):
        assert np.array_equal(work, expected)


@pytest.mark.parametrize("name,p,n", cases("reduce_scatter"))
def test_reduce_scatter_builders(name, p, n):
    inputs = int_inputs(p, n)
    part = standard_partition(n, p)
    sched = build_schedule("reduce_scatter", name, p, n, part=part)
    total = np.sum(inputs, axis=0)
    work = interpret(sched, inputs)
    for r in range(p):
        block = part.slice_of(r)
        assert np.array_equal(work[r][block], total[block])


@pytest.mark.parametrize("name,p,n", cases("alltoall"))
def test_alltoall_builders(name, p, n):
    rng = np.random.default_rng(20120901)
    matrices = [rng.integers(-50, 50, size=(p, n)).astype(float)
                for _ in range(p)]
    sched = build_schedule("alltoall", name, p, n)
    work = interpret(sched, matrices)
    for r in range(p):
        got = work[r].reshape(p, n)
        for s in range(p):
            assert np.array_equal(got[s], matrices[s][r])


@pytest.mark.parametrize("name,p,n", cases("scan"))
def test_scan_builders(name, p, n):
    inputs = int_inputs(p, n)
    sched = build_schedule("scan", name, p, n)
    work = interpret(sched, inputs)
    for r in range(p):
        assert np.array_equal(work[r], np.sum(inputs[:r + 1], axis=0))
