"""Property-based tests for the mesh topology and XY routing."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.hw.topology import Topology

dims = st.tuples(st.integers(min_value=1, max_value=10),
                 st.integers(min_value=1, max_value=10),
                 st.integers(min_value=1, max_value=4))


@st.composite
def topo_and_cores(draw):
    cols, rows, cpt = draw(dims)
    topo = Topology(cols, rows, cpt)
    a = draw(st.integers(min_value=0, max_value=topo.num_cores - 1))
    b = draw(st.integers(min_value=0, max_value=topo.num_cores - 1))
    return topo, a, b


@given(topo_and_cores())
def test_hops_symmetric(args):
    topo, a, b = args
    assert topo.hops(a, b) == topo.hops(b, a)


@given(topo_and_cores())
def test_hops_bounded_by_diameter(args):
    topo, a, b = args
    assert 0 <= topo.hops(a, b) <= topo.max_hops()


@given(topo_and_cores())
def test_hops_zero_iff_same_tile(args):
    topo, a, b = args
    assert (topo.hops(a, b) == 0) == topo.same_tile(a, b)


@given(topo_and_cores())
def test_xy_route_length_matches_hops(args):
    topo, a, b = args
    path = topo.xy_route(a, b)
    assert len(path) == topo.hops(a, b) + 1
    assert path[0] == topo.core_coords(a)
    assert path[-1] == topo.core_coords(b)


@given(topo_and_cores())
def test_xy_route_steps_unit_manhattan(args):
    topo, a, b = args
    path = topo.xy_route(a, b)
    for (x0, y0), (x1, y1) in zip(path, path[1:]):
        assert abs(x0 - x1) + abs(y0 - y1) == 1


@given(topo_and_cores())
@settings(max_examples=50)
def test_triangle_inequality(args):
    topo, a, b = args
    for c in range(0, topo.num_cores, max(1, topo.num_cores // 7)):
        assert topo.hops(a, b) <= topo.hops(a, c) + topo.hops(c, b)


@given(dims)
def test_snake_order_is_permutation_with_adjacent_tiles(d):
    cols, rows, cpt = d
    topo = Topology(cols, rows, cpt)
    order = topo.snake_ring_order()
    assert sorted(order) == list(range(topo.num_cores))
    for a, b in zip(order, order[1:]):
        assert topo.hops(a, b) <= 1


@given(dims)
def test_every_core_has_a_memory_controller(d):
    cols, rows, cpt = d
    topo = Topology(cols, rows, cpt)
    routers = set(topo.mc_routers())
    for core in topo.cores():
        assert topo.mc_of_core(core) in routers
        assert topo.hops_to_mc(core) <= topo.max_hops()
