"""Property-based tests for the discrete-event kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.clock import Clock

delays = st.lists(st.integers(min_value=0, max_value=10_000),
                  min_size=1, max_size=30)


@given(per_proc=st.lists(delays, min_size=1, max_size=8))
@settings(max_examples=60)
def test_final_time_is_max_of_process_sums(per_proc):
    sim = Simulator()

    def proc(sim, ds):
        for d in ds:
            yield sim.timeout(d)

    for ds in per_proc:
        sim.process(proc(sim, ds))
    final = sim.run()
    assert final == max(sum(ds) for ds in per_proc)


@given(per_proc=st.lists(delays, min_size=1, max_size=6))
@settings(max_examples=40)
def test_event_times_monotone_nondecreasing(per_proc):
    sim = Simulator()
    stamps = []

    def proc(sim, ds):
        for d in ds:
            yield sim.timeout(d)
            stamps.append(sim.now)

    for ds in per_proc:
        sim.process(proc(sim, ds))
    sim.run()
    assert stamps == sorted(stamps)


@given(per_proc=st.lists(delays, min_size=1, max_size=6))
@settings(max_examples=30)
def test_determinism(per_proc):
    def run_once():
        sim = Simulator()
        order = []

        def proc(sim, tag, ds):
            for d in ds:
                yield sim.timeout(d)
                order.append((tag, sim.now))

        for tag, ds in enumerate(per_proc):
            sim.process(proc(sim, tag, ds))
        sim.run()
        return order

    assert run_once() == run_once()


@given(freq=st.integers(min_value=1_000_000, max_value=5_000_000_000),
       cycles=st.integers(min_value=0, max_value=1_000_000))
def test_clock_cycles_nonnegative_and_monotone(freq, cycles):
    clock = Clock(freq)
    assert clock.cycles(cycles) >= 0
    assert clock.cycles(cycles + 1) > clock.cycles(cycles) or \
        clock.ps_per_cycle == 0


@given(values=st.lists(st.integers(min_value=0, max_value=10**6),
                       min_size=1, max_size=20))
def test_gate_wakes_all_waiters(values):
    sim = Simulator()
    gate = sim.gate()
    woken = []

    def waiter(sim, tag):
        yield gate.wait_true()
        woken.append(tag)

    for i, _v in enumerate(values):
        sim.process(waiter(sim, i))

    def setter(sim):
        yield sim.timeout(5)
        gate.set()

    sim.process(setter(sim))
    sim.run()
    assert sorted(woken) == list(range(len(values)))
