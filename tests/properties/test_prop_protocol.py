"""Property-based tests of the point-to-point protocol layers.

Random message schedules between random pairs must deliver every payload
intact and in per-channel FIFO order, on every layer.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.ircce.api import IRCCE
from repro.lwnb.api import LWNB
from repro.rcce.api import RCCE
from repro.rckmpi.channel import RCKMPIP2P

P = 4

# A schedule: list of (src, dst, length) with src != dst.
pairs = st.tuples(st.integers(0, P - 1), st.integers(0, P - 1),
                  st.integers(1, 300)).filter(lambda t: t[0] != t[1])
schedules = st.lists(pairs, min_size=1, max_size=10)


def _machine():
    return Machine(SCCConfig(mesh_cols=2, mesh_rows=1))


def _payload(i, n):
    return np.arange(n, dtype=np.float64) + 1000.0 * i


@given(schedule=schedules)
@settings(max_examples=25, deadline=None)
def test_nonblocking_layers_deliver_everything(schedule):
    """Issue all sends/recvs of the schedule per rank, wait, verify."""
    for layer_cls in (IRCCE, RCKMPIP2P):
        m = _machine()
        layer = layer_cls(m)
        outs = {}

        def program(env):
            reqs = []
            for i, (src, dst, n) in enumerate(schedule):
                if env.rank == src:
                    req = yield from layer.isend(env, _payload(i, n), dst)
                    reqs.append(req)
                if env.rank == dst:
                    buf = np.empty(n)
                    outs[i] = buf
                    req = yield from layer.irecv(env, buf, src)
                    reqs.append(req)
            yield from layer.wait_all(env, reqs)

        m.run_spmd(program)
        for i, (_src, _dst, n) in enumerate(schedule):
            np.testing.assert_array_equal(outs[i], _payload(i, n))


@given(schedule=schedules)
@settings(max_examples=15, deadline=None)
def test_lwnb_sequential_schedule_delivers(schedule):
    """The lightweight layer allows one in-flight send/recv: run the
    schedule one message at a time (globally ordered), still intact."""
    m = _machine()
    layer = LWNB(m)
    rcce = RCCE(m)
    outs = {}

    def program(env):
        for i, (src, dst, n) in enumerate(schedule):
            if env.rank == src:
                req = yield from layer.isend(env, _payload(i, n), dst)
                yield from layer.wait(env, req)
            elif env.rank == dst:
                buf = np.empty(n)
                outs[i] = buf
                req = yield from layer.irecv(env, buf, src)
                yield from layer.wait(env, req)
            # Global barrier between schedule steps keeps at most one
            # operation in flight per core.
            yield from rcce.barrier(env)

    m.run_spmd(program)
    for i, (_src, _dst, n) in enumerate(schedule):
        np.testing.assert_array_equal(outs[i], _payload(i, n))


@given(lengths=st.lists(st.integers(1, 400), min_size=1, max_size=8))
@settings(max_examples=20, deadline=None)
def test_per_channel_fifo_order(lengths):
    """Messages on one (src, dst) channel arrive in send order, for the
    blocking layer (the flag protocol admits only one in-flight chunk)."""
    m = _machine()
    rcce = RCCE(m)
    received = []

    def program(env):
        if env.rank == 0:
            for i, n in enumerate(lengths):
                yield from rcce.send(env, _payload(i, n), 1)
        elif env.rank == 1:
            for i, n in enumerate(lengths):
                buf = np.empty(n)
                yield from rcce.recv(env, buf, 0)
                received.append(buf[0])
        else:
            yield from env.compute(0)

    m.run_spmd(program)
    assert received == [1000.0 * i for i in range(len(lengths))]


@given(n=st.integers(0, 2000), seed=st.integers(0, 2**31))
@settings(max_examples=25, deadline=None)
def test_payload_bitexact_across_layers(n, seed):
    """Any byte pattern survives any layer (NaNs, infs, denormals...)."""
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, 256, size=n * 8, dtype=np.uint8)
    payload = raw.view(np.float64) if n else np.empty(0)

    for layer_cls in (IRCCE, LWNB, RCKMPIP2P):
        m = _machine()
        layer = layer_cls(m)
        out = np.empty(n)

        def program(env):
            if env.rank == 0:
                req = yield from layer.isend(env, payload, 1)
                yield from layer.wait(env, req)
            elif env.rank == 1:
                req = yield from layer.irecv(env, out, 0)
                yield from layer.wait(env, req)
            else:
                yield from env.compute(0)

        m.run_spmd(program)
        assert out.tobytes() == payload.tobytes()
