"""Property-based correctness of collectives over random shapes/ops.

Uses small simulated machines (4 cores) to keep hypothesis examples fast;
integer dtypes make result comparison exact.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ops import MAX, MIN, SUM
from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine

P = 4

vectors = st.integers(min_value=1, max_value=200)
ops = st.sampled_from([SUM, MIN, MAX])
stacks = st.sampled_from(["blocking", "lightweight", "lightweight_balanced",
                          "mpb"])
seeds = st.integers(min_value=0, max_value=2**31)


def run(stack, program_factory):
    machine = Machine(SCCConfig(mesh_cols=2, mesh_rows=1))
    comm = make_communicator(machine, stack)
    return machine.run_spmd(program_factory(comm))


def int_inputs(n, seed):
    rng = np.random.default_rng(seed)
    return [rng.integers(-1000, 1000, size=n).astype(np.float64)
            for _ in range(P)]


@given(n=vectors, op=ops, stack=stacks, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_allreduce_matches_numpy(n, op, stack, seed):
    inputs = int_inputs(n, seed)
    npfunc = {"sum": np.sum, "min": np.min, "max": np.max}[op.name]
    expected = npfunc(inputs, axis=0)

    def factory(comm):
        def program(env):
            return (yield from comm.allreduce(env, inputs[env.rank], op))
        return program

    result = run(stack, factory)
    for value in result.values:
        assert np.array_equal(value, expected)


@given(n=vectors, seed=seeds, stack=st.sampled_from(["blocking",
                                                     "lightweight"]))
@settings(max_examples=15, deadline=None)
def test_allgather_matches_inputs(n, seed, stack):
    inputs = int_inputs(n, seed)
    expected = np.stack(inputs)

    def factory(comm):
        def program(env):
            return (yield from comm.allgather(env, inputs[env.rank]))
        return program

    result = run(stack, factory)
    for value in result.values:
        assert np.array_equal(value, expected)


@given(n=vectors, seed=seeds,
       root=st.integers(min_value=0, max_value=P - 1))
@settings(max_examples=15, deadline=None)
def test_bcast_delivers_roots_buffer(n, seed, root):
    rng = np.random.default_rng(seed)
    data = rng.integers(-9, 9, size=n).astype(np.float64)

    def factory(comm):
        def program(env):
            buf = data.copy() if env.rank == root else np.empty(n)
            return (yield from comm.bcast(env, buf, root))
        return program

    result = run("lightweight_balanced", factory)
    for value in result.values:
        assert np.array_equal(value, data)


@given(n=vectors, seed=seeds,
       root=st.integers(min_value=0, max_value=P - 1))
@settings(max_examples=15, deadline=None)
def test_reduce_root_only(n, seed, root):
    inputs = int_inputs(n, seed)
    expected = np.sum(inputs, axis=0)

    def factory(comm):
        def program(env):
            return (yield from comm.reduce(env, inputs[env.rank], SUM, root))
        return program

    result = run("lightweight", factory)
    assert np.array_equal(result.values[root], expected)
    for rank, value in enumerate(result.values):
        if rank != root:
            assert value is None


@given(n=vectors, seed=seeds)
@settings(max_examples=12, deadline=None)
def test_reduce_scatter_blocks_tile_the_sum(n, seed):
    inputs = int_inputs(n, seed)
    expected = np.sum(inputs, axis=0)

    def factory(comm):
        def program(env):
            block, part = yield from comm.reduce_scatter(env,
                                                         inputs[env.rank])
            return block, part
        return program

    result = run("lightweight_balanced", factory)
    reassembled = np.empty(n)
    for rank in range(P):
        block, part = result.values[rank]
        reassembled[part.slice_of(rank)] = block
    assert np.array_equal(reassembled, expected)


@given(seed=seeds, n=st.integers(min_value=1, max_value=60))
@settings(max_examples=12, deadline=None)
def test_alltoall_is_global_transpose(seed, n):
    rng = np.random.default_rng(seed)
    sends = [rng.integers(-9, 9, size=(P, n)).astype(np.float64)
             for _ in range(P)]

    def factory(comm):
        def program(env):
            return (yield from comm.alltoall(env, sends[env.rank]))
        return program

    result = run("lightweight", factory)
    for dst in range(P):
        for src in range(P):
            assert np.array_equal(result.values[dst][src], sends[src][dst])
