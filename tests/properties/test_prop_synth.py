"""Numeric correctness of the synthesized repertoire vs numpy references.

Every chunked transform of every hand builder and every pipelined chain
builder is interpreted on real numpy buffers (the same machine-free
interpreter the hand repertoire is held to, now packaged as
:mod:`repro.sched.interp`) at the paper's awkward rank counts — the
synthesis search may only ever emit schedules that pass this harness.
"""

import pytest

from repro.core.blocks import balanced_partition
from repro.sched.builders import SCHEDULED_KINDS, build_schedule, builder_names
from repro.sched.chunking import PIPELINE_BUILDERS, chunk_schedule
from repro.sched.interp import check_schedule_numeric

PS = (2, 3, 47, 48)
N = 70
CHUNKS = (1, 2, 4)


def transform_cases():
    for kind in SCHEDULED_KINDS:
        for name in builder_names(kind):
            for c in CHUNKS:
                yield kind, name, c


@pytest.mark.parametrize("p", PS)
@pytest.mark.parametrize("kind,name,c", list(transform_cases()),
                         ids=lambda case: str(case))
def test_chunked_transform_bit_exact(kind, name, c, p):
    root = p - 1 if kind in ("bcast", "reduce") else 0
    part = balanced_partition(N, p)
    sched = build_schedule(kind, name, p, N, part=part, root=root)
    check_schedule_numeric(chunk_schedule(sched, c))


@pytest.mark.parametrize("p", PS)
@pytest.mark.parametrize("c", (1, 2, 4, 8))
@pytest.mark.parametrize("kind", sorted(PIPELINE_BUILDERS))
def test_pipeline_bit_exact(kind, c, p):
    root = p - 1 if kind in ("bcast", "reduce") else 0
    part = balanced_partition(N, p)
    sched = PIPELINE_BUILDERS[kind](p, N, part, root, c)
    check_schedule_numeric(sched)


@pytest.mark.parametrize("p", PS)
def test_pipeline_single_element(p):
    """Degenerate payloads collapse every chunk grid to one chunk."""
    part = balanced_partition(1, p)
    for kind in sorted(PIPELINE_BUILDERS):
        sched = PIPELINE_BUILDERS[kind](p, 1, part, 0, 4)
        check_schedule_numeric(sched)
