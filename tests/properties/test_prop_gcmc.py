"""Property-based tests for GCMC components."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.moves import Action, Proposal, acceptance_probability
from repro.apps.gcmc.particles import ParticleSystem
from repro.apps.gcmc.shortrange import pair_energy_with_set


finite = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)
positions = st.tuples(
    st.floats(min_value=0.0, max_value=9.999),
    st.floats(min_value=0.0, max_value=9.999),
    st.floats(min_value=0.0, max_value=9.999),
)


@given(action=st.sampled_from(list(Action)),
       n=st.integers(min_value=1, max_value=500), de=finite)
def test_acceptance_probability_bounded(action, n, de):
    p = acceptance_probability(GCMCConfig(), action, n, de)
    assert 0.0 <= p <= 1.0
    assert math.isfinite(p)


@given(de1=finite, de2=finite, n=st.integers(1, 100))
def test_acceptance_monotone_in_energy(de1, de2, n):
    """Higher energy cost never increases acceptance."""
    cfg = GCMCConfig()
    lo, hi = sorted((de1, de2))
    for action in Action:
        p_lo = acceptance_probability(cfg, action, n, lo)
        p_hi = acceptance_probability(cfg, action, n, hi)
        assert p_hi <= p_lo + 1e-12


@given(action=st.sampled_from(list(Action)),
       slot=st.integers(0, 10_000), pos=positions,
       charge=st.sampled_from([-1.0, 0.0, 1.0]))
def test_proposal_wire_roundtrip(action, slot, pos, charge):
    p = Proposal(action, slot, np.array(pos), charge)
    q = Proposal.unpack(p.pack())
    assert q.action == action
    assert q.slot == slot
    np.testing.assert_array_equal(q.position, p.position)
    assert q.charge == charge


@given(pos_a=positions, pos_b=positions)
@settings(max_examples=40)
def test_pair_energy_symmetric(pos_a, pos_b):
    """U(a, b) == U(b, a) under minimum image."""
    cfg = GCMCConfig(initial_particles=0, capacity=4, box=10.0)
    system = ParticleSystem(cfg)
    system.insert_particle(0, np.array(pos_a), 1.0)
    system.insert_particle(1, np.array(pos_b), -1.0)
    e_ab, _ = pair_energy_with_set(system, system.positions[0], 1.0,
                                   np.array([1]))
    e_ba, _ = pair_energy_with_set(system, system.positions[1], -1.0,
                                   np.array([0]))
    assert e_ab == np.float64(e_ba) or abs(e_ab - e_ba) < 1e-12


@given(delta=st.tuples(st.floats(-100, 100), st.floats(-100, 100),
                       st.floats(-100, 100)))
def test_minimum_image_within_half_box(delta):
    cfg = GCMCConfig(initial_particles=0, capacity=4, box=10.0)
    system = ParticleSystem(cfg)
    wrapped = system.minimum_image(np.array([delta]))
    assert np.all(np.abs(wrapped) <= 5.0 + 1e-9)


@given(n=st.integers(0, 40))
@settings(max_examples=20)
def test_local_sets_partition_any_active_count(n):
    cfg = GCMCConfig(initial_particles=min(n, 40), capacity=64, box=10.0)
    system = ParticleSystem(cfg)
    for nranks in (1, 3, 8):
        pieces = [system.local_indices(r, nranks) for r in range(nranks)]
        joined = sorted(np.concatenate(pieces)) if pieces else []
        assert list(joined) == list(system.active_indices())
