"""Unit tests for the gory RCCE interface."""

import numpy as np
import pytest

from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.rcce.gory import FlagHandle, GoryError, GoryRCCE


def machine():
    return Machine(SCCConfig(mesh_cols=2, mesh_rows=1))


class TestSymmetricAllocation:
    def test_malloc_line_aligned_and_symmetric(self):
        m = machine()
        gory = GoryRCCE(m)
        buf = gory.malloc(100)
        assert buf.offset % 32 == 0
        assert buf.offset >= m.config.mpb_flag_bytes
        # Same offset names a region on every core.
        for core in range(4):
            region = buf.region(m, core)
            assert region.owner == core
            assert region.offset == buf.offset

    def test_sequential_allocations_disjoint(self):
        gory = GoryRCCE(machine())
        a = gory.malloc(64)
        b = gory.malloc(64)
        assert b.offset >= a.offset + 64

    def test_exhaustion(self):
        gory = GoryRCCE(machine())
        gory.malloc(7000)
        with pytest.raises(GoryError):
            gory.malloc(4096)

    def test_free_all(self):
        gory = GoryRCCE(machine())
        first = gory.malloc(64)
        gory.free_all()
        again = gory.malloc(64)
        assert again.offset == first.offset

    def test_invalid_size(self):
        with pytest.raises(GoryError):
            GoryRCCE(machine()).malloc(0)

    def test_state_shared_between_instances(self):
        m = machine()
        a = GoryRCCE(m).malloc(64)
        b = GoryRCCE(m).malloc(64)
        assert a.offset != b.offset


class TestFlags:
    def test_alloc_free_reuse(self):
        gory = GoryRCCE(machine())
        f1 = gory.flag_alloc()
        f2 = gory.flag_alloc()
        assert f1.index != f2.index
        gory.flag_free(f1)
        f3 = gory.flag_alloc()
        assert f3.index == f1.index

    def test_capacity(self):
        m = machine()
        gory = GoryRCCE(m)
        for _ in range(gory.flag_capacity):
            gory.flag_alloc()
        with pytest.raises(GoryError):
            gory.flag_alloc()

    def test_flag_write_and_wait(self):
        m = machine()
        gory = GoryRCCE(m)
        flag = gory.flag_alloc()

        def program(env):
            if env.rank == 0:
                yield from env.compute(5000)
                yield from gory.flag_write(env, flag, True, 1)
                return None
            elif env.rank == 1:
                yield from gory.wait_until(env, flag, True)
                return env.now
            yield from env.compute(0)

        result = m.run_spmd(program)
        assert result.values[1] > m.latency.core_cycles(5000)

    def test_flag_read_remote(self):
        m = machine()
        gory = GoryRCCE(m)
        flag = gory.flag_alloc()

        def program(env):
            if env.rank == 0:
                before = yield from gory.flag_read(env, flag, 1)
                yield from gory.flag_write(env, flag, True, 1)
                after = yield from gory.flag_read(env, flag, 1)
                return before, after
            yield from env.compute(0)

        result = m.run_spmd(program)
        assert result.values[0] == (False, True)


class TestPutGet:
    def test_put_get_roundtrip(self):
        m = machine()
        gory = GoryRCCE(m)
        buf = gory.malloc(256)
        flag = gory.flag_alloc()
        payload = np.linspace(0, 1, 32)

        def program(env):
            if env.rank == 0:
                yield from gory.put(env, buf, payload, target_rank=2)
                yield from gory.flag_write(env, flag, True, 2)
            elif env.rank == 2:
                yield from gory.wait_until(env, flag, True)
                raw = yield from gory.get(env, buf, payload.nbytes,
                                          source_rank=2)
                return raw.view(np.float64).copy()
            else:
                yield from env.compute(0)

        result = m.run_spmd(program)
        np.testing.assert_array_equal(result.values[2], payload)

    def test_bounds_checked(self):
        m = machine()
        gory = GoryRCCE(m)
        buf = gory.malloc(64)

        def program(env):
            if env.rank == 0:
                yield from gory.put(env, buf, np.zeros(100), 1)
            else:
                yield from env.compute(0)

        with pytest.raises(GoryError):
            m.run_spmd(program)

    def test_custom_ring_protocol(self):
        """Build a one-shot neighbour exchange purely from gory
        primitives — what RCCE application authors actually did."""
        m = machine()
        gory = GoryRCCE(m)
        buf = gory.malloc(64)
        full = gory.flag_alloc()

        def program(env):
            p = env.size
            right = (env.rank + 1) % p
            # Write my rank into my right neighbour's buffer, flag it,
            # then wait for my own buffer to be flagged and read it.
            data = np.full(8, float(env.rank))
            yield from gory.put(env, buf, data, target_rank=right)
            yield from gory.flag_write(env, full, True, right)
            yield from gory.wait_until(env, full, True)
            raw = yield from gory.get(env, buf, 64, source_rank=env.rank)
            return raw.view(np.float64)[0]

        result = m.run_spmd(program)
        assert result.values == [3.0, 0.0, 1.0, 2.0]
