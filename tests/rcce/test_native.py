"""Unit tests for RCCE's naive native collectives (related-work baseline)."""

import numpy as np
import pytest

from repro.core.ops import MAX, SUM
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.rcce.api import RCCE
from repro.rcce.native import native_allreduce, native_bcast, native_reduce


def machine(cores=4):
    return Machine(SCCConfig(mesh_cols=cores // 2, mesh_rows=1))


def run(cores, program):
    m = machine(cores)
    rcce = RCCE(m)
    result = m.run_spmd(program, rcce)
    return m, result


class TestNativeBcast:
    def test_delivers_data(self):
        data = np.arange(32, dtype=np.float64)

        def program(env, rcce):
            buf = data.copy() if env.rank == 0 else np.empty(32)
            yield from native_bcast(rcce, env, buf, 0)
            return buf

        _, result = run(4, program)
        for value in result.values:
            assert np.array_equal(value, data)

    def test_nonzero_root(self):
        data = np.full(8, 3.25)

        def program(env, rcce):
            buf = data.copy() if env.rank == 2 else np.empty(8)
            yield from native_bcast(rcce, env, buf, 2)
            return buf[0]

        _, result = run(4, program)
        assert result.values == [3.25] * 4

    def test_latency_linear_in_ranks(self):
        """The root sends serially: latency ~ (p-1) messages."""
        def bcast_time(cores):
            m = machine(cores)
            rcce = RCCE(m)

            def program(env):
                buf = np.zeros(64) if env.rank == 0 else np.empty(64)
                yield from native_bcast(rcce, env, buf, 0)

            return m.run_spmd(program).elapsed_ps

        t4 = bcast_time(4)
        t8 = bcast_time(8)
        ratio = t8 / t4
        assert 1.8 < ratio < 3.2  # ~(8-1)/(4-1) = 2.33


class TestNativeReduce:
    def test_root_gets_sum(self):
        def program(env, rcce):
            vec = np.full(16, float(env.rank + 1))
            return (yield from native_reduce(rcce, env, vec, SUM, 0))

        _, result = run(4, program)
        assert np.array_equal(result.values[0], np.full(16, 10.0))
        assert result.values[1] is None

    def test_other_ops(self):
        def program(env, rcce):
            vec = np.full(4, float(env.rank))
            return (yield from native_reduce(rcce, env, vec, MAX, 0))

        _, result = run(4, program)
        assert np.array_equal(result.values[0], np.full(4, 3.0))

    def test_root_does_all_reduction_work(self):
        """The defining inefficiency: only the root computes."""
        m = machine(4)
        rcce = RCCE(m)

        def program(env):
            vec = np.full(256, 1.0)
            yield from native_reduce(rcce, env, vec, SUM, 0)

        result = m.run_spmd(program)
        root_compute = result.accounts[0].get("compute")
        others = [result.accounts[r].get("compute") for r in (1, 2, 3)]
        assert root_compute > 0
        assert all(c == 0 for c in others)


class TestNativeAllreduce:
    def test_everyone_gets_sum(self):
        def program(env, rcce):
            vec = np.full(8, float(env.rank))
            return (yield from native_allreduce(rcce, env, vec, SUM, 0))

        _, result = run(4, program)
        for value in result.values:
            assert np.array_equal(value, np.full(8, 6.0))
