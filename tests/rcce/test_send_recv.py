"""Unit tests for RCCE blocking send/recv (the Fig.-3 protocol)."""

import numpy as np
import pytest

from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.rcce.api import RCCE, RCCEError
from repro.sim.errors import DeadlockError


def machine(cores=4):
    assert cores % 2 == 0
    return Machine(SCCConfig(mesh_cols=cores // 2, mesh_rows=1))


class TestBasicExchange:
    def test_simple_send_recv(self):
        m = machine()
        rcce = RCCE(m)
        payload = np.linspace(0, 1, 64)

        def program(env):
            if env.rank == 0:
                yield from rcce.send(env, payload, 1)
                return None
            elif env.rank == 1:
                out = np.empty(64)
                yield from rcce.recv(env, out, 0)
                return out
            yield from env.compute(0)

        result = m.run_spmd(program)
        assert np.array_equal(result.values[1], payload)

    def test_recv_before_send_posted(self):
        """Receiver arriving first just waits on the sent flag."""
        m = machine()
        rcce = RCCE(m)

        def program(env):
            if env.rank == 0:
                yield from env.compute(50_000)  # sender is late
                yield from rcce.send(env, np.array([3.5]), 1)
            elif env.rank == 1:
                out = np.empty(1)
                yield from rcce.recv(env, out, 0)
                return out[0]
            else:
                yield from env.compute(0)

        result = m.run_spmd(program)
        assert result.values[1] == 3.5

    def test_send_blocks_until_receive(self):
        """Double synchronization: send cannot return before the matching
        receive has picked the data up (paper Section IV-A)."""
        m = machine()
        rcce = RCCE(m)
        times = {}

        def program(env):
            if env.rank == 0:
                yield from rcce.send(env, np.zeros(16), 1)
                times["send_done"] = env.now
            elif env.rank == 1:
                yield from env.compute(500_000)  # receiver is very late
                out = np.empty(16)
                yield from rcce.recv(env, out, 0)
                times["recv_done"] = env.now
            else:
                yield from env.compute(0)

        m.run_spmd(program)
        late = m.latency.core_cycles(500_000)
        assert times["send_done"] > late  # sender was held hostage

    def test_multiple_messages_in_order(self):
        m = machine()
        rcce = RCCE(m)

        def program(env):
            if env.rank == 0:
                for i in range(3):
                    yield from rcce.send(env, np.full(8, float(i)), 1)
            elif env.rank == 1:
                seen = []
                for _ in range(3):
                    out = np.empty(8)
                    yield from rcce.recv(env, out, 0)
                    seen.append(out[0])
                return seen
            else:
                yield from env.compute(0)

        result = m.run_spmd(program)
        assert result.values[1] == [0.0, 1.0, 2.0]

    def test_bidirectional_pair_with_ordering(self):
        """Two cores exchanging messages must order send/recv opposite
        ways (here: rank 0 sends first) or they would deadlock."""
        m = machine()
        rcce = RCCE(m)

        def program(env):
            if env.rank == 0:
                yield from rcce.send(env, np.array([1.0]), 1)
                out = np.empty(1)
                yield from rcce.recv(env, out, 1)
                return out[0]
            elif env.rank == 1:
                out = np.empty(1)
                yield from rcce.recv(env, out, 0)
                yield from rcce.send(env, np.array([2.0]), 0)
                return out[0]
            yield from env.compute(0)

        result = m.run_spmd(program)
        assert result.values[0] == 2.0
        assert result.values[1] == 1.0


class TestChunking:
    def test_message_larger_than_mpb(self):
        """A 3x-MPB message must arrive intact through chunked handshakes."""
        m = machine()
        rcce = RCCE(m)
        n = (m.config.mpb_payload_bytes // 8) * 3 + 5
        payload = np.arange(n, dtype=np.float64)

        def program(env):
            if env.rank == 0:
                yield from rcce.send(env, payload, 1)
            elif env.rank == 1:
                out = np.empty(n)
                yield from rcce.recv(env, out, 0)
                return out
            else:
                yield from env.compute(0)

        result = m.run_spmd(program)
        assert np.array_equal(result.values[1], payload)

    def test_zero_length_message_synchronizes(self):
        m = machine()
        rcce = RCCE(m)

        def program(env):
            if env.rank == 0:
                yield from env.compute(100_000)
                yield from rcce.send(env, np.empty(0), 1)
                return env.now
            elif env.rank == 1:
                out = np.empty(0)
                yield from rcce.recv(env, out, 0)
                return env.now
            yield from env.compute(0)

        result = m.run_spmd(program)
        # The empty message still forced a full handshake.
        assert result.values[1] >= m.latency.core_cycles(100_000)


class TestErrors:
    def test_send_to_self_rejected(self):
        m = machine()
        rcce = RCCE(m)

        def program(env):
            if env.rank == 0:
                yield from rcce.send(env, np.zeros(1), 0)
            else:
                yield from env.compute(0)

        with pytest.raises(RCCEError):
            m.run_spmd(program)

    def test_recv_from_self_rejected(self):
        m = machine()
        rcce = RCCE(m)

        def program(env):
            if env.rank == 0:
                yield from rcce.recv(env, np.zeros(1), 0)
            else:
                yield from env.compute(0)

        with pytest.raises(RCCEError):
            m.run_spmd(program)


class TestDeadlock:
    def test_unordered_cyclic_sends_deadlock(self):
        """Paper IV-A: every core sending first in a ring deadlocks with
        blocking doubly-synchronizing primitives."""
        m = machine(4)
        rcce = RCCE(m)

        def program(env):
            right = (env.rank + 1) % env.size
            left = (env.rank - 1) % env.size
            out = np.empty(4)
            yield from rcce.send(env, np.zeros(4), right)  # everyone sends
            yield from rcce.recv(env, out, left)

        with pytest.raises(DeadlockError):
            m.run_spmd(program)

    def test_odd_even_ordering_avoids_deadlock(self):
        """RCCE_comm's fix: odd ranks receive first."""
        m = machine(4)
        rcce = RCCE(m)

        def program(env):
            right = (env.rank + 1) % env.size
            left = (env.rank - 1) % env.size
            out = np.empty(4)
            if env.rank % 2 == 0:
                yield from rcce.send(env, np.full(4, float(env.rank)), right)
                yield from rcce.recv(env, out, left)
            else:
                yield from rcce.recv(env, out, left)
                yield from rcce.send(env, np.full(4, float(env.rank)), right)
            return out[0]

        result = m.run_spmd(program)
        assert result.values == [3.0, 0.0, 1.0, 2.0]


class TestBarrier:
    def test_barrier_aligns_ranks(self):
        m = machine()
        rcce = RCCE(m)

        def program(env):
            yield from env.compute(1000 * env.rank)
            yield from rcce.barrier(env)
            return env.now

        result = m.run_spmd(program)
        slowest_work = m.latency.core_cycles(3000)
        for t in result.values:
            assert t >= slowest_work

    def test_barrier_reusable(self):
        m = machine()
        rcce = RCCE(m)

        def program(env):
            for _ in range(3):
                yield from rcce.barrier(env)
            return env.now

        result = m.run_spmd(program)
        assert len(set(r > 0 for r in result.values)) == 1

    def test_wait_time_accounted(self):
        m = machine()
        rcce = RCCE(m)

        def program(env):
            if env.rank == 0:
                yield from env.compute(1_000_000)
                yield from rcce.send(env, np.zeros(4), 1)
            elif env.rank == 1:
                out = np.empty(4)
                yield from rcce.recv(env, out, 0)
            else:
                yield from env.compute(0)

        result = m.run_spmd(program)
        # Rank 1 spent nearly all its time in rcce_wait_until.
        assert result.accounts[1].fraction("wait_flag") > 0.9
