"""Unit tests for the low-level put/get transfer layer."""

import numpy as np
import pytest

from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.rcce.api import comm_buffer
from repro.rcce.transfer import get_bytes, put_bytes, putget_calls


class TestPutgetCalls:
    def test_zero_bytes(self):
        assert putget_calls(0, 32) == 0

    def test_exact_lines_one_call(self):
        assert putget_calls(32, 32) == 1
        assert putget_calls(4800, 32) == 1  # 600 doubles

    def test_padded_tail_costs_extra_call(self):
        assert putget_calls(33, 32) == 2
        assert putget_calls(4808, 32) == 2  # 601 doubles

    def test_tail_only(self):
        assert putget_calls(8, 32) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            putget_calls(-1, 32)

    def test_period_four_doubles(self):
        """Multiples of 4 doubles need one call; everything else two —
        the mechanism behind Fig. 9's period-4 spikes."""
        for doubles in range(496, 520):
            calls = putget_calls(doubles * 8, 32)
            assert calls == (1 if doubles % 4 == 0 else 2)


def tiny_machine():
    return Machine(SCCConfig(mesh_cols=2, mesh_rows=1))


class TestPutGet:
    def test_roundtrip_moves_real_bytes(self):
        m = tiny_machine()
        payload = np.arange(100, dtype=np.float64)

        def program(env):
            region = comm_buffer(m, env.core_of_rank(1))
            if env.rank == 0:
                yield from put_bytes(env, region, payload.view(np.uint8))
                return None
            elif env.rank == 1:
                # Wait until rank 0 is done (no flags here: poll sim time).
                yield from env.sleep(10_000_000)
                raw = yield from get_bytes(env, region, payload.nbytes)
                return raw.view(np.float64).copy()
            yield from env.compute(0)

        result = m.run_spmd(program)
        assert np.array_equal(result.values[1], payload)

    def test_put_time_charged_as_copy(self):
        m = tiny_machine()
        data = np.zeros(4800, dtype=np.uint8)

        def program(env):
            if env.rank == 0:
                region = comm_buffer(m, env.core_of_rank(1))
                yield from put_bytes(env, region, data)
            else:
                yield from env.compute(0)

        result = m.run_spmd(program)
        assert result.accounts[0].get("copy") > 0

    def test_padded_message_slower_than_aligned(self):
        """601 doubles must cost more than 604 bytes' worth over 600:
        the tail triggers a whole extra software call + line."""
        def elapsed(nbytes):
            m = tiny_machine()
            data = np.zeros(nbytes, dtype=np.uint8)

            def program(env):
                if env.rank == 0:
                    region = comm_buffer(m, env.core_of_rank(1))
                    yield from put_bytes(env, region, data)
                else:
                    yield from env.compute(0)

            return m.run_spmd(program).elapsed_ps

        t600 = elapsed(600 * 8)
        t601 = elapsed(601 * 8)
        t604 = elapsed(604 * 8)
        assert t601 > t600
        # 604 doubles is line-aligned again: cheaper than 601 despite
        # being a longer message.
        assert t604 < t601
