"""Unit tests for the process model (including interrupts)."""

import pytest

from repro.sim import Interrupt, Simulator
from repro.sim.errors import SimulationError


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.process(lambda: None)


def test_process_returns_value():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)
        return {"answer": 42}

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == {"answer": 42}


def test_process_name_defaults_to_generator_name():
    sim = Simulator()

    def my_worker(sim):
        yield sim.timeout(1)

    p = sim.process(my_worker(sim))
    assert p.name == "my_worker"
    sim.run()


def test_processes_can_wait_on_each_other():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(500)
        return "done"

    def parent(sim):
        c = sim.process(child(sim))
        result = yield c
        return (result, sim.now)

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == ("done", 500)


def test_nested_subgenerators_via_yield_from():
    sim = Simulator()

    def inner(sim):
        yield sim.timeout(10)
        return "inner-value"

    def outer(sim):
        value = yield from inner(sim)
        yield sim.timeout(5)
        return value + "!"

    p = sim.process(outer(sim))
    sim.run()
    assert p.value == "inner-value!"
    assert sim.now == 15


class TestInterrupt:
    def test_interrupt_waiting_process(self):
        sim = Simulator()

        def victim(sim):
            try:
                yield sim.timeout(10_000)
            except Interrupt as intr:
                return ("interrupted", intr.cause, sim.now)

        def attacker(sim, target):
            yield sim.timeout(100)
            target.interrupt("cancelled")

        v = sim.process(victim(sim))
        sim.process(attacker(sim, v))
        sim.run()
        assert v.value == ("interrupted", "cancelled", 100)

    def test_stale_wakeup_after_interrupt_is_ignored(self):
        """The abandoned timeout must not resume the process again."""
        sim = Simulator()
        resumes = []

        victim_box = []

        def victim(sim):
            try:
                yield sim.timeout(50)
            except Interrupt:
                pass
            resumes.append(sim.now)
            yield sim.timeout(1000)
            resumes.append(sim.now)

        def attacker(sim):
            yield sim.timeout(50)  # same instant as the victim's timeout
            victim_box[0].interrupt()

        # The attacker is created first, so at t=50 its wakeup processes
        # before the victim's own timeout: the interrupt races with (and
        # must beat) the timeout that fires at the very same instant.
        sim.process(attacker(sim))
        v = sim.process(victim(sim))
        victim_box.append(v)
        sim.run()
        assert v.triggered
        # Exactly two resumes: after the interrupt and after the new wait.
        assert resumes == [50, 1050]

    def test_interrupt_completed_process_rejected(self):
        sim = Simulator()

        def quick(sim):
            yield sim.timeout(1)

        p = sim.process(quick(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_uncaught_interrupt_fails_process(self):
        sim = Simulator()

        def victim(sim):
            yield sim.timeout(10_000)

        def attacker(sim, target):
            yield sim.timeout(1)
            target.interrupt()

        v = sim.process(victim(sim))
        sim.process(attacker(sim, v))
        sim.run(check_deadlock=False)
        assert v.failed
        assert isinstance(v.value, Interrupt)
