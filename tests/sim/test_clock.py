"""Unit tests for clocks and time-unit conversions."""

import pytest

from repro.sim.clock import (
    Clock,
    PS_PER_MICROSECOND,
    PS_PER_SECOND,
    ps_to_ms,
    ps_to_s,
    ps_to_us,
    us_to_ps,
)


def test_core_clock_533mhz():
    clock = Clock(533_000_000)
    # 1 / 533 MHz = 1876.17 ps
    assert clock.ps_per_cycle == 1876
    assert clock.cycles(1) == 1876
    assert clock.cycles(100) == 187_600


def test_mesh_clock_800mhz():
    clock = Clock(800_000_000)
    assert clock.ps_per_cycle == 1250
    assert clock.cycles(8) == 10_000


def test_zero_cycles():
    assert Clock(533_000_000).cycles(0) == 0


def test_fractional_cycles_round():
    clock = Clock(800_000_000)
    assert clock.cycles(0.5) == 625


def test_negative_cycles_rejected():
    with pytest.raises(ValueError):
        Clock(800_000_000).cycles(-1)


def test_invalid_frequency_rejected():
    with pytest.raises(ValueError):
        Clock(0)
    with pytest.raises(ValueError):
        Clock(-5)


def test_roundtrip_to_cycles():
    clock = Clock(533_000_000)
    assert clock.to_cycles(clock.cycles(1000)) == pytest.approx(1000, rel=1e-9)


def test_unit_conversions():
    assert ps_to_us(PS_PER_MICROSECOND) == 1.0
    assert ps_to_ms(PS_PER_MICROSECOND * 1000) == 1.0
    assert ps_to_s(PS_PER_SECOND) == 1.0
    assert us_to_ps(2.5) == 2_500_000


def test_str():
    assert "533" in str(Clock(533_000_000))
