"""Watchdog timeouts and enriched hang diagnostics.

Two complementary failure modes of a silent hang:

* the heap *drains* with processes parked -> :class:`DeadlockError`,
  now carrying one :class:`WaitInfo` per blocked process (which
  primitive, which flag/event, how long),
* the heap stays *live* but virtual time blows past a budget ->
  :class:`WatchdogTimeout` from ``run_until_processes(watchdog_ps=...)``.
"""

import pytest

from repro.sim import DeadlockError, Simulator
from repro.sim.errors import WaitInfo, WatchdogTimeout
from repro.sim.events import Gate
from repro.sim.resources import FifoLock


def test_deadlock_carries_waitinfo_for_gate_waiters():
    sim = Simulator()
    gate = Gate(sim, name="flag[3].rcce.sent.0")

    def blocked(sim):
        yield sim.timeout(100)
        yield gate.wait_true()

    sim.process(blocked(sim), name="core3")
    with pytest.raises(DeadlockError) as exc_info:
        sim.run()
    err = exc_info.value
    assert err.waiting == ["core3"]
    assert len(err.blocked) == 1
    info = err.blocked[0]
    assert isinstance(info, WaitInfo)
    assert info.process == "core3"
    assert info.primitive == "wait_true"
    assert info.target == "flag[3].rcce.sent.0"
    assert info.waited_ps == 0  # parked at t=100, heap drained at t=100
    # The diagnostics are in the message, not just the attributes.
    assert "wait_true(flag[3].rcce.sent.0)" in str(err)


def test_deadlock_waitinfo_reports_elapsed_wait_time():
    sim = Simulator()
    gate = Gate(sim, name="never")

    def runner(sim):
        yield sim.timeout(5000)

    def blocked(sim):
        yield gate.wait_true()

    sim.process(runner(sim), name="runner")
    sim.process(blocked(sim), name="stuck")
    with pytest.raises(DeadlockError) as exc_info:
        sim.run()
    (info,) = exc_info.value.blocked
    assert info.process == "stuck"
    assert info.waited_ps == 5000  # parked at t=0, heap drained at t=5000


def test_deadlock_waitinfo_covers_lock_waiters():
    sim = Simulator()
    lock = FifoLock(sim, name="mpbport7")

    def holder(sim):
        yield lock.acquire()
        yield Gate(sim, name="never").wait_true()  # never releases

    def contender(sim):
        yield lock.acquire()

    sim.process(holder(sim), name="holder")
    sim.process(contender(sim), name="contender")
    with pytest.raises(DeadlockError) as exc_info:
        sim.run()
    by_name = {i.process: i for i in exc_info.value.blocked}
    assert by_name["contender"].primitive == "acquire"
    assert by_name["contender"].target == "mpbport7"


def test_watchdog_fires_on_livelock():
    sim = Simulator()

    def spinner(sim):
        while True:  # live forever: poll-loop livelock
            yield sim.timeout(1000)

    def finisher(sim):
        yield sim.timeout(10)

    spin = sim.process(spinner(sim), name="spinner")
    done = sim.process(finisher(sim), name="finisher")
    with pytest.raises(WatchdogTimeout) as exc_info:
        sim.run_until_processes([spin, done], watchdog_ps=50_000)
    err = exc_info.value
    assert err.watchdog_ps == 50_000
    assert err.now_ps <= 50_000
    assert isinstance(err, TimeoutError)  # typed for generic handlers
    assert "watchdog expired" in str(err)


def test_watchdog_reports_blocked_processes():
    sim = Simulator()
    gate = Gate(sim, name="stuck.flag")

    def ticker(sim):
        while True:
            yield sim.timeout(1000)

    def blocked(sim):
        yield gate.wait_true()

    sim.process(ticker(sim), name="ticker")
    target = sim.process(blocked(sim), name="core5")
    with pytest.raises(WatchdogTimeout) as exc_info:
        sim.run_until_processes([target], watchdog_ps=10_000)
    infos = {i.process: i for i in exc_info.value.blocked}
    assert infos["core5"].primitive == "wait_true"
    assert infos["core5"].target == "stuck.flag"
    assert infos["core5"].waited_ps >= 10_000


def test_watchdog_not_triggered_when_run_completes_in_budget():
    sim = Simulator()

    def quick(sim):
        yield sim.timeout(500)
        return sim.now

    proc = sim.process(quick(sim))
    sim.run_until_processes([proc], watchdog_ps=1_000_000)
    assert proc.value == 500


def test_watchdog_budget_measured_from_current_instant():
    sim = Simulator()

    def warmup(sim):
        yield sim.timeout(9_000)

    first = sim.process(warmup(sim))
    sim.run_until_processes([first])
    assert sim.now == 9_000

    def slow(sim):
        yield sim.timeout(8_000)
        return sim.now

    # 8k ps of new work fits an 8k budget even though absolute time
    # ends at 17k: the deadline is relative, not absolute.
    proc = sim.process(slow(sim))
    sim.run_until_processes([proc], watchdog_ps=8_000)
    assert proc.value == 17_000


def test_waitinfo_describe_format():
    info = WaitInfo(process="core1", primitive="wait_set",
                    target="flag[0].rcce.ready.1", waited_ps=4200)
    text = info.describe()
    assert "core1" in text
    assert "wait_set(flag[0].rcce.ready.1)" in text
    assert "4200" in text
