"""Unit tests for FifoLock and Semaphore."""

import pytest

from repro.sim import Simulator
from repro.sim.errors import SimulationError
from repro.sim.resources import FifoLock, Semaphore


class TestFifoLock:
    def test_uncontended_acquire_immediate(self):
        sim = Simulator()
        lock = FifoLock(sim)

        def proc(sim):
            yield lock.acquire()
            t = sim.now
            lock.release()
            return t

        p = sim.process(proc(sim))
        sim.run()
        assert p.value == 0

    def test_try_acquire(self):
        sim = Simulator()
        lock = FifoLock(sim)
        assert lock.try_acquire()
        assert not lock.try_acquire()
        lock.release()
        assert lock.try_acquire()

    def test_fifo_ordering(self):
        sim = Simulator()
        lock = FifoLock(sim)
        order = []

        def proc(sim, tag, delay):
            yield sim.timeout(delay)
            yield lock.acquire()
            order.append(tag)
            yield sim.timeout(100)
            lock.release()

        for tag, delay in (("a", 0), ("b", 1), ("c", 2)):
            sim.process(proc(sim, tag, delay))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_release_unlocked_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            FifoLock(sim).release()

    def test_holding_helper(self):
        sim = Simulator()
        lock = FifoLock(sim)

        def proc(sim):
            yield from lock.holding(500)
            return sim.now

        p1 = sim.process(proc(sim))
        p2 = sim.process(proc(sim))
        sim.run()
        assert (p1.value, p2.value) == (500, 1000)

    def test_queue_length(self):
        sim = Simulator()
        lock = FifoLock(sim)
        lock.try_acquire()
        lock.acquire()  # queued
        assert lock.queue_length == 1


class TestSemaphore:
    def test_initial_count_consumed(self):
        sim = Simulator()
        sem = Semaphore(sim, 2)
        granted = []

        def proc(sim, tag):
            yield sem.acquire()
            granted.append((tag, sim.now))

        for tag in range(3):
            sim.process(proc(sim, tag))

        def releaser(sim):
            yield sim.timeout(100)
            sem.release()

        sim.process(releaser(sim))
        sim.run()
        assert granted == [(0, 0), (1, 0), (2, 100)]

    def test_release_without_waiters_increments(self):
        sim = Simulator()
        sem = Semaphore(sim, 0)
        sem.release()
        assert sem.count == 1

    def test_negative_initial_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            Semaphore(sim, -1)

    def test_fifo_wakeup(self):
        sim = Simulator()
        sem = Semaphore(sim, 0)
        order = []

        def proc(sim, tag, delay):
            yield sim.timeout(delay)
            yield sem.acquire()
            order.append(tag)

        for tag, delay in (("x", 0), ("y", 5)):
            sim.process(proc(sim, tag, delay))

        def releaser(sim):
            yield sim.timeout(50)
            sem.release()
            yield sim.timeout(50)
            sem.release()

        sim.process(releaser(sim))
        sim.run()
        assert order == ["x", "y"]
