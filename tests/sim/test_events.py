"""Unit tests for events, conditions and gates."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Gate, Simulator
from repro.sim.errors import StaleEventError


class TestEvent:
    def test_succeed_delivers_value(self):
        sim = Simulator()

        def proc(sim, ev):
            value = yield ev
            return value

        ev = sim.event()
        p = sim.process(proc(sim, ev))
        ev.succeed("payload")
        sim.run()
        assert p.value == "payload"

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(StaleEventError):
            ev.succeed()
        with pytest.raises(StaleEventError):
            ev.fail(RuntimeError("x"))

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_value_unavailable_before_trigger(self):
        sim = Simulator()
        with pytest.raises(AttributeError):
            _ = sim.event().value

    def test_ok_and_failed_flags(self):
        sim = Simulator()
        ok = sim.event().succeed(1)
        bad = sim.event().fail(ValueError("v"))
        assert ok.ok and not ok.failed
        assert bad.failed and not bad.ok

    def test_callback_after_processed_runs_immediately(self):
        sim = Simulator()
        ev = sim.event().succeed(7)
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [7]

    def test_succeed_with_delay(self):
        sim = Simulator()

        def proc(sim, ev):
            yield ev
            return sim.now

        ev = sim.event()
        p = sim.process(proc(sim, ev))
        ev.succeed(delay=250)
        sim.run()
        assert p.value == 250


class TestConditions:
    def test_allof_waits_for_all(self):
        sim = Simulator()

        def child(sim, d):
            yield sim.timeout(d)
            return d

        def parent(sim, kids):
            result = yield AllOf(sim, kids)
            return (sim.now, sorted(result.values()))

        kids = [sim.process(child(sim, d)) for d in (5, 20, 10)]
        p = sim.process(parent(sim, kids))
        sim.run()
        assert p.value == (20, [5, 10, 20])

    def test_anyof_fires_on_first(self):
        sim = Simulator()

        def child(sim, d):
            yield sim.timeout(d)
            return d

        def parent(sim, kids):
            result = yield AnyOf(sim, kids)
            return (sim.now, result.values())

        kids = [sim.process(child(sim, d)) for d in (50, 5, 500)]
        p = sim.process(parent(sim, kids))
        sim.run()
        assert p.value == (5, [5])

    def test_empty_allof_fires_immediately(self):
        sim = Simulator()

        def parent(sim):
            yield AllOf(sim, [])
            return sim.now

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == 0

    def test_allof_propagates_failure(self):
        sim = Simulator()

        def bad(sim):
            yield sim.timeout(3)
            raise KeyError("broken")

        def good(sim):
            yield sim.timeout(100)

        def parent(sim, kids):
            try:
                yield AllOf(sim, kids)
            except KeyError:
                return "caught"

        kids = [sim.process(bad(sim)), sim.process(good(sim))]
        p = sim.process(parent(sim, kids))
        sim.run()
        assert p.value == "caught"

    def test_mixed_simulators_rejected(self):
        a, b = Simulator(), Simulator()
        with pytest.raises(ValueError):
            AllOf(a, [a.event(), b.event()])


class TestGate:
    def test_wait_true_resumes_on_set(self):
        sim = Simulator()
        gate = sim.gate()

        def setter(sim, gate):
            yield sim.timeout(100)
            gate.set()

        def waiter(sim, gate):
            yield gate.wait_true()
            return sim.now

        sim.process(setter(sim, gate))
        w = sim.process(waiter(sim, gate))
        sim.run()
        assert w.value == 100

    def test_wait_true_on_already_set_is_immediate(self):
        sim = Simulator()
        gate = sim.gate(value=True)

        def waiter(sim, gate):
            yield gate.wait_true()
            return sim.now

        w = sim.process(waiter(sim, gate))
        sim.run()
        assert w.value == 0

    def test_notify_delay_models_poll_latency(self):
        sim = Simulator()
        gate = sim.gate()

        def setter(sim, gate):
            yield sim.timeout(100)
            gate.set()

        def waiter(sim, gate):
            yield gate.wait_true(notify_delay=40)
            return sim.now

        sim.process(setter(sim, gate))
        w = sim.process(waiter(sim, gate))
        sim.run()
        assert w.value == 140

    def test_wait_false(self):
        sim = Simulator()
        gate = sim.gate(value=True)

        def clearer(sim, gate):
            yield sim.timeout(30)
            gate.clear()

        def waiter(sim, gate):
            yield gate.wait_false()
            return sim.now

        sim.process(clearer(sim, gate))
        w = sim.process(waiter(sim, gate))
        sim.run()
        assert w.value == 30

    def test_set_is_idempotent(self):
        sim = Simulator()
        gate = sim.gate()
        gate.set()
        gate.set()  # no error, no double wakeup
        assert gate.value

    def test_toggle(self):
        sim = Simulator()
        gate = sim.gate()
        gate.toggle()
        assert gate.value
        gate.toggle()
        assert not gate.value

    def test_gate_handshake_cycle(self):
        """A full sent/ready handshake as used by RCCE's Fig. 3 protocol."""
        sim = Simulator()
        sent = sim.gate(name="sent")
        ready = sim.gate(name="ready")

        def sender(sim):
            yield sim.timeout(10)   # put data into MPB
            sent.set()
            yield ready.wait_true()
            ready.clear()
            return sim.now

        def receiver(sim):
            yield sent.wait_true()
            sent.clear()
            yield sim.timeout(25)   # copy data out
            ready.set()
            return sim.now

        s = sim.process(sender(sim))
        r = sim.process(receiver(sim))
        sim.run()
        assert r.value == 35
        assert s.value == 35
        assert not sent.value and not ready.value

    def test_wait_level(self):
        sim = Simulator()
        gate = sim.gate(value=True)
        ev_true = gate.wait_level(True)
        ev_false = gate.wait_level(False)
        assert ev_true.triggered
        assert not ev_false.triggered
