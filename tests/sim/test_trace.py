"""Unit tests for tracing and time accounting."""

import pytest

from repro.sim.trace import TimeAccount, Tracer


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.emit(0, "core0", "send")
        assert len(tr) == 0

    def test_enabled_tracer_records(self):
        tr = Tracer()
        tr.emit(10, "core0", "send", {"bytes": 64})
        tr.emit(20, "core1", "recv")
        assert len(tr) == 2
        assert tr.records[0].time_ps == 10
        assert tr.records[0].detail == {"bytes": 64}

    def test_capacity_limit(self):
        tr = Tracer(capacity=2)
        for i in range(5):
            tr.emit(i, "c", "t")
        assert len(tr) == 2

    def test_filter_by_actor_and_tag(self):
        tr = Tracer()
        tr.emit(1, "core0", "send")
        tr.emit(2, "core1", "send")
        tr.emit(3, "core0", "recv")
        assert len(list(tr.filter(actor="core0"))) == 2
        assert len(list(tr.filter(tag="send"))) == 2
        assert len(list(tr.filter(actor="core0", tag="recv"))) == 1

    def test_clear(self):
        tr = Tracer()
        tr.emit(1, "c", "t")
        tr.clear()
        assert len(tr) == 0

    def test_record_str(self):
        tr = Tracer()
        tr.emit(1, "core0", "send", "x")
        assert "core0" in str(tr.records[0])


class TestTimeAccount:
    def test_add_and_total(self):
        acct = TimeAccount()
        acct.add("compute", 100)
        acct.add("wait_flag", 300)
        acct.add("compute", 50)
        assert acct.get("compute") == 150
        assert acct.total() == 450

    def test_fraction(self):
        acct = TimeAccount()
        acct.add("compute", 250)
        acct.add("wait_flag", 750)
        assert acct.fraction("wait_flag") == pytest.approx(0.75)

    def test_fraction_of_empty_account(self):
        assert TimeAccount().fraction("anything") == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TimeAccount().add("x", -1)

    def test_merged(self):
        a = TimeAccount({"compute": 10})
        b = TimeAccount({"compute": 5, "copy": 7})
        m = a.merged(b)
        assert m.get("compute") == 15
        assert m.get("copy") == 7
        # originals untouched
        assert a.get("compute") == 10

    def test_str_contains_percent(self):
        acct = TimeAccount({"compute": 1_000_000})
        assert "%" in str(acct)
