"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim import DeadlockError, Simulator
from repro.sim.errors import SimulationError


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_empty_run_returns_zero():
    sim = Simulator()
    assert sim.run() == 0


def test_timeout_advances_time():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1500)
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 1500
    assert sim.now == 1500


def test_timeout_zero_is_legal():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(0)
        return sim.now

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 0


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_sequential_timeouts_accumulate():
    sim = Simulator()
    seen = []

    def proc(sim):
        for d in (10, 20, 30):
            yield sim.timeout(d)
            seen.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert seen == [10, 30, 60]


def test_two_processes_interleave_deterministically():
    sim = Simulator()
    order = []

    def proc(sim, name, delay):
        for _ in range(3):
            yield sim.timeout(delay)
            order.append((name, sim.now))

    sim.process(proc(sim, "a", 10))
    sim.process(proc(sim, "b", 15))
    sim.run()
    # At t=30 both are due; b's timeout entered the heap earlier (at t=15,
    # vs a's at t=20), so FIFO tie-breaking resumes b first.
    assert order == [
        ("a", 10), ("b", 15), ("a", 20), ("b", 30), ("a", 30), ("b", 45),
    ]


def test_simultaneous_events_fifo_order():
    """Events at the same instant process in insertion order."""
    sim = Simulator()
    order = []

    def proc(sim, name):
        yield sim.timeout(100)
        order.append(name)

    for name in ("p0", "p1", "p2"):
        sim.process(proc(sim, name))
    sim.run()
    assert order == ["p0", "p1", "p2"]


def test_run_until_stops_early():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1000)
        yield sim.timeout(1000)

    p = sim.process(proc(sim))
    sim.run(until=1500)
    assert sim.now == 1500
    assert p.is_alive


def test_run_until_processes():
    sim = Simulator()

    def short(sim):
        yield sim.timeout(10)
        return "short"

    def long(sim):
        yield sim.timeout(10_000)
        return "long"

    s = sim.process(short(sim))
    sim.process(long(sim))
    sim.run_until_processes([s])
    assert sim.now == 10
    assert s.value == "short"


def test_deadlock_detection():
    sim = Simulator()

    def waiter(sim, ev):
        yield ev  # never fires

    sim.process(waiter(sim, sim.event()), name="stuck")
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    assert "stuck" in str(exc.value)


def test_deadlock_check_can_be_disabled():
    sim = Simulator()

    def waiter(sim, ev):
        yield ev

    sim.process(waiter(sim, sim.event()))
    assert sim.run(check_deadlock=False) == 0


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def boom(sim):
        yield sim.timeout(5)
        raise RuntimeError("boom")

    def waiter(sim, target):
        try:
            yield target
        except RuntimeError as e:
            return str(e)

    b = sim.process(boom(sim))
    w = sim.process(waiter(sim, b))
    sim.run()
    assert w.value == "boom"
    assert b.failed


def test_yielding_non_event_fails_process():
    sim = Simulator()

    def bad(sim):
        yield 42

    p = sim.process(bad(sim))
    sim.run(check_deadlock=False)
    assert p.failed
    assert isinstance(p.value, SimulationError)


def test_schedule_into_past_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(SimulationError):
        ev.succeed(delay=-5)


def test_pending_events_counter():
    sim = Simulator()
    assert sim.pending_events == 0
    sim.timeout(100)
    assert sim.pending_events == 1


def test_live_processes_listing():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(10)

    p = sim.process(proc(sim), name="live")
    assert p in sim.live_processes
    sim.run()
    assert sim.live_processes == []


def test_determinism_across_runs():
    """Two identical simulations give identical event orderings."""

    def build():
        sim = Simulator()
        log = []

        def proc(sim, name, delays):
            for d in delays:
                yield sim.timeout(d)
                log.append((name, sim.now))

        sim.process(proc(sim, "x", [7, 7, 7]))
        sim.process(proc(sim, "y", [3, 11, 7]))
        sim.process(proc(sim, "z", [21]))
        sim.run()
        return log

    assert build() == build()
