"""Edge cases of the event loop: run-until semantics, interrupts on
composites, restartability."""

import pytest

from repro.sim import AllOf, AnyOf, Interrupt, Simulator
from repro.sim.errors import DeadlockError


def test_run_until_then_resume():
    sim = Simulator()
    seen = []

    def proc(sim):
        for _ in range(3):
            yield sim.timeout(100)
            seen.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=150)
    assert seen == [100]
    sim.run()  # resume to completion
    assert seen == [100, 200, 300]


def test_run_until_exact_event_time_processes_event():
    sim = Simulator()
    hit = []

    def proc(sim):
        yield sim.timeout(100)
        hit.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=100)
    assert hit == [100]


def test_run_until_no_deadlock_error():
    """Stopping early never raises DeadlockError even with live waiters."""
    sim = Simulator()

    def stuck(sim, ev):
        yield ev

    sim.process(stuck(sim, sim.event()))
    assert sim.run(until=10) == 10


def test_run_until_processes_raises_failed_target():
    sim = Simulator()

    def boom(sim):
        yield sim.timeout(5)
        raise KeyError("died")

    p = sim.process(boom(sim))
    with pytest.raises(KeyError):
        sim.run_until_processes([p])


def test_interrupt_process_waiting_on_allof():
    sim = Simulator()

    def victim(sim):
        kids = [sim.timeout(10_000), sim.timeout(20_000)]
        try:
            yield AllOf(sim, kids)
        except Interrupt:
            return "interrupted"

    def attacker(sim, target):
        yield sim.timeout(50)
        target.interrupt()

    v = sim.process(victim(sim))
    sim.process(attacker(sim, v))
    sim.run(check_deadlock=False)
    assert v.value == "interrupted"


def test_anyof_after_partial_failures():
    sim = Simulator()

    def fail_late(sim):
        yield sim.timeout(100)
        raise ValueError("late failure")

    def succeed_early(sim):
        yield sim.timeout(10)
        return "winner"

    def parent(sim, kids):
        result = yield AnyOf(sim, kids)
        return result.values()

    kids = [sim.process(fail_late(sim)), sim.process(succeed_early(sim))]
    p = sim.process(parent(sim, kids))
    sim.run(check_deadlock=False)
    assert p.value == ["winner"]


def test_deadlock_error_lists_multiple_processes():
    sim = Simulator()

    def stuck(sim, ev):
        yield ev

    for i in range(12):
        sim.process(stuck(sim, sim.event()), name=f"stuck{i}")
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    assert len(exc.value.waiting) == 12
    assert "total" in str(exc.value)  # preview truncation marker


def test_new_processes_spawned_mid_run():
    sim = Simulator()
    done = []

    def child(sim, tag):
        yield sim.timeout(10)
        done.append(tag)

    def spawner(sim):
        yield sim.timeout(5)
        sim.process(child(sim, "late"))

    sim.process(spawner(sim))
    sim.process(child(sim, "early"))
    sim.run()
    assert sorted(done) == ["early", "late"]
