"""Unit tests for iRCCE's non-blocking probe."""

import numpy as np

from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.ircce.api import ANY, IRCCE


def machine():
    return Machine(SCCConfig(mesh_cols=2, mesh_rows=1))


def test_probe_empty_returns_none():
    m = machine()
    layer = IRCCE(m)

    def program(env):
        if env.rank == 0:
            return (yield from layer.iprobe(env))
        yield from env.compute(0)

    result = m.run_spmd(program)
    assert result.values[0] is None


def test_probe_sees_pending_message_without_consuming():
    m = machine()
    layer = IRCCE(m)

    def program(env):
        if env.rank == 1:
            req = yield from layer.isend(env, np.zeros(24), 0)
            yield from layer.wait(env, req)
        elif env.rank == 0:
            yield from env.sleep(10_000_000)  # let the sender post
            probe1 = yield from layer.iprobe(env)
            probe2 = yield from layer.iprobe(env)  # still there
            out = np.empty(24)
            req = yield from layer.irecv(env, out, 1)
            yield from layer.wait(env, req)
            return probe1, probe2
        else:
            yield from env.compute(0)

    result = m.run_spmd(program)
    probe1, probe2 = result.values[0]
    assert probe1 == (1, 192)
    assert probe2 == probe1


def test_probe_filters_by_source():
    m = machine()
    layer = IRCCE(m)

    def program(env):
        if env.rank == 2:
            req = yield from layer.isend(env, np.zeros(8), 0)
            yield from layer.wait(env, req)
        elif env.rank == 0:
            yield from env.sleep(10_000_000)
            from_two = yield from layer.iprobe(env, src=2)
            from_three = yield from layer.iprobe(env, src=3)
            any_src = yield from layer.iprobe(env, src=ANY)
            out = np.empty(8)
            req = yield from layer.irecv(env, out, 2)
            yield from layer.wait(env, req)
            return from_two, from_three, any_src
        else:
            yield from env.compute(0)

    result = m.run_spmd(program)
    from_two, from_three, any_src = result.values[0]
    assert from_two == (2, 64)
    assert from_three is None
    assert any_src == (2, 64)
