"""Unit tests for the non-blocking request machinery (iRCCE + lightweight)."""

import numpy as np
import pytest

from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.ircce.api import ANY, IRCCE
from repro.ircce.requests import RequestError
from repro.lwnb.api import LWNB


def machine(cores=4):
    return Machine(SCCConfig(mesh_cols=cores // 2, mesh_rows=1))


@pytest.fixture(params=[IRCCE, LWNB], ids=["ircce", "lwnb"])
def layer_cls(request):
    return request.param


class TestBasicNonBlocking:
    def test_isend_irecv_roundtrip(self, layer_cls):
        m = machine()
        layer = layer_cls(m)
        payload = np.linspace(0, 5, 80)

        def program(env):
            if env.rank == 0:
                req = yield from layer.isend(env, payload, 1)
                yield from layer.wait(env, req)
            elif env.rank == 1:
                out = np.empty(80)
                req = yield from layer.irecv(env, out, 0)
                yield from layer.wait(env, req)
                return out
            else:
                yield from env.compute(0)

        result = m.run_spmd(program)
        assert np.array_equal(result.values[1], payload)

    def test_cyclic_exchange_any_order_no_deadlock(self, layer_cls):
        """Optimization A: non-blocking primitives make the odd-even
        ordering obsolete — everyone can isend first."""
        m = machine(4)
        layer = layer_cls(m)

        def program(env):
            right = (env.rank + 1) % env.size
            left = (env.rank - 1) % env.size
            out = np.empty(16)
            sreq = yield from layer.isend(env, np.full(16, float(env.rank)), right)
            rreq = yield from layer.irecv(env, out, left)
            yield from layer.wait_all(env, [sreq, rreq])
            return out[0]

        result = m.run_spmd(program)
        assert result.values == [3.0, 0.0, 1.0, 2.0]

    def test_wait_is_idempotent(self, layer_cls):
        m = machine()
        layer = layer_cls(m)

        def program(env):
            if env.rank == 0:
                req = yield from layer.isend(env, np.zeros(8), 1)
                yield from layer.wait(env, req)
                yield from layer.wait(env, req)  # second wait: no-op
                return env.now
            elif env.rank == 1:
                out = np.empty(8)
                req = yield from layer.irecv(env, out, 0)
                yield from layer.wait(env, req)
            else:
                yield from env.compute(0)

        m.run_spmd(program)  # must not raise

    def test_test_probe(self, layer_cls):
        m = machine()
        layer = layer_cls(m)

        def program(env):
            if env.rank == 0:
                yield from env.compute(200_000)
                req = yield from layer.isend(env, np.zeros(8), 1)
                yield from layer.wait(env, req)
            elif env.rank == 1:
                out = np.empty(8)
                req = yield from layer.irecv(env, out, 0)
                probe = yield from layer.test(env, req)  # sender is late
                yield from layer.wait(env, req)
                done = yield from layer.test(env, req)
                return (probe, done)
            else:
                yield from env.compute(0)

        result = m.run_spmd(program)
        assert result.values[1] == (False, True)

    def test_self_send_rejected(self, layer_cls):
        m = machine()
        layer = layer_cls(m)

        def program(env):
            if env.rank == 0:
                yield from layer.isend(env, np.zeros(1), 0)
            else:
                yield from env.compute(0)

        with pytest.raises(RequestError):
            m.run_spmd(program)

    def test_overlap_shortens_round(self, layer_cls):
        """A non-blocking exchange completes faster than the serialized
        blocking send-then-recv of the same pair."""
        from repro.rcce.api import RCCE

        data = np.zeros(600)

        def run_nb():
            m = machine(2)
            layer = layer_cls(m)

            def program(env):
                other = 1 - env.rank
                out = np.empty(600)
                sreq = yield from layer.isend(env, data, other)
                rreq = yield from layer.irecv(env, out, other)
                yield from layer.wait_all(env, [sreq, rreq])

            return m.run_spmd(program).elapsed_ps

        def run_blocking():
            m = machine(2)
            rcce = RCCE(m)

            def program(env):
                other = 1 - env.rank
                out = np.empty(600)
                if env.rank % 2 == 0:
                    yield from rcce.send(env, data, other)
                    yield from rcce.recv(env, out, other)
                else:
                    yield from rcce.recv(env, out, other)
                    yield from rcce.send(env, data, other)

            return m.run_spmd(program).elapsed_ps

        # Only the lightweight layer is obliged to win (iRCCE's per-call
        # overhead can eat the overlap gain on a single exchange).
        if layer_cls is LWNB:
            assert run_nb() < run_blocking()


class TestIRCCEFeatures:
    def test_many_outstanding_requests(self):
        m = machine(4)
        layer = IRCCE(m)

        def program(env):
            if env.rank == 0:
                reqs = []
                for dst in (1, 2, 3):
                    req = yield from layer.isend(env, np.full(8, float(dst)), dst)
                    reqs.append(req)
                yield from layer.wait_all(env, reqs)
            else:
                out = np.empty(8)
                req = yield from layer.irecv(env, out, 0)
                yield from layer.wait(env, req)
                return out[0]

        result = m.run_spmd(program)
        assert result.values[1:] == [1.0, 2.0, 3.0]

    def test_request_list_grows_and_shrinks(self):
        m = machine(4)
        layer = IRCCE(m)
        observed = []

        def program(env):
            if env.rank == 0:
                reqs = []
                for dst in (1, 2, 3):
                    req = yield from layer.isend(env, np.zeros(8), dst)
                    reqs.append(req)
                observed.append(len(layer.pending(env.core_id)))
                yield from layer.wait_all(env, reqs)
                observed.append(len(layer.pending(env.core_id)))
            else:
                out = np.empty(8)
                req = yield from layer.irecv(env, out, 0)
                yield from layer.wait(env, req)

        m.run_spmd(program)
        assert observed == [3, 0]

    def test_wildcard_recv(self):
        m = machine(4)
        layer = IRCCE(m)

        def program(env):
            if env.rank == 2:
                out = np.empty(8)
                req = yield from layer.irecv(env, out, ANY)
                src, nbytes = yield from layer.wait(env, req)
                return (src, nbytes, out[0])
            elif env.rank == 1:
                yield from env.compute(1000)
                req = yield from layer.isend(env, np.full(8, 7.0), 2)
                yield from layer.wait(env, req)
            else:
                yield from env.compute(0)

        result = m.run_spmd(program)
        assert result.values[2] == (1, 64, 7.0)

    def test_cancel_unmatched_recv(self):
        m = machine(4)
        layer = IRCCE(m)

        def program(env):
            if env.rank == 0:
                out = np.empty(8)
                req = yield from layer.irecv(env, out, 1)
                yield from env.compute(1000)
                yield from layer.cancel(env, req)
                assert req.cancelled
                return len(layer.pending(env.core_id))
            yield from env.compute(0)

        result = m.run_spmd(program)
        assert result.values[0] == 0

    def test_cancel_completed_rejected(self):
        m = machine(4)
        layer = IRCCE(m)

        def program(env):
            if env.rank == 0:
                req = yield from layer.isend(env, np.zeros(8), 1)
                yield from layer.wait(env, req)
                yield from layer.cancel(env, req)
            elif env.rank == 1:
                out = np.empty(8)
                req = yield from layer.irecv(env, out, 0)
                yield from layer.wait(env, req)
            else:
                yield from env.compute(0)

        with pytest.raises(RequestError):
            m.run_spmd(program)


class TestLWNBRestrictions:
    def test_second_outstanding_send_rejected(self):
        m = machine(4)
        layer = LWNB(m)

        def program(env):
            if env.rank == 0:
                yield from layer.isend(env, np.zeros(8), 1)
                yield from layer.isend(env, np.zeros(8), 2)  # one too many
            else:
                yield from env.compute(0)

        with pytest.raises(RequestError):
            m.run_spmd(program)

    def test_send_plus_recv_is_allowed(self):
        m = machine(2)
        layer = LWNB(m)

        def program(env):
            other = 1 - env.rank
            out = np.empty(8)
            sreq = yield from layer.isend(env, np.full(8, float(env.rank)), other)
            rreq = yield from layer.irecv(env, out, other)
            yield from layer.wait_all(env, [sreq, rreq])
            return out[0]

        result = m.run_spmd(program)
        assert result.values == [1.0, 0.0]

    def test_slot_freed_after_wait(self):
        m = machine(2)
        layer = LWNB(m)

        def program(env):
            other = 1 - env.rank
            out = np.empty(8)
            for _ in range(3):  # sequential rounds reuse the single slot
                sreq = yield from layer.isend(env, np.zeros(8), other)
                rreq = yield from layer.irecv(env, out, other)
                yield from layer.wait_all(env, [sreq, rreq])
            return True

        result = m.run_spmd(program)
        assert all(result.values)

    def test_wildcard_rejected(self):
        m = machine(4)
        layer = LWNB(m)

        def program(env):
            if env.rank == 0:
                out = np.empty(8)
                yield from layer.irecv(env, out, ANY)
            else:
                yield from env.compute(0)

        with pytest.raises(RequestError):
            m.run_spmd(program)


class TestOverheadOrdering:
    def test_lwnb_cheaper_than_ircce(self):
        """Optimization B's premise: same transfer, less software time."""
        def run(layer_cls):
            m = machine(2)
            layer = layer_cls(m)

            def program(env):
                other = 1 - env.rank
                out = np.empty(64)
                for _ in range(8):
                    sreq = yield from layer.isend(env, np.zeros(64), other)
                    rreq = yield from layer.irecv(env, out, other)
                    yield from layer.wait_all(env, [sreq, rreq])

            return m.run_spmd(program).elapsed_ps

        assert run(LWNB) < run(IRCCE)
