"""Analytic GCMC pricing and the sim-vs-analytic acceptance test."""

import pytest

from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.serial import GCMCOpLog, run_gcmc_serial
from repro.ensemble.engines import (
    GCMC_DRIFT_TOL,
    compare_engines,
    estimate_gcmc_us,
)
from repro.ensemble.summary import EnsembleSummary
from repro.hw.config import SCCConfig

CFG = GCMCConfig(initial_particles=24, capacity=48, box=6.0, seed=11)
SCC = SCCConfig(mesh_cols=4, mesh_rows=1)


def test_oplog_records_the_collective_sequence():
    log = GCMCOpLog()
    result = run_gcmc_serial(CFG, 4, nranks=4, log=log)
    assert result.cycles == 4
    kinds = [r.kind for r in log.records]
    assert kinds[0] == "barrier"
    assert "allreduce" in kinds and "bcast" in kinds
    # Every cycle broadcasts one 6-double proposal and one 2-double
    # update, and the long-range energy is a 2*n_kvectors allreduce.
    assert kinds.count("bcast") == 2 * 4
    assert any(r.nelems == 2 * CFG.n_kvectors for r in log.records
               if r.kind == "allreduce")
    assert log.total_compute_cycles() > 0
    assert all(r.compute_cycles >= 0 for r in log.records)


def test_logging_does_not_change_the_physics():
    bare = run_gcmc_serial(CFG, 6, nranks=4)
    logged = run_gcmc_serial(CFG, 6, nranks=4, log=GCMCOpLog())
    assert bare.final_energy == logged.final_energy
    assert bare.final_particles == logged.final_particles
    assert (bare.observables.energy_series
            == logged.observables.energy_series)


def test_estimate_prices_every_op():
    estimate, result = estimate_gcmc_us(CFG, 4, 4, scc_config=SCC)
    assert estimate.elapsed_us > 0
    assert estimate.compute_us > 0
    assert estimate.comm_us > 0
    assert estimate.elapsed_us == pytest.approx(
        estimate.compute_us + estimate.comm_us)
    # The physics rides along from the serial runner, untouched.
    assert result.final_particles > 0
    assert result.elapsed_ps == 0
    # The barrier (at least) has no closed form and was micro-simulated.
    assert estimate.n_simulated_shapes >= 1
    assert "analytic GCMC estimate" in estimate.describe()


def test_engine_comparison_passes_on_the_committed_reference():
    summary = EnsembleSummary.load()
    cmp = compare_engines(summary, scc_config=SCC)
    assert cmp.sim_check.passed
    assert cmp.analytic_check.passed
    assert abs(cmp.drift) <= GCMC_DRIFT_TOL
    assert cmp.passed
    assert "PASS" in cmp.describe()
