"""Seeded GCMC determinism across fresh processes.

The whole ensemble methodology rests on this: one ``(config, seed)``
pair must produce the same observable series bit-for-bit no matter when
or in which process it runs — otherwise the envelope would be comparing
runs against a moving target.  ``repr`` round-trips floats exactly, so
comparing the printed series compares the bits.
"""

import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parents[2] / "src")

_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.serial import run_gcmc_serial

cfg = GCMCConfig(initial_particles=24, capacity=48, box=6.0, seed=20120901)
result = run_gcmc_serial(cfg, 12, nranks=4)
obs = result.observables
print(repr(obs.energy_series))
print(repr(result.final_energy), result.final_particles)
print(repr(obs.energy_mean_acc), repr(obs.energy_m2))
print(sorted(obs.by_action.items()))
"""


def _fresh_process_run() -> str:
    proc = subprocess.run(
        [sys.executable, "-c", _SCRIPT.format(src=SRC)],
        capture_output=True, text=True, check=True, timeout=300)
    return proc.stdout


def test_observable_series_bit_identical_across_processes():
    first = _fresh_process_run()
    second = _fresh_process_run()
    lines = first.splitlines()
    assert len(lines) == 4 and lines[0].startswith("[")
    assert first == second
