"""The acceptance criterion: what the envelope accepts and rejects.

All runs are seed-pinned and use the committed reference summary, so
every verdict here is deterministic: pure timing perturbations (mesh
jitter, core stalls) and a non-default collective algorithm must PASS;
a forced silent payload corruption (the ``default`` chaos profile with
checksums off and exactly one corrupted byte) must FAIL.
"""

from dataclasses import replace

import pytest

from repro.ensemble.features import extract_features
from repro.ensemble.members import CandidateSpec, run_candidate
from repro.ensemble.summary import EnsembleSummary
from repro.faults.campaign import CHAOS_PROFILES
from repro.faults.plan import FaultPlan
from repro.hw.config import SCCConfig

#: Injector seed for which the forced-corruption run completes (no rank
#: divergence) with statistically wrecked physics — found by scanning
#: seeds 1..16; the whole point of the budgeted single corruption is
#: that this choice is stable and reproducible.
CORRUPTION_SEED = 6

#: 8-core machine: the committed summary decomposes over 8 ranks, and a
#: smaller mesh keeps each simulated candidate around a second.
SCC = SCCConfig(mesh_cols=4, mesh_rows=1)


@pytest.fixture(scope="module")
def summary():
    return EnsembleSummary.load()


def _check(summary, spec):
    result = run_candidate(spec, summary.config(),
                           int(summary.meta["cycles"]),
                           int(summary.meta["cores"]),
                           scc_config=SCC)
    features = extract_features(result, int(summary.meta["block_size"]))
    return summary.check(features, label=spec.label), result


def test_clean_simulated_run_passes(summary):
    check, _ = _check(summary, CandidateSpec(label="clean"))
    assert check.passed
    assert check.n_failed == 0


def test_timing_perturbations_pass(summary):
    plan = FaultPlan(seed=5, mesh_jitter_prob=0.15,
                     mesh_jitter_max_cycles=64, core_stall_prob=0.03,
                     core_stall_cycles=5000)
    clean, clean_result = _check(summary, CandidateSpec(label="clean"))
    noisy, noisy_result = _check(
        summary, CandidateSpec(label="jitter+stalls", plan=plan,
                               watchdog_us=5_000_000.0))
    assert noisy.passed
    # Timing faults never touch data: the physics is bit-identical and
    # only the simulated clock moved.
    assert noisy_result.final_energy == clean_result.final_energy
    assert noisy_result.final_particles == clean_result.final_particles
    assert noisy_result.elapsed_ps > clean_result.elapsed_ps


def test_nondefault_allreduce_algorithm_passes(summary):
    check, result = _check(
        summary, CandidateSpec(label="recursive_doubling",
                               allreduce_algo="recursive_doubling"))
    assert check.passed
    # The different reduction order produces a genuinely different FP
    # trajectory — this is a statistical acceptance, not a bit-compare.
    _, clean_result = _check(summary, CandidateSpec(label="clean"))
    assert result.final_energy != clean_result.final_energy


def test_forced_payload_corruption_rejected(summary):
    plan = replace(CHAOS_PROFILES["default"], seed=CORRUPTION_SEED,
                   payload_corrupt_prob=1.0, payload_corrupt_max=1,
                   checksums=False)
    check, result = _check(
        summary, CandidateSpec(label="corrupt", plan=plan,
                               watchdog_us=5_000_000.0))
    assert not check.passed
    # The corruption is silent: the run completed, ranks agreed, and
    # only the statistical gate catches that the physics is destroyed.
    assert len(check.failed_pcs) >= 2
    assert abs(result.final_energy) > 1000.0


def test_checksums_repair_the_same_corruption(summary):
    # Identical fault pressure, hardening left on: CRC retransmit heals
    # every corrupted payload and the envelope accepts the run.
    plan = replace(CHAOS_PROFILES["default"], seed=CORRUPTION_SEED,
                   payload_corrupt_prob=1.0, payload_corrupt_max=1,
                   checksums=True)
    check, _ = _check(
        summary, CandidateSpec(label="corrupt+checksums", plan=plan,
                               watchdog_us=5_000_000.0))
    assert check.passed
