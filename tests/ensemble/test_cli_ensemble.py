"""The ``python -m repro ensemble`` command surface."""

import json

import pytest

from repro.cli import main
from repro.ensemble.summary import ENSEMBLE_SCHEMA


@pytest.fixture(scope="module")
def small_summary(tmp_path_factory):
    """A tiny summary built through the real CLI (fast: serial members)."""
    out = tmp_path_factory.mktemp("ensemble") / "summary.json"
    rc = main(["ensemble", "summarize", "--members", "6", "--cycles", "8",
               "--cores", "4", "--out", str(out)])
    assert rc == 0
    return out


def test_summarize_writes_schema_versioned_json(small_summary):
    payload = json.loads(small_summary.read_text())
    assert payload["schema"] == ENSEMBLE_SCHEMA
    assert payload["meta"]["members"] == 6
    assert payload["meta"]["cycles"] == 8
    assert payload["meta"]["base_seed"] == 20120901
    assert 20120901 not in payload["meta"]["seeds"]


def test_check_accepts_the_held_out_seed(small_summary, capsys):
    rc = main(["ensemble", "check", "--summary", str(small_summary),
               "--engine", "serial"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "PASS" in out and "z-score" in out


def test_check_exit_code_reflects_the_verdict(small_summary, capsys):
    # An absurdly tight threshold turns any healthy run into a failure:
    # the nonzero exit is what CI scripts key on.
    rc = main(["ensemble", "check", "--summary", str(small_summary),
               "--engine", "serial", "--threshold", "0.001",
               "--max-pc-fail", "0"])
    assert rc == 1
    assert "FAIL" in capsys.readouterr().out


def test_summarize_rejects_cycles_shorter_than_a_block(capsys):
    rc = main(["ensemble", "summarize", "--members", "4", "--cycles", "6"])
    assert rc == 2
    assert "--block-size" in capsys.readouterr().err


def test_member_seed_passes_its_own_envelope(small_summary):
    rc = main(["ensemble", "check", "--summary", str(small_summary),
               "--engine", "serial", "--seed", "20120903"])
    assert rc == 0
