"""Feature extraction: order, normalization, failure modes."""

import numpy as np
import pytest

from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.driver import GCMCResult
from repro.apps.gcmc.observables import Observables
from repro.apps.gcmc.serial import run_gcmc_serial
from repro.ensemble.features import (
    FEATURE_NAMES,
    extract_features,
    feature_dict,
)

CFG = GCMCConfig(initial_particles=24, capacity=48, box=6.0, seed=7)


def _result(obs, energy=-1.0, particles=3, cycles=None):
    return GCMCResult(observables=obs, final_energy=energy,
                      final_particles=particles,
                      cycles=cycles if cycles is not None else obs.samples)


def test_vector_matches_feature_names_order():
    result = run_gcmc_serial(CFG, 16, nranks=4)
    vec = extract_features(result, block_size=4)
    assert vec.shape == (len(FEATURE_NAMES),)
    named = feature_dict(vec)
    obs = result.observables
    assert named["mean_energy"] == obs.mean_energy
    assert named["final_energy"] == result.final_energy
    assert named["final_particles"] == float(result.final_particles)
    assert named["acceptance_ratio"] == obs.acceptance_ratio
    block_mean, block_err = obs.block_average(4)
    assert named["block_energy_mean"] == block_mean
    assert named["block_energy_err"] == block_err
    assert named["energy_std"] == pytest.approx(
        np.sqrt(obs.energy_variance))


def test_action_fractions_normalized_by_total_samples():
    obs = Observables()
    obs.record(-1.0, 2, "TRANSLATE", True)
    obs.record(-1.5, 2, "TRANSLATE", False)
    obs.record(-2.0, 3, "INSERT", True)
    obs.record(-2.5, 3, "DELETE", False)
    named = feature_dict(extract_features(_result(obs), block_size=2))
    assert named["translate_tried_frac"] == pytest.approx(0.5)
    assert named["translate_accept_frac"] == pytest.approx(0.25)
    assert named["insert_tried_frac"] == pytest.approx(0.25)
    assert named["insert_accept_frac"] == pytest.approx(0.25)
    assert named["delete_tried_frac"] == pytest.approx(0.25)
    assert named["delete_accept_frac"] == 0.0


def test_empty_run_rejected():
    with pytest.raises(ValueError, match="no recorded samples"):
        extract_features(_result(Observables(), cycles=0))


def test_nonfinite_observables_rejected():
    obs = Observables()
    obs.record(float("nan"), 2, "TRANSLATE", True)
    obs.record(-1.0, 2, "TRANSLATE", False)
    with pytest.raises(ValueError, match="non-finite"):
        extract_features(_result(obs), block_size=1)


def test_feature_dict_rejects_wrong_shape():
    with pytest.raises(ValueError, match="expected"):
        feature_dict(np.zeros(3))
