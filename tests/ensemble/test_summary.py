"""The PCA envelope: construction, scoring, persistence."""

import json

import numpy as np
import pytest

from repro.ensemble.features import FEATURE_NAMES
from repro.ensemble.members import member_seeds
from repro.ensemble.summary import (
    ENSEMBLE_SCHEMA,
    EnsembleSummary,
)

D = len(FEATURE_NAMES)
RNG_SEED = 20120901


def synthetic_ensemble(n=40, constant_cols=(), seed=RNG_SEED):
    """A Gaussian feature matrix with optional degenerate columns."""
    rng = np.random.default_rng(seed)
    X = rng.normal(loc=5.0, scale=2.0, size=(n, D))
    for col in constant_cols:
        X[:, col] = 3.25
    return X


def test_member_seeds_hold_out_the_base():
    seeds = member_seeds(100, 8)
    assert seeds == list(range(101, 109))
    assert 100 not in seeds
    with pytest.raises(ValueError, match="at least 2"):
        member_seeds(100, 1)


def test_members_score_inside_their_own_envelope():
    X = synthetic_ensemble()
    summary = EnsembleSummary.from_features(X)
    for row in X[:10]:
        assert summary.check(row).passed


def test_shifted_candidate_fails():
    X = synthetic_ensemble()
    summary = EnsembleSummary.from_features(X)
    candidate = X.mean(axis=0) + 50.0 * X.std(axis=0, ddof=1)
    check = summary.check(candidate)
    assert not check.passed
    assert check.failed_pcs
    assert "FAIL" in check.table()


def test_single_outlier_pc_is_tolerated_within_max_pc_fail():
    X = synthetic_ensemble()
    summary = EnsembleSummary.from_features(X)
    # Push the candidate along exactly one principal direction.
    active = summary.active
    candidate = X.mean(axis=0).copy()
    direction = np.zeros(D)
    direction[active] = summary.components[0] * summary.std[active]
    candidate += 5.0 * summary.pc_std[0] * direction
    check = summary.check(candidate, max_pc_fail=1)
    assert len(check.failed_pcs) >= 1
    strict = summary.check(candidate, max_pc_fail=0)
    assert not strict.passed


def test_degenerate_features_checked_exactly():
    X = synthetic_ensemble(constant_cols=(0, 5))
    summary = EnsembleSummary.from_features(X)
    assert summary.degenerate == (0, 5)
    ok = X[0].copy()
    assert summary.check(ok).passed

    moved = X[0].copy()
    moved[5] = 3.26  # a constant observable moved: wrong with certainty
    check = summary.check(moved, max_pc_fail=0)
    assert not check.passed
    assert check.degenerate_failures == [FEATURE_NAMES[5]]


def test_envelope_requires_some_spread():
    X = synthetic_ensemble(constant_cols=tuple(range(D)))
    with pytest.raises(ValueError, match="constant across the ensemble"):
        EnsembleSummary.from_features(X)


def test_json_round_trip_is_exact(tmp_path):
    summary = EnsembleSummary.from_features(
        synthetic_ensemble(), meta={"cycles": 8, "cores": 4})
    path = summary.save(tmp_path / "summary.json")
    loaded = EnsembleSummary.load(path)
    assert np.array_equal(loaded.mean, summary.mean)
    assert np.array_equal(loaded.std, summary.std)
    assert np.array_equal(loaded.components, summary.components)
    assert np.array_equal(loaded.pc_std, summary.pc_std)
    assert loaded.degenerate == summary.degenerate
    assert loaded.meta == {"cycles": 8, "cores": 4}
    # Scoring through the round-trip is bit-identical.
    x = synthetic_ensemble()[3]
    assert np.array_equal(loaded.check(x).z_scores,
                          summary.check(x).z_scores)


def test_schema_mismatch_refused(tmp_path):
    summary = EnsembleSummary.from_features(synthetic_ensemble())
    payload = summary.to_json()
    payload["schema"] = ENSEMBLE_SCHEMA + 1
    path = tmp_path / "stale.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="ensemble schema"):
        EnsembleSummary.load(path)


def test_foreign_feature_set_refused(tmp_path):
    summary = EnsembleSummary.from_features(synthetic_ensemble())
    payload = summary.to_json()
    payload["feature_names"][0] = "renamed_observable"
    path = tmp_path / "foreign.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="different feature set"):
        EnsembleSummary.load(path)


def test_missing_summary_names_the_regeneration_command(tmp_path):
    with pytest.raises(FileNotFoundError, match="ensemble summarize"):
        EnsembleSummary.load(tmp_path / "absent.json")


def test_rebuild_is_bit_reproducible():
    X = synthetic_ensemble()
    a = EnsembleSummary.from_features(X)
    b = EnsembleSummary.from_features(X)
    assert np.array_equal(a.components, b.components)
    assert np.array_equal(a.pc_std, b.pc_std)


def test_candidate_shape_guard():
    summary = EnsembleSummary.from_features(synthetic_ensemble())
    with pytest.raises(ValueError, match="same feature set"):
        summary.check(np.zeros(3))
    with pytest.raises(ValueError, match="threshold"):
        summary.check(np.zeros(D), threshold=0.0)
