"""Collectives over non-double dtypes (the MPB moves raw bytes)."""

import numpy as np
import pytest

from repro.core.ops import MAX, SUM
from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine

P = 4


def run(stack, program_factory):
    machine = Machine(SCCConfig(mesh_cols=2, mesh_rows=1))
    comm = make_communicator(machine, stack)
    return machine.run_spmd(program_factory(comm))


@pytest.mark.parametrize("dtype", [np.float32, np.int32, np.int64,
                                   np.complex128])
@pytest.mark.parametrize("stack", ["blocking", "lightweight", "mpb"])
def test_allreduce_dtypes(dtype, stack):
    rng = np.random.default_rng(1)
    if np.issubdtype(dtype, np.complexfloating):
        inputs = [(rng.integers(-9, 9, 60)
                   + 1j * rng.integers(-9, 9, 60)).astype(dtype)
                  for _ in range(P)]
    elif np.issubdtype(dtype, np.integer):
        inputs = [rng.integers(-100, 100, 60).astype(dtype)
                  for _ in range(P)]
    else:
        inputs = [rng.integers(-9, 9, 60).astype(dtype) for _ in range(P)]
    expected = np.sum(inputs, axis=0, dtype=dtype)

    def factory(comm):
        def program(env):
            return (yield from comm.allreduce(env, inputs[env.rank]))
        return program

    result = run(stack, factory)
    for value in result.values:
        assert value.dtype == dtype
        np.testing.assert_array_equal(value, expected)


@pytest.mark.parametrize("dtype", [np.float32, np.int64])
def test_bcast_dtypes(dtype):
    data = np.arange(50).astype(dtype)

    def factory(comm):
        def program(env):
            buf = data.copy() if env.rank == 0 else np.empty(50, dtype=dtype)
            return (yield from comm.bcast(env, buf, 0))
        return program

    result = run("lightweight", factory)
    for value in result.values:
        assert value.dtype == dtype
        np.testing.assert_array_equal(value, data)


def test_allgather_complex():
    inputs = [np.full(10, r + 1j * r, dtype=np.complex128) for r in range(P)]

    def factory(comm):
        def program(env):
            return (yield from comm.allgather(env, inputs[env.rank]))
        return program

    result = run("lightweight", factory)
    np.testing.assert_array_equal(result.values[2], np.stack(inputs))


def test_reduce_int_max():
    inputs = [np.array([r, -r, 100 - r], dtype=np.int64) for r in range(P)]

    def factory(comm):
        def program(env):
            return (yield from comm.reduce(env, inputs[env.rank], MAX, 0))
        return program

    result = run("blocking", factory)
    np.testing.assert_array_equal(result.values[0],
                                  np.max(inputs, axis=0))


def test_alltoall_int32():
    sends = [np.arange(P * 6, dtype=np.int32).reshape(P, 6) + 100 * r
             for r in range(P)]

    def factory(comm):
        def program(env):
            return (yield from comm.alltoall(env, sends[env.rank]))
        return program

    result = run("lightweight", factory)
    for dst in range(P):
        for src in range(P):
            np.testing.assert_array_equal(result.values[dst][src],
                                          sends[src][dst])
