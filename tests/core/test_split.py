"""Unit tests for Communicator.split (sub-group collectives)."""

import numpy as np
import pytest

from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine

P = 8


def run(stack, program_factory):
    machine = Machine(SCCConfig(mesh_cols=P // 2, mesh_rows=1))
    comm = make_communicator(machine, stack)
    return machine.run_spmd(program_factory(comm))


@pytest.mark.parametrize("stack", ["blocking", "lightweight", "mpb"])
def test_split_halves_allreduce_independently(stack):
    inputs = [np.full(16, float(r)) for r in range(P)]

    def factory(comm):
        def program(env):
            sub = yield from comm.split(env, env.rank % 2)
            result = yield from comm.allreduce(sub, inputs[env.rank])
            return sub.rank, sub.size, result
        return program

    result = run(stack, factory)
    even_sum = np.sum([inputs[r] for r in range(0, P, 2)], axis=0)
    odd_sum = np.sum([inputs[r] for r in range(1, P, 2)], axis=0)
    for rank in range(P):
        sub_rank, sub_size, value = result.values[rank]
        assert sub_size == P // 2
        assert sub_rank == rank // 2
        expected = even_sum if rank % 2 == 0 else odd_sum
        np.testing.assert_allclose(value, expected, rtol=1e-12)


def test_split_key_reorders_ranks():
    def factory(comm):
        def program(env):
            # All one color; keys reverse the ordering.
            sub = yield from comm.split(env, 0, key=env.size - env.rank)
            return sub.rank
        return program

    result = run("lightweight", factory)
    assert result.values == [P - 1 - r for r in range(P)]


def test_split_undefined_color_returns_none():
    def factory(comm):
        def program(env):
            color = None if env.rank == 0 else 1
            sub = yield from comm.split(env, color)
            if sub is None:
                return None
            return sub.size
        return program

    result = run("lightweight", factory)
    assert result.values[0] is None
    assert result.values[1:] == [P - 1] * (P - 1)


def test_split_groups_of_one():
    def factory(comm):
        def program(env):
            sub = yield from comm.split(env, env.rank)  # singleton groups
            data = np.full(4, 2.0 + env.rank)
            result = yield from comm.allreduce(sub, data)
            return result
        return program

    result = run("lightweight", factory)
    for rank in range(P):
        np.testing.assert_array_equal(result.values[rank],
                                      np.full(4, 2.0 + rank))


def test_nested_split():
    def factory(comm):
        def program(env):
            half = yield from comm.split(env, env.rank % 2)
            quarter = yield from comm.split(half, half.rank % 2)
            data = np.array([1.0])
            total = yield from comm.allreduce(quarter, data)
            return quarter.size, total[0]
        return program

    result = run("lightweight", factory)
    for size, total in result.values:
        assert size == 2
        assert total == 2.0


def test_barrier_within_group():
    def factory(comm):
        def program(env):
            sub = yield from comm.split(env, env.rank % 2)
            if env.rank % 2 == 0:
                yield from env.compute(10_000 * sub.rank)
            yield from comm.barrier(sub)
            return env.now
        return program

    result = run("lightweight", factory)  # must simply not deadlock
    assert all(t > 0 for t in result.values)
