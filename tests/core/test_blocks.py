"""Unit tests for block partitioning (paper Fig. 6 / optimization C)."""

import math

import pytest

from repro.core.blocks import (
    Partition,
    balanced_partition,
    fig6_table,
    partitioner_by_name,
    standard_partition,
)


class TestStandardPartition:
    def test_divisible_is_even(self):
        part = standard_partition(528, 48)
        assert part.sizes == (11,) * 48
        assert part.imbalance_ratio() == 1.0

    def test_paper_552_case(self):
        """Fig. 6a middle: first block 35, general 11, ratio ~3.2:1."""
        part = standard_partition(552, 48)
        assert part.size(0) == 35
        assert part.size(1) == 11
        assert part.imbalance_ratio() == pytest.approx(35 / 11)
        assert 3.1 < part.imbalance_ratio() < 3.3

    def test_paper_575_worst_case(self):
        """Fig. 6a bottom: first block 58, ratio ~5.3:1."""
        part = standard_partition(575, 48)
        assert part.size(0) == 58
        assert part.size(47) == 11
        assert 5.2 < part.imbalance_ratio() < 5.4

    def test_zero_general_blocks(self):
        part = standard_partition(5, 8)
        assert part.size(0) == 5
        assert part.imbalance_ratio() == math.inf


class TestBalancedPartition:
    def test_divisible_is_even(self):
        part = balanced_partition(528, 48)
        assert part.sizes == (11,) * 48

    def test_paper_552_case(self):
        """Fig. 6b middle: 24 blocks of 12, 24 of 11, ratio ~1.1:1."""
        part = balanced_partition(552, 48)
        assert part.sizes[:24] == (12,) * 24
        assert part.sizes[24:] == (11,) * 24
        assert part.imbalance_ratio() == pytest.approx(12 / 11)

    def test_paper_575_case(self):
        """Fig. 6b bottom: ratio stays ~1.1:1 at the standard worst case."""
        part = balanced_partition(575, 48)
        assert part.max_size() == 12
        assert part.min_size() == 11
        assert part.imbalance_ratio() < 1.1

    def test_max_minus_min_at_most_one(self):
        for n in range(0, 200):
            part = balanced_partition(n, 7)
            assert part.max_size() - part.min_size() <= 1


class TestPartitionObject:
    def test_offsets_and_slices(self):
        part = standard_partition(552, 48)
        assert part.offset(0) == 0
        assert part.offset(1) == 35
        assert part.offset(2) == 46
        s = part.slice_of(1)
        assert (s.start, s.stop) == (35, 46)

    def test_slices_tile_the_vector(self):
        for maker in (standard_partition, balanced_partition):
            part = maker(575, 48)
            covered = []
            for b in range(part.p):
                s = part.slice_of(b)
                covered.extend(range(s.start, s.stop))
            assert covered == list(range(575))

    def test_inconsistent_sizes_rejected(self):
        with pytest.raises(ValueError):
            Partition(10, (3, 3))

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            standard_partition(-1, 4)
        with pytest.raises(ValueError):
            balanced_partition(10, 0)

    def test_n_zero(self):
        part = balanced_partition(0, 4)
        assert part.sizes == (0, 0, 0, 0)
        assert part.imbalance_ratio() == 1.0


class TestRegistry:
    def test_lookup(self):
        assert partitioner_by_name("standard") is standard_partition
        assert partitioner_by_name("balanced") is balanced_partition

    def test_unknown(self):
        with pytest.raises(KeyError):
            partitioner_by_name("magic")


class TestFig6Table:
    def test_matches_paper_annotations(self):
        rows = {r["n"]: r for r in fig6_table()}
        assert rows[528]["standard_ratio"] == 1.0
        assert rows[528]["balanced_ratio"] == 1.0
        assert rows[552]["standard_first"] == 35
        assert 3.1 < rows[552]["standard_ratio"] < 3.3
        assert rows[552]["balanced_ratio"] < 1.1
        assert rows[575]["standard_first"] == 58
        assert 5.2 < rows[575]["standard_ratio"] < 5.4
        assert rows[575]["balanced_ratio"] < 1.1
