"""Unit tests for the variable-count collectives (scatterv/gatherv)."""

import numpy as np
import pytest

from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine

P = 4


def run(stack, program_factory):
    machine = Machine(SCCConfig(mesh_cols=2, mesh_rows=1))
    comm = make_communicator(machine, stack)
    return machine.run_spmd(program_factory(comm))


COUNTS = [5, 0, 12, 3]  # includes an empty contribution
TOTAL = sum(COUNTS)
DATA = np.arange(TOTAL, dtype=np.float64)


@pytest.mark.parametrize("stack", ["blocking", "lightweight"])
def test_scatterv_distributes_counts(stack):
    def factory(comm):
        def program(env):
            buf = DATA.copy() if env.rank == 0 else np.empty(TOTAL)
            block = yield from comm.scatterv(env, buf, COUNTS, root=0)
            return block
        return program

    result = run(stack, factory)
    offset = 0
    for rank in range(P):
        np.testing.assert_array_equal(
            result.values[rank], DATA[offset:offset + COUNTS[rank]])
        offset += COUNTS[rank]


@pytest.mark.parametrize("stack", ["blocking", "lightweight"])
def test_gatherv_reassembles(stack):
    def factory(comm):
        def program(env):
            offset = sum(COUNTS[:env.rank])
            block = DATA[offset:offset + COUNTS[env.rank]].copy()
            full = yield from comm.gatherv(env, block, COUNTS, root=0)
            return full
        return program

    result = run(stack, factory)
    np.testing.assert_array_equal(result.values[0], DATA)
    assert result.values[1] is None


def test_scatterv_gatherv_roundtrip_nonzero_root():
    root = 2

    def factory(comm):
        def program(env):
            buf = DATA.copy() if env.rank == root else np.empty(TOTAL)
            block = yield from comm.scatterv(env, buf, COUNTS, root=root)
            full = yield from comm.gatherv(env, block, COUNTS, root=root)
            return full
        return program

    result = run("lightweight", factory)
    np.testing.assert_array_equal(result.values[root], DATA)


def test_wrong_count_arity_rejected():
    def factory(comm):
        def program(env):
            yield from comm.gatherv(env, np.zeros(1), [1, 1], root=0)
        return program

    with pytest.raises(ValueError):
        run("lightweight", factory)


def test_wrong_block_size_rejected():
    def factory(comm):
        def program(env):
            yield from comm.gatherv(env, np.zeros(99), COUNTS, root=0)
        return program

    with pytest.raises(ValueError):
        run("lightweight", factory)


def test_scatterv_needs_full_buffer():
    def factory(comm):
        def program(env):
            yield from comm.scatterv(env, np.zeros(3), COUNTS, root=0)
        return program

    with pytest.raises(ValueError):
        run("lightweight", factory)
