"""Unit tests for the alternative collective algorithms."""

import numpy as np
import pytest

from repro.core.ops import MAX, SUM
from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine

from tests.core.conftest import make_inputs


def run(stack, cores, program_factory):
    cols = (cores + 1) // 2
    machine = Machine(SCCConfig(mesh_cols=cols, mesh_rows=1))
    comm = make_communicator(machine, stack)
    return machine.run_spmd(program_factory(comm), ranks=range(cores))


class TestRecursiveDoubling:
    @pytest.mark.parametrize("p", [2, 4, 8])
    @pytest.mark.parametrize("n", [1, 17, 96])
    def test_power_of_two(self, p, n):
        inputs = make_inputs(p, n)
        expected = np.sum(inputs, axis=0)

        def factory(comm):
            def program(env):
                return (yield from comm.allreduce(
                    env, inputs[env.rank], SUM, algo="recursive_doubling"))
            return program

        result = run("lightweight", p, factory)
        for value in result.values:
            np.testing.assert_allclose(value, expected, rtol=1e-12)

    @pytest.mark.parametrize("p", [3, 5, 6, 7])
    def test_non_power_of_two_folding(self, p):
        inputs = make_inputs(p, 50)
        expected = np.sum(inputs, axis=0)

        def factory(comm):
            def program(env):
                return (yield from comm.allreduce(
                    env, inputs[env.rank], SUM, algo="recursive_doubling"))
            return program

        result = run("lightweight", p, factory)
        for value in result.values:
            np.testing.assert_allclose(value, expected, rtol=1e-12)

    def test_blocking_stack(self):
        inputs = make_inputs(4, 32)

        def factory(comm):
            def program(env):
                return (yield from comm.allreduce(
                    env, inputs[env.rank], SUM, algo="recursive_doubling"))
            return program

        result = run("blocking", 4, factory)
        np.testing.assert_allclose(result.values[0],
                                   np.sum(inputs, axis=0), rtol=1e-12)


class TestRecursiveHalving:
    @pytest.mark.parametrize("p", [2, 4, 8])
    @pytest.mark.parametrize("n", [8, 96, 97, 101])
    def test_power_of_two_various_sizes(self, p, n):
        """n not divisible by p exercises the unequal-halves range stack."""
        inputs = make_inputs(p, n, seed=5)
        expected = np.sum(inputs, axis=0)

        def factory(comm):
            def program(env):
                return (yield from comm.allreduce(
                    env, inputs[env.rank], SUM, algo="recursive_halving"))
            return program

        result = run("lightweight", p, factory)
        for value in result.values:
            np.testing.assert_allclose(value, expected, rtol=1e-12)

    @pytest.mark.parametrize("p", [3, 6, 7])
    def test_non_power_of_two(self, p):
        inputs = make_inputs(p, 40, seed=9)
        expected = np.sum(inputs, axis=0)

        def factory(comm):
            def program(env):
                return (yield from comm.allreduce(
                    env, inputs[env.rank], SUM, algo="recursive_halving"))
            return program

        result = run("lightweight", p, factory)
        for value in result.values:
            np.testing.assert_allclose(value, expected, rtol=1e-12)

    def test_max_op(self):
        inputs = make_inputs(4, 64, seed=2)

        def factory(comm):
            def program(env):
                return (yield from comm.allreduce(
                    env, inputs[env.rank], MAX, algo="recursive_halving"))
            return program

        result = run("lightweight", 4, factory)
        np.testing.assert_array_equal(result.values[2],
                                      np.max(inputs, axis=0))


class TestBruckAllgather:
    @pytest.mark.parametrize("p", [2, 3, 4, 5, 7, 8])
    def test_matches_inputs(self, p):
        inputs = make_inputs(p, 13, seed=3)
        expected = np.stack(inputs)

        def factory(comm):
            def program(env):
                return (yield from comm.allgather(env, inputs[env.rank],
                                                  algo="bruck"))
            return program

        result = run("lightweight", p, factory)
        for value in result.values:
            np.testing.assert_array_equal(value, expected)

    def test_fewer_rounds_than_ring(self):
        """Bruck's log-round structure must beat the ring at many ranks
        with small vectors (latency-bound regime)."""
        from repro.bench.runner import measure_collective  # noqa: F401
        machine_ring = Machine(SCCConfig())
        comm_ring = make_communicator(machine_ring, "lightweight")
        machine_bruck = Machine(SCCConfig())
        comm_bruck = make_communicator(machine_bruck, "lightweight")
        data = np.zeros(4)

        def prog(comm, algo):
            def program(env):
                yield from comm.allgather(env, data, algo=algo)
            return program

        t_ring = machine_ring.run_spmd(prog(comm_ring, "ring")).elapsed_ps
        t_bruck = machine_bruck.run_spmd(
            prog(comm_bruck, "bruck")).elapsed_ps
        assert t_bruck < t_ring

    def test_unknown_algo_rejected(self):
        def factory(comm):
            def program(env):
                yield from comm.allgather(env, np.zeros(4), algo="magic")
            return program

        with pytest.raises(KeyError):
            run("lightweight", 4, factory)


class TestAlgoSelection:
    def test_unknown_allreduce_algo_rejected(self):
        def factory(comm):
            def program(env):
                yield from comm.allreduce(env, np.zeros(4), SUM,
                                          algo="quantum")
            return program

        with pytest.raises(KeyError):
            run("lightweight", 4, factory)

    def test_all_allreduce_algos_agree(self):
        inputs = make_inputs(8, 96, seed=11)
        expected = np.sum(inputs, axis=0)
        for algo in ("rsag", "reduce_bcast", "recursive_doubling",
                     "recursive_halving", "mpb"):
            def factory(comm, algo=algo):
                def program(env):
                    return (yield from comm.allreduce(
                        env, inputs[env.rank], SUM, algo=algo))
                return program

            result = run("mpb", 8, factory)
            np.testing.assert_allclose(result.values[5], expected,
                                       rtol=1e-12, err_msg=algo)
