"""Unit tests for Scan / Exscan."""

import numpy as np
import pytest

from repro.core.ops import MAX, SUM
from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine

from tests.core.conftest import make_inputs


def run(stack, cores, program_factory):
    machine = Machine(SCCConfig(mesh_cols=(cores + 1) // 2, mesh_rows=1))
    comm = make_communicator(machine, stack)
    return machine.run_spmd(program_factory(comm), ranks=range(cores))


@pytest.mark.parametrize("stack", ["blocking", "lightweight", "rckmpi"])
@pytest.mark.parametrize("p", [2, 5, 8])
def test_inclusive_scan_prefixes(stack, p):
    inputs = make_inputs(p, 20, seed=4)

    def factory(comm):
        def program(env):
            return (yield from comm.scan(env, inputs[env.rank]))
        return program

    result = run(stack, p, factory)
    for rank in range(p):
        expected = np.sum(inputs[:rank + 1], axis=0)
        np.testing.assert_allclose(result.values[rank], expected, rtol=1e-12)


def test_scan_with_max():
    p = 6
    inputs = make_inputs(p, 10, seed=8)

    def factory(comm):
        def program(env):
            return (yield from comm.scan(env, inputs[env.rank], MAX))
        return program

    result = run("lightweight", p, factory)
    for rank in range(p):
        expected = np.max(inputs[:rank + 1], axis=0)
        np.testing.assert_array_equal(result.values[rank], expected)


@pytest.mark.parametrize("p", [2, 7])
def test_exscan(p):
    inputs = make_inputs(p, 12, seed=6)

    def factory(comm):
        def program(env):
            return (yield from comm.exscan(env, inputs[env.rank], SUM))
        return program

    result = run("lightweight", p, factory)
    assert result.values[0] is None
    for rank in range(1, p):
        expected = np.sum(inputs[:rank], axis=0)
        np.testing.assert_allclose(result.values[rank], expected, rtol=1e-12)


def test_scan_single_rank():
    machine = Machine(SCCConfig(mesh_cols=1, mesh_rows=1))
    comm = make_communicator(machine, "lightweight")
    data = np.arange(5, dtype=np.float64)

    def program(env):
        inc = yield from comm.scan(env, data)
        exc = yield from comm.exscan(env, data)
        return inc, exc

    result = machine.run_spmd(program, ranks=[0])
    inc, exc = result.values[0]
    np.testing.assert_array_equal(inc, data)
    assert exc is None
