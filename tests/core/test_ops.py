"""Unit tests for reduction operators."""

import numpy as np
import pytest

from repro.core.ops import MAX, MIN, OPS, PROD, SUM, ReduceOp, op_by_name


def test_sum():
    a = np.array([1.0, 2.0])
    b = np.array([10.0, 20.0])
    assert np.array_equal(SUM(a, b), [11.0, 22.0])


def test_prod():
    assert np.array_equal(PROD(np.array([2.0, 3.0]), np.array([4.0, 5.0])),
                          [8.0, 15.0])


def test_min_max():
    a = np.array([1.0, 9.0])
    b = np.array([5.0, 2.0])
    assert np.array_equal(MIN(a, b), [1.0, 2.0])
    assert np.array_equal(MAX(a, b), [5.0, 9.0])


def test_reduce_all_matches_numpy():
    rng = np.random.default_rng(42)
    vectors = [rng.normal(size=17) for _ in range(5)]
    assert np.allclose(SUM.reduce_all(vectors), np.sum(vectors, axis=0))
    assert np.allclose(MIN.reduce_all(vectors), np.min(vectors, axis=0))


def test_reduce_all_single_vector_copies():
    v = np.ones(3)
    out = SUM.reduce_all([v])
    out[:] = 0
    assert v[0] == 1.0


def test_reduce_all_empty_rejected():
    with pytest.raises(ValueError):
        SUM.reduce_all([])


def test_registry():
    assert set(OPS) == {"sum", "prod", "min", "max"}
    assert op_by_name("sum") is SUM
    with pytest.raises(KeyError):
        op_by_name("xor")


def test_repr():
    assert "sum" in repr(SUM)


def test_custom_op():
    absmax = ReduceOp("absmax", lambda a, b: np.maximum(np.abs(a), np.abs(b)))
    assert np.array_equal(absmax(np.array([-5.0]), np.array([3.0])), [5.0])
