"""Shared fixtures for collective tests."""

import numpy as np
import pytest

from repro.core.registry import STACKS, make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine


def small_machine(tiles_x=4, tiles_y=1):
    """A small SCC variant (default 8 cores) for cheap collective tests."""
    return Machine(SCCConfig(mesh_cols=tiles_x, mesh_rows=tiles_y))


def make_inputs(p, n, seed=7, dtype=np.float64):
    """Deterministic per-rank input vectors."""
    rng = np.random.default_rng(seed)
    return [rng.normal(size=n).astype(dtype) for _ in range(p)]


def run_collective(stack, program_factory, *, tiles_x=4, tiles_y=1):
    """Build machine+comm for ``stack`` and run the SPMD program."""
    machine = small_machine(tiles_x, tiles_y)
    comm = make_communicator(machine, stack)
    program = program_factory(comm)
    return machine.run_spmd(program)


@pytest.fixture(params=list(STACKS))
def stack(request):
    return request.param


@pytest.fixture(params=[s for s in STACKS if s != "mpb"])
def non_mpb_stack(request):
    return request.param
