"""Correctness of every collective on every stack, against NumPy.

These are the load-bearing integration tests: data actually travels
through simulated MPBs, so a protocol bug (wrong block index, wrong round
partner, clobbered buffer half) shows up as a wrong result, not just a
wrong latency.
"""

import numpy as np
import pytest

from repro.core.ops import MAX, MIN, PROD, SUM

from tests.core.conftest import make_inputs, run_collective


P = 8  # ranks in the small test machine


class TestAllreduce:
    @pytest.mark.parametrize("n", [1, 7, 48, 96, 97, 552])
    def test_sum_matches_numpy(self, stack, n):
        inputs = make_inputs(P, n)
        expected = np.sum(inputs, axis=0)

        def factory(comm):
            def program(env):
                result = yield from comm.allreduce(env, inputs[env.rank])
                return result
            return program

        result = run_collective(stack, factory)
        for rank in range(P):
            np.testing.assert_allclose(result.values[rank], expected,
                                       rtol=1e-12)

    @pytest.mark.parametrize("op,npfunc", [
        (PROD, np.prod), (MIN, np.min), (MAX, np.max),
    ])
    def test_other_ops(self, op, npfunc):
        inputs = make_inputs(P, 96, seed=3)
        expected = npfunc(inputs, axis=0)

        def factory(comm):
            def program(env):
                result = yield from comm.allreduce(env, inputs[env.rank], op)
                return result
            return program

        for stack in ("blocking", "lightweight_balanced", "mpb"):
            result = run_collective(stack, factory)
            np.testing.assert_allclose(result.values[0], expected, rtol=1e-12)

    def test_short_vector_path(self, stack):
        """Vectors below the long threshold take the reduce+bcast path."""
        inputs = make_inputs(P, 4)
        expected = np.sum(inputs, axis=0)

        def factory(comm):
            def program(env):
                result = yield from comm.allreduce(env, inputs[env.rank])
                return result
            return program

        result = run_collective(stack, factory)
        np.testing.assert_allclose(result.values[3], expected, rtol=1e-12)

    def test_all_ranks_get_identical_results(self, stack):
        inputs = make_inputs(P, 201)

        def factory(comm):
            def program(env):
                result = yield from comm.allreduce(env, inputs[env.rank])
                return result
            return program

        result = run_collective(stack, factory)
        for rank in range(1, P):
            np.testing.assert_array_equal(result.values[0],
                                          result.values[rank])


class TestReduceScatter:
    @pytest.mark.parametrize("n", [48, 96, 101, 552])
    def test_blocks_match_numpy(self, non_mpb_stack, n):
        inputs = make_inputs(P, n)
        expected = np.sum(inputs, axis=0)

        def factory(comm):
            def program(env):
                block, part = yield from comm.reduce_scatter(
                    env, inputs[env.rank])
                return block, part
            return program

        result = run_collective(non_mpb_stack, factory)
        for rank in range(P):
            block, part = result.values[rank]
            np.testing.assert_allclose(
                block, expected[part.slice_of(rank)], rtol=1e-12)


class TestAllgather:
    @pytest.mark.parametrize("n", [1, 16, 600])
    def test_matches_inputs(self, non_mpb_stack, n):
        inputs = make_inputs(P, n, seed=11)
        expected = np.stack(inputs)

        def factory(comm):
            def program(env):
                result = yield from comm.allgather(env, inputs[env.rank])
                return result
            return program

        result = run_collective(non_mpb_stack, factory)
        for rank in range(P):
            np.testing.assert_array_equal(result.values[rank], expected)


class TestAlltoall:
    @pytest.mark.parametrize("n", [1, 13, 600])
    def test_transpose_property(self, non_mpb_stack, n):
        """alltoall(rows) == transpose of the global send matrix."""
        rng = np.random.default_rng(5)
        sends = [rng.normal(size=(P, n)) for _ in range(P)]

        def factory(comm):
            def program(env):
                result = yield from comm.alltoall(env, sends[env.rank])
                return result
            return program

        result = run_collective(non_mpb_stack, factory)
        for rank in range(P):
            expected = np.stack([sends[src][rank] for src in range(P)])
            np.testing.assert_array_equal(result.values[rank], expected)


class TestBroadcast:
    @pytest.mark.parametrize("n", [3, 64, 600])
    @pytest.mark.parametrize("root", [0, 3])
    def test_all_ranks_receive_roots_data(self, non_mpb_stack, n, root):
        rng = np.random.default_rng(13)
        data = rng.normal(size=n)

        def factory(comm):
            def program(env):
                buf = data.copy() if env.rank == root else np.empty(n)
                yield from comm.bcast(env, buf, root)
                return buf
            return program

        result = run_collective(non_mpb_stack, factory)
        for rank in range(P):
            np.testing.assert_array_equal(result.values[rank], data)


class TestReduce:
    @pytest.mark.parametrize("n", [4, 96, 552])
    @pytest.mark.parametrize("root", [0, 5])
    def test_root_gets_sum(self, non_mpb_stack, n, root):
        inputs = make_inputs(P, n, seed=17)
        expected = np.sum(inputs, axis=0)

        def factory(comm):
            def program(env):
                result = yield from comm.reduce(env, inputs[env.rank],
                                                SUM, root)
                return result
            return program

        result = run_collective(non_mpb_stack, factory)
        np.testing.assert_allclose(result.values[root], expected, rtol=1e-12)
        for rank in range(P):
            if rank != root:
                assert result.values[rank] is None


class TestScatterGather:
    def test_scatter_blocks(self, non_mpb_stack):
        data = np.arange(100, dtype=np.float64)

        def factory(comm):
            def program(env):
                buf = data.copy() if env.rank == 0 else np.empty(100)
                block = yield from comm.scatter(env, buf, root=0)
                part = comm.partition(100, env.size)
                return block, part.slice_of(env.rank)
            return program

        result = run_collective(non_mpb_stack, factory)
        for rank in range(P):
            block, sl = result.values[rank]
            np.testing.assert_array_equal(block, data[sl])

    def test_gather_reassembles(self, non_mpb_stack):
        data = np.arange(100, dtype=np.float64)

        def factory(comm):
            def program(env):
                part = comm.partition(100, env.size)
                block = data[part.slice_of(env.rank)].copy()
                full = yield from comm.gather(env, block, 100, root=0)
                return full
            return program

        result = run_collective(non_mpb_stack, factory)
        np.testing.assert_array_equal(result.values[0], data)
        assert result.values[1] is None

    def test_gather_wrong_block_size_rejected(self):
        def factory(comm):
            def program(env):
                block = np.zeros(99)  # wrong size for every partition
                yield from comm.gather(env, block, 100, root=0)
            return program

        with pytest.raises(ValueError):
            run_collective("lightweight", factory)


class TestBarrier:
    def test_barrier_synchronizes(self, stack):
        def factory(comm):
            def program(env):
                yield from env.compute(10_000 * env.rank)
                yield from comm.barrier(env)
                return env.now
            return program

        result = run_collective(stack, factory)
        machine_cycles = max(result.values)
        # Nobody may leave before the slowest rank arrived.
        slowest_arrival = result.values[P - 1]
        assert min(result.values) >= slowest_arrival - machine_cycles * 0.5
        assert min(result.values) > 0


class TestSingleRank:
    def test_collectives_degenerate_gracefully(self, stack):
        data = np.arange(10, dtype=np.float64)

        def factory(comm):
            def program(env):
                ar = yield from comm.allreduce(env, data)
                bc = yield from comm.bcast(env, data.copy())
                rd = yield from comm.reduce(env, data)
                yield from comm.barrier(env)
                return ar, bc, rd
            return program

        machine = __import__("tests.core.conftest", fromlist=["small_machine"]
                             ).small_machine()
        from repro.core.registry import make_communicator
        comm = make_communicator(machine, stack)
        result = machine.run_spmd(factory(comm), ranks=[0])
        ar, bc, rd = result.values[0]
        np.testing.assert_array_equal(ar, data)
        np.testing.assert_array_equal(bc, data)
        np.testing.assert_array_equal(rd, data)
