"""Ablation: naive serial RCCE collectives vs the tree algorithms of
[8]/[9] (paper Section III).

RCCE's native Broadcast and Reduce let the root communicate with every
core serially (47 sequential rendezvous messages at 48 cores); the
binomial-tree alternatives need only ~log2(48) = 6 serialized message
steps on the critical path.  The paper reports factors of >20x (Broadcast)
and >6x (Reduce) on silicon; our model's floor is the message-count ratio
(47 / 6 ≈ 8x) because it does not separately model the additional per-send
inefficiencies of the naive RCCE code — the qualitative gap (roughly an
order of magnitude) is what this ablation locks in.
"""

import numpy as np

from repro.core.bcast import binomial_bcast
from repro.core.reduce import binomial_reduce
from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.rcce.api import RCCE
from repro.rcce.native import native_bcast, native_reduce
from repro.sim.clock import ps_to_us

from conftest import write_report

N = 2048  # 16 KB vectors: copy-dominated, like the related-work studies
CORES = 48


def _run(program_factory) -> float:
    machine = Machine(SCCConfig())
    rcce = RCCE(machine)
    comm = make_communicator(machine, "blocking")
    result = machine.run_spmd(program_factory(machine, rcce, comm))
    return ps_to_us(result.elapsed_ps)


def _native_bcast_program(machine, rcce, comm):
    data = np.arange(N, dtype=np.float64)

    def program(env):
        buf = data.copy() if env.rank == 0 else np.empty(N)
        yield from native_bcast(rcce, env, buf, 0)
    return program


def _tree_bcast_program(machine, rcce, comm):
    data = np.arange(N, dtype=np.float64)

    def program(env):
        buf = data.copy() if env.rank == 0 else np.empty(N)
        yield from binomial_bcast(comm, env, buf, 0)
    return program


def _native_reduce_program(machine, rcce, comm):
    def program(env):
        vec = np.full(N, float(env.rank))
        yield from native_reduce(rcce, env, vec, root=0)
    return program


def _tree_reduce_program(machine, rcce, comm):
    from repro.core.ops import SUM

    def program(env):
        vec = np.full(N, float(env.rank))
        yield from binomial_reduce(comm, env, vec, SUM, root=0)
    return program


def test_ablation_trees(benchmark, results_dir):
    naive_bcast = _run(_native_bcast_program)
    tree_bcast = _run(_tree_bcast_program)
    naive_reduce = _run(_native_reduce_program)
    tree_reduce = _run(_tree_reduce_program)

    bcast_factor = naive_bcast / tree_bcast
    reduce_factor = naive_reduce / tree_reduce
    report = "\n".join([
        "=== Tree ablation: naive serial RCCE vs binomial trees "
        f"(n = {N}, {CORES} cores) ===",
        f"bcast : naive {naive_bcast:9.1f}us  binomial tree "
        f"{tree_bcast:9.1f}us  factor {bcast_factor:5.1f}x (paper: >20x)",
        f"reduce: naive {naive_reduce:9.1f}us  binomial tree "
        f"{tree_reduce:9.1f}us  factor {reduce_factor:5.1f}x (paper: >6x)",
        "",
        "model floor: 47 serial messages vs ~6 tree levels (~8x); the",
        "paper's larger broadcast factor includes naive-RCCE per-send",
        "inefficiencies this model does not separate out.",
    ])
    write_report(results_dir, "ablation_trees", report)

    assert bcast_factor > 5.0
    assert reduce_factor > 4.0

    benchmark.pedantic(_run, args=(_tree_bcast_program,),
                       rounds=1, iterations=1)
