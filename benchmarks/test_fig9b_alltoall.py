"""Fig. 9b: Alltoall latency vs vector size.

Paper claims: relaxed synchronization yields ~1.6x (we land in the 1.5-3x
band); RCKMPI is *competitive* here — the one collective where it is not
2x-5x worse than the baseline.
"""

from repro.bench.figures import fig9
from repro.bench.report import mean_speedup
from repro.bench.runner import measure_collective

from conftest import bench_sizes, series_by_label, write_report


def test_fig9b_alltoall(benchmark, results_dir):
    result = fig9("9b", sizes=bench_sizes())
    write_report(results_dir, "fig9b_alltoall", result.render())

    blocking = series_by_label(result, "blocking")
    ircce = series_by_label(result, "ircce")
    lightweight = series_by_label(result, "lightweight")
    rckmpi = series_by_label(result, "rckmpi")

    speedup = mean_speedup(blocking, ircce)
    assert 1.3 < speedup < 3.2, f"blocking->ircce speedup {speedup:.2f}"

    # Little further gain from the lightweight primitives (big messages).
    assert abs(mean_speedup(ircce, lightweight) - 1.0) < 0.15

    # "RCKMPI performs significantly worse ... in all cases except
    # Alltoall": here it must be at least competitive with the baseline.
    assert mean_speedup(blocking, rckmpi) > 0.85

    benchmark.pedantic(
        measure_collective, args=("alltoall", "lightweight", 552),
        rounds=1, iterations=1)
