"""Fig. 9a: Allgather latency vs vector size.

Paper claims reproduced here: the relaxed synchronization (iRCCE) gives an
average speedup around 2.7x over the blocking baseline; the choice of
non-blocking implementation has little or no effect (lightweight ≈ iRCCE,
because full-vector transfers dwarf the request-management overhead); all
RCCE-family curves spike with period 4 (L1-line padding) while RCKMPI's
byte-granular channel scales smoothly.
"""

from repro.bench.figures import fig9
from repro.bench.report import mean_speedup
from repro.bench.runner import measure_collective

from conftest import bench_sizes, series_by_label, spike_amplitude, write_report


def test_fig9a_allgather(benchmark, results_dir):
    result = fig9("9a", sizes=bench_sizes())
    write_report(results_dir, "fig9a_allgather", result.render())

    blocking = series_by_label(result, "blocking")
    ircce = series_by_label(result, "ircce")
    lightweight = series_by_label(result, "lightweight")
    rckmpi = series_by_label(result, "rckmpi")

    # Relaxed synchronization speedup "roughly between 2 to 3" (2.7x).
    speedup = mean_speedup(blocking, ircce)
    assert 1.7 < speedup < 3.3, f"blocking->ircce speedup {speedup:.2f}"

    # "the choice of non-blocking primitives implementation has little or
    # no effect on performance here"
    assert abs(mean_speedup(ircce, lightweight) - 1.0) < 0.15

    # Period-4 spikes: present for RCCE-family, absent for RCKMPI.
    assert spike_amplitude(blocking) > 1.01
    assert spike_amplitude(rckmpi) < spike_amplitude(blocking)

    benchmark.pedantic(
        measure_collective, args=("allgather", "lightweight", 552),
        rounds=1, iterations=1)
