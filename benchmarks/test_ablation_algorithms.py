"""Ablation: Allreduce algorithm selection (the RCKMPI design point).

RCKMPI "contains sophisticated algorithms for collective operations
[which] provide a set of routines for different message sizes and pick
the one that performs best at runtime" (Section III).  This ablation
reproduces the classic crossover behind that design: recursive doubling
(log p rounds of full vectors) wins for short vectors, the ring
ReduceScatter+Allgather (2(p-1) rounds of 1/p-size blocks) wins for long
ones.
"""

import numpy as np

from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.sim.clock import ps_to_us

from conftest import write_report

ALGOS = ("rsag", "reduce_bcast", "recursive_doubling", "recursive_halving")
SIZES = (8, 64, 552, 4096)


def allreduce_us(algo: str, n: int) -> float:
    machine = Machine(SCCConfig())
    comm = make_communicator(machine, "lightweight_balanced")
    rng = np.random.default_rng(1)
    inputs = [rng.normal(size=n) for _ in range(48)]

    def program(env):
        yield from comm.allreduce(env, inputs[env.rank], algo=algo)

    return ps_to_us(machine.run_spmd(program).elapsed_ps)


def test_ablation_allreduce_algorithms(benchmark, results_dir):
    table = {n: {algo: allreduce_us(algo, n) for algo in ALGOS}
             for n in SIZES}

    lines = ["=== Allreduce algorithm ablation (48 cores, lightweight"
             " balanced stack) ===",
             f"{'n':>6}  " + "  ".join(f"{a:>20}" for a in ALGOS)]
    for n in SIZES:
        lines.append(f"{n:>6}  " + "  ".join(
            f"{table[n][a]:>18.1f}us" for a in ALGOS))
    best = {n: min(table[n], key=table[n].get) for n in SIZES}
    lines.append("")
    lines.append("winners: " + ", ".join(f"n={n}: {best[n]}"
                                         for n in SIZES))
    write_report(results_dir, "ablation_algorithms", "\n".join(lines))

    # The crossover: log-round algorithms win short, ring wins long.
    assert best[8] in ("recursive_doubling", "reduce_bcast",
                       "recursive_halving")
    assert best[4096] in ("rsag", "recursive_halving")
    # Recursive doubling's full-vector rounds must lose badly at 4096.
    assert table[4096]["recursive_doubling"] > 1.3 * table[4096]["rsag"]

    benchmark.pedantic(allreduce_us, args=("rsag", 552),
                       rounds=1, iterations=1)
