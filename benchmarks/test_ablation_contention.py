"""Ablation: MPB port contention.

The default model charges MPB accesses by latency only; the optional
`model_mpb_contention` flag serializes concurrent bulk transfers hitting
the same MPB.  Finding (documented in EXPERIMENTS.md): the rendezvous
flag protocol already orders the owner's put and the neighbour's get of
the same buffer, so the ring collectives are nearly contention-free —
the lock only bites when accesses genuinely overlap, as in the fan-in
microbenchmark below (many cores writing one victim MPB at once).
"""

import numpy as np

from repro.bench.runner import measure_collective
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.rcce.api import comm_buffer
from repro.rcce.transfer import put_bytes
from repro.sim.clock import ps_to_us

from conftest import write_report

WRITERS = 8
BYTES = 3200


def fan_in_elapsed(contention: bool) -> float:
    """WRITERS cores simultaneously write disjoint slices of one MPB."""
    m = Machine(SCCConfig(model_mpb_contention=contention))
    data = np.zeros(BYTES // WRITERS, dtype=np.uint8)

    def program(env):
        if 1 <= env.rank <= WRITERS:
            region = comm_buffer(m, env.core_of_rank(0))
            yield from put_bytes(env, region, data,
                                 at=(env.rank - 1) * data.size)
        else:
            yield from env.compute(0)

    return ps_to_us(m.run_spmd(program).elapsed_ps)


def test_ablation_contention(benchmark, results_dir):
    fan_free = fan_in_elapsed(False)
    fan_locked = fan_in_elapsed(True)

    cfg_on = SCCConfig(model_mpb_contention=True)
    ring_free = measure_collective("allreduce", "lightweight_balanced", 552)
    ring_locked = measure_collective("allreduce", "lightweight_balanced",
                                     552, config=cfg_on)

    report = "\n".join([
        "=== MPB port-contention ablation ===",
        f"fan-in ({WRITERS} writers, one MPB): "
        f"free {fan_free:8.1f}us   locked {fan_locked:8.1f}us   "
        f"({fan_locked / fan_free:.2f}x)",
        f"ring Allreduce n=552:              "
        f"free {ring_free:8.1f}us   locked {ring_locked:8.1f}us   "
        f"({ring_locked / ring_free:.2f}x)",
        "",
        "fan-in traffic serializes hard; the rendezvous-ordered ring is",
        "structurally contention-free (the paper's protocols never",
        "overlap same-port bulk accesses).",
    ])
    write_report(results_dir, "ablation_contention", report)

    assert fan_locked > 2.0 * fan_free      # genuine overlap serializes
    assert ring_locked <= ring_free * 1.05  # rendezvous rings barely care

    benchmark.pedantic(fan_in_elapsed, args=(True,), rounds=1, iterations=1)
