"""Fig. 9d: Broadcast latency vs vector size.

RCCE_comm's long-message broadcast (binomial scatter + ring allgather of
partition blocks) under the optimization steps; the paper credits the
lightweight primitives with ~1.8x here and the balancing applies to the
scatter/allgather block sizes.
"""

from repro.bench.figures import fig9
from repro.bench.report import mean_speedup
from repro.bench.runner import measure_collective

from conftest import bench_sizes, series_by_label, write_report


def test_fig9d_broadcast(benchmark, results_dir):
    result = fig9("9d", sizes=bench_sizes())
    write_report(results_dir, "fig9d_broadcast", result.render())

    blocking = series_by_label(result, "blocking")
    ircce = series_by_label(result, "ircce")
    lightweight = series_by_label(result, "lightweight")
    balanced = series_by_label(result, "lightweight_balanced")
    rckmpi = series_by_label(result, "rckmpi")

    # Lightweight primitives buy a clear improvement (paper: ~1.8x).
    lw_gain = mean_speedup(ircce, lightweight)
    assert lw_gain > 1.2, f"lightweight gain only {lw_gain:.2f}"

    total = mean_speedup(blocking, balanced)
    assert 1.5 < total < 3.5, f"total speedup {total:.2f}"

    rck = mean_speedup(rckmpi, blocking)
    assert 1.5 < rck < 5.5, f"rckmpi is {rck:.2f}x slower"

    benchmark.pedantic(
        measure_collective, args=("bcast", "lightweight_balanced", 552),
        rounds=1, iterations=1)
