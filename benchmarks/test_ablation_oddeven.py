"""Ablation: the odd-even blocking ring in isolation (optimization A).

Microbenchmark of one ring ReduceScatter: the doubly-synchronizing
blocking primitives under the odd-even call ordering versus the relaxed
non-blocking rounds of Fig. 5 — the isolated effect the paper develops in
Section IV-A, including the deadlock that forces the ordering in the
first place.
"""

import numpy as np
import pytest

from repro.bench.runner import measure_collective
from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.rcce.api import RCCE
from repro.sim.errors import DeadlockError

from conftest import write_report


def test_ablation_oddeven(benchmark, results_dir):
    blocking = measure_collective("reduce_scatter", "blocking", 552)
    relaxed = measure_collective("reduce_scatter", "lightweight", 552)
    # Isolate optimization A from B: the iRCCE stack keeps the heavy
    # request machinery but removes the odd-even barrier coupling.
    ircce = measure_collective("reduce_scatter", "ircce", 552)

    report = "\n".join([
        "=== Odd-even ablation: ring ReduceScatter, n = 552, 48 cores ===",
        f"blocking odd-even ring : {blocking:9.1f}us",
        f"iRCCE relaxed ring     : {ircce:9.1f}us  "
        f"({blocking / ircce:.2f}x, optimization A alone)",
        f"lightweight relaxed    : {relaxed:9.1f}us  "
        f"({blocking / relaxed:.2f}x, A + B)",
    ])
    write_report(results_dir, "ablation_oddeven", report)

    assert blocking > ircce > relaxed

    benchmark.pedantic(
        measure_collective, args=("reduce_scatter", "blocking", 552),
        rounds=1, iterations=1)


def test_unordered_blocking_ring_deadlocks(benchmark):
    """Without the odd-even ordering the blocking ring cannot work at all
    (Fig. 4's raison d'etre)."""
    machine = Machine(SCCConfig(mesh_cols=2, mesh_rows=1))
    rcce = RCCE(machine)

    def program(env):
        right = (env.rank + 1) % env.size
        left = (env.rank - 1) % env.size
        out = np.empty(8)
        yield from rcce.send(env, np.zeros(8), right)
        yield from rcce.recv(env, out, left)

    with pytest.raises(DeadlockError):
        machine.run_spmd(program)

    def safe_pair():
        m = Machine(SCCConfig(mesh_cols=2, mesh_rows=1))
        r = RCCE(m)
        comm = make_communicator(m, "blocking")

        def prog(env):
            yield from comm.barrier(env)
        return m.run_spmd(prog)

    benchmark.pedantic(safe_pair, rounds=1, iterations=1)
