"""Section IV: the step-wise Allreduce speedups at the application's
vector size (552 doubles = 276 complex Fourier coefficients).

Paper text:
  IV-A  blocking  -> iRCCE       ~ +25%
  IV-B  iRCCE     -> lightweight ~ +65%
  IV-C  lightweight -> balanced  ~ +28%
  IV-D  balanced  -> MPB-direct  ~ +10% (erratum active)
"""

from repro.bench.runner import measure_collective

from conftest import write_report

STEPS = [
    ("blocking", "ircce", 1.25, 0.15),
    ("ircce", "lightweight", 1.65, 0.25),
    ("lightweight", "lightweight_balanced", 1.28, 0.15),
    ("lightweight_balanced", "mpb", 1.10, 0.12),
]


def test_sec4_stepwise_allreduce(benchmark, results_dir):
    lat = {
        stack: measure_collective("allreduce", stack, 552)
        for stack in ("blocking", "ircce", "lightweight",
                      "lightweight_balanced", "mpb")
    }
    lines = ["=== Section IV step-wise Allreduce speedups (n = 552) ===",
             f"{'step':<44}{'measured':>10}{'paper':>8}"]
    for before, after, target, tol in STEPS:
        measured = lat[before] / lat[after]
        lines.append(f"{before + ' -> ' + after:<44}"
                     f"{measured:>9.2f}x{target:>7.2f}x")
        assert abs(measured - target) <= tol, (
            f"{before}->{after}: {measured:.2f} vs paper ~{target:.2f}")
    lines.append("")
    lines.append("absolute simulated latencies [us]: "
                 + "  ".join(f"{s}={v:.0f}" for s, v in lat.items()))
    write_report(results_dir, "sec4_stepwise", "\n".join(lines))

    benchmark.pedantic(
        measure_collective, args=("allreduce", "lightweight_balanced", 552),
        rounds=1, iterations=1)
