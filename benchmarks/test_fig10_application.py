"""Fig. 10: GCMC application runtime across the library stacks.

The paper's bars (RCKMPI 55:27, blocking 25:36, iRCCE 23:09, lightweight
19:38, balanced 18:24, MPB 17:58) correspond to runtime ratios vs the
blocking baseline of 2.17 / 1.0 / 0.90 / 0.77 / 0.72 / 0.70.  The
simulated application reproduces the RCCE-family ratios closely; RCKMPI
lands slower than everything but below the paper's 2.17x (our channel
model sits at the low end of the paper's "2x-5x" band) — recorded in
EXPERIMENTS.md.

The physics is identical on every stack (asserted), only the simulated
communication time changes.
"""

from repro.bench.figures import default_app_cycles, fig10

from conftest import write_report


def test_fig10_application(benchmark, results_dir):
    result = fig10(profile_dir=str(results_dir))
    write_report(results_dir, "fig10_application", result.render())

    # The machine-readable profiles landed next to the report and agree
    # with the rendered wait fractions' accounts.
    import json
    for stack in result.runtimes_us:
        path = results_dir / f"fig10_{stack}.metrics.json"
        metrics = json.loads(path.read_text())
        assert metrics["meta"]["stack"] == stack
        assert metrics["elapsed_us"] == result.runtimes_us[stack]
        assert len(metrics["cores"]) == 48
        assert metrics["mesh_links"], "traffic counters were not enabled"

    # Ordering: every optimization step helps end-to-end.
    order = ["blocking", "ircce", "lightweight", "lightweight_balanced",
             "mpb"]
    times = [result.runtimes_us[s] for s in order]
    assert times == sorted(times, reverse=True), (
        f"stacks out of order: {dict(zip(order, times))}")

    # Paper: combined optimizations improve the runtime by more than 40%
    # (speedup > 1.40x blocking -> MPB).
    assert result.speedup_blocking_to_mpb() > 1.35

    # Paper: > 17% improvement iRCCE -> lightweight.
    assert (result.runtimes_us["ircce"]
            / result.runtimes_us["lightweight"]) > 1.15

    # Paper: RCKMPI exceeds the baseline runtime clearly.
    assert result.ratio("rckmpi") > 1.4

    # Ratios close to the paper's bars for the RCCE-family stacks.
    paper = {"ircce": 0.904, "lightweight": 0.767,
             "lightweight_balanced": 0.719, "mpb": 0.702}
    for stack, expected in paper.items():
        measured = result.ratio(stack)
        assert abs(measured - expected) < 0.08, (
            f"{stack}: ratio {measured:.3f} vs paper {expected:.3f}")

    def one_cycle_blocking():
        return fig10(cycles=1, stacks=("blocking",))

    benchmark.pedantic(one_cycle_blocking, rounds=1, iterations=1)


def test_fig10_wait_profile(benchmark, results_dir):
    """Section IV-A's profiling motivation: substantial time is spent
    waiting (rcce_wait_until) under the unoptimized stacks."""
    cycles = max(2, default_app_cycles() // 2)
    result = fig10(cycles=cycles, stacks=("blocking", "ircce", "mpb"))
    report = "\n".join(
        f"{stack:<12} wait fraction {frac:.2f}"
        for stack, frac in result.wait_fractions.items())
    write_report(results_dir, "fig10_wait_profile", report)
    assert result.wait_fractions["blocking"] > 0.10
    assert result.wait_fractions["ircce"] > 0.15

    benchmark.pedantic(fig10, kwargs={"cycles": 1, "stacks": ("ircce",)},
                       rounds=1, iterations=1)
