"""Shared infrastructure for the benchmark suite.

Every ``test_fig*`` / ``test_ablation*`` benchmark:

1. regenerates its table/figure at the configured resolution
   (``REPRO_BENCH_SIZES``, default a curated 13-point grid that covers the
   period-4 spikes, the 552-element application case, and the period-48
   sawtooth peak at 575 — set ``REPRO_BENCH_SIZES=500:701:1`` for the
   paper's full grid),
2. writes the paper-style textual report to ``benchmarks/results/``,
3. asserts the paper's qualitative claims (who wins, by roughly what
   factor, where the shape features fall),
4. times one representative simulator invocation with pytest-benchmark.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.bench.runner import parse_sizes_spec

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Curated default grid: consecutive sizes around 552 (spikes), aligned
#: sizes across the range (levels), and the 573..576 sawtooth edge.
CURATED_SIZES = [552, 553, 554, 555, 556, 560, 564, 568,
                 572, 573, 574, 575, 576]


def bench_sizes() -> list[int]:
    spec = os.environ.get("REPRO_BENCH_SIZES")
    if spec is None:
        return list(CURATED_SIZES)
    return parse_sizes_spec(spec, source="REPRO_BENCH_SIZES")


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_report(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


def series_by_label(result, label: str):
    return next(s for s in result.series if s.label == label)


def spike_amplitude(series) -> float:
    """Mean ratio of unaligned-size latency to the neighbouring aligned
    sizes — >1 means the period-4 cache-line spikes are present."""
    sizes = list(series.sizes)
    ratios = []
    for i, n in enumerate(sizes):
        if n % 4 == 0:
            continue
        lower = n - (n % 4)
        upper = lower + 4
        if lower in sizes and upper in sizes:
            aligned = 0.5 * (series.values_us[sizes.index(lower)]
                             + series.values_us[sizes.index(upper)])
            ratios.append(series.values_us[i] / aligned)
    if not ratios:
        raise AssertionError("size grid has no spike probes; "
                             "include unaligned sizes")
    return sum(ratios) / len(ratios)


def sawtooth_drop(series) -> float:
    """latency(575) / latency(576): the load-balancing sawtooth edge
    (575 = worst standard split, 576 = 48*12 = perfectly divisible).

    Only meaningful for the *standard* partition: at 576 the balanced
    blocks also become line-aligned, so its drop conflates the period-4
    padding spike with the sawtooth — use :func:`sawtooth_ramp` to test
    balanced flatness.
    """
    return series.at(575) / series.at(576)


def sawtooth_ramp(series) -> float:
    """mean latency(573..575) / mean latency(553..555): the rise across
    the period-48 sawtooth.  The standard partition's first block grows
    from 11+25 to 11+47 elements over this span (ramp > 1), the balanced
    partition's block mix barely changes (ramp ~ 1)."""
    lo = [series.at(n) for n in (553, 554, 555)]
    hi = [series.at(n) for n in (573, 574, 575)]
    return (sum(hi) / len(hi)) / (sum(lo) / len(lo))
