"""Ablation: the SCC local-MPB arbiter erratum (Section IV-D).

The paper measured only ~10% from the MPB-direct Allreduce because the
erratum workaround slows every local MPB access from 15 core cycles to
45 core + 8 mesh cycles, and the MPB-direct algorithm's result writes are
all local-MPB traffic.  "With the hardware bug resolved, we expect to see
significantly higher speedups."  This ablation runs both chips.
"""

from repro.bench.runner import measure_collective
from repro.hw.config import SCCConfig

from conftest import write_report


def _gains(erratum: bool) -> tuple[float, float, float]:
    cfg = lambda: SCCConfig(erratum_enabled=erratum)  # noqa: E731
    balanced = measure_collective("allreduce", "lightweight_balanced", 552,
                                  config=cfg())
    mpb = measure_collective("allreduce", "mpb", 552, config=cfg())
    return balanced, mpb, balanced / mpb


def test_ablation_erratum(benchmark, results_dir):
    bal_bug, mpb_bug, gain_bug = _gains(erratum=True)
    bal_fix, mpb_fix, gain_fix = _gains(erratum=False)

    report = "\n".join([
        "=== Erratum ablation: MPB-direct Allreduce gain (n = 552) ===",
        f"{'chip':<16}{'balanced':>12}{'mpb':>12}{'gain':>8}",
        f"{'buggy (real)':<16}{bal_bug:>10.1f}us{mpb_bug:>10.1f}us"
        f"{gain_bug:>7.2f}x",
        f"{'fixed (hypo)':<16}{bal_fix:>10.1f}us{mpb_fix:>10.1f}us"
        f"{gain_fix:>7.2f}x",
        "",
        f"everything speeds up on the fixed chip: balanced "
        f"{bal_bug / bal_fix:.2f}x, mpb {mpb_bug / mpb_fix:.2f}x",
    ])
    write_report(results_dir, "ablation_erratum", report)

    # Paper: ~10% gain on real silicon.
    assert 1.0 < gain_bug < 1.35
    # The fixed chip benefits the MPB algorithm at least as much -- its
    # local-MPB write path is the one the workaround penalizes hardest.
    assert gain_fix >= gain_bug * 0.98
    # The fixed chip is strictly faster for both stacks.
    assert mpb_fix < mpb_bug
    assert bal_fix < bal_bug

    benchmark.pedantic(
        measure_collective, args=("allreduce", "mpb", 552),
        kwargs={"config": SCCConfig(erratum_enabled=False)},
        rounds=1, iterations=1)
