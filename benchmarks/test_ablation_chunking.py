"""Ablation: MPB chunk-size sensitivity of point-to-point transfers.

RCCE pipelines messages larger than the MPB payload through full-buffer
chunks; this sweep shrinks the usable payload (emulating smaller MPBs or
competing MPB users) and shows the handshake-per-chunk cost growing.
"""

import numpy as np

from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.rcce.api import RCCE
from repro.sim.clock import ps_to_us

from conftest import write_report

MESSAGE_DOUBLES = 4000  # 32 KB message, forced through multiple chunks


def _p2p_latency(mpb_bytes: int) -> float:
    cfg = SCCConfig(mesh_cols=2, mesh_rows=1, mpb_bytes_per_core=mpb_bytes)
    machine = Machine(cfg)
    rcce = RCCE(machine)
    payload = np.zeros(MESSAGE_DOUBLES)

    def program(env):
        if env.rank == 0:
            yield from rcce.send(env, payload, 1)
        elif env.rank == 1:
            out = np.empty(MESSAGE_DOUBLES)
            yield from rcce.recv(env, out, 1 - env.rank)
        else:
            yield from env.compute(0)

    result = machine.run_spmd(program)
    return ps_to_us(result.elapsed_ps)


def test_ablation_chunking(benchmark, results_dir):
    sizes = [1024, 2048, 4096, 8192, 16384]
    latencies = {s: _p2p_latency(s) for s in sizes}
    lines = ["=== Chunking ablation: 32 KB blocking send/recv vs MPB size ===",
             f"{'mpb bytes':>10} {'chunks':>7} {'latency':>12}"]
    for s in sizes:
        chunks = -(-MESSAGE_DOUBLES * 8 // (s - 192))
        lines.append(f"{s:>10} {chunks:>7} {latencies[s]:>10.1f}us")
    write_report(results_dir, "ablation_chunking", "\n".join(lines))

    # More chunks -> more handshakes -> strictly slower.
    values = [latencies[s] for s in sizes]
    assert values == sorted(values, reverse=True)
    # Going from 8 KB to 1 KB MPBs must cost visibly (many extra syncs).
    assert latencies[1024] > 1.2 * latencies[8192]

    benchmark.pedantic(_p2p_latency, args=(8192,), rounds=1, iterations=1)
