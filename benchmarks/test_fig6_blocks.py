"""Fig. 6: block sizes and imbalance ratios, standard vs optimized split."""

from repro.core.blocks import balanced_partition, standard_partition
from repro.bench.figures import fig6

from conftest import write_report


def test_fig6_block_table(benchmark, results_dir):
    report = fig6(p=48)
    write_report(results_dir, "fig6", report)

    # Paper annotations: 528 -> 1:1, 552 -> ~3.2:1, 575 -> ~5.3:1 for the
    # standard split; all ~1.1:1 (or exactly 1:1) when balanced.
    assert standard_partition(528, 48).imbalance_ratio() == 1.0
    assert 3.1 < standard_partition(552, 48).imbalance_ratio() < 3.3
    assert 5.2 < standard_partition(575, 48).imbalance_ratio() < 5.4
    assert balanced_partition(552, 48).imbalance_ratio() < 1.1
    assert balanced_partition(575, 48).imbalance_ratio() < 1.1

    benchmark.pedantic(fig6, kwargs={"p": 48}, rounds=3, iterations=1)
