"""Ablation: topology-aware rank placement.

RCCE_comm's ring follows the natural core numbering 0..47, whose ring
neighbours are usually on the same or adjacent tiles but wrap across the
mesh between rows.  A snake (boustrophedon) placement keeps every ring
neighbour within one mesh hop.  On the SCC the effect is small — per-hop
mesh latency is only 4 mesh cycles against ~hundreds of core cycles of
software per message — which is exactly why the paper's optimizations
target software overhead rather than topology mapping.
"""

from repro.bench.runner import measure_collective
from repro.hw.topology import default_topology

from conftest import write_report


def test_ablation_topology_mapping(benchmark, results_dir):
    topo = default_topology()
    natural = measure_collective("allreduce", "lightweight_balanced", 552)
    snake = measure_collective("allreduce", "lightweight_balanced", 552,
                               rank_order=topo.snake_ring_order())

    gain = natural / snake
    report = "\n".join([
        "=== Topology ablation: ring rank placement, Allreduce n = 552 ===",
        f"natural order (RCCE) : {natural:9.1f}us",
        f"snake order          : {snake:9.1f}us",
        f"gain                 : {gain:9.2f}x",
        "",
        "Expected to be small: per-hop mesh latency is tiny next to the",
        "per-message software costs the paper's optimizations target.",
    ])
    write_report(results_dir, "ablation_topology", report)

    # Snake placement can only shorten ring hops.
    assert snake <= natural * 1.02
    # But the gain is marginal on this machine.
    assert gain < 1.25

    benchmark.pedantic(
        measure_collective, args=("allreduce", "lightweight_balanced", 552),
        kwargs={"rank_order": topo.snake_ring_order()},
        rounds=1, iterations=1)
