"""Ablation: SCC clock presets.

The SCC's sccKit supports several core/mesh/DRAM frequency presets; the
paper uses the standard 533/800/800.  Faster cores shrink the software
overheads (which dominate the optimized stacks), while the mesh frequency
scales the wire component — so the *relative* benefit of the lightweight
primitives grows with core frequency.
"""

from repro.bench.runner import measure_collective
from repro.hw.config import config_for_preset

from conftest import write_report


def test_ablation_clock_presets(benchmark, results_dir):
    presets = ["533_800_800", "800_800_800", "800_1600_800"]
    rows = {}
    for preset in presets:
        cfg = lambda: config_for_preset(preset)  # noqa: E731
        blocking = measure_collective("allreduce", "blocking", 552,
                                      config=cfg())
        balanced = measure_collective("allreduce", "lightweight_balanced",
                                      552, config=cfg())
        rows[preset] = (blocking, balanced, blocking / balanced)

    lines = ["=== Clock-preset ablation: Allreduce n = 552 ===",
             f"{'preset':<14}{'blocking':>12}{'balanced':>12}{'speedup':>9}"]
    for preset, (b, o, s) in rows.items():
        lines.append(f"{preset:<14}{b:>10.1f}us{o:>10.1f}us{s:>8.2f}x")
    write_report(results_dir, "ablation_clock_presets", "\n".join(lines))

    # Faster cores make everything faster...
    assert rows["800_800_800"][0] < rows["533_800_800"][0]
    assert rows["800_800_800"][1] < rows["533_800_800"][1]
    # ...and a faster mesh helps further.
    assert rows["800_1600_800"][1] <= rows["800_800_800"][1]

    benchmark.pedantic(
        measure_collective, args=("allreduce", "lightweight_balanced", 552),
        kwargs={"config": config_for_preset("800_800_800")},
        rounds=1, iterations=1)
