"""Fig. 9c: ReduceScatter latency vs vector size.

The ring (bucket) algorithm under all optimization steps: relaxed
synchronization, lightweight primitives (the paper credits them with an
extra improvement for the block-subdividing collectives), and balanced
blocks (which flatten the period-48 sawtooth).
"""

from repro.bench.figures import fig9
from repro.bench.report import mean_speedup
from repro.bench.runner import measure_collective

from conftest import (bench_sizes, sawtooth_drop, sawtooth_ramp,
                      series_by_label, spike_amplitude, write_report)


def test_fig9c_reduce_scatter(benchmark, results_dir):
    result = fig9("9c", sizes=bench_sizes())
    write_report(results_dir, "fig9c_reduce_scatter", result.render())

    blocking = series_by_label(result, "blocking")
    ircce = series_by_label(result, "ircce")
    lightweight = series_by_label(result, "lightweight")
    balanced = series_by_label(result, "lightweight_balanced")
    rckmpi = series_by_label(result, "rckmpi")

    # Monotone improvement through the optimization steps.
    assert mean_speedup(blocking, ircce) > 1.0
    assert mean_speedup(ircce, lightweight) > 1.05
    assert mean_speedup(lightweight, balanced) > 1.05

    # Overall within the paper's "roughly 2 to 3" summary band.
    total = mean_speedup(blocking, balanced)
    assert 1.5 < total < 3.5, f"total speedup {total:.2f}"

    # RCKMPI 2x-5x worse than the baseline here.
    rck = mean_speedup(rckmpi, blocking)
    assert 1.5 < rck < 5.5, f"rckmpi is {rck:.2f}x slower"

    # Sawtooth: the standard partition ramps across the 48-period and
    # drops at 576; the balanced partition shows no ramp.
    assert sawtooth_drop(lightweight) > 1.2
    assert sawtooth_ramp(lightweight) > 1.1
    assert sawtooth_ramp(balanced) < 1.05

    # Period-4 spikes exist for the RCCE-family stacks.
    assert spike_amplitude(blocking) > 1.01

    benchmark.pedantic(
        measure_collective, args=("reduce_scatter", "lightweight_balanced",
                                  552),
        rounds=1, iterations=1)
