"""Fig. 9f: Allreduce latency vs vector size — the paper's running example.

All six stacks, including the MPB-direct algorithm.  Claims reproduced:
~1.7x from lightweight primitives, the load-balancing sawtooth and its
disappearance, the marginal (~10%) MPB gain under the arbiter erratum,
and the best-case total speedup (paper: 3.6x at 574 elements; we assert
the >2.5x band at the sawtooth peak).
"""

from repro.bench.figures import fig9
from repro.bench.report import mean_speedup
from repro.bench.runner import measure_collective

from conftest import (bench_sizes, sawtooth_drop, sawtooth_ramp,
                      series_by_label, spike_amplitude, write_report)


def test_fig9f_allreduce(benchmark, results_dir):
    result = fig9("9f", sizes=bench_sizes())
    write_report(results_dir, "fig9f_allreduce", result.render())

    blocking = series_by_label(result, "blocking")
    ircce = series_by_label(result, "ircce")
    lightweight = series_by_label(result, "lightweight")
    balanced = series_by_label(result, "lightweight_balanced")
    mpb = series_by_label(result, "mpb")
    rckmpi = series_by_label(result, "rckmpi")

    # Section IV step-wise ordering at every size on the grid.
    assert mean_speedup(blocking, ircce) > 1.05
    assert mean_speedup(ircce, lightweight) > 1.3
    assert mean_speedup(lightweight, balanced) > 1.1
    # MPB gain exists but is modest under the erratum (paper: ~10%).
    mpb_gain = mean_speedup(balanced, mpb)
    assert 1.0 < mpb_gain < 1.35, f"MPB gain {mpb_gain:.2f}"

    # Overall and best-case speedups.
    total = mean_speedup(blocking, mpb)
    assert 1.8 < total < 4.0, f"total speedup {total:.2f}"
    peak = blocking.at(574) / mpb.at(574)
    assert peak > 2.5, f"peak speedup at 574 only {peak:.2f} (paper: 3.6)"

    # Shape features: standard ramps over the 48-period, balanced does
    # not (its residual variation is the period-4 padding spike).
    assert sawtooth_drop(lightweight) > 1.2
    assert sawtooth_ramp(lightweight) > 1.1
    assert sawtooth_ramp(balanced) < 1.05
    assert spike_amplitude(blocking) > 1.01
    assert spike_amplitude(rckmpi) < spike_amplitude(blocking)

    rck = mean_speedup(rckmpi, blocking)
    assert 1.5 < rck < 5.5, f"rckmpi is {rck:.2f}x slower"

    benchmark.pedantic(
        measure_collective, args=("allreduce", "mpb", 552),
        rounds=1, iterations=1)
