"""Fig. 9e: Reduce latency vs vector size.

Long-vector Reduce (ring ReduceScatter + binomial gather).  The paper:
~1.6x from lightweight non-blocking primitives, and the clearest view of
the load-balancing effect — latency of the unbalanced stacks rises
linearly between multiples of 48 and drops at each multiple, while the
balanced variant stays flat.
"""

from repro.bench.figures import fig9
from repro.bench.report import mean_speedup
from repro.bench.runner import measure_collective

from conftest import (bench_sizes, sawtooth_drop, sawtooth_ramp,
                      series_by_label, write_report)


def test_fig9e_reduce(benchmark, results_dir):
    result = fig9("9e", sizes=bench_sizes())
    write_report(results_dir, "fig9e_reduce", result.render())

    blocking = series_by_label(result, "blocking")
    lightweight = series_by_label(result, "lightweight")
    balanced = series_by_label(result, "lightweight_balanced")
    rckmpi = series_by_label(result, "rckmpi")

    # Paper: accelerated ~1.6x on average with lightweight primitives.
    speedup = mean_speedup(blocking, lightweight)
    assert 1.3 < speedup < 2.8, f"blocking->lightweight {speedup:.2f}"

    # Sawtooth visible for the standard partition, no ramp for balanced.
    assert sawtooth_drop(lightweight) > 1.2
    assert sawtooth_drop(blocking) > 1.1
    assert sawtooth_ramp(lightweight) > 1.1
    assert sawtooth_ramp(balanced) < 1.05

    rck = mean_speedup(rckmpi, blocking)
    assert 1.5 < rck < 5.5

    benchmark.pedantic(
        measure_collective, args=("reduce", "lightweight_balanced", 552),
        rounds=1, iterations=1)
