#!/usr/bin/env python
"""Documentation checker: intra-repo links and runnable examples.

Two checks, both wired into the test suite (``tests/test_docs_check.py``):

* ``--links`` (default) — every relative markdown link in README.md,
  the root ``*.md`` files and ``docs/*.md`` must resolve to a file or
  directory inside the repository.  External URLs (``http(s)://``,
  ``mailto:``) and pure anchors (``#...``) are skipped; a link's
  ``#fragment`` suffix is stripped before resolution.
* ``--examples`` — run every ``examples/*.py`` with ``--smoke`` (the
  seconds-scale sizes every example supports) and fail on a non-zero
  exit.
* ``--cli`` — every ``python -m repro`` subcommand (introspected from
  ``repro.cli.build_parser``, recursing into nested subcommands like
  ``ensemble summarize``) must appear as ``python -m repro <name>`` in
  ``docs/api.md``, so the command-line reference can never silently
  fall behind the parser.
* ``--cli-flags`` — every long option of every subcommand (again
  introspected from the live parser, so e.g. ``--engine`` is covered the
  moment it is added) must appear literally in ``docs/api.md``.
  ``--help`` is exempt.

Exit status: 0 when everything passes, 1 otherwise.

Run:  python tools/check_docs.py [--links] [--examples] [--cli]
      [--cli-flags] [--verbose]
"""

from __future__ import annotations

import argparse
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: [text](target) — target captured up to the closing paren (no nesting).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: Link targets that are not intra-repo file references.
_EXTERNAL = ("http://", "https://", "mailto:", "#")


def doc_files() -> list[str]:
    """README, the other root-level .md files, and docs/*.md."""
    paths = []
    for name in sorted(os.listdir(REPO_ROOT)):
        if name.endswith(".md"):
            paths.append(os.path.join(REPO_ROOT, name))
    docs = os.path.join(REPO_ROOT, "docs")
    for name in sorted(os.listdir(docs)):
        if name.endswith(".md"):
            paths.append(os.path.join(docs, name))
    return paths


def iter_links(path: str):
    """Yield (line_number, target) for every markdown link in ``path``."""
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            for match in _LINK_RE.finditer(line):
                yield lineno, match.group(1)


def check_links(verbose: bool = False) -> list[str]:
    """Return a list of human-readable failures (empty = all good)."""
    failures = []
    checked = 0
    for doc in doc_files():
        base = os.path.dirname(doc)
        for lineno, target in iter_links(doc):
            if target.startswith(_EXTERNAL):
                continue
            checked += 1
            resolved = os.path.normpath(
                os.path.join(base, target.split("#", 1)[0]))
            if not os.path.exists(resolved):
                rel = os.path.relpath(doc, REPO_ROOT)
                failures.append(f"{rel}:{lineno}: broken link -> {target}")
            elif verbose:
                rel = os.path.relpath(doc, REPO_ROOT)
                print(f"ok   {rel}: {target}")
    print(f"links: {checked} intra-repo links checked, "
          f"{len(failures)} broken")
    return failures


def example_scripts() -> list[str]:
    examples = os.path.join(REPO_ROOT, "examples")
    return [os.path.join(examples, name)
            for name in sorted(os.listdir(examples))
            if name.endswith(".py")]


def check_examples(verbose: bool = False) -> list[str]:
    """Run every example with --smoke; return failures."""
    failures = []
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    for script in example_scripts():
        name = os.path.relpath(script, REPO_ROOT)
        proc = subprocess.run(
            [sys.executable, script, "--smoke"],
            capture_output=True, text=True, env=env, timeout=300)
        if proc.returncode != 0:
            tail = "\n".join(proc.stderr.strip().splitlines()[-5:])
            failures.append(f"{name}: exit {proc.returncode}\n{tail}")
        elif verbose:
            print(f"ok   {name}")
    print(f"examples: {len(example_scripts())} run with --smoke, "
          f"{len(failures)} failed")
    return failures


def _iter_subparsers(parser, prefix: str = ""):
    """Yield ``(full name, subparser)`` pairs, recursing into nested
    subcommands (``ensemble summarize`` and friends)."""
    for action in parser._actions:
        if not isinstance(action, argparse._SubParsersAction):
            continue
        for name, sub in action.choices.items():
            full = f"{prefix}{name}"
            yield full, sub
            yield from _iter_subparsers(sub, prefix=full + " ")


def cli_subcommands() -> list[str]:
    """Subcommand names (nested ones as ``parent child``) introspected
    from the installed CLI parser."""
    src = os.path.join(REPO_ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.cli import build_parser

    return sorted({name for name, _ in _iter_subparsers(build_parser())})


def cli_flags() -> dict[str, list[str]]:
    """subcommand -> sorted long options, introspected from the parser.

    Nested subcommands appear under their full name; a parent that only
    dispatches (no options of its own) contributes an empty list.
    """
    src = os.path.join(REPO_ROOT, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.cli import build_parser

    flags: dict[str, list[str]] = {}
    for name, sub in _iter_subparsers(build_parser()):
        longs = set()
        for sub_action in sub._actions:
            for opt in sub_action.option_strings:
                if opt.startswith("--") and opt != "--help":
                    longs.add(opt)
        flags[name] = sorted(longs)
    return flags


def check_cli_flags(verbose: bool = False) -> list[str]:
    """Every subcommand's long options must appear in docs/api.md.

    The check is for the literal flag text (e.g. ``--engine``) anywhere
    in the file — the reference is organised per subcommand, but flags
    shared across subcommands (``--jobs``, ``--cores``) are documented
    once, so a per-section match would demand duplication for no reader
    benefit.
    """
    api = os.path.join(REPO_ROOT, "docs", "api.md")
    with open(api) as fh:
        text = fh.read()
    failures = []
    checked = 0
    for name, longs in sorted(cli_flags().items()):
        for flag in longs:
            checked += 1
            if flag not in text:
                failures.append(
                    f"docs/api.md: flag {flag!r} of subcommand {name!r} "
                    f"undocumented (expected the literal text '{flag}')")
            elif verbose:
                print(f"ok   docs/api.md: {name} {flag}")
    print(f"cli-flags: {checked} long options checked against "
          f"docs/api.md, {len(failures)} undocumented")
    return failures


def check_cli(verbose: bool = False) -> list[str]:
    """Every CLI subcommand must be documented in docs/api.md."""
    api = os.path.join(REPO_ROOT, "docs", "api.md")
    with open(api) as fh:
        text = fh.read()
    failures = []
    names = cli_subcommands()
    for name in names:
        needle = f"python -m repro {name}"
        if needle not in text:
            failures.append(
                f"docs/api.md: subcommand {name!r} undocumented "
                f"(expected the literal text '{needle}')")
        elif verbose:
            print(f"ok   docs/api.md: {needle}")
    print(f"cli: {len(names)} subcommands checked against docs/api.md, "
          f"{len(failures)} undocumented")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--links", action="store_true",
                        help="check intra-repo markdown links")
    parser.add_argument("--examples", action="store_true",
                        help="run examples/*.py with --smoke")
    parser.add_argument("--cli", action="store_true",
                        help="check CLI subcommand coverage in docs/api.md")
    parser.add_argument("--cli-flags", action="store_true",
                        dest="cli_flags",
                        help="check CLI long-option coverage in docs/api.md")
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)
    if not (args.links or args.examples or args.cli or args.cli_flags):
        args.links = args.cli = args.cli_flags = True  # default checks

    failures = []
    if args.links:
        failures += check_links(args.verbose)
    if args.cli:
        failures += check_cli(args.verbose)
    if args.cli_flags:
        failures += check_cli_flags(args.verbose)
    if args.examples:
        failures += check_examples(args.verbose)
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
