#!/usr/bin/env python
"""Run the repo's own AST lint (``python -m repro lint``) from anywhere.

Thin launcher so CI recipes and editors can call one script without
setting ``PYTHONPATH``; all rules, waivers and the exit contract live in
:mod:`repro.analysis.lint`.

Run:  python tools/run_lint.py [paths...]
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.analysis.lint import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
