#!/usr/bin/env python
"""Standalone chaos-campaign entry point.

Thin wrapper over ``python -m repro chaos`` for environments where the
package is not on ``PYTHONPATH`` (CI scripts, cron soak jobs): it puts
``src/`` on the path itself and forwards its arguments to the CLI's
``chaos`` subcommand.

Run:  python tools/run_chaos.py [--profile heavy] [--seeds 1:11] ...

Exit status: 0 when every trial survives (completes bit-correct or
fails with a typed fault/watchdog/deadlock error), 1 when any trial
violates the hardening contract (wrong results or an unclassified
exception).
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def main(argv=None) -> int:
    from repro.cli import main as cli_main

    args = list(sys.argv[1:] if argv is None else argv)
    return cli_main(["chaos", *args])


if __name__ == "__main__":
    sys.exit(main())
