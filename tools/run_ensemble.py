#!/usr/bin/env python
"""Standalone ensemble-verification entry point (CI smoke gate).

Thin wrapper over ``python -m repro ensemble`` that puts ``src/`` on the
path itself, plus a ``--smoke`` mode for CI: validate the committed
``benchmarks/results/ensemble_summary.json`` (schema version, feature
set, finite numbers), score the held-out base seed through the fast
serial engine (must PASS), and score a deterministically corrupted
serial trajectory (must FAIL).  Everything is seconds-scale and
seed-pinned — no flaky statistics in CI.

Run:  python tools/run_ensemble.py --smoke
      python tools/run_ensemble.py summarize --jobs 0
      python tools/run_ensemble.py check --force-corruption --fault-seed 6

Exit status: 0 when the smoke checks (or the forwarded subcommand)
pass, 1 otherwise.
"""

from __future__ import annotations

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def smoke() -> int:
    import numpy as np

    from repro.apps.gcmc.serial import run_gcmc_serial
    from repro.ensemble.features import extract_features
    from repro.ensemble.summary import EnsembleSummary

    summary = EnsembleSummary.load()  # raises on schema/feature mismatch
    for name, arr in (("mean", summary.mean), ("std", summary.std),
                      ("components", summary.components),
                      ("pc_std", summary.pc_std)):
        if not np.all(np.isfinite(arr)):
            print(f"FAIL committed summary has non-finite {name}",
                  file=sys.stderr)
            return 1
    print(f"summary ok: {summary.meta['members']} members, "
          f"{summary.n_components} PCs")

    cfg = summary.config()
    cycles = int(summary.meta["cycles"])
    cores = int(summary.meta["cores"])
    block = int(summary.meta["block_size"])

    held_out = run_gcmc_serial(cfg, cycles, nranks=cores)
    check = summary.check(extract_features(held_out, block),
                          label="held-out base seed (serial)")
    print(check.table().splitlines()[0])
    if not check.passed:
        print("FAIL the held-out base seed must pass its own envelope",
              file=sys.stderr)
        return 1

    # Wrong physics: truncating the real-space cutoff changes the energy
    # functional itself — the envelope must reject the trajectory.
    wrecked = run_gcmc_serial(cfg.copy(cutoff=cfg.cutoff / 1.5), cycles,
                              nranks=cores)
    check = summary.check(extract_features(wrecked, block),
                          label="wrong-physics run (serial)")
    print(check.table().splitlines()[0])
    if check.passed:
        print("FAIL the envelope accepted a wrong-physics run",
              file=sys.stderr)
        return 1
    print("ensemble smoke: all checks passed")
    return 0


def main(argv=None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if args[:1] == ["--smoke"]:
        return smoke()
    from repro.cli import main as cli_main

    return cli_main(["ensemble", *args])


if __name__ == "__main__":
    sys.exit(main())
