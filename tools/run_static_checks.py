#!/usr/bin/env python
"""One-shot static-analysis gate: ruff + mypy + the repo's own AST lint
and schedule verifier.

The external tools are optional (install via ``pip install -e
'.[lint]'``; versions are pinned in ``pyproject.toml``): when a tool is
missing, its check is reported as SKIPPED and does not fail the gate —
containers that only carry the runtime toolchain still get the full
in-repo lint.  ``python -m repro lint`` always runs and always gates.

Exit status: 0 when every executed check passes, 1 otherwise.

Run:  python tools/run_static_checks.py [--verbose]
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC)


def _have(module: str) -> bool:
    try:
        return importlib.util.find_spec(module) is not None
    except (ImportError, ValueError):
        return False


def _run_external(name: str, argv: list[str], verbose: bool) -> str:
    """Run one optional external tool; returns PASS/FAIL/SKIP."""
    if not _have(name):
        print(f"SKIP {name}: not installed "
              f"(pip install -e '.[lint]' to enable)")
        return "SKIP"
    proc = subprocess.run(argv, cwd=REPO_ROOT, capture_output=True,
                          text=True)
    status = "PASS" if proc.returncode == 0 else "FAIL"
    print(f"{status} {name}")
    if verbose or status == "FAIL":
        out = (proc.stdout + proc.stderr).strip()
        if out:
            print(out)
    return status


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--verbose", action="store_true",
                        help="show tool output even on success")
    args = parser.parse_args(argv)

    statuses = [
        _run_external("ruff", [sys.executable, "-m", "ruff", "check",
                               "src/repro"], args.verbose),
        _run_external("mypy", [sys.executable, "-m", "mypy"], args.verbose),
    ]

    from repro.analysis.lint import default_root, lint_paths

    findings = lint_paths([default_root()])
    for finding in findings:
        print(finding)
    status = "PASS" if not findings else "FAIL"
    print(f"{status} repro-lint ({len(findings)} finding(s))")
    statuses.append(status)

    statuses.append(_run_sched_verify())
    statuses.append(_run_race_gate())

    return 1 if "FAIL" in statuses else 0


def _run_sched_verify() -> str:
    """Verify the shipped schedule repertoire and the broken fixtures."""
    from repro.analysis.sched_fixtures import broken_schedules
    from repro.analysis.schedverify import (ScheduleVerifyError,
                                            verify_hier_repertoire,
                                            verify_repertoire,
                                            verify_schedule,
                                            verify_synth_repertoire)

    try:
        checked = verify_repertoire()
    except ScheduleVerifyError as err:
        print(f"FAIL sched-verify (shipped repertoire)\n{err}")
        return "FAIL"
    try:
        checked += verify_synth_repertoire()
    except ScheduleVerifyError as err:
        print(f"FAIL sched-verify (synthesized repertoire)\n{err}")
        return "FAIL"
    try:
        checked += verify_hier_repertoire()
    except ScheduleVerifyError as err:
        print(f"FAIL sched-verify (hierarchical repertoire)\n{err}")
        return "FAIL"
    missed = []
    for name, (sched, rule) in broken_schedules().items():
        rules = {d.rule for d in verify_schedule(sched)}
        if rule not in rules:
            missed.append(f"{name}: expected {rule}, got {sorted(rules)}")
    if missed:
        print("FAIL sched-verify (fixtures not flagged)")
        for line in missed:
            print(f"  {line}")
        return "FAIL"
    print(f"PASS sched-verify ({checked} schedules verified, "
          f"{len(broken_schedules())} fixtures flagged)")
    return "PASS"


def _run_race_gate() -> str:
    """Bounded race-detection smoke: every known-racy fixture must be
    flagged with its documented rule, and a small clean subset of the
    collective repertoire must produce zero candidates.  The full clean
    gate (all kinds x stacks x cores + synthesized winners, with the
    interleaving explorer) runs as ``python -m repro race --gate``."""
    from repro.analysis.fixtures import RACE_FIXTURES, run_race_fixture
    from repro.analysis.races import collective_scenario, run_detected

    missed = []
    for fixture in RACE_FIXTURES:
        rules = {d.rule for d in run_race_fixture(fixture).diagnostics}
        if not set(fixture.rules) <= rules:
            missed.append(f"{fixture.name}: expected {fixture.rules}, "
                          f"got {sorted(rules)}")
    if missed:
        print("FAIL race-gate (fixtures not flagged)")
        for line in missed:
            print(f"  {line}")
        return "FAIL"
    dirty = []
    for stack in ("blocking", "lightweight_balanced"):
        scenario = collective_scenario("allreduce", stack, 4, 96)
        detector, failure = run_detected(scenario)
        if failure is not None or detector.total_findings:
            dirty.append(f"{scenario.name}: failure={failure}, "
                         f"{detector.total_findings} candidate(s)")
    if dirty:
        print("FAIL race-gate (clean subset has candidates)")
        for line in dirty:
            print(f"  {line}")
        return "FAIL"
    print(f"PASS race-gate ({len(RACE_FIXTURES)} fixtures flagged, "
          "clean smoke subset)")
    return "PASS"


if __name__ == "__main__":
    sys.exit(main())
