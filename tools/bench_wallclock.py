#!/usr/bin/env python
"""Wall-clock regression harness entry point.

Measures simulator events/sec and the wall-clock of a Fig.-9-style sweep
run cold-sequential, cold-parallel and warm-from-cache, then writes the
record to ``BENCH_wallclock.json`` (the repo's performance trajectory —
compare against the committed baseline on the same machine to catch
wall-clock regressions).

Thin wrapper over :mod:`repro.bench.wallclock` for environments where the
package is not on ``PYTHONPATH`` (CI scripts): it puts ``src/`` on the
path itself.  ``python -m repro bench --smoke`` is the same measurement
through the CLI.

Run:  python tools/bench_wallclock.py [--full] [--jobs N] [--out PATH]

Exit status: 0 when the three execution paths returned bit-identical
latencies, 1 otherwise.
"""

from __future__ import annotations

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))


def main(argv=None) -> int:
    from repro.bench.wallclock import (
        collect_baseline,
        format_baseline,
        write_baseline,
    )

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="full-resolution sweep (minutes) instead of "
                             "the seconds-scale smoke grid")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker count for the cold-parallel "
                             "leg (default: min(4, CPUs))")
    parser.add_argument("--cores", type=int, default=None,
                        help="ranks per point (default 48)")
    parser.add_argument("--out", default=os.path.join(REPO_ROOT,
                                                      "BENCH_wallclock.json"),
                        help="output path (default BENCH_wallclock.json "
                             "at the repo root)")
    args = parser.parse_args(argv)

    data = collect_baseline(smoke=not args.full, jobs=args.jobs,
                            cores=args.cores)
    write_baseline(args.out, data)
    print(format_baseline(data))
    print(f"wrote {args.out}")
    return 0 if all(s["bit_identical"] for s in data["sweeps"]) else 1


if __name__ == "__main__":
    sys.exit(main())
