#!/usr/bin/env python
"""The paper's application workload: GCMC thermodynamics on the SCC.

Runs the Grand Canonical Monte Carlo fluid simulation (Section V-B /
Algorithms 1-2) on the simulated chip under two communication stacks and
shows what the paper's Fig. 10 shows: identical physics, very different
runtimes — plus the profiling observation that motivated the whole paper
(a large share of core time sits in flag waits under the blocking stack).

Run:  python examples/gcmc_thermodynamics.py [--smoke] [cycles]
"""

import argparse

from repro.apps.gcmc import GCMCConfig, run_gcmc, run_gcmc_serial
from repro.core import make_communicator
from repro.hw import Machine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("cycles", nargs="?", type=int, default=None,
                        help="MC cycles to run (default 4, smoke 1)")
    parser.add_argument("--smoke", action="store_true",
                        help="fewer particles/cycles — a seconds-scale run")
    args = parser.parse_args()
    cycles = args.cycles if args.cycles is not None else (1 if args.smoke
                                                          else 4)
    if args.smoke:
        cfg = GCMCConfig(initial_particles=48, capacity=96, box=6.0)
    else:
        cfg = GCMCConfig(initial_particles=96, capacity=192, box=7.0)

    print(f"GCMC: {cfg.initial_particles} LJ+charge particles, "
          f"{cfg.n_kvectors} Fourier coefficients "
          f"({2 * cfg.n_kvectors} doubles per Allreduce), "
          f"{cycles} MC cycles, 48 cores\n")

    results = {}
    for stack in ("blocking", "mpb"):
        machine = Machine()
        comm = make_communicator(machine, stack)
        results[stack] = run_gcmc(machine, comm, cfg, cycles)

    serial = run_gcmc_serial(cfg, cycles, nranks=48)

    blocking, optimized = results["blocking"], results["mpb"]
    assert abs(blocking.final_energy - optimized.final_energy) < 1e-6
    assert abs(blocking.final_energy - serial.final_energy) < 1e-6

    obs = optimized.observables
    print(f"final energy      : {optimized.final_energy:12.4f} "
          "(identical on both stacks and the serial reference)")
    print(f"final particles   : {optimized.final_particles}")
    print(f"mean energy       : {obs.mean_energy:12.4f}")
    print(f"mean particles    : {obs.mean_particles:8.1f}")
    print(f"acceptance ratio  : {obs.acceptance_ratio:8.2f}")
    print()
    print(f"{'stack':<12}{'simulated runtime':>20}{'wait fraction':>15}")
    for stack, res in results.items():
        print(f"{stack:<12}{res.elapsed_us / 1000:>17.1f} ms"
              f"{res.wait_fraction():>15.2f}")
    speedup = blocking.elapsed_us / optimized.elapsed_us
    print(f"\nspeedup blocking -> mpb: {speedup:.2f}x "
          "(paper Fig. 10: >1.40x with all optimizations)")


if __name__ == "__main__":
    main()
