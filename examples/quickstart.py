#!/usr/bin/env python
"""Quickstart: run one Allreduce on the simulated SCC.

This is the smallest end-to-end use of the library:

1. build a simulated 48-core SCC (`Machine`),
2. pick a communication stack (here the paper's fully optimized one),
3. write an SPMD program — a generator that every simulated core runs —
   and launch it with `run_spmd`,
4. read back results (real data, verified against NumPy) and the
   simulated latency.

Run:  python examples/quickstart.py [--smoke]
"""

import argparse

import numpy as np

from repro.core import make_communicator
from repro.hw import Machine


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny size for a seconds-scale run")
    args = parser.parse_args()

    machine = Machine()  # the standard SCC: 48 cores, 6x4 mesh, 8 KB MPBs
    comm = make_communicator(machine, "lightweight_balanced")

    # Each rank contributes a 552-double vector — the size the paper's
    # thermodynamics application reduces on every Monte Carlo move.
    n = 64 if args.smoke else 552
    rng = np.random.default_rng(42)
    inputs = [rng.normal(size=n) for _ in range(machine.num_cores)]

    def program(env):
        result = yield from comm.allreduce(env, inputs[env.rank])
        return result

    launch = machine.run_spmd(program)

    expected = np.sum(inputs, axis=0)
    assert all(np.allclose(v, expected) for v in launch.values)

    print(f"Allreduce of {n} doubles on {machine.num_cores} cores")
    print(f"stack            : {comm.name}")
    print(f"simulated latency: {launch.elapsed_us:.1f} us")
    print(f"result check     : OK (matches NumPy ground truth)")
    print()
    print("Per-core time breakdown (rank 0):")
    account = launch.accounts[0]
    total = account.total()
    for state, ps in sorted(account.states.items()):
        print(f"  {state:<14s} {ps / 1e6:8.1f} us  ({100 * ps / total:4.1f}%)")


if __name__ == "__main__":
    main()
