#!/usr/bin/env python
"""Build a custom protocol from the gory RCCE interface.

The paper's optimization D exists because the "non-gory" RCCE interface
hides the MPBs behind send/recv; the gory interface (RCCE_malloc,
RCCE_put/get, RCCE_flag_*) lets a protocol author place data in MPB SRAM
directly.  This example hand-rolls a double-buffered neighbour pipeline —
a miniature of the paper's Fig. 8 — and compares it with the equivalent
send/recv loop.

Run:  python examples/gory_protocol.py [--smoke]
"""

import argparse

import numpy as np

from repro.core import make_communicator
from repro.hw import Machine, SCCConfig
from repro.rcce import GoryRCCE


ROUNDS = 12
BLOCK = 32  # doubles per round


def gory_pipeline(cores: int = 8) -> float:
    """Each round, every core writes a block into its right neighbour's
    MPB and reads the block its left neighbour placed in its own —
    double-buffered so production of round r+1 overlaps consumption of
    round r."""
    machine = Machine(SCCConfig(mesh_cols=cores // 2, mesh_rows=1))
    gory = GoryRCCE(machine)
    bufs = [gory.malloc(BLOCK * 8) for _ in range(2)]      # double buffer
    full = [gory.flag_alloc() for _ in range(2)]
    free = [gory.flag_alloc() for _ in range(2)]

    def program(env):
        p = env.size
        right = (env.rank + 1) % p
        acc = 0.0
        for r in range(ROUNDS):
            h = r % 2
            data = np.full(BLOCK, float(env.rank + r))
            if r >= 2:  # wait until the right neighbour freed this half
                yield from gory.wait_until(env, free[h], True)
                yield from gory.flag_write(env, free[h], False, env.rank)
            yield from gory.put(env, bufs[h], data, target_rank=right)
            yield from gory.flag_write(env, full[h], True, right)
            # Consume the block the left neighbour put into *my* MPB.
            yield from gory.wait_until(env, full[h], True)
            yield from gory.flag_write(env, full[h], False, env.rank)
            raw = yield from gory.get(env, bufs[h], BLOCK * 8,
                                      source_rank=env.rank)
            acc += raw.view(np.float64).sum()
            left = (env.rank - 1) % p
            yield from gory.flag_write(env, free[h], True, left)
        return acc

    result = machine.run_spmd(program)
    expected = sum(BLOCK * (((rank - 1) % cores) + r)
                   for rank in range(cores) for r in range(ROUNDS))
    assert abs(sum(result.values) - expected) < 1e-6
    return result.elapsed_us


def sendrecv_pipeline(cores: int = 8) -> float:
    """The same traffic through the non-gory layer."""
    machine = Machine(SCCConfig(mesh_cols=cores // 2, mesh_rows=1))
    comm = make_communicator(machine, "lightweight")

    def program(env):
        p = env.size
        right = (env.rank + 1) % p
        left = (env.rank - 1) % p
        acc = 0.0
        out = np.empty(BLOCK)
        for r in range(ROUNDS):
            data = np.full(BLOCK, float(env.rank + r))
            sreq = yield from comm.p2p.isend(env, data, right)
            rreq = yield from comm.p2p.irecv(env, out, left)
            yield from comm.p2p.wait_all(env, [sreq, rreq])
            acc += out.sum()
        return acc

    result = machine.run_spmd(program)
    return result.elapsed_us


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fewer pipeline rounds")
    args = parser.parse_args()
    global ROUNDS
    if args.smoke:
        ROUNDS = 4
    t_gory = gory_pipeline()
    t_nb = sendrecv_pipeline()
    print(f"{ROUNDS} neighbour-pipeline rounds of {BLOCK} doubles, 8 cores")
    print(f"  gory double-buffered MPB protocol : {t_gory:8.1f} us")
    print(f"  lightweight isend/irecv           : {t_nb:8.1f} us")
    print(f"  hand-rolled advantage             : {t_nb / t_gory:8.2f}x")
    print()
    print("This is the style of win the paper's MPB-direct Allreduce")
    print("(optimization D) generalizes — limited on real silicon by the")
    print("local-MPB arbiter erratum.")


if __name__ == "__main__":
    main()
