#!/usr/bin/env python
"""The observability API, programmatically: profile a collective end to end.

The runnable companion to docs/observability.md — does what
``python -m repro profile`` does, but through the Python API, and then
digs one level deeper than the CLI: per-round span attribution and the
mesh-link hot spots.

1. `profile_collective` runs one collective under an enabled tracer and
   returns a `CollectiveProfile`: the raw trace records, the reassembled
   span tree, the per-core `TimeAccount`s, and the machine.
2. The wait-profile table (busy/wait % per core) and the phase table
   (exclusive time per sync/copy/reduce/... span) print the paper's
   Section-IV story: the blocking stack waits, the optimized stack works.
3. `prof.write(outdir)` exports the Chrome trace JSON (open in
   chrome://tracing or https://ui.perfetto.dev) and the metrics files.

Run:  python examples/profile_collective.py [--smoke] [--out DIR]
"""

import argparse

from repro.obs import round_times
from repro.obs.profile import profile_collective


def busiest_links(prof, top: int = 3):
    """The mesh links carrying the most bytes, from the metrics export."""
    links = prof.metrics()["mesh_links"]
    return sorted(links, key=lambda l: -l["bytes"])[:top]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for a seconds-scale run")
    parser.add_argument("--out", default=None,
                        help="also write trace + metrics files here")
    args = parser.parse_args()
    cores, size = (8, 256) if args.smoke else (48, 552)

    profiles = {}
    for stack in ("blocking", "mpb"):
        prof = profile_collective("allreduce", stack, size, cores=cores)
        profiles[stack] = prof
        print(prof.wait_profile_table(max_rows=4))
        print()
        print(prof.phase_table())
        print()

        rounds = round_times(prof.spans)
        if rounds:
            slowest = max(rounds, key=lambda r: sum(rounds[r].values()))
            ps = sum(rounds[slowest].values())
            print(f"slowest round: #{slowest} "
                  f"({ps / 1e6:.1f} us summed over cores, "
                  f"{len(rounds)} rounds total)")
        for link in busiest_links(prof):
            print(f"hot link {tuple(link['from'])} -> {tuple(link['to'])}: "
                  f"{link['bytes']} B in {link['messages']} messages")
        print()

        if args.out:
            for path in prof.write(args.out).values():
                print(f"wrote {path}")
            print()

    speedup = (profiles["blocking"].elapsed_us
               / profiles["mpb"].elapsed_us)
    print(f"blocking -> mpb: {speedup:.2f}x, and the wait share above "
          "shows why — synchronization time became copy/reduce time.")


if __name__ == "__main__":
    main()
