#!/usr/bin/env python
"""Profile a collective: traces, timelines, per-core activity bars.

Demonstrates the observability features: run one Allreduce under the
blocking and the optimized stack with tracing enabled, then render

* an ASCII Gantt chart of every core's send/recv spans (the barrier-like
  phase structure of the blocking odd-even ring is directly visible), and
* stacked per-core activity bars (compute / copy / overhead / waits) —
  the simulator's version of the paper's profiling runs.

Run:  python examples/profile_timeline.py
"""

import numpy as np

from repro.core import make_communicator
from repro.hw import Machine, SCCConfig
from repro.sim.trace import Tracer
from repro.util.timeline import Timeline, render_accounts_bar


def traced_allreduce(stack: str, cores: int = 8, n: int = 128):
    tracer = Tracer(enabled=True)
    machine = Machine(SCCConfig(mesh_cols=cores // 2, mesh_rows=1),
                      tracer=tracer)
    comm = make_communicator(machine, stack)
    rng = np.random.default_rng(0)
    inputs = [rng.normal(size=n) for _ in range(cores)]

    def program(env):
        yield from comm.allreduce(env, inputs[env.rank])

    result = machine.run_spmd(program)
    return tracer, result


def main() -> None:
    for stack in ("blocking", "lightweight_balanced"):
        tracer, result = traced_allreduce(stack)
        print(f"=== {stack}: Allreduce of 128 doubles on 8 cores "
              f"({result.elapsed_us:.0f} us simulated) ===")
        print(Timeline().feed(tracer.records).render(width=72))
        print()
        print("per-core activity:")
        print(render_accounts_bar(result.accounts, width=60))
        print()


if __name__ == "__main__":
    main()
