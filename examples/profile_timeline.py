#!/usr/bin/env python
"""Profile a collective: traces, timelines, per-core activity bars.

Demonstrates the visual end of the observability layer: run one
Allreduce under the blocking and the optimized stack via
`repro.obs.profile_collective`, then render

* an ASCII Gantt chart of every core's spans (the barrier-like phase
  structure of the blocking odd-even ring is directly visible), and
* stacked per-core activity bars (compute / copy / overhead / waits) —
  the simulator's version of the paper's profiling runs.

For the table/export side of the same profiles (wait-profile tables,
Chrome traces, metrics files) see examples/profile_collective.py and
docs/observability.md.

Run:  python examples/profile_timeline.py [--smoke]
"""

import argparse

from repro.obs.profile import profile_collective
from repro.util.timeline import Timeline, render_accounts_bar


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for a seconds-scale run")
    args = parser.parse_args()
    cores, n = (4, 32) if args.smoke else (8, 128)

    for stack in ("blocking", "lightweight_balanced"):
        prof = profile_collective("allreduce", stack, n, cores=cores)
        print(f"=== {stack}: Allreduce of {n} doubles on {cores} cores "
              f"({prof.elapsed_us:.0f} us simulated) ===")
        print(Timeline().feed(prof.records).render(width=72))
        print()
        print("per-core activity:")
        print(render_accounts_bar(prof.result.accounts, width=60))
        print()


if __name__ == "__main__":
    main()
