#!/usr/bin/env python
"""Explore what-if chips: custom mesh sizes, clock presets, a fixed erratum.

The hardware model is fully parameterized, so the library doubles as a
design-space exploration tool: this example sweeps three hypothetical
SCC variants and reports how the optimized Allreduce responds.

Run:  python examples/custom_chip.py [--smoke]
"""

import argparse

import numpy as np

from repro.core import make_communicator
from repro.hw import Machine, SCCConfig, config_for_preset


def allreduce_latency(config: SCCConfig, stack: str = "mpb",
                      n: int = 552) -> float:
    machine = Machine(config)
    comm = make_communicator(machine, stack)
    rng = np.random.default_rng(7)
    inputs = [rng.normal(size=n) for _ in range(machine.num_cores)]

    def program(env):
        yield from comm.allreduce(env, inputs[env.rank])

    return machine.run_spmd(program).elapsed_us


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small vectors, skip the 96-core what-if")
    args = parser.parse_args()
    n = 96 if args.smoke else 552

    chips = {
        "SCC (standard preset)": SCCConfig(),
        "SCC, erratum fixed": SCCConfig(erratum_enabled=False),
        "SCC @ 800 MHz cores": config_for_preset("800_800_800"),
        "half-SCC (3x4 tiles, 24 cores)": SCCConfig(mesh_cols=3),
    }
    if not args.smoke:
        chips["double-SCC (12x4 tiles, 96 cores)"] = SCCConfig(mesh_cols=12)
    print(f"{'chip':<36}{'cores':>6}{'diameter':>9}"
          f"{f'allreduce({n})':>16}")
    for name, cfg in chips.items():
        machine = Machine(cfg)
        latency = allreduce_latency(cfg, n=n)
        print(f"{name:<36}{cfg.num_cores:>6}"
              f"{machine.topology.max_hops():>7} h"
              f"{latency:>13.1f} us")
    print()
    print("Notes: more cores = more ring rounds (latency grows ~linearly);")
    print("fixing the arbiter erratum speeds up every local MPB access;")
    print("faster cores shrink the software-overhead share the paper's")
    print("lightweight primitives target.")


if __name__ == "__main__":
    main()
