#!/usr/bin/env python
"""Compare the paper's library stacks on every collective operation.

Regenerates a miniature of the paper's Fig. 9 on a custom size grid: one
latency table per collective, with the stacks of the paper's graphs
(RCKMPI, blocking RCCE_comm, iRCCE, lightweight, lightweight+balanced,
and — for Allreduce — the MPB-direct variant), plus the speedup summary
the paper quotes ("roughly between 2 to 3").

Run:  python examples/collective_comparison.py [--smoke] [sizes...]
      python examples/collective_comparison.py 552 574 576
"""

import argparse

from repro.bench.figures import FIG9_PANELS, fig9


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("sizes", nargs="*", type=int,
                        help="vector sizes (doubles)")
    parser.add_argument("--smoke", action="store_true",
                        help="one panel, two sizes — a seconds-scale run")
    args = parser.parse_args()
    sizes = args.sizes or ([552, 576] if args.smoke
                           else [548, 552, 556, 574, 575, 576])
    panels = ["9f"] if args.smoke else sorted(FIG9_PANELS)
    for figure in panels:
        kind, _stacks = FIG9_PANELS[figure]
        print(f"--- Fig. {figure}: {kind} ---")
        result = fig9(figure, sizes=sizes)
        print(result.render())
        print()

    print("Summary (paper Section V-A): every collective speeds up between")
    print("roughly 1.6x and 2.8x on average; Allreduce peaks near the")
    print("standard partition's worst case at 574/575 elements.")


if __name__ == "__main__":
    main()
