#!/usr/bin/env python
"""Compare the paper's library stacks on every collective operation.

Regenerates a miniature of the paper's Fig. 9 on a custom size grid: one
latency table per collective, with the stacks of the paper's graphs
(RCKMPI, blocking RCCE_comm, iRCCE, lightweight, lightweight+balanced,
and — for Allreduce — the MPB-direct variant), plus the speedup summary
the paper quotes ("roughly between 2 to 3").

Run:  python examples/collective_comparison.py [sizes...]
      python examples/collective_comparison.py 552 574 576
"""

import sys

from repro.bench.figures import FIG9_PANELS, fig9


def main() -> None:
    sizes = [int(a) for a in sys.argv[1:]] or [548, 552, 556, 574, 575, 576]
    for figure in sorted(FIG9_PANELS):
        kind, _stacks = FIG9_PANELS[figure]
        print(f"--- Fig. {figure}: {kind} ---")
        result = fig9(figure, sizes=sizes)
        print(result.render())
        print()

    print("Summary (paper Section V-A): every collective speeds up between")
    print("roughly 1.6x and 2.8x on average; Allreduce peaks near the")
    print("standard partition's worst case at 574/575 elements.")


if __name__ == "__main__":
    main()
