"""Grand Canonical Monte Carlo thermodynamics application (paper Section V-B).

The paper's application "employs statistical mechanics, namely the Grand
canonical Monte Carlo (GCMC) technique [14], to sample thermodynamic
properties like the internal energy or pressure of a gas or fluid".  Its
reference [14] is Adams' classic GCMC of a Lennard-Jones fluid; we build
exactly that, extended with point charges so the application has the
Fourier-space (Ewald reciprocal) long-range energy of Algorithm 2 — the
part whose 276 complex coefficients (552 doubles) are summed with
Allreduce after *every* Monte Carlo move and that makes the collective
stack performance-critical (up to 60% of runtime in the long-range energy,
up to 50% of time in ``rcce_wait_until``).

Substitution note (recorded in DESIGN.md): the authors' thermodynamics
code is not public; this monoatomic LJ+charge GCMC reproduces its
computation/communication *pattern* — two LongEn evaluations (Allreduce of
552 doubles) plus two ShortEn evaluations (scalar Allreduce) plus a
position broadcast per MC cycle — with real, verifiable physics.
"""

from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.driver import gcmc_program, run_gcmc
from repro.apps.gcmc.kvectors import build_kvectors
from repro.apps.gcmc.observables import Observables
from repro.apps.gcmc.particles import ParticleSystem
from repro.apps.gcmc.serial import run_gcmc_serial

__all__ = [
    "GCMCConfig",
    "Observables",
    "ParticleSystem",
    "build_kvectors",
    "gcmc_program",
    "run_gcmc",
    "run_gcmc_serial",
]
