"""Serial reference implementation of the GCMC loop.

Runs the identical algorithm and RNG streams as the SPMD driver, but with
plain function calls instead of simulated communication (reductions are
ordered per-rank sums, matching the distributed decomposition).  Used by
the test suite to verify that the distributed run reproduces the same
trajectory and energies, by examples as a quick sanity baseline, and by
the ensemble layer as the fast physics engine for building seed
ensembles.

When a :class:`GCMCOpLog` is passed, the runner additionally records the
exact sequence of collectives the SPMD driver would issue — one
``(kind, element count, max per-rank compute cycles)`` record per
communication step — which is what lets
:mod:`repro.ensemble.engines` price a GCMC run analytically without
touching the discrete-event simulator.  Logging never changes the
physics: the counts it needs (per-rank pair counts, local atom counts)
fall out of the energy evaluation the run does anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.driver import GCMCResult
from repro.apps.gcmc.kvectors import build_kvectors
from repro.apps.gcmc.longrange import local_structure_factor, reciprocal_energy
from repro.apps.gcmc.moves import (
    Action,
    Proposal,
    acceptance_probability,
    choose_action,
    choose_slot,
    propose_insertion,
    propose_translation,
)
from repro.apps.gcmc.observables import Observables
from repro.apps.gcmc.particles import ParticleSystem
from repro.apps.gcmc.shortrange import (
    insertion_energy_local,
    pair_energy_with_set,
    self_energy,
    short_energy_local,
)


@dataclass
class OpRecord:
    """One communication step of a (replayed) GCMC run.

    ``compute_cycles`` is the *maximum* per-rank compute charged between
    the previous collective and this one — the quantity that bounds the
    segment's makespan in a round-synchronous SPMD run.
    """

    kind: str            #: "allreduce" | "bcast" | "barrier"
    nelems: int          #: payload length in doubles (0 for barrier)
    compute_cycles: int  #: max per-rank core cycles preceding the op


class GCMCOpLog:
    """Collects the collective-call sequence of one serial GCMC replay."""

    def __init__(self) -> None:
        self.records: list[OpRecord] = []
        self._pending = 0

    def compute(self, cycles: int) -> None:
        """Charge compute cycles to the current segment (max-per-rank
        amounts; equal-on-every-rank costs are just that maximum)."""
        self._pending += int(cycles)

    def collective(self, kind: str, nelems: int) -> None:
        """Close the current segment with one collective call."""
        self.records.append(OpRecord(kind, int(nelems), self._pending))
        self._pending = 0

    def total_compute_cycles(self) -> int:
        return (sum(r.compute_cycles for r in self.records)
                + self._pending)


def _short_en(system: ParticleSystem, nranks: int, slot=None, pos=None,
              charge=None, log=None) -> float:
    total = 0.0
    max_pairs = 0
    for rank in range(nranks):
        if slot is not None:
            e, pairs = short_energy_local(system, slot, rank, nranks)
        else:
            e, pairs = insertion_energy_local(system, pos, charge, rank,
                                              nranks)
        total += e
        max_pairs = max(max_pairs, pairs)
    if log is not None:
        cfg = system.config
        log.compute(cfg.cycles_energy_base
                    + max_pairs * cfg.cycles_per_pair)
        log.collective("allreduce", 1)
    return total


def _long_en(system: ParticleSystem, kvecs, coeff, nranks: int,
             log=None) -> float:
    f_total = np.zeros(len(kvecs), dtype=np.complex128)
    max_local = 0
    for rank in range(nranks):
        f_local, n_local = local_structure_factor(system, kvecs, rank,
                                                  nranks)
        f_total = f_total + f_local
        max_local = max(max_local, n_local)
    if log is not None:
        cfg = system.config
        log.compute(cfg.cycles_energy_base
                    + max_local * len(kvecs) * cfg.cycles_per_kvec_term)
        log.collective("allreduce", 2 * len(kvecs))
        log.compute(len(kvecs) * cfg.cycles_per_kvec_energy)
    return reciprocal_energy(f_total, coeff, system.config.volume)


def full_energy(system: ParticleSystem, kvecs, coeff, nranks: int,
                log=None) -> float:
    """Total energy of a configuration, computed from scratch."""
    idx = system.active_indices()
    e_short = 0.0
    e_self = 0.0
    max_pairs = 0
    for rank in range(nranks):
        local = system.local_indices(rank, nranks)
        rank_pairs = 0
        for i in local:
            others = idx[idx > i]
            e, n = pair_energy_with_set(system, system.positions[i],
                                        float(system.charges[i]), others)
            e_short += e
            rank_pairs += n
            e_self += self_energy(float(system.charges[i]),
                                  system.config.alpha)
        max_pairs = max(max_pairs, rank_pairs)
    if log is not None:
        cfg = system.config
        log.compute(cfg.cycles_energy_base
                    + max_pairs * cfg.cycles_per_pair)
        log.collective("allreduce", 2)
    return e_short + e_self + _long_en(system, kvecs, coeff, nranks,
                                       log=log)


def run_gcmc_serial(cfg: GCMCConfig, cycles: int, nranks: int = 48,
                    return_system: bool = False, log=None):
    """Run ``cycles`` MC cycles serially, mimicking an ``nranks`` SPMD run.

    Returns a :class:`~repro.apps.gcmc.driver.GCMCResult` (with zero
    simulated time), or ``(result, system)`` when ``return_system=True``.
    ``log`` (a :class:`GCMCOpLog`) records the collective-call sequence
    the SPMD driver would issue, for analytic pricing.
    """
    system = ParticleSystem(cfg)
    kvecs, coeff = build_kvectors(cfg.n_kvectors, cfg.box, cfg.alpha)
    shared_rng = np.random.default_rng(cfg.seed)
    owner_rngs = [
        np.random.default_rng(
            np.random.SeedSequence(entropy=cfg.seed, spawn_key=(rank + 1,)))
        for rank in range(nranks)
    ]
    obs = Observables()
    if log is not None:
        log.collective("barrier", 0)
    en_old = full_energy(system, kvecs, coeff, nranks, log=log)

    for _cycle in range(cycles):
        active = system.active_indices()
        action = choose_action(cfg, shared_rng, len(active))
        n_before = len(active)

        # Algorithm 1 line 5: subtract the moving particle's contributions.
        if action == Action.INSERT:
            slot = system.first_free_slot()
            removed_short = 0.0
            removed_self = 0.0
        else:
            slot = choose_slot(shared_rng, active)
            removed_short = _short_en(system, nranks, slot=slot, log=log)
            removed_self = (self_energy(float(system.charges[slot]),
                                        cfg.alpha)
                            if action == Action.DELETE else 0.0)
        removed_long = _long_en(system, kvecs, coeff, nranks, log=log)
        en_new = en_old - removed_short - removed_self - removed_long

        # Lines 6-7: save config, owner proposes, move applied.
        snap = system.snapshot()
        owner = system.owner_of(slot, nranks)
        owner_rng = owner_rngs[owner]
        if action == Action.TRANSLATE:
            proposal = Proposal(action, slot,
                                propose_translation(
                                    cfg, owner_rng, system.positions[slot]),
                                0.0)
        elif action == Action.INSERT:
            pos, charge = propose_insertion(cfg, owner_rng,
                                            system.net_charge())
            proposal = Proposal(action, slot, pos, charge)
        else:
            proposal = Proposal(action, slot, np.zeros(3), 0.0)
        # Round-trip through the wire format, exactly like the SPMD run.
        proposal = Proposal.unpack(proposal.pack())
        if log is not None:
            log.compute(cfg.cycles_move_base)
            log.collective("bcast", 6)  # the proposal wire

        if proposal.action == Action.TRANSLATE:
            system.move_particle(proposal.slot, proposal.position)
        elif proposal.action == Action.INSERT:
            system.insert_particle(proposal.slot, proposal.position,
                                   proposal.charge)
        else:
            system.delete_particle(proposal.slot)

        # Line 8: add the new contributions.
        if proposal.action == Action.DELETE:
            added_short = 0.0
            added_self = 0.0
        else:
            added_short = _short_en(system, nranks, slot=proposal.slot,
                                    log=log)
            added_self = (self_energy(proposal.charge, cfg.alpha)
                          if proposal.action == Action.INSERT else 0.0)
        added_long = _long_en(system, kvecs, coeff, nranks, log=log)
        en_new = en_new + added_short + added_self + added_long

        # Lines 9-12: accept/reject.
        prob = acceptance_probability(cfg, proposal.action, n_before,
                                      en_new - en_old)
        accepted = shared_rng.random() < prob
        if accepted:
            en_old = en_new
        else:
            system.restore(snap)
        if log is not None:
            log.collective("bcast", 2)  # the BroadcastUpdate of line 13
        obs.record(en_old, system.n_active, proposal.action.name, accepted)

    result = GCMCResult(
        observables=obs,
        final_energy=en_old,
        final_particles=system.n_active,
        cycles=cycles,
    )
    if return_system:
        return result, system
    return result
