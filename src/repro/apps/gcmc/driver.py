"""The GCMC main loop on the simulated SCC (Algorithm 1).

Every rank runs :func:`gcmc_program`; communication happens at exactly the
points the paper profiles:

* ``ShortEn(particle)`` — each rank computes its local pair share, a
  *scalar* Allreduce sums it (one value per core, Section V-B);
* ``LongEn()`` — each rank recomputes its local structure factor, an
  Allreduce of ``2 * n_kvectors`` doubles (552 for the paper's 276
  coefficients) sums the Fourier coefficients; called **twice per cycle**
  (Algorithm 1 lines 5 and 8, Algorithm 2 line 14);
* the move proposal broadcast (owner → all) and the ``BroadcastUpdate``
  of line 13.

Simulated compute time is charged from the actual arithmetic workload
(local pair counts, local atoms x k-vectors) via the cost constants in
:class:`~repro.apps.gcmc.config.GCMCConfig`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator, Optional

import numpy as np

from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.kvectors import build_kvectors
from repro.apps.gcmc.longrange import (
    local_structure_factor,
    pack_complex,
    reciprocal_energy,
    unpack_complex,
)
from repro.apps.gcmc.moves import (
    Action,
    Proposal,
    acceptance_probability,
    choose_action,
    choose_slot,
    propose_insertion,
    propose_translation,
)
from repro.apps.gcmc.observables import Observables
from repro.apps.gcmc.particles import ParticleSystem
from repro.apps.gcmc.shortrange import (
    insertion_energy_local,
    pair_energy_with_set,
    self_energy,
)
from repro.core.comm import Communicator
from repro.hw.machine import CoreEnv, Machine
from repro.sim.clock import ps_to_us


@dataclass
class GCMCResult:
    """Per-run outcome (identical physics on every rank)."""

    observables: Observables
    final_energy: float
    final_particles: int
    cycles: int
    elapsed_ps: int = 0
    accounts: list = field(default_factory=list)

    @property
    def elapsed_us(self) -> float:
        return ps_to_us(self.elapsed_ps)

    def wait_fraction(self) -> float:
        """Fraction of total core time spent waiting on flags/requests —
        the profile quantity behind 'up to 50% in rcce_wait_until'."""
        total = sum(a.total() for a in self.accounts)
        if total == 0:
            return 0.0
        waits = sum(a.get("wait_flag") + a.get("wait_request")
                    for a in self.accounts)
        return waits / total


# --------------------------------------------------------------------- #
# Energy evaluations (SPMD generators)
# --------------------------------------------------------------------- #

def _short_en(env: CoreEnv, comm: Communicator, cfg: GCMCConfig,
              system: ParticleSystem, slot: Optional[int] = None,
              pos: Optional[np.ndarray] = None,
              charge: Optional[float] = None,
              algo: Optional[str] = None) -> Generator:
    """Distributed ShortEn: of an existing particle (``slot``) or of a
    virtual insertion at ``pos``/``charge``."""
    if slot is not None:
        from repro.apps.gcmc.shortrange import short_energy_local
        e_local, pairs = short_energy_local(system, slot, env.rank, env.size)
    else:
        e_local, pairs = insertion_energy_local(system, pos, charge,
                                                env.rank, env.size)
    yield from env.compute(cfg.cycles_energy_base
                           + pairs * cfg.cycles_per_pair)
    total = yield from comm.allreduce(env, np.array([e_local]), algo=algo)
    return float(total[0])


def _long_en(env: CoreEnv, comm: Communicator, cfg: GCMCConfig,
             system: ParticleSystem, kvecs: np.ndarray,
             coeff: np.ndarray, algo: Optional[str] = None) -> Generator:
    """Distributed LongEn (Algorithm 2): local structure factor, 552-double
    Allreduce, then the |F|^2 energy sum."""
    f_local, n_local = local_structure_factor(system, kvecs, env.rank,
                                              env.size)
    yield from env.compute(
        cfg.cycles_energy_base
        + n_local * len(kvecs) * cfg.cycles_per_kvec_term)
    packed = pack_complex(f_local)
    total = yield from comm.allreduce(env, packed, algo=algo)
    f_total = unpack_complex(total)
    yield from env.compute(len(kvecs) * cfg.cycles_per_kvec_energy)
    return reciprocal_energy(f_total, coeff, cfg.volume)


def _initial_energy(env: CoreEnv, comm: Communicator, cfg: GCMCConfig,
                    system: ParticleSystem, kvecs: np.ndarray,
                    coeff: np.ndarray,
                    algo: Optional[str] = None) -> Generator:
    """Distributed full energy: short pairs + self terms + reciprocal."""
    idx = system.active_indices()
    local = system.local_indices(env.rank, env.size)
    e_short = 0.0
    pairs = 0
    for i in local:
        others = idx[idx > i]
        e, n = pair_energy_with_set(system, system.positions[i],
                                    float(system.charges[i]), others)
        e_short += e
        pairs += n
    e_self = sum(self_energy(float(system.charges[i]), cfg.alpha)
                 for i in local)
    yield from env.compute(cfg.cycles_energy_base
                           + pairs * cfg.cycles_per_pair)
    partial = np.array([e_short, e_self])
    total = yield from comm.allreduce(env, partial, algo=algo)
    e_long = yield from _long_en(env, comm, cfg, system, kvecs, coeff,
                                 algo=algo)
    return float(total[0] + total[1]) + e_long


# --------------------------------------------------------------------- #
# One MC cycle (Algorithm 1 body)
# --------------------------------------------------------------------- #

def _gcmc_cycle(env: CoreEnv, comm: Communicator, cfg: GCMCConfig,
                system: ParticleSystem, kvecs: np.ndarray,
                coeff: np.ndarray, shared_rng: np.random.Generator,
                owner_rng: np.random.Generator, en_old: float,
                obs: Observables,
                algo: Optional[str] = None) -> Generator:
    """Returns the new ``en_old`` after accept/reject."""
    p = env.size
    active = system.active_indices()
    action = choose_action(cfg, shared_rng, len(active))
    n_before = len(active)

    # --- line 5: subtract the old contributions ------------------------
    if action == Action.INSERT:
        slot = system.first_free_slot()
        removed_short = 0.0
        removed_self = 0.0
    else:
        slot = choose_slot(shared_rng, active)
        removed_short = yield from _short_en(env, comm, cfg, system, slot,
                                             algo=algo)
        removed_self = (self_energy(float(system.charges[slot]), cfg.alpha)
                        if action == Action.DELETE else 0.0)
    removed_long = yield from _long_en(env, comm, cfg, system, kvecs, coeff,
                                       algo=algo)
    en_new = en_old - removed_short - removed_self - removed_long

    # --- lines 6-7: save config, do the move (owner proposes) ----------
    snap = system.snapshot()
    owner = system.owner_of(slot, p)
    wire = np.empty(6)
    if env.rank == owner:
        if action == Action.TRANSLATE:
            new_pos = propose_translation(cfg, owner_rng,
                                          system.positions[slot])
            proposal = Proposal(action, slot, new_pos, 0.0)
        elif action == Action.INSERT:
            pos, charge = propose_insertion(cfg, owner_rng,
                                            system.net_charge())
            proposal = Proposal(action, slot, pos, charge)
        else:
            proposal = Proposal(action, slot, np.zeros(3), 0.0)
        wire[:] = proposal.pack()
    yield from env.compute(cfg.cycles_move_base)
    yield from comm.bcast(env, wire, owner)
    proposal = Proposal.unpack(wire)

    if proposal.action == Action.TRANSLATE:
        system.move_particle(proposal.slot, proposal.position)
    elif proposal.action == Action.INSERT:
        system.insert_particle(proposal.slot, proposal.position,
                               proposal.charge)
    else:
        system.delete_particle(proposal.slot)

    # --- line 8: add the new contributions -----------------------------
    if proposal.action == Action.DELETE:
        added_short = 0.0
        added_self = 0.0
    else:
        added_short = yield from _short_en(env, comm, cfg, system,
                                           proposal.slot, algo=algo)
        added_self = (self_energy(proposal.charge, cfg.alpha)
                      if proposal.action == Action.INSERT else 0.0)
    added_long = yield from _long_en(env, comm, cfg, system, kvecs, coeff,
                                     algo=algo)
    en_new = en_new + added_short + added_self + added_long

    # --- lines 9-12: accept or reject (shared stream) ------------------
    delta_e = en_new - en_old
    prob = acceptance_probability(cfg, proposal.action, n_before, delta_e)
    accepted = shared_rng.random() < prob
    if accepted:
        en_result = en_new
    else:
        system.restore(snap)
        en_result = en_old

    # --- line 13: BroadcastUpdate(particle, en_new) ---------------------
    update = np.empty(2)
    if env.rank == owner:
        update[:] = (1.0 if accepted else 0.0, en_result)
    yield from comm.bcast(env, update, owner)
    if bool(update[0]) != accepted or not math.isclose(
            update[1], en_result, rel_tol=1e-9, abs_tol=1e-12):
        raise RuntimeError(
            f"rank {env.rank} diverged from owner {owner}: "
            f"update={update}, local=({accepted}, {en_result})")

    obs.record(en_result, system.n_active, proposal.action.name, accepted)
    return en_result


# --------------------------------------------------------------------- #
# The SPMD program and the launcher
# --------------------------------------------------------------------- #

def gcmc_program(env: CoreEnv, comm: Communicator, cfg: GCMCConfig,
                 cycles: int, algo: Optional[str] = None) -> Generator:
    """Algorithm 1, run by every rank.

    ``algo`` forces one Allreduce algorithm for every energy reduction
    (``rsag``, ``recursive_doubling``, ``sched:<builder>``, ...) instead
    of the stack's size-based selection — the hook the ensemble
    verification layer uses to put *non-default* collective algorithms
    under the statistical correctness gate.
    """
    system = ParticleSystem(cfg)
    kvecs, coeff = build_kvectors(cfg.n_kvectors, cfg.box, cfg.alpha)
    shared_rng = np.random.default_rng(cfg.seed)
    owner_rng = np.random.default_rng(
        np.random.SeedSequence(entropy=cfg.seed, spawn_key=(env.rank + 1,)))
    obs = Observables()
    yield from comm.barrier(env)
    en_old = yield from _initial_energy(env, comm, cfg, system, kvecs,
                                        coeff, algo=algo)
    for _cycle in range(cycles):
        en_old = yield from _gcmc_cycle(env, comm, cfg, system, kvecs,
                                        coeff, shared_rng, owner_rng,
                                        en_old, obs, algo=algo)
    return GCMCResult(
        observables=obs,
        final_energy=en_old,
        final_particles=system.n_active,
        cycles=cycles,
    )


def run_gcmc(machine: Machine, comm: Communicator, cfg: GCMCConfig,
             cycles: int, *, ranks: Optional[list[int]] = None,
             allreduce_algo: Optional[str] = None,
             watchdog_ps: Optional[int] = None) -> GCMCResult:
    """Launch the application on the machine; returns rank 0's result with
    timing attached.  Raises if ranks disagree on the physics.

    ``ranks`` restricts the job to a subset of cores (default: the whole
    chip), ``allreduce_algo`` forces one Allreduce algorithm for every
    energy reduction, and ``watchdog_ps`` bounds the virtual time (see
    :meth:`~repro.hw.machine.Machine.run_spmd`).
    """
    spmd = machine.run_spmd(gcmc_program, comm, cfg, cycles, allreduce_algo,
                            ranks=ranks, watchdog_ps=watchdog_ps)
    results: list[GCMCResult] = spmd.values
    head = results[0]
    for rank, other in enumerate(results[1:], start=1):
        if (other.final_particles != head.final_particles
                or not math.isclose(other.final_energy, head.final_energy,
                                    rel_tol=1e-9, abs_tol=1e-9)):
            raise RuntimeError(
                f"rank {rank} diverged: E={other.final_energy} "
                f"N={other.final_particles} vs rank 0 "
                f"E={head.final_energy} N={head.final_particles}")
    head.elapsed_ps = spmd.elapsed_ps
    head.accounts = spmd.accounts
    return head
