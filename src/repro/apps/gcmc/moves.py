"""GCMC trial moves and acceptance rules.

Move selection, the acceptance random number and the affected particle are
drawn from a *shared* RNG stream (identically replicated on all ranks, as
SPMD codes do), so every rank takes the same accept/reject branch without
extra communication.  The proposed coordinates, however, are drawn from
the owner rank's *private* stream and distributed via broadcast — the
``BroadcastUpdate`` of Algorithm 1 — so the communication the paper
measures is genuinely load-bearing.

Acceptance probabilities (Adams [14], reduced units, thermal wavelength
folded into ``mu``):

* translate:  ``min(1, exp(-beta dE))``
* insert:     ``min(1, V / (N+1) * exp(beta mu - beta dE))``
* delete:     ``min(1, N / V * exp(-beta mu - beta dE))``
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from repro.apps.gcmc.config import GCMCConfig


class Action(IntEnum):
    TRANSLATE = 0
    INSERT = 1
    DELETE = 2


@dataclass(frozen=True)
class Proposal:
    """A fully specified trial move (same on every rank after broadcast)."""

    action: Action
    slot: int
    position: np.ndarray   # new/inserted position (undefined for DELETE)
    charge: float          # inserted charge (undefined unless INSERT)

    def pack(self) -> np.ndarray:
        """Fixed-size wire format for the proposal broadcast."""
        return np.array([
            float(self.action), float(self.slot),
            self.position[0], self.position[1], self.position[2],
            self.charge,
        ])

    @classmethod
    def unpack(cls, wire: np.ndarray) -> "Proposal":
        return cls(Action(int(wire[0])), int(wire[1]),
                   wire[2:5].copy(), float(wire[5]))


def choose_action(config: GCMCConfig, shared_rng: np.random.Generator,
                  n_active: int) -> Action:
    """Draw the move type (shared stream; all ranks agree)."""
    u = shared_rng.random()
    if u < config.p_insert:
        return Action.INSERT
    if u < config.p_insert + config.p_delete and n_active > 1:
        return Action.DELETE
    return Action.TRANSLATE


def choose_slot(shared_rng: np.random.Generator,
                active_slots: np.ndarray) -> int:
    """Pick the affected particle (shared stream)."""
    return int(active_slots[shared_rng.integers(len(active_slots))])


def propose_translation(config: GCMCConfig, owner_rng: np.random.Generator,
                        old_pos: np.ndarray) -> np.ndarray:
    step = owner_rng.uniform(-config.max_displacement,
                             config.max_displacement, size=3)
    return (old_pos + step) % config.box


def propose_insertion(config: GCMCConfig, owner_rng: np.random.Generator,
                      net_charge: float) -> tuple[np.ndarray, float]:
    pos = owner_rng.uniform(0.0, config.box, size=3)
    # Keep the system near neutrality: insert the sign that reduces |Q|.
    charge = -1.0 if net_charge > 0 else 1.0
    return pos, charge


def acceptance_probability(config: GCMCConfig, action: Action,
                           n_before: int, delta_e: float) -> float:
    """The GCMC acceptance probability for a move with energy change
    ``delta_e`` proposed on a system of ``n_before`` particles."""
    beta = config.beta
    v = config.volume
    if action == Action.TRANSLATE:
        arg = -beta * delta_e
    elif action == Action.INSERT:
        arg = beta * config.mu - beta * delta_e + math.log(v / (n_before + 1))
    elif action == Action.DELETE:
        arg = -beta * config.mu - beta * delta_e + math.log(n_before / v)
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown action {action}")
    if arg >= 0:
        return 1.0
    return math.exp(arg)
