"""Short-range (real-space) energy: Lennard-Jones + screened Coulomb.

"Short range energies are computed in real space, allowing an incremental
update of the total energy by subtracting the contribution of the modified
particle before the move and adding its new contribution after the move"
(Section V-B).  The functions here compute *one particle's* interaction
with a rank's local particle set — the per-core share that a scalar
Allreduce sums into ``ShortEn(particle)``.

Energy model (reduced units):

* LJ: ``4 (r^-12 - r^-6)`` cut (not shifted) at ``cutoff``;
* real-space Ewald part: ``q_i q_j erfc(alpha r) / r`` with the same
  cutoff;
* the Ewald self term ``-alpha/sqrt(pi) q^2`` (needed for insert/delete
  energy differences) is exposed separately.

All pair arithmetic is vectorized NumPy (guides: no per-pair Python
loops); the *simulated* cost is charged by the driver via the pair count
these functions return.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erfc

from repro.apps.gcmc.particles import ParticleSystem


def pair_energy_with_set(system: ParticleSystem, pos: np.ndarray,
                         charge: float,
                         others: np.ndarray) -> tuple[float, int]:
    """Energy of a (virtual) particle at ``pos`` with the particles in
    slot array ``others``.  Returns ``(energy, pair_count)``; pair_count
    feeds the simulated compute-cost model."""
    if others.size == 0:
        return 0.0, 0
    delta = system.minimum_image(system.positions[others] - pos)
    r2 = np.einsum("ij,ij->i", delta, delta)
    cutoff2 = system.config.cutoff ** 2
    mask = (r2 < cutoff2) & (r2 > 1e-12)
    if not mask.any():
        return 0.0, int(others.size)
    r2 = r2[mask]
    inv6 = 1.0 / (r2 * r2 * r2)
    lj = np.sum(4.0 * (inv6 * inv6 - inv6))
    r = np.sqrt(r2)
    coul = np.sum(system.charges[others][mask] * charge
                  * erfc(system.config.alpha * r) / r)
    return float(lj + coul), int(others.size)


def short_energy_local(system: ParticleSystem, slot: int, rank: int,
                       nranks: int) -> tuple[float, int]:
    """Rank ``rank``'s contribution to ``ShortEn(particle)``: the energy of
    ``slot`` with this rank's local particles (excluding itself)."""
    local = system.local_indices(rank, nranks)
    local = local[local != slot]
    return pair_energy_with_set(
        system, system.positions[slot], float(system.charges[slot]), local)


def insertion_energy_local(system: ParticleSystem, pos: np.ndarray,
                           charge: float, rank: int,
                           nranks: int) -> tuple[float, int]:
    """Rank's contribution to the energy of inserting a particle at
    ``pos`` (the particle does not exist in the system yet)."""
    local = system.local_indices(rank, nranks)
    return pair_energy_with_set(system, pos, charge, local)


def self_energy(charge: float, alpha: float) -> float:
    """Ewald self-interaction correction for one particle."""
    return -alpha / math.sqrt(math.pi) * charge * charge


def pair_virial_with_set(system: ParticleSystem, pos: np.ndarray,
                         charge: float, others: np.ndarray) -> float:
    """Virial contribution sum_j r_ij * (-dU/dr) of one particle against
    a slot set (LJ + screened-Coulomb terms, same cutoff as the energy)."""
    if others.size == 0:
        return 0.0
    delta = system.minimum_image(system.positions[others] - pos)
    r2 = np.einsum("ij,ij->i", delta, delta)
    cutoff2 = system.config.cutoff ** 2
    mask = (r2 < cutoff2) & (r2 > 1e-12)
    if not mask.any():
        return 0.0
    r2 = r2[mask]
    inv6 = 1.0 / (r2 * r2 * r2)
    # LJ: r * (-dU/dr) = 24 (2 r^-12 - r^-6)
    w_lj = np.sum(24.0 * (2.0 * inv6 * inv6 - inv6))
    r = np.sqrt(r2)
    alpha = system.config.alpha
    qq = system.charges[others][mask] * charge
    # screened Coulomb: r * (-dU/dr) = qq [erfc(ar)/r + 2a/sqrt(pi) e^(-a^2 r^2)]
    w_coul = np.sum(qq * (erfc(alpha * r) / r
                          + (2.0 * alpha / math.sqrt(math.pi))
                          * np.exp(-alpha * alpha * r2)))
    return float(w_lj + w_coul)


def total_virial(system: ParticleSystem) -> float:
    """Full O(N^2) short-range virial of the configuration."""
    idx = system.active_indices()
    total = 0.0
    for pos_i, q_i, i in zip(system.positions[idx], system.charges[idx], idx):
        others = idx[idx > i]
        total += pair_virial_with_set(system, pos_i, float(q_i), others)
    return total


def measure_pressure(system: ParticleSystem) -> float:
    """Virial-route pressure: P = (N*T + W/3) / V (reduced units).

    Uses the short-range (real-space) virial only; the reciprocal-space
    Ewald virial is omitted — for the near-neutral, screened systems the
    application samples it is a small correction (documented
    simplification).
    """
    cfg = system.config
    n = system.n_active
    return (n * cfg.temperature + total_virial(system) / 3.0) / cfg.volume


def total_short_energy(system: ParticleSystem) -> float:
    """Full O(N^2) real-space energy (serial reference / verification)."""
    idx = system.active_indices()
    total = 0.0
    for pos_i, q_i, i in zip(system.positions[idx], system.charges[idx], idx):
        others = idx[idx > i]
        e, _ = pair_energy_with_set(system, pos_i, float(q_i), others)
        total += e
    return total
