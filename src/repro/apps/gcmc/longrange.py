"""Long-range (Fourier-space) energy: the Ewald reciprocal sum.

This is Algorithm 2 of the paper.  Each rank computes the structure-factor
contribution of its local particles,

    F_local[k] = sum_{j local} q_j * exp(i k . r_j),

packs the ``n_kvectors`` complex values as ``2 * n_kvectors`` doubles
("a real and an imaginary part per element", Section IV-C — 276 complex
coefficients become the famous 552-element Allreduce), and the driver sums
them over all ranks with Allreduce.  The energy is then

    E_rec = (1 / (2 V)) * sum_k coeff(k) * |F_total[k]|^2 ,

with ``coeff`` from :mod:`repro.apps.gcmc.kvectors` (half-space folding
included).  "The long range part ... cannot be subjected to an incremental
update.  Instead, a full recalculation considering all atom pairs is
required after a move."
"""

from __future__ import annotations

import numpy as np

from repro.apps.gcmc.particles import ParticleSystem


def local_structure_factor(system: ParticleSystem, kvecs: np.ndarray,
                           rank: int, nranks: int) -> tuple[np.ndarray, int]:
    """(F_local, n_local): this rank's complex structure-factor share."""
    local = system.local_indices(rank, nranks)
    if local.size == 0:
        return np.zeros(len(kvecs), dtype=np.complex128), 0
    phases = kvecs @ system.positions[local].T          # (nk, nlocal)
    f = (np.exp(1j * phases) * system.charges[local]).sum(axis=1)
    return f, int(local.size)


def pack_complex(f: np.ndarray) -> np.ndarray:
    """Complex vector -> interleaved real/imag doubles (552 for 276)."""
    return f.view(np.float64).copy()


def unpack_complex(doubles: np.ndarray) -> np.ndarray:
    if doubles.size % 2:
        raise ValueError("packed complex vector must have even length")
    return doubles.view(np.complex128)


def reciprocal_energy(f_total: np.ndarray, coeff: np.ndarray,
                      volume: float) -> float:
    """Algorithm 2 line 16: ``sum_k coeff(k)/vol * |F_tot[k]|^2`` (the 1/2
    of the Ewald sum is folded into ``coeff`` together with the half-space
    factor 2)."""
    return float(np.sum(coeff * (f_total.real ** 2 + f_total.imag ** 2))
                 / (2.0 * volume))


def total_long_energy(system: ParticleSystem, kvecs: np.ndarray,
                      coeff: np.ndarray) -> float:
    """Serial reference: full reciprocal energy of the configuration."""
    f, _ = local_structure_factor(system, kvecs, 0, 1)
    return reciprocal_energy(f, coeff, system.config.volume)
