"""Particle storage with fixed-capacity slots and rank ownership.

GCMC inserts and deletes particles, so positions live in a fixed-capacity
slot array with an active mask.  Ownership is by slot index modulo the
rank count — "particles are distributed over the SCC's cores so each core
can compute the contribution of its local set of particles in parallel"
(Section V-B).  Every rank keeps a full replica of the configuration
(updated through broadcasts); *ownership* only determines which rank
computes which interaction terms and which rank proposes coordinates.
"""

from __future__ import annotations

import numpy as np

from repro.apps.gcmc.config import GCMCConfig


class ParticleSystem:
    """One rank's replica of the particle configuration."""

    def __init__(self, config: GCMCConfig):
        self.config = config
        cap = config.capacity
        self.positions = np.zeros((cap, 3), dtype=np.float64)
        self.charges = np.zeros(cap, dtype=np.float64)
        self.active = np.zeros(cap, dtype=bool)
        self._init_lattice(config.initial_particles)

    def _init_lattice(self, n: int) -> None:
        """Deterministic initial configuration: a jittered cubic lattice
        with alternating unit charges (net charge ~ 0)."""
        if n == 0:
            return
        per_side = int(np.ceil(n ** (1.0 / 3.0)))
        spacing = self.config.box / per_side
        rng = np.random.default_rng(self.config.seed ^ 0xC0FFEE)
        idx = 0
        for ix in range(per_side):
            for iy in range(per_side):
                for iz in range(per_side):
                    if idx >= n:
                        break
                    base = (np.array([ix, iy, iz], dtype=np.float64) + 0.5)
                    jitter = rng.uniform(-0.05, 0.05, size=3) * spacing
                    self.positions[idx] = base * spacing + jitter
                    self.charges[idx] = 1.0 if idx % 2 == 0 else -1.0
                    self.active[idx] = True
                    idx += 1
        self.positions %= self.config.box

    # -- queries -----------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.config.capacity

    @property
    def n_active(self) -> int:
        return int(self.active.sum())

    def active_indices(self) -> np.ndarray:
        return np.flatnonzero(self.active)

    def owner_of(self, slot: int, nranks: int) -> int:
        return slot % nranks

    def local_indices(self, rank: int, nranks: int) -> np.ndarray:
        """Active slots owned by ``rank``."""
        idx = self.active_indices()
        return idx[idx % nranks == rank]

    def net_charge(self) -> float:
        return float(self.charges[self.active].sum())

    # -- mutation ------------------------------------------------------------
    def move_particle(self, slot: int, new_pos: np.ndarray) -> np.ndarray:
        """Move an active particle; returns the old position (for undo)."""
        if not self.active[slot]:
            raise ValueError(f"slot {slot} is not active")
        old = self.positions[slot].copy()
        self.positions[slot] = np.asarray(new_pos) % self.config.box
        return old

    def insert_particle(self, slot: int, pos: np.ndarray,
                        charge: float) -> None:
        if self.active[slot]:
            raise ValueError(f"slot {slot} is already active")
        self.positions[slot] = np.asarray(pos) % self.config.box
        self.charges[slot] = charge
        self.active[slot] = True

    def delete_particle(self, slot: int) -> tuple[np.ndarray, float]:
        """Deactivate a particle; returns (position, charge) for undo."""
        if not self.active[slot]:
            raise ValueError(f"slot {slot} is not active")
        pos = self.positions[slot].copy()
        charge = float(self.charges[slot])
        self.active[slot] = False
        return pos, charge

    def first_free_slot(self) -> int:
        free = np.flatnonzero(~self.active)
        if free.size == 0:
            raise RuntimeError("particle capacity exhausted")
        return int(free[0])

    def snapshot(self) -> dict:
        """Deep copy of the mutable state (for undo / verification)."""
        return {
            "positions": self.positions.copy(),
            "charges": self.charges.copy(),
            "active": self.active.copy(),
        }

    def restore(self, snap: dict) -> None:
        self.positions[:] = snap["positions"]
        self.charges[:] = snap["charges"]
        self.active[:] = snap["active"]

    def state_hash(self) -> int:
        """Order-stable hash of the configuration (cross-rank checks)."""
        h = hash((self.positions[self.active].tobytes(),
                  self.charges[self.active].tobytes(),
                  self.active.tobytes()))
        return h

    def minimum_image(self, delta: np.ndarray) -> np.ndarray:
        box = self.config.box
        return delta - box * np.round(delta / box)
