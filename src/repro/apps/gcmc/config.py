"""GCMC application parameters (physics + compute-cost model).

Physics parameters are in reduced Lennard-Jones units (epsilon = sigma =
kB = 1).  Compute-cost constants translate the per-core arithmetic into
simulated core cycles; they are calibrated so that the *blocking* stack
reproduces the paper's profile (roughly half the time waiting in
``rcce_wait_until``, with the long-range energy dominating the rest).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any


@dataclass
class GCMCConfig:
    """All knobs of the GCMC workload."""

    # -- physics (reduced units) ----------------------------------------
    box: float = 10.0                 #: cubic box edge
    temperature: float = 1.35        #: T* (supercritical LJ fluid)
    mu: float = -3.0                 #: chemical potential (GCMC)
    cutoff: float = 2.5              #: LJ / real-space cutoff
    alpha: float = 0.9               #: Ewald splitting parameter
    n_kvectors: int = 276            #: reciprocal vectors (paper: 276)
    max_displacement: float = 0.35   #: translation move scale
    initial_particles: int = 480     #: starting configuration size
    capacity: int = 768              #: particle slots (insert headroom)

    # -- move mix (probabilities; rest = translate) -----------------------
    p_insert: float = 0.15
    p_delete: float = 0.15

    # -- determinism -------------------------------------------------------
    seed: int = 20120901

    # -- compute-cost model (core cycles) --------------------------------
    #: one LJ + erfc pair interaction (distance, branch, exp/erfc)
    cycles_per_pair: int = 120
    #: one k-vector structure-factor term per atom (cos/sin + cmul)
    cycles_per_kvec_term: int = 600
    #: post-Allreduce |F|^2 accumulation per k-vector
    cycles_per_kvec_energy: int = 30
    #: fixed per-energy-evaluation bookkeeping
    cycles_energy_base: int = 2000
    #: per-cycle move/bookkeeping cost
    cycles_move_base: int = 1500

    extras: dict[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.box <= 0 or self.temperature <= 0:
            raise ValueError("box and temperature must be positive")
        if not 0 < self.cutoff <= self.box / 2:
            raise ValueError("cutoff must lie in (0, box/2]")
        if self.initial_particles > self.capacity:
            raise ValueError("initial particle count exceeds capacity")
        if self.p_insert + self.p_delete >= 1.0:
            raise ValueError("insert+delete probability must be < 1")
        if self.n_kvectors <= 0:
            raise ValueError("need at least one k-vector")

    @property
    def beta(self) -> float:
        return 1.0 / self.temperature

    @property
    def volume(self) -> float:
        return self.box ** 3

    def copy(self, **overrides: Any) -> "GCMCConfig":
        return replace(self, **overrides)
