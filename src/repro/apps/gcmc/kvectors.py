"""Reciprocal-space vectors for the Ewald long-range energy.

Algorithm 2 of the paper sums ``KMAXVECS = 276`` complex Fourier
coefficients.  We enumerate integer k-vectors of the half-space
(``kz > 0``, or ``kz = 0 and ky > 0``, or ``kz = ky = 0 and kx > 0`` —
the inversion-symmetric half, since ``F[-k] = conj(F[k])``), order them by
``|k|^2`` (ties broken lexicographically for determinism), and keep the
first ``n``.
"""

from __future__ import annotations

import numpy as np


def build_kvectors(n: int, box: float, alpha: float,
                   kmax: int | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(kvecs, coeff)``.

    ``kvecs``: (n, 3) float array of reciprocal vectors (2*pi/box units
    applied); ``coeff``: the per-vector energy weights
    ``4*pi * exp(-|k|^2 / (4 alpha^2)) / |k|^2`` with the factor 2 for the
    half-space folding included.
    """
    if n <= 0:
        raise ValueError(f"need a positive vector count, got {n}")
    if kmax is None:
        # Smallest integer range guaranteed to contain n half-space vectors.
        kmax = 1
        while _half_space_count(kmax) < n:
            kmax += 1
    ints = _half_space_integers(kmax)
    if len(ints) < n:
        raise ValueError(
            f"kmax={kmax} yields only {len(ints)} half-space vectors (<{n})")
    ints.sort(key=lambda v: (v[0] ** 2 + v[1] ** 2 + v[2] ** 2, v))
    chosen = np.array(ints[:n], dtype=np.float64)
    two_pi_over_l = 2.0 * np.pi / box
    kvecs = chosen * two_pi_over_l
    k2 = np.sum(kvecs * kvecs, axis=1)
    coeff = 2.0 * 4.0 * np.pi * np.exp(-k2 / (4.0 * alpha * alpha)) / k2
    return kvecs, coeff


def _half_space_count(kmax: int) -> int:
    return len(_half_space_integers(kmax))


def _half_space_integers(kmax: int) -> list[tuple[int, int, int]]:
    out = []
    for kz in range(0, kmax + 1):
        for ky in range(-kmax, kmax + 1):
            for kx in range(-kmax, kmax + 1):
                if kz > 0 or (kz == 0 and ky > 0) or (kz == 0 and ky == 0
                                                      and kx > 0):
                    out.append((kx, ky, kz))
    return out
