"""Running averages of thermodynamic observables."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass
class Observables:
    """Accumulates per-cycle samples of the GCMC run.

    The energy mean/variance use a Welford accumulator rather than
    running ``sum``/``sum-of-squares``: GCMC energies are large
    (hundreds) with small fluctuations (order one), exactly the regime
    where the textbook ``E[x^2] - E[x]^2`` form loses every significant
    digit to catastrophic cancellation on long runs.
    """

    samples: int = 0
    accepted: int = 0
    particles_sum: float = 0.0
    #: Welford running mean of the per-cycle energy.
    energy_mean_acc: float = 0.0
    #: Welford sum of squared deviations from the running mean.
    energy_m2: float = 0.0
    by_action: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Full per-cycle energy series (kept for block-averaged error bars;
    #: GCMC production runs here are short enough that this is cheap).
    energy_series: list[float] = field(default_factory=list)

    def record(self, energy: float, n_particles: int, action: str,
               accepted: bool) -> None:
        self.samples += 1
        delta = energy - self.energy_mean_acc
        self.energy_mean_acc += delta / self.samples
        self.energy_m2 += delta * (energy - self.energy_mean_acc)
        self.particles_sum += n_particles
        self.energy_series.append(energy)
        if accepted:
            self.accepted += 1
        stats = self.by_action.setdefault(action,
                                          {"tried": 0, "accepted": 0})
        stats["tried"] += 1
        if accepted:
            stats["accepted"] += 1

    def block_average(self, block_size: int) -> tuple[float, float]:
        """(mean, standard error) of the energy via block averaging —
        the standard MC estimator that respects serial correlation.
        Trailing samples that do not fill a block are dropped."""
        if block_size <= 0:
            raise ValueError(f"block size must be positive: {block_size}")
        nblocks = len(self.energy_series) // block_size
        if nblocks < 1:
            raise ValueError(
                f"need at least one full block of {block_size} samples; "
                f"have {len(self.energy_series)}")
        means = [
            sum(self.energy_series[i * block_size:(i + 1) * block_size])
            / block_size
            for i in range(nblocks)
        ]
        grand = sum(means) / nblocks
        if nblocks == 1:
            return grand, 0.0
        var = sum((m - grand) ** 2 for m in means) / (nblocks - 1)
        return grand, math.sqrt(var / nblocks)

    @property
    def mean_energy(self) -> float:
        return self.energy_mean_acc if self.samples else 0.0

    @property
    def energy_variance(self) -> float:
        """Population variance of the energy series (Welford ``M2/n``)."""
        if self.samples == 0:
            return 0.0
        return self.energy_m2 / self.samples

    @property
    def mean_particles(self) -> float:
        return self.particles_sum / self.samples if self.samples else 0.0

    @property
    def acceptance_ratio(self) -> float:
        return self.accepted / self.samples if self.samples else 0.0

    def action_counts(self, action: str) -> dict[str, int]:
        """``{"tried": ..., "accepted": ...}`` for one move type (zeros
        for move types the run never attempted)."""
        return dict(self.by_action.get(action,
                                       {"tried": 0, "accepted": 0}))

    def summary(self) -> dict:
        return {
            "samples": self.samples,
            "mean_energy": self.mean_energy,
            "energy_variance": self.energy_variance,
            "mean_particles": self.mean_particles,
            "acceptance_ratio": self.acceptance_ratio,
            "by_action": {k: dict(v) for k, v in self.by_action.items()},
        }
