"""Running ensemble members and candidate runs.

Two execution paths, one physics:

* **Members** (the accepted seed ensemble) run through the *serial*
  GCMC runner — bit-identical physics to the SPMD driver (asserted by
  ``tests/apps/test_serial.py``) at a fraction of the cost, fanned out
  over the bench layer's fork pool (:func:`repro.bench.executor
  .parallel_map`, the ``REPRO_BENCH_JOBS`` knob).
* **Candidates** (the runs under test) run wherever the question lives:
  on the simulated machine with a fault injector installed, under a
  forced collective algorithm, on a different stack — or through the
  serial runner again when only the physics is in question.

Member seeds are ``base_seed + 1 .. base_seed + members``; the base seed
itself is deliberately *excluded* so it is available as a held-out
candidate that must pass the envelope it did not help build.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.driver import GCMCResult, run_gcmc
from repro.apps.gcmc.serial import run_gcmc_serial
from repro.bench.executor import parallel_map
from repro.ensemble.features import DEFAULT_BLOCK_SIZE, extract_features
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.sim.clock import us_to_ps

#: Stack candidate runs use unless told otherwise (the paper's best
#: general-purpose configuration: non-blocking p2p + balanced partition).
DEFAULT_STACK = "lightweight_balanced"


def member_seeds(base_seed: int, members: int) -> list[int]:
    """The ensemble's seed list: ``base_seed + 1 .. base_seed + members``
    (the base itself is held out as a free validation candidate)."""
    if members < 2:
        raise ValueError(f"an ensemble needs at least 2 members, "
                         f"got {members}")
    return [base_seed + i + 1 for i in range(members)]


def _member_features(task) -> np.ndarray:
    """Fork-pool worker: one serial member run → its feature vector.

    Module-level so it pickles; ``task`` is a plain tuple for the same
    reason.
    """
    cfg, cycles, cores, block_size, seed = task
    result = run_gcmc_serial(cfg.copy(seed=seed), cycles, nranks=cores)
    return extract_features(result, block_size)


def ensemble_features(cfg: GCMCConfig, cycles: int, cores: int,
                      seeds: Sequence[int], *,
                      block_size: int = DEFAULT_BLOCK_SIZE,
                      jobs: Optional[int] = None) -> np.ndarray:
    """Feature matrix ``(len(seeds), n_features)`` of a seed ensemble."""
    tasks = [(cfg, cycles, cores, block_size, int(seed)) for seed in seeds]
    rows = parallel_map(_member_features, tasks, jobs=jobs)
    return np.vstack(rows)


@dataclass(frozen=True)
class CandidateSpec:
    """Everything that distinguishes one candidate run from a member.

    ``seed=None`` means "the summary's held-out base seed".  A ``plan``
    installs a fault injector on the candidate's machine (``engine``
    must then be ``sim`` — faults need simulated hardware to bite).
    """

    label: str = "candidate"
    engine: str = "sim"                  #: "sim" | "serial"
    stack: str = DEFAULT_STACK
    seed: Optional[int] = None
    allreduce_algo: Optional[str] = None
    plan: Optional[FaultPlan] = None
    watchdog_us: Optional[float] = None

    def validate(self) -> None:
        if self.engine not in ("sim", "serial"):
            raise ValueError(f"unknown candidate engine {self.engine!r}; "
                             f"expected 'sim' or 'serial'")
        if self.engine == "serial" and (
                self.plan is not None or self.watchdog_us is not None):
            raise ValueError("fault plans and watchdogs require the 'sim' "
                             "engine — the serial runner has no machine "
                             "to install them on")


def run_candidate(spec: CandidateSpec, cfg: GCMCConfig, cycles: int,
                  cores: int, *,
                  scc_config: Optional[SCCConfig] = None) -> GCMCResult:
    """Execute one candidate run and return its :class:`GCMCResult`.

    Raises whatever the run raises (typed fault errors, watchdog,
    divergence ``RuntimeError``) — classification is the caller's job
    (:func:`repro.faults.campaign.run_gcmc_trial`).
    """
    spec.validate()
    run_cfg = cfg if spec.seed is None else cfg.copy(seed=spec.seed)
    if spec.engine == "serial":
        return run_gcmc_serial(run_cfg, cycles, nranks=cores)
    config = scc_config.copy() if scc_config is not None else SCCConfig()
    config.check_rank_count(cores)
    machine = Machine(config)
    if spec.plan is not None:
        FaultInjector(spec.plan).install(machine)
    from repro.core.registry import make_communicator

    comm = make_communicator(machine, spec.stack)
    watchdog_ps = (us_to_ps(spec.watchdog_us)
                   if spec.watchdog_us is not None else None)
    return run_gcmc(machine, comm, run_cfg, cycles,
                    ranks=list(range(cores)),
                    allreduce_algo=spec.allreduce_algo,
                    watchdog_ps=watchdog_ps)
