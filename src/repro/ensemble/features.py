"""The per-run observable vector the PCA envelope is built over.

One GCMC run is compressed into a fixed-order vector of thermodynamic
observables — the quantities a physicist would eyeball to decide whether
a run "looks right": block-averaged energy (the standard MC estimator
that respects serial correlation), particle count, energy fluctuations,
and the per-move-type acceptance statistics.  Everything is derived from
the :class:`~repro.apps.gcmc.observables.Observables` accumulator the
driver fills anyway; extraction never re-runs physics.

Per-move-type rates are normalized by the *total* sample count (not the
per-type attempt count) so they are defined even for runs that never
attempted a move type — a run whose move mix itself drifted is exactly
the kind of wrongness the envelope should see.
"""

from __future__ import annotations

import numpy as np

from repro.apps.gcmc.driver import GCMCResult

#: Fixed feature order; the summary stores this list and refuses to
#: score candidates extracted under a different one.
FEATURE_NAMES: tuple[str, ...] = (
    "mean_energy",           # Welford mean of the per-cycle energy
    "energy_std",            # sqrt of the Welford population variance
    "block_energy_mean",     # block-averaged energy (serial-correlation
                             # aware; trailing partial block dropped)
    "block_energy_err",      # block standard error of the energy
    "mean_particles",        # mean particle count
    "final_energy",          # energy after the last cycle
    "final_particles",       # particle count after the last cycle
    "acceptance_ratio",      # overall accepted / samples
    "translate_tried_frac",  # TRANSLATE attempts / samples
    "translate_accept_frac",  # TRANSLATE acceptances / samples
    "insert_tried_frac",
    "insert_accept_frac",
    "delete_tried_frac",
    "delete_accept_frac",
)

#: Default block size for the block-averaged energy features.
DEFAULT_BLOCK_SIZE = 8


def extract_features(result: GCMCResult,
                     block_size: int = DEFAULT_BLOCK_SIZE) -> np.ndarray:
    """The run's observable vector, in :data:`FEATURE_NAMES` order.

    ``block_size`` must match the value the ensemble summary was built
    with (it is recorded in the summary's metadata); it must not exceed
    the run's sample count.
    """
    obs = result.observables
    if obs.samples == 0:
        raise ValueError("cannot extract features from a run with no "
                         "recorded samples")
    block_mean, block_err = obs.block_average(block_size)
    samples = obs.samples

    def frac(action: str, key: str) -> float:
        return obs.action_counts(action)[key] / samples

    values = (
        obs.mean_energy,
        float(np.sqrt(obs.energy_variance)),
        block_mean,
        block_err,
        obs.mean_particles,
        result.final_energy,
        float(result.final_particles),
        obs.acceptance_ratio,
        frac("TRANSLATE", "tried"),
        frac("TRANSLATE", "accepted"),
        frac("INSERT", "tried"),
        frac("INSERT", "accepted"),
        frac("DELETE", "tried"),
        frac("DELETE", "accepted"),
    )
    vector = np.array(values, dtype=np.float64)
    if not np.all(np.isfinite(vector)):
        bad = [FEATURE_NAMES[i] for i in np.flatnonzero(~np.isfinite(vector))]
        raise ValueError(f"non-finite observable(s) in run: {bad} — the "
                         f"run's physics is numerically destroyed")
    return vector


def feature_dict(vector: np.ndarray) -> dict[str, float]:
    """``{name: value}`` view of one feature vector (for reports)."""
    if vector.shape != (len(FEATURE_NAMES),):
        raise ValueError(f"expected {len(FEATURE_NAMES)} features, got "
                         f"shape {vector.shape}")
    return {name: float(v) for name, v in zip(FEATURE_NAMES, vector)}
