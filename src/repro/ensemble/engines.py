"""Analytic GCMC pricing and the sim-vs-analytic acceptance test.

The bench layer's analytic engine prices one *collective* closed-form
(:func:`repro.bench.analytic.analytic_latency_us`).  A GCMC run is a long
deterministic sequence of collectives interleaved with compute — and the
serial runner can replay that sequence without the discrete-event
simulator (:class:`repro.apps.gcmc.serial.GCMCOpLog`).  Pricing each
distinct ``(kind, payload length)`` once and summing over the replayed
sequence turns a multi-second simulation into a millisecond estimate.

Ops outside the analytic model (the barrier, and scalar allreduces when
the algorithm has no builder) are priced by *one* simulated
micro-benchmark per distinct op shape (memoized), so the estimate stays
honest without re-simulating the whole application.

The acceptance test (:func:`compare_engines`) goes beyond the bench
layer's latency-drift check: both engines' runs are also pushed through
the statistical envelope, so "the analytic engine agrees with the
simulator" means *both* "similar latency" (within a GCMC-specific drift
tolerance) and *identical-by-construction physics that the envelope
accepts*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.serial import GCMCOpLog, run_gcmc_serial
from repro.bench.analytic import analytic_latency_us
from repro.bench.executor import SweepPoint
from repro.ensemble.features import extract_features
from repro.ensemble.members import DEFAULT_STACK, CandidateSpec, run_candidate
from repro.ensemble.summary import (
    DEFAULT_MAX_PC_FAIL,
    DEFAULT_THRESHOLD,
    CheckResult,
    EnsembleSummary,
)
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine
from repro.sim.clock import ps_to_us

#: Relative latency drift allowed between the analytic GCMC estimate and
#: the simulated run.  Looser than the bench layer's per-collective
#: bound: an application-length sequence accumulates the pipelining and
#: skew effects the closed form ignores (see docs/engines.md).
GCMC_DRIFT_TOL = 0.45


@dataclass
class GCMCEstimate:
    """Analytic timing of one GCMC run (all microseconds)."""

    elapsed_us: float
    compute_us: float
    comm_us: float
    n_ops: int                #: collectives in the replayed sequence
    n_simulated_shapes: int   #: distinct op shapes priced by micro-sim

    def describe(self) -> str:
        return (f"analytic GCMC estimate: {self.elapsed_us:.1f}us total "
                f"({self.compute_us:.1f}us compute + {self.comm_us:.1f}us "
                f"communication over {self.n_ops} collectives; "
                f"{self.n_simulated_shapes} op shape(s) priced by "
                f"micro-simulation)")


def _op_cost_us(kind: str, nelems: int, stack: str, cores: int,
                config: SCCConfig, algo: Optional[str],
                cache: dict, sim_shapes: set) -> float:
    """Price one collective shape: closed form, else one micro-sim."""
    key = (kind, nelems)
    cost = cache.get(key)
    if cost is not None:
        return cost
    size = max(nelems, 1)  # barrier records nelems=0
    point = SweepPoint(kind=kind, stack=stack, size=size, cores=cores,
                       config=config,
                       algo=algo if kind == "allreduce" else None)
    cost = analytic_latency_us(point)
    if cost is None:
        from repro.bench.runner import measure_collective

        cost = measure_collective(kind, stack, size, cores=cores,
                                  config=config.copy(),
                                  algo=point.algo)
        sim_shapes.add(key)
    cache[key] = cost
    return cost


def estimate_gcmc_us(cfg: GCMCConfig, cycles: int, cores: int, *,
                     stack: str = DEFAULT_STACK,
                     scc_config: Optional[SCCConfig] = None,
                     allreduce_algo: Optional[str] = None):
    """Analytic GCMC pricing: ``(estimate, result)``.

    ``result`` is the serial run's :class:`GCMCResult` — the *physics* of
    the estimate, bit-identical to what the simulator would compute —
    with ``elapsed_ps`` left at zero (the estimate lives in the returned
    :class:`GCMCEstimate`, deliberately not disguised as simulated time).
    """
    config = scc_config.copy() if scc_config is not None else SCCConfig()
    config.check_rank_count(cores)
    log = GCMCOpLog()
    result = run_gcmc_serial(cfg, cycles, nranks=cores, log=log)
    model = Machine(config).latency
    compute_us = ps_to_us(
        sum(model.core_cycles(r.compute_cycles) for r in log.records))
    cache: dict = {}
    sim_shapes: set = set()
    comm_us = sum(
        _op_cost_us(r.kind, r.nelems, stack, cores, config,
                    allreduce_algo, cache, sim_shapes)
        for r in log.records)
    estimate = GCMCEstimate(
        elapsed_us=compute_us + comm_us, compute_us=compute_us,
        comm_us=comm_us, n_ops=len(log.records),
        n_simulated_shapes=len(sim_shapes))
    return estimate, result


@dataclass
class EngineComparison:
    """Sim vs analytic GCMC, under the statistical envelope."""

    sim_us: float
    analytic_us: float
    drift: float                     #: (analytic - sim) / sim
    sim_check: CheckResult
    analytic_check: CheckResult
    estimate: GCMCEstimate
    drift_tol: float = GCMC_DRIFT_TOL
    stack: str = DEFAULT_STACK
    notes: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """The acceptance contract: both engines' physics inside the
        envelope *and* the latency estimate within tolerance."""
        return (self.sim_check.passed and self.analytic_check.passed
                and abs(self.drift) <= self.drift_tol)

    def describe(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [
            f"engine comparison ({self.stack}): {verdict}",
            f"  simulated:  {self.sim_us:10.1f}us  envelope "
            f"{'PASS' if self.sim_check.passed else 'FAIL'}",
            f"  analytic:   {self.analytic_us:10.1f}us  envelope "
            f"{'PASS' if self.analytic_check.passed else 'FAIL'}",
            f"  drift:      {self.drift:+10.1%}  "
            f"(tolerance +/-{self.drift_tol:.0%})",
            f"  {self.estimate.describe()}",
        ]
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


def compare_engines(summary: EnsembleSummary, *,
                    stack: str = DEFAULT_STACK,
                    seed: Optional[int] = None,
                    threshold: float = DEFAULT_THRESHOLD,
                    max_pc_fail: int = DEFAULT_MAX_PC_FAIL,
                    drift_tol: float = GCMC_DRIFT_TOL,
                    scc_config: Optional[SCCConfig] = None
                    ) -> EngineComparison:
    """The analytic-vs-sim GCMC acceptance test.

    Runs the summary's configuration (held-out base seed by default)
    through both engines, scores both runs against the envelope, and
    compares latencies.  This is the application-level counterpart of
    the bench layer's :class:`~repro.bench.analytic.EngineDriftError`
    cross-validation.
    """
    cfg = summary.config()
    if seed is not None:
        cfg = cfg.copy(seed=seed)
    cycles = int(summary.meta["cycles"])
    cores = int(summary.meta["cores"])
    block = int(summary.meta["block_size"])

    sim_result = run_candidate(
        CandidateSpec(label="sim", engine="sim", stack=stack),
        cfg, cycles, cores, scc_config=scc_config)
    sim_check = summary.check(extract_features(sim_result, block),
                              threshold=threshold, max_pc_fail=max_pc_fail,
                              label=f"sim/{stack}")

    estimate, serial_result = estimate_gcmc_us(
        cfg, cycles, cores, stack=stack, scc_config=scc_config)
    analytic_check = summary.check(
        extract_features(serial_result, block), threshold=threshold,
        max_pc_fail=max_pc_fail, label=f"analytic/{stack}")

    sim_us = sim_result.elapsed_us
    drift = (estimate.elapsed_us - sim_us) / sim_us if sim_us else 0.0
    notes = []
    if (sim_result.final_particles != serial_result.final_particles
            or sim_result.final_energy != serial_result.final_energy):
        notes.append("sim and serial trajectories differ bit-wise (the "
                     "stack's reduction order vs the serial ordered sum) "
                     "— each is scored against the envelope on its own")
    return EngineComparison(
        sim_us=sim_us, analytic_us=estimate.elapsed_us, drift=drift,
        sim_check=sim_check, analytic_check=analytic_check,
        estimate=estimate, drift_tol=drift_tol, stack=stack, notes=notes)
