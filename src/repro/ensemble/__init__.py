"""Statistical ensemble verification of the GCMC application (PyCECT).

The CESM-ECT idea, ported to this reproduction: a *seed ensemble* of
accepted GCMC runs (same physics, perturbed RNG seeds) defines a PCA
envelope over a compact vector of thermodynamic observables; a candidate
run — produced under fault injection, a different collective algorithm,
a different stack, or the analytic engine — is *accepted* iff its
observables fall inside that envelope, and *rejected* as scientifically
wrong otherwise.  This turns "is this run still correct?" from a brittle
bit-for-bit question into a statistical one: timing perturbations pass,
corrupted physics fails.

Layout:

* :mod:`repro.ensemble.features` — the per-run observable vector,
* :mod:`repro.ensemble.members` — ensemble/candidate run execution
  (serial fast path, fork-pool fan-out, simulated candidates),
* :mod:`repro.ensemble.summary` — the PCA envelope: build, persist
  (schema-versioned JSON under ``benchmarks/results/``), score,
* :mod:`repro.ensemble.engines` — analytic GCMC pricing and the
  sim-vs-analytic acceptance test.

CLI: ``python -m repro ensemble summarize`` / ``python -m repro
ensemble check``; docs: ``docs/robustness.md``.
"""

from repro.ensemble.features import FEATURE_NAMES, extract_features
from repro.ensemble.members import (
    CandidateSpec,
    ensemble_features,
    member_seeds,
    run_candidate,
)
from repro.ensemble.summary import (
    DEFAULT_MAX_PC_FAIL,
    DEFAULT_THRESHOLD,
    ENSEMBLE_SCHEMA,
    CheckResult,
    EnsembleSummary,
    build_summary,
    default_summary_path,
)

__all__ = [
    "FEATURE_NAMES",
    "extract_features",
    "CandidateSpec",
    "ensemble_features",
    "member_seeds",
    "run_candidate",
    "DEFAULT_MAX_PC_FAIL",
    "DEFAULT_THRESHOLD",
    "ENSEMBLE_SCHEMA",
    "CheckResult",
    "EnsembleSummary",
    "build_summary",
    "default_summary_path",
]
