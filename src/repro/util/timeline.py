"""ASCII timelines of simulated core activity.

Two facilities:

* :class:`Timeline` — consumes :class:`~repro.sim.trace.TraceRecord`
  *span* events (``tag`` ending in ``.begin`` / ``.end``) and renders a
  per-actor Gantt chart with one character per time bucket.  The
  communication layers emit such spans when the machine is built with an
  enabled tracer (see :func:`repro.util.timeline.instrumented_machine`).
* :func:`render_accounts_bar` — a stacked-percentage bar per core from
  the :class:`~repro.sim.trace.TimeAccount` data every run collects, a
  cheap profile view ("how much of each core's time went to waiting?").
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Sequence

from repro.sim.trace import TimeAccount, TraceRecord

#: Default glyph per span kind (first letter of the span name otherwise).
GLYPHS = {
    "send": "S",
    "recv": "R",
    "copy": "c",
    "wait": ".",
    "sync": ".",
    "compute": "#",
    "reduce": "+",
    "round": "-",
}


class Timeline:
    """Builds per-actor activity spans from begin/end trace records."""

    def __init__(self) -> None:
        self.spans: dict[str, list[tuple[int, int, str]]] = defaultdict(list)
        self._open: dict[tuple[str, str], int] = {}
        self.t_min: Optional[int] = None
        self.t_max: Optional[int] = None

    def feed(self, records: Sequence[TraceRecord]) -> "Timeline":
        for rec in records:
            if rec.tag.endswith(".begin"):
                self._open[(rec.actor, rec.tag[:-6])] = rec.time_ps
            elif rec.tag.endswith(".end"):
                name = rec.tag[:-4]
                start = self._open.pop((rec.actor, name), None)
                if start is not None:
                    self.add_span(rec.actor, start, rec.time_ps, name)
        return self

    def add_span(self, actor: str, start: int, end: int, kind: str) -> None:
        if end < start:
            raise ValueError(f"span ends before it starts: {start}..{end}")
        self.spans[actor].append((start, end, kind))
        self.t_min = start if self.t_min is None else min(self.t_min, start)
        self.t_max = end if self.t_max is None else max(self.t_max, end)

    def render(self, width: int = 80) -> str:
        """One row per actor, one character per time bucket."""
        if not self.spans or self.t_max is None or self.t_max == self.t_min:
            return "(empty timeline)"
        span_ps = self.t_max - self.t_min
        bucket = max(1, span_ps // width)
        lines = [f"timeline: {span_ps / 1e6:.1f} us total, "
                 f"1 char = {bucket / 1e6:.2f} us"]
        for actor in sorted(self.spans):
            row = [" "] * width
            # Paint longest spans first so nested phase spans (round,
            # sync, ...) stay visible on top of their enclosing spans.
            ordered = sorted(self.spans[actor],
                             key=lambda s: -(s[1] - s[0]))
            for start, end, kind in ordered:
                glyph = GLYPHS.get(kind, kind[:1] or "?")
                b0 = min(width - 1, (start - self.t_min) // bucket)
                b1 = min(width - 1, max(b0, (end - self.t_min - 1) // bucket))
                for i in range(b0, b1 + 1):
                    row[i] = glyph
            lines.append(f"{actor:>10} |{''.join(row)}|")
        return "\n".join(lines)


def render_accounts_bar(accounts: Sequence[TimeAccount], width: int = 50,
                        labels: Optional[Sequence[str]] = None) -> str:
    """Stacked per-core bars showing the share of each accounted state."""
    lines = []
    order = ["compute", "copy", "overhead", "wait_flag", "wait_request",
             "wait_port", "idle"]
    glyph = {"compute": "#", "copy": "c", "overhead": "o",
             "wait_flag": ".", "wait_request": ",", "wait_port": "p",
             "idle": " "}
    for i, acct in enumerate(accounts):
        total = acct.total()
        label = labels[i] if labels else f"core{i}"
        if total == 0:
            lines.append(f"{label:>8} |{' ' * width}|")
            continue
        bar = []
        for state in order:
            n = round(width * acct.get(state) / total)
            bar.append(glyph.get(state, "?") * n)
        for state in sorted(set(acct.states) - set(order)):
            n = round(width * acct.get(state) / total)
            bar.append("?" * n)
        text = "".join(bar)[:width].ljust(width)
        lines.append(f"{label:>8} |{text}|")
    legend = "  ".join(f"{glyph[s]}={s}" for s in order if s != "idle")
    return "\n".join([*lines, legend])
