"""Cross-cutting utilities: timeline rendering, table helpers."""

from repro.util.tables import format_table
from repro.util.timeline import Timeline, render_accounts_bar

__all__ = ["Timeline", "format_table", "render_accounts_bar"]
