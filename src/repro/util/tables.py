"""Plain-text table rendering (no third-party dependencies)."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 *, float_fmt: str = "{:.2f}") -> str:
    """Render a right-aligned fixed-width table.

    Floats are formatted with ``float_fmt``; everything else with
    ``str``.  Column widths adapt to the content.
    """
    def cell(value: Any) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells; expected {len(headers)}")
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in str_rows))
        if str_rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    header = "  ".join(str(h).rjust(w) for h, w in zip(headers, widths))
    rule = "-" * len(header)
    body = [
        "  ".join(c.rjust(w) for c, w in zip(row, widths))
        for row in str_rows
    ]
    return "\n".join([header, rule, *body])
