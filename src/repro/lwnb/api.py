"""Lightweight non-blocking primitives (paper Section IV-B).

"Since most algorithms for collective operations, including the ring
algorithm, are organized into rounds where a core exchanges at most one
message with another core, the expensive listkeeping can be avoided by
allowing only one active send and receive operation at a time.  We used
this fact to extend RCCE by lightweight non-blocking primitives that
support at most one concurrent send and receive."

This layer therefore:

* enforces **one outstanding send and one outstanding receive per core**
  (violations raise :class:`~repro.ircce.requests.RequestError`),
* supports **no wildcard receives** and no arbitrary-size reception (like
  plain RCCE, sender and length must be known in advance),
* charges only a fraction of iRCCE's per-request software overhead.
"""

from __future__ import annotations

from repro.hw.machine import Machine
from repro.ircce.requests import NonBlockingLayer


class LWNB(NonBlockingLayer):
    """The paper's single-outstanding-request non-blocking layer."""

    name = "lwnb"
    supports_wildcard = False
    max_outstanding = 1

    def __init__(self, machine: Machine):
        super().__init__(machine)

    def issue_cycles(self) -> int:
        return self.machine.config.lwnb_issue_cycles

    def complete_cycles(self) -> int:
        return self.machine.config.lwnb_complete_cycles

    def test_cycles(self) -> int:
        return self.machine.config.lwnb_test_cycles
