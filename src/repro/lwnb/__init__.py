"""Lightweight non-blocking primitives — the paper's optimization B.

See :mod:`repro.lwnb.api`.
"""

from repro.lwnb.api import LWNB

__all__ = ["LWNB"]
