"""Stack registry: the paper's Fig.-9 graph labels as communicator recipes.

===========================  ================================================
label                        composition
===========================  ================================================
``blocking``                 RCCE blocking p2p + RCCE_comm algorithms
                             (odd-even ring ordering, standard partition)
``ircce``                    iRCCE non-blocking p2p (optimization A),
                             standard partition
``lightweight``              lightweight non-blocking p2p (optimization B),
                             standard partition
``lightweight_balanced``     + balanced partition (optimization C)
``mpb``                      + MPB-direct Allreduce (optimization D)
``rckmpi``                   the RCKMPI comparison stack
===========================  ================================================
"""

from __future__ import annotations

from repro.core.blocks import balanced_partition, standard_partition
from repro.core.comm import Communicator
from repro.hw.machine import Machine
from repro.ircce.api import IRCCE
from repro.lwnb.api import LWNB
from repro.rcce.api import RCCE

#: The order the paper's figures present the stacks in.
STACKS: tuple[str, ...] = (
    "rckmpi",
    "blocking",
    "ircce",
    "lightweight",
    "lightweight_balanced",
    "mpb",
)

#: Stacks Fig. 9 shows for every collective (mpb only exists for Allreduce).
NON_MPB_STACKS: tuple[str, ...] = STACKS[:-1]


def make_communicator(machine: Machine, stack: str) -> "Communicator":
    """Build the communicator for one of the paper's stacks.

    For ``rckmpi`` this returns an
    :class:`repro.rckmpi.api.RCKMPICommunicator`, which implements the same
    collective interface over the modeled MPICH-style channel.
    """
    if stack == "blocking":
        return Communicator(machine, RCCE(machine),
                            partitioner=standard_partition, name="blocking")
    if stack == "ircce":
        return Communicator(machine, IRCCE(machine),
                            partitioner=standard_partition, name="ircce")
    if stack == "lightweight":
        return Communicator(machine, LWNB(machine),
                            partitioner=standard_partition,
                            name="lightweight")
    if stack == "lightweight_balanced":
        return Communicator(machine, LWNB(machine),
                            partitioner=balanced_partition,
                            name="lightweight_balanced")
    if stack == "mpb":
        return Communicator(machine, LWNB(machine),
                            partitioner=balanced_partition,
                            use_mpb_allreduce=True, name="mpb")
    if stack == "rckmpi":
        from repro.rckmpi.api import RCKMPICommunicator
        return RCKMPICommunicator(machine)
    raise KeyError(f"unknown stack {stack!r}; known: {STACKS}")
