"""Stack registry: the paper's Fig.-9 graph labels as communicator recipes.

===========================  ================================================
label                        composition
===========================  ================================================
``blocking``                 RCCE blocking p2p + RCCE_comm algorithms
                             (odd-even ring ordering, standard partition)
``ircce``                    iRCCE non-blocking p2p (optimization A),
                             standard partition
``lightweight``              lightweight non-blocking p2p (optimization B),
                             standard partition
``lightweight_balanced``     + balanced partition (optimization C)
``mpb``                      + MPB-direct Allreduce (optimization D)
``rckmpi``                   the RCKMPI comparison stack
``tuned``                    lightweight_balanced + cost-model-selected
                             schedules (:mod:`repro.sched.select`)
===========================  ================================================

The registry is table-driven: :func:`register_stack` maps a label to a
factory ``Machine -> Communicator``, and :func:`make_communicator` looks
labels up in the table.  The paper's six stacks are registered below;
extension stacks (like ``tuned``) register themselves on import without
touching this module's figure-ordering tuples — :data:`STACKS` stays
exactly the Fig.-9 label set, so figure drivers, the chaos harness and
the sanitizer sweep never pick up experimental stacks by accident.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.core.blocks import balanced_partition, standard_partition
from repro.core.comm import Communicator
from repro.hw.machine import Machine

#: The order the paper's figures present the stacks in.
STACKS: tuple[str, ...] = (
    "rckmpi",
    "blocking",
    "ircce",
    "lightweight",
    "lightweight_balanced",
    "mpb",
)

#: Stacks Fig. 9 shows for every collective (mpb only exists for Allreduce).
NON_MPB_STACKS: tuple[str, ...] = STACKS[:-1]

StackFactory = Callable[[Machine], "Communicator"]

_FACTORIES: Dict[str, StackFactory] = {}


def register_stack(name: str, factory: StackFactory, *,
                   replace: bool = False) -> None:
    """Register a communicator factory under stack label ``name``.

    Re-registering an existing label is an error unless ``replace=True``
    — silent shadowing of a paper stack would corrupt every figure.
    """
    if name in _FACTORIES and not replace:
        raise ValueError(
            f"stack {name!r} is already registered "
            f"(pass replace=True to override)")
    _FACTORIES[name] = factory


def available_stacks() -> tuple[str, ...]:
    """Every registered label: the Fig.-9 stacks in figure order, then
    extension stacks sorted alphabetically."""
    extras = sorted(name for name in _FACTORIES if name not in STACKS)
    return STACKS + tuple(extras)


def make_communicator(machine: Machine, stack: str) -> "Communicator":
    """Build the communicator for a registered stack label.

    For ``rckmpi`` this returns an
    :class:`repro.rckmpi.api.RCKMPICommunicator`, which implements the same
    collective interface over the modeled MPICH-style channel.
    """
    try:
        factory = _FACTORIES[stack]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES))
        raise KeyError(
            f"unknown stack {stack!r}; known: {known}") from None
    return factory(machine)


def _make_blocking(machine: Machine) -> Communicator:
    from repro.rcce.api import RCCE
    return Communicator(machine, RCCE(machine),
                        partitioner=standard_partition, name="blocking")


def _make_ircce(machine: Machine) -> Communicator:
    from repro.ircce.api import IRCCE
    return Communicator(machine, IRCCE(machine),
                        partitioner=standard_partition, name="ircce")


def _make_lightweight(machine: Machine) -> Communicator:
    from repro.lwnb.api import LWNB
    return Communicator(machine, LWNB(machine),
                        partitioner=standard_partition, name="lightweight")


def _make_lightweight_balanced(machine: Machine) -> Communicator:
    from repro.lwnb.api import LWNB
    return Communicator(machine, LWNB(machine),
                        partitioner=balanced_partition,
                        name="lightweight_balanced")


def _make_mpb(machine: Machine) -> Communicator:
    from repro.lwnb.api import LWNB
    return Communicator(machine, LWNB(machine),
                        partitioner=balanced_partition,
                        use_mpb_allreduce=True, name="mpb")


def _make_rckmpi(machine: Machine) -> Communicator:
    from repro.rckmpi.api import RCKMPICommunicator
    return RCKMPICommunicator(machine)


register_stack("blocking", _make_blocking)
register_stack("ircce", _make_ircce)
register_stack("lightweight", _make_lightweight)
register_stack("lightweight_balanced", _make_lightweight_balanced)
register_stack("mpb", _make_mpb)
register_stack("rckmpi", _make_rckmpi)

# The tuned stack registers itself; importing here keeps one-stop lookup
# (`make_communicator(machine, "tuned")` works with no extra import) while
# the figure tuples above stay untouched.
from repro.sched.select import install_tuned_stack  # noqa: E402

install_tuned_stack()
