"""Broadcast algorithms.

* :func:`binomial_bcast` — the binomial tree used for short messages (and
  as the tree-based related-work baseline [9] that beats RCCE's serial
  native broadcast by >20x).
* :func:`scatter_allgather_bcast` — RCCE_comm's long-message algorithm:
  a binomial *scatter* of partition blocks followed by a ring allgather.
  The partition is what optimization C balances.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.core.allgather import ring_allgather_blocks
from repro.hw.machine import CoreEnv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.comm import Communicator


def binomial_bcast(comm: "Communicator", env: CoreEnv, buf: np.ndarray,
                   root: int = 0) -> Generator:
    """Classic binomial-tree broadcast of the whole buffer."""
    p, me = env.size, env.rank
    vrank = (me - root) % p
    # Receive phase: find the bit where the parent reaches us.
    mask = 1
    while mask < p:
        if vrank & mask:
            src = (vrank - mask + root) % p
            yield from comm.recv(env, buf, src)
            break
        mask <<= 1
    # Send phase: forward to children below the found bit.
    mask >>= 1
    while mask > 0:
        if vrank + mask < p:
            dst = (vrank + mask + root) % p
            yield from comm.send(env, buf, dst)
        mask >>= 1
    return buf


def binomial_scatter_ranges(comm: "Communicator", env: CoreEnv,
                            buf: np.ndarray, part, root: int) -> Generator:
    """Binomial scatter of partition blocks (in root-relative vrank space):
    after this, rank ``me`` holds block ``vrank(me)`` of ``buf``.

    The scatter ships contiguous element ranges: the subtree rooted at
    vrank ``v`` reached with mask ``m`` covers blocks ``[v, min(v+m, p))``.
    """
    p, me = env.size, env.rank
    vrank = (me - root) % p
    # Receive my subtree's range from my parent (root receives nothing;
    # its loop exits with mask = first power of two >= p).
    mask = 1
    extent = p
    while mask < p:
        if vrank & mask:
            src = (vrank - mask + root) % p
            extent = min(mask, p - vrank)
            lo = part.offset(vrank)
            hi = part.offset(vrank + extent - 1) + part.size(vrank + extent - 1)
            yield from comm.recv(env, buf[lo:hi], src)
            break
        mask <<= 1
    # Send phase: peel off the upper half of my block range repeatedly.
    mask >>= 1
    while mask > 0:
        if mask < extent:
            dst_v = vrank + mask
            dst = (dst_v + root) % p
            dst_extent = extent - mask
            lo = part.offset(dst_v)
            hi = part.offset(dst_v + dst_extent - 1) + part.size(
                dst_v + dst_extent - 1)
            yield from comm.send(env, buf[lo:hi], dst)
            extent = mask
        mask >>= 1
    return buf


def scatter_allgather_bcast(comm: "Communicator", env: CoreEnv,
                            buf: np.ndarray, root: int = 0) -> Generator:
    """RCCE_comm's long-message broadcast: scatter + ring allgather."""
    p = env.size
    if p == 1:
        return buf
    part = comm.partition(buf.size, p)
    yield from binomial_scatter_ranges(comm, env, buf, part, root)
    yield from ring_allgather_blocks(comm, env, buf, part, shift=root)
    return buf
