"""Reduction operators for the collective operations.

The paper's Allreduce definition notes the summation "can in general be
replaced by any associative binary operator"; we provide the usual MPI
set.  Operators are applied with NumPy (vectorized, per the HPC guides) —
the simulated *cost* of a reduction is charged separately through
:meth:`repro.hw.timing.LatencyModel.reduce_doubles`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


@dataclass(frozen=True)
class ReduceOp:
    """An associative elementwise reduction operator."""

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.fn(a, b)

    def reduce_all(self, vectors: list[np.ndarray]) -> np.ndarray:
        """Fold the operator over a list of equal-shape vectors."""
        if not vectors:
            raise ValueError("reduce_all needs at least one vector")
        acc = np.array(vectors[0], copy=True)
        for vec in vectors[1:]:
            acc = self.fn(acc, vec)
        return acc

    def __repr__(self) -> str:
        return f"ReduceOp({self.name})"


SUM = ReduceOp("sum", np.add)
PROD = ReduceOp("prod", np.multiply)
MIN = ReduceOp("min", np.minimum)
MAX = ReduceOp("max", np.maximum)

OPS: dict[str, ReduceOp] = {op.name: op for op in (SUM, PROD, MIN, MAX)}


def op_by_name(name: str) -> ReduceOp:
    try:
        return OPS[name]
    except KeyError:
        raise KeyError(f"unknown reduce op {name!r}; known: {sorted(OPS)}") from None
