"""Alltoall: the pairwise-exchange algorithm.

Round ``r`` (``r = 0 .. p-1``) pairs rank ``me`` with partner
``(r - me) mod p`` — an involution, so each round is a perfect matching
(when the partner equals ``me`` the round degenerates to the local copy of
the rank's own row).  Every ordered pair ``(i, j)`` is exchanged exactly
once, in round ``(i + j) mod p``.

The blocking flavor orders each pair's send/recv by rank comparison; the
non-blocking flavor issues both sides and synchronizes once per round
(optimization A, which Fig. 9b credits with a ~1.6x speedup).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.core.exchange import full_exchange, pairwise_send_first
from repro.hw.machine import CoreEnv
from repro.obs.spans import span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.comm import Communicator


def pairwise_alltoall(comm: "Communicator", env: CoreEnv,
                      sendbuf: np.ndarray) -> Generator:
    """``sendbuf`` has shape ``(p, n)``: row j is destined for rank j.
    Returns the ``(p, n)`` matrix of received rows (row j from rank j)."""
    p, me = env.size, env.rank
    if sendbuf.shape[0] != p:
        raise ValueError(
            f"alltoall sendbuf must have {p} rows, got {sendbuf.shape[0]}")
    out = np.empty_like(sendbuf)
    for r in range(p):
        with span(env, "round", r):
            partner = (r - me) % p
            if partner == me:
                # Local row: a private-memory copy, no communication.
                yield from env.consume(
                    env.latency.private_copy_bytes(sendbuf[me].nbytes),
                    "copy")
                out[me] = sendbuf[me]
                continue
            yield from full_exchange(
                comm, env, sendbuf[partner], partner, out[partner], partner,
                pairwise_send_first(env, partner))
    return out
