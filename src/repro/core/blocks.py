"""Vector block partitioning — the paper's optimization C (Fig. 6).

The ring (bucket) algorithms split an ``n``-element operand vector into
``p`` blocks, one per core; block sizes bound the per-round work.

* **Standard** (RCCE_comm rev 303): general block size ``n // p``; the
  *first* block additionally absorbs the remainder ``n mod p``.  For
  ``n = 575, p = 48`` the first block is 58 elements against 11 for the
  rest — a ~5.3:1 imbalance; for the application's 552-element vectors it
  is ~3.2:1 (Fig. 6a).
* **Balanced** (the paper's fix): the first ``n mod p`` blocks get one
  extra element, bounding the imbalance at ``(q+1)/q ≈ 1.1`` (Fig. 6b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Partition:
    """The result of splitting ``n`` elements into ``p`` blocks."""

    n: int
    sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if sum(self.sizes) != self.n:
            raise ValueError(
                f"block sizes {self.sizes} do not cover {self.n} elements")

    @property
    def p(self) -> int:
        return len(self.sizes)

    def size(self, block: int) -> int:
        return self.sizes[block]

    def offset(self, block: int) -> int:
        return sum(self.sizes[:block])

    def slice_of(self, block: int) -> slice:
        off = self.offset(block)
        return slice(off, off + self.sizes[block])

    def max_size(self) -> int:
        return max(self.sizes)

    def min_size(self) -> int:
        return min(self.sizes)

    def imbalance_ratio(self) -> float:
        """Largest-to-smallest block ratio (Fig. 6 annotations).

        Blocks of size zero make the ratio infinite — the standard scheme
        produces them whenever ``n < p``.
        """
        largest = self.max_size()
        smallest = self.min_size()
        if largest == 0:
            return 1.0  # empty partition: trivially balanced
        if smallest == 0:
            return math.inf
        return largest / smallest


def standard_partition(n: int, p: int) -> Partition:
    """RCCE_comm's splitting: block 0 gets ``n//p + n%p``, the rest ``n//p``."""
    _check(n, p)
    general = n // p
    first = general + n % p
    return Partition(n, (first,) + (general,) * (p - 1))


def balanced_partition(n: int, p: int) -> Partition:
    """The paper's splitting: first ``n mod p`` blocks get one extra element."""
    _check(n, p)
    general = n // p
    extra = n % p
    return Partition(n, (general + 1,) * extra + (general,) * (p - extra))


def _check(n: int, p: int) -> None:
    if n < 0:
        raise ValueError(f"negative element count: {n}")
    if p <= 0:
        raise ValueError(f"non-positive block count: {p}")


#: A partitioning strategy: (n, p) -> Partition.
Partitioner = Callable[[int, int], Partition]

PARTITIONERS: dict[str, Partitioner] = {
    "standard": standard_partition,
    "balanced": balanced_partition,
}


def partitioner_by_name(name: str) -> Partitioner:
    try:
        return PARTITIONERS[name]
    except KeyError:
        raise KeyError(
            f"unknown partitioner {name!r}; known: {sorted(PARTITIONERS)}"
        ) from None


def fig6_table(p: int = 48, sizes: tuple[int, ...] = (528, 552, 575)) -> list[dict]:
    """Reproduce the Fig.-6 comparison: block sizes and imbalance ratios
    for the standard and optimized splitting at the paper's three vector
    lengths.  Returns one row per vector length."""
    rows = []
    for n in sizes:
        std = standard_partition(n, p)
        bal = balanced_partition(n, p)
        rows.append({
            "n": n,
            "standard_first": std.size(0),
            "standard_general": std.size(p - 1),
            "standard_ratio": std.imbalance_ratio(),
            "balanced_max": bal.max_size(),
            "balanced_min": bal.min_size(),
            "balanced_ratio": bal.imbalance_ratio(),
        })
    return rows
