"""Allgather: ring algorithms, for full vectors and for partition blocks.

Two entry points:

* :func:`ring_allgather` — the standalone collective of Fig. 9a: every
  rank contributes an ``n``-element vector, every rank ends up with the
  ``(p, n)`` matrix of all contributions.
* :func:`ring_allgather_blocks` — the second phase of Allreduce (and the
  gather phase of the long Broadcast): each rank starts holding one block
  of a partitioned vector and the ring circulates the blocks until every
  rank holds the complete vector.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.core.blocks import Partition
from repro.core.exchange import full_exchange, ring_send_first
from repro.hw.machine import CoreEnv
from repro.obs.spans import span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.comm import Communicator


def ring_allgather(comm: "Communicator", env: CoreEnv,
                   sendbuf: np.ndarray) -> Generator:
    """Standalone Allgather; returns a ``(p, n)`` array (row r = rank r)."""
    p, me = env.size, env.rank
    n = sendbuf.size
    out = np.empty((p, n), dtype=sendbuf.dtype)
    out[me] = sendbuf
    if p == 1:
        return out
    right = (me + 1) % p
    left = (me - 1) % p
    send_first = ring_send_first(env)
    for r in range(p - 1):
        with span(env, "round", r):
            send_row = (me - r) % p
            recv_row = (me - 1 - r) % p
            yield from full_exchange(comm, env, out[send_row], right,
                                     out[recv_row], left, send_first)
    return out


def ring_allgather_blocks(comm: "Communicator", env: CoreEnv,
                          vector: np.ndarray, part: Partition,
                          shift: int = 0) -> Generator:
    """Circulate partition blocks until ``vector`` is complete everywhere.

    On entry rank ``me``'s block ``(me - shift) % p`` slice of ``vector``
    must hold valid data (the convention produced by
    :func:`~repro.core.reduce_scatter.ring_reduce_scatter` with the same
    ``shift``).  ``vector`` is filled in place and returned.
    """
    p, me = env.size, env.rank
    if p == 1:
        return vector
    right = (me + 1) % p
    left = (me - 1) % p
    vme = (me - shift) % p
    send_first = ring_send_first(env)
    for r in range(p - 1):
        with span(env, "round", r):
            send_block = (vme - r) % p
            recv_block = (vme - 1 - r) % p
            send_data = vector[part.slice_of(send_block)]
            recv_buf = np.empty(part.size(recv_block), dtype=vector.dtype)
            yield from full_exchange(comm, env, send_data, right, recv_buf,
                                     left, send_first)
            vector[part.slice_of(recv_block)] = recv_buf
    return vector
