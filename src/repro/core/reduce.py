"""Reduce-to-root algorithms.

* :func:`binomial_reduce` — tree reduction for short vectors (and the
  related-work baseline [8] that beats RCCE's serial native reduce >6x).
* :func:`reduce_scatter_gather_reduce` — RCCE_comm's long-vector variant:
  ring ReduceScatter (blocks labeled in root-relative vrank space) followed
  by a binomial gather of the blocks to the root.  Both phases profit from
  optimizations A–C, which is why Fig. 9e shows the same ~1.6x lightweight
  speedup and the period-48 load-balancing sawtooth as Allreduce.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.core.ops import ReduceOp
from repro.core.reduce_scatter import ring_reduce_scatter
from repro.hw.machine import CoreEnv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.comm import Communicator


def binomial_reduce(comm: "Communicator", env: CoreEnv, sendbuf: np.ndarray,
                    op: ReduceOp, root: int = 0) -> Generator:
    """Binomial-tree reduction; returns the result at root, None elsewhere."""
    p, me = env.size, env.rank
    vrank = (me - root) % p
    acc = sendbuf.copy()
    tmp = np.empty_like(sendbuf)
    mask = 1
    while mask < p:
        if vrank & mask:
            dst = (vrank - mask + root) % p
            yield from comm.send(env, acc, dst)
            return None
        src_v = vrank | mask
        if src_v < p:
            src = (src_v + root) % p
            yield from comm.recv(env, tmp, src)
            yield from env.consume(
                env.latency.reduce_doubles(acc.size), "compute")
            acc = op(acc, tmp)
        mask <<= 1
    return acc


def binomial_gather_blocks(comm: "Communicator", env: CoreEnv,
                           vector: np.ndarray, part, root: int) -> Generator:
    """Binomial gather of partition blocks to the root.

    On entry rank ``me`` holds block ``vrank(me)`` of ``vector`` (vrank
    space); on exit the root's ``vector`` is complete.  Subtrees cover
    contiguous vrank ranges, hence contiguous element ranges.
    """
    p, me = env.size, env.rank
    vrank = (me - root) % p
    extent = 1  # blocks [vrank, vrank + extent) currently held
    mask = 1
    while mask < p:
        if vrank & mask == 0:
            src_v = vrank + mask
            if src_v < p:
                src = (src_v + root) % p
                src_extent = min(mask, p - src_v)
                lo = part.offset(src_v)
                hi = part.offset(src_v + src_extent - 1) + part.size(
                    src_v + src_extent - 1)
                yield from comm.recv(env, vector[lo:hi], src)
                extent += src_extent
        else:
            dst = (vrank - mask + root) % p
            lo = part.offset(vrank)
            hi = part.offset(vrank + extent - 1) + part.size(
                vrank + extent - 1)
            yield from comm.send(env, vector[lo:hi], dst)
            return vector
        mask <<= 1
    return vector


def reduce_scatter_gather_reduce(comm: "Communicator", env: CoreEnv,
                                 sendbuf: np.ndarray, op: ReduceOp,
                                 root: int = 0) -> Generator:
    """Long-vector Reduce: ring ReduceScatter + binomial gather to root."""
    p = env.size
    if p == 1:
        return sendbuf.copy()
    my_block, part = yield from ring_reduce_scatter(
        comm, env, sendbuf, op, shift=root)
    vector = np.empty_like(sendbuf)
    vrank = (env.rank - root) % p
    vector[part.slice_of(vrank)] = my_block
    yield from binomial_gather_blocks(comm, env, vector, part, root)
    return vector if env.rank == root else None
