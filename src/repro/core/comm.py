"""The communicator: one object bundling a point-to-point layer, a block
partitioner and algorithm selections into an MPI-like collective API.

All collective methods are SPMD generators: every rank of the launch calls
the same method with its own arguments and ``yield from``s it.

    comm = make_communicator(machine, "lightweight_balanced")

    def program(env):
        result = yield from comm.allreduce(env, my_vector)
        return result

(See :mod:`repro.core.registry` for the stack names of the paper's
figures.)
"""

from __future__ import annotations

from typing import Generator, Optional, Sequence, Union

import numpy as np

from repro.core import allreduce as _allreduce
from repro.core import alltoall as _alltoall
from repro.core import alt_algorithms as _alt
from repro.core import bcast as _bcast
from repro.core import reduce as _reduce
from repro.core import scan as _scan
from repro.core.allgather import ring_allgather
from repro.core.barrier import dissemination_barrier
from repro.core.blocks import Partition, Partitioner, standard_partition
from repro.core.mpb_allreduce import mpb_allreduce
from repro.core.ops import ReduceOp, SUM
from repro.core.reduce_scatter import ring_reduce_scatter
from repro.hw.machine import CoreEnv, Machine
from repro.ircce.requests import NonBlockingLayer
from repro.obs.spans import span
from repro.rcce.api import RCCE
from repro.sched.engine import parse_sched_algo, run_schedule


class Communicator:
    """MPI-like collectives over a chosen point-to-point stack."""

    def __init__(self, machine: Machine,
                 p2p: Union[RCCE, NonBlockingLayer],
                 partitioner: Partitioner = standard_partition,
                 *,
                 name: str = "",
                 use_mpb_allreduce: bool = False,
                 long_threshold_bytes: int = 512):
        self.machine = machine
        self.p2p = p2p
        self.partitioner = partitioner
        self.name = name or p2p.name
        self.use_mpb_allreduce = use_mpb_allreduce
        #: Vectors at least this large use the long-message algorithms
        #: (ring/scatter-based); smaller ones use binomial trees.
        self.long_threshold_bytes = long_threshold_bytes

    # -- plumbing ------------------------------------------------------------
    @property
    def blocking(self) -> bool:
        return isinstance(self.p2p, RCCE)

    def partition(self, n: int, p: int) -> Partition:
        """Split ``n`` elements over ``p`` ranks with this stack's scheme."""
        return self.partitioner(n, p)

    def _enter(self, env: CoreEnv) -> Generator:
        """Per-call entry overhead of the collective layer."""
        yield from env.consume(
            env.latency.core_cycles(self.machine.config.collective_call_cycles),
            "overhead")

    def _is_long(self, buf: np.ndarray) -> bool:
        return buf.nbytes >= self.long_threshold_bytes

    # -- point-to-point (blocking semantics over either layer) -------------
    def send(self, env: CoreEnv, data: np.ndarray, dst: int) -> Generator:
        if self.blocking:
            yield from self.p2p.send(env, data, dst)
        else:
            req = yield from self.p2p.isend(env, data, dst)
            yield from self.p2p.wait(env, req)

    def recv(self, env: CoreEnv, out: np.ndarray, src: int) -> Generator:
        if self.blocking:
            yield from self.p2p.recv(env, out, src)
        else:
            req = yield from self.p2p.irecv(env, out, src)
            yield from self.p2p.wait(env, req)
        return out

    # -- collectives -----------------------------------------------------------
    def barrier(self, env: CoreEnv) -> Generator:
        with span(env, "barrier"):
            yield from self._enter(env)
            if self.blocking:
                yield from self.p2p.barrier(env)
            else:
                yield from dissemination_barrier(self, env)

    def bcast(self, env: CoreEnv, buf: np.ndarray, root: int = 0,
              algo: Optional[str] = None) -> Generator:
        """Broadcast ``buf`` from ``root``; every rank's ``buf`` is filled
        in place and returned.

        ``algo`` overrides the size-based selection: ``binomial``,
        ``scatter_allgather``, or any ``sched:<builder>`` label (see
        :mod:`repro.sched`).
        """
        with span(env, "bcast", buf.size):
            yield from self._enter(env)
            if env.size == 1:
                return buf
            sched_name = parse_sched_algo(algo)
            if sched_name is not None:
                result = yield from run_schedule(self, env, "bcast",
                                                 sched_name, buf, root=root)
                return result
            if algo is None:
                algo = ("scatter_allgather" if self._is_long(buf)
                        else "binomial")
            if algo == "scatter_allgather":
                yield from _bcast.scatter_allgather_bcast(self, env, buf,
                                                          root)
            elif algo == "binomial":
                yield from _bcast.binomial_bcast(self, env, buf, root)
            else:
                raise KeyError(f"unknown bcast algorithm {algo!r}")
            return buf

    def reduce(self, env: CoreEnv, sendbuf: np.ndarray, op: ReduceOp = SUM,
               root: int = 0, algo: Optional[str] = None) -> Generator:
        """Reduce to ``root``; returns the result there, None elsewhere.

        ``algo`` overrides the size-based selection: ``binomial``,
        ``rsg`` (ring ReduceScatter + binomial gather), or any
        ``sched:<builder>`` label.
        """
        with span(env, "reduce", sendbuf.size):
            yield from self._enter(env)
            if env.size == 1:
                return sendbuf.copy()
            sched_name = parse_sched_algo(algo)
            if sched_name is not None:
                result = yield from run_schedule(
                    self, env, "reduce", sched_name, sendbuf, op=op,
                    root=root)
                return result
            if algo is None:
                algo = "rsg" if self._is_long(sendbuf) else "binomial"
            if algo == "rsg":
                result = yield from _reduce.reduce_scatter_gather_reduce(
                    self, env, sendbuf, op, root)
            elif algo == "binomial":
                result = yield from _reduce.binomial_reduce(
                    self, env, sendbuf, op, root)
            else:
                raise KeyError(f"unknown reduce algorithm {algo!r}")
            return result

    def allreduce(self, env: CoreEnv, sendbuf: np.ndarray,
                  op: ReduceOp = SUM, algo: Optional[str] = None) -> Generator:
        """Allreduce; returns the reduced vector on every rank.

        ``algo`` overrides the stack's size-based selection; one of
        ``rsag`` (ring ReduceScatter+Allgather), ``reduce_bcast``
        (binomial trees), ``recursive_doubling``, ``recursive_halving``
        (Rabenseifner), ``mpb`` (the MPB-direct algorithm), or any
        ``sched:<builder>`` label executed by the schedule engine.
        """
        with span(env, "allreduce", sendbuf.size):
            yield from self._enter(env)
            if env.size == 1:
                return sendbuf.copy()
            sched_name = parse_sched_algo(algo)
            if sched_name is not None:
                result = yield from run_schedule(
                    self, env, "allreduce", sched_name, sendbuf, op=op)
                return result
            if algo is None:
                if self.use_mpb_allreduce and self._is_long(sendbuf):
                    algo = "mpb"
                elif self._is_long(sendbuf):
                    algo = "rsag"
                else:
                    algo = "reduce_bcast"
            if algo == "mpb":
                faults = self.machine.faults
                if faults is not None:
                    # Graceful degradation: count MPB-allreduce epochs per
                    # rank and consult the injector's rank-consistent
                    # verdicts — every rank sees the same epoch number and
                    # the same threshold crossing, so either all ranks
                    # enter the MPB algorithm or all fall back to the
                    # private-memory ring (a split decision would deadlock
                    # the handshake).
                    epoch = env.data.get("mpbar.epoch", 0)
                    env.data["mpbar.epoch"] = epoch + 1
                    if faults.mpb_degraded(epoch):
                        faults.record("mpb_fallback", f"core{env.core_id}",
                                      {"epoch": epoch, "algo": "rsag"})
                        with span(env, "fallback", epoch):
                            result = yield from _allreduce.rsag_allreduce(
                                self, env, sendbuf, op)
                        return result
                    result = yield from mpb_allreduce(
                        self, env, sendbuf, op, fault_epoch=epoch)
                else:
                    result = yield from mpb_allreduce(self, env, sendbuf, op)
            elif algo == "rsag":
                result = yield from _allreduce.rsag_allreduce(
                    self, env, sendbuf, op)
            elif algo == "reduce_bcast":
                result = yield from _allreduce.reduce_bcast_allreduce(
                    self, env, sendbuf, op)
            elif algo == "recursive_doubling":
                result = yield from _alt.recursive_doubling_allreduce(
                    self, env, sendbuf, op)
            elif algo == "recursive_halving":
                result = yield from _alt.recursive_halving_allreduce(
                    self, env, sendbuf, op)
            else:
                raise KeyError(f"unknown allreduce algorithm {algo!r}")
            return result

    def scan(self, env: CoreEnv, sendbuf: np.ndarray,
             op: ReduceOp = SUM, algo: Optional[str] = None) -> Generator:
        """Inclusive prefix reduction: rank r returns fold(ranks 0..r).

        ``algo``: ``recursive_doubling`` (default) or a
        ``sched:<builder>`` label.
        """
        with span(env, "scan", sendbuf.size):
            yield from self._enter(env)
            if env.size == 1:
                return sendbuf.copy()
            sched_name = parse_sched_algo(algo)
            if sched_name is not None:
                result = yield from run_schedule(
                    self, env, "scan", sched_name, sendbuf, op=op)
                return result
            if algo not in (None, "recursive_doubling"):
                raise KeyError(f"unknown scan algorithm {algo!r}")
            result = yield from _scan.recursive_doubling_scan(self, env,
                                                              sendbuf, op)
            return result

    def exscan(self, env: CoreEnv, sendbuf: np.ndarray,
               op: ReduceOp = SUM) -> Generator:
        """Exclusive prefix reduction (None at rank 0)."""
        with span(env, "exscan", sendbuf.size):
            yield from self._enter(env)
            if env.size == 1:
                return None
            result = yield from _scan.exscan_from_scan(self, env, sendbuf,
                                                       op)
            return result

    def reduce_scatter(self, env: CoreEnv, sendbuf: np.ndarray,
                       op: ReduceOp = SUM,
                       algo: Optional[str] = None) -> Generator:
        """Ring ReduceScatter; returns ``(my_block, partition)`` where
        ``my_block`` is the reduced block ``env.rank``.

        ``algo``: ``ring`` (default) or a ``sched:<builder>`` label.
        """
        with span(env, "reduce_scatter", sendbuf.size):
            yield from self._enter(env)
            sched_name = parse_sched_algo(algo)
            if sched_name is not None:
                result = yield from run_schedule(
                    self, env, "reduce_scatter", sched_name, sendbuf,
                    op=op)
                return result
            if algo not in (None, "ring"):
                raise KeyError(
                    f"unknown reduce_scatter algorithm {algo!r}")
            result = yield from ring_reduce_scatter(self, env, sendbuf, op)
            return result

    def allgather(self, env: CoreEnv, sendbuf: np.ndarray,
                  algo: Optional[str] = None) -> Generator:
        """Allgather; returns the ``(p, n)`` matrix of contributions.

        ``algo``: ``ring`` (default) or ``bruck``.
        """
        with span(env, "allgather", sendbuf.size):
            yield from self._enter(env)
            sched_name = parse_sched_algo(algo)
            if sched_name is not None:
                result = yield from run_schedule(
                    self, env, "allgather", sched_name, sendbuf)
                return result
            if algo in (None, "ring"):
                result = yield from ring_allgather(self, env, sendbuf)
            elif algo == "bruck":
                result = yield from _alt.bruck_allgather(self, env, sendbuf)
            else:
                raise KeyError(f"unknown allgather algorithm {algo!r}")
            return result

    def alltoall(self, env: CoreEnv, sendbuf: np.ndarray,
                 algo: Optional[str] = None) -> Generator:
        """Pairwise Alltoall of the ``(p, n)`` matrix ``sendbuf``.

        ``algo``: ``pairwise`` (default).
        """
        with span(env, "alltoall", sendbuf.size):
            yield from self._enter(env)
            sched_name = parse_sched_algo(algo)
            if sched_name is not None:
                result = yield from run_schedule(
                    self, env, "alltoall", sched_name, sendbuf)
                return result
            if algo not in (None, "pairwise"):
                raise KeyError(f"unknown alltoall algorithm {algo!r}")
            result = yield from _alltoall.pairwise_alltoall(self, env,
                                                            sendbuf)
            return result

    def scatter(self, env: CoreEnv, sendbuf: Optional[np.ndarray],
                root: int = 0) -> Generator:
        """Binomial scatter of partition blocks from ``root``; returns this
        rank's block.  Every rank passes an equally-shaped full-size buffer
        (MPI in-place style); only the root's contents matter."""
        with span(env, "scatter", None if sendbuf is None else sendbuf.size):
            yield from self._enter(env)
            if sendbuf is None:
                raise ValueError(
                    "scatter requires a full-size buffer per rank")
            part = self.partition(sendbuf.size, env.size)
            if env.size == 1:
                return sendbuf.copy()
            yield from _bcast.binomial_scatter_ranges(self, env, sendbuf,
                                                      part, root)
            vrank = (env.rank - root) % env.size
            return sendbuf[part.slice_of(vrank)].copy()

    def gather(self, env: CoreEnv, block: np.ndarray, total_size: int,
               root: int = 0) -> Generator:
        """Binomial gather of per-rank partition blocks to ``root``.

        ``block`` must be rank ``me``'s block of a ``total_size``-element
        partition (vrank-relative to ``root``).  Returns the assembled
        vector at root, None elsewhere.
        """
        with span(env, "gather", total_size):
            yield from self._enter(env)
            part = self.partition(total_size, env.size)
            vrank = (env.rank - root) % env.size
            if block.size != part.size(vrank):
                raise ValueError(
                    f"rank {env.rank} passed a block of {block.size} "
                    f"elements; partition expects {part.size(vrank)}")
            vector = np.empty(total_size, dtype=block.dtype)
            vector[part.slice_of(vrank)] = block
            if env.size == 1:
                return vector
            yield from _reduce.binomial_gather_blocks(self, env, vector,
                                                      part, root)
            return vector if env.rank == root else None

    def scatterv(self, env: CoreEnv, sendbuf: Optional[np.ndarray],
                 counts: Sequence[int], root: int = 0) -> Generator:
        """Variable-count scatter (``MPI_Scatterv``): rank ``r`` receives
        ``counts[(r - root) % p]`` elements.  Every rank passes a
        full-size buffer (only the root's contents matter) and the same
        ``counts``."""
        with span(env, "scatterv", int(sum(counts))):
            yield from self._enter(env)
            part = Partition(int(sum(counts)),
                             tuple(int(c) for c in counts))
            if sendbuf is None or sendbuf.size != part.n:
                raise ValueError(
                    f"scatterv needs a {part.n}-element buffer on every "
                    f"rank")
            vrank = (env.rank - root) % env.size
            if env.size == 1:
                return sendbuf.copy()
            if len(counts) != env.size:
                raise ValueError(
                    f"scatterv got {len(counts)} counts for {env.size} "
                    f"ranks")
            yield from _bcast.binomial_scatter_ranges(self, env, sendbuf,
                                                      part, root)
            return sendbuf[part.slice_of(vrank)].copy()

    def gatherv(self, env: CoreEnv, block: np.ndarray,
                counts: Sequence[int], root: int = 0) -> Generator:
        """Variable-count gather (``MPI_Gatherv``): rank ``r`` contributes
        ``counts[(r - root) % p]`` elements; the root returns the
        concatenation (in vrank order), others None."""
        with span(env, "gatherv", int(sum(counts))):
            yield from self._enter(env)
            if len(counts) != env.size:
                raise ValueError(
                    f"gatherv got {len(counts)} counts for {env.size} "
                    f"ranks")
            part = Partition(int(sum(counts)),
                             tuple(int(c) for c in counts))
            vrank = (env.rank - root) % env.size
            if block.size != part.size(vrank):
                raise ValueError(
                    f"rank {env.rank} passed {block.size} elements; counts "
                    f"say {part.size(vrank)}")
            vector = np.empty(part.n, dtype=block.dtype)
            vector[part.slice_of(vrank)] = block
            if env.size == 1:
                return vector
            yield from _reduce.binomial_gather_blocks(self, env, vector,
                                                      part, root)
            return vector if env.rank == root else None

    def split(self, env: CoreEnv, color: Optional[int],
              key: Optional[int] = None) -> Generator:
        """MPI_Comm_split: partition the ranks into groups by ``color``.

        Returns a fresh :class:`~repro.hw.machine.CoreEnv` scoped to this
        rank's group (ranks ordered by ``key``, ties by old rank), or
        ``None`` for ranks passing ``color=None`` (MPI_UNDEFINED).  The
        group environment works with every collective of this
        communicator:

            sub = yield from comm.split(env, env.rank % 2)
            result = yield from comm.allreduce(sub, data)

        Like MPI, the split itself is collective (an allgather of the
        color/key table).
        """
        with span(env, "split", color):
            yield from self._enter(env)
            payload = np.array([
                float(color) if color is not None else np.nan,
                float(key if key is not None else env.rank),
            ])
            table = yield from self.allgather(env, payload)
            if color is None:
                return None
            members = [r for r in range(env.size) if table[r, 0] == color]
            members.sort(key=lambda r: (table[r, 1], r))
            cores = [env.core_of_rank(r) for r in members]
            return CoreEnv(self.machine, members.index(env.rank),
                           len(members), cores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Communicator {self.name!r} p2p={self.p2p.name} "
                f"partitioner={self.partitioner.__name__}>")
