"""ReduceScatter: the ring (bucket) algorithm of RCCE_comm (Fig. 2).

Cores iteratively "push" blocks of their operand vector along a virtual
ring.  After ``p-1`` rounds, rank ``r`` holds the fully reduced block
``(r - shift) mod p`` of the partition (``shift = 0`` gives the standard
MPI assignment: block ``r`` at rank ``r``; a non-zero shift labels blocks
in root-relative vrank space for the rooted Reduce).

Round structure (rank ``me``, ``p`` ranks, block indices mod ``p``):

* round ``r`` sends the partial sum of block ``me - 1 - r`` to the right
  neighbour and receives block ``me - 2 - r`` from the left neighbour,
  reducing it into the local accumulator.

The per-round cost is governed by the *largest* block exchanged anywhere in
the ring that round (all cores synchronize with their neighbours), which is
what makes the standard partition's oversized first block so expensive —
optimization C.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.core.blocks import Partition
from repro.core.exchange import full_exchange, ring_send_first
from repro.core.ops import ReduceOp
from repro.hw.machine import CoreEnv
from repro.obs.spans import span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.comm import Communicator


def ring_reduce_scatter(comm: "Communicator", env: CoreEnv,
                        sendbuf: np.ndarray, op: ReduceOp,
                        shift: int = 0) -> Generator:
    """Run the ring; returns ``(my_block, partition)``.

    ``my_block`` is a fresh array holding the reduced block
    ``(me - shift) % p``; ``partition`` maps block indices to vector
    slices.
    """
    p, me = env.size, env.rank
    part: Partition = comm.partition(sendbuf.size, p)
    if p == 1:
        return sendbuf.copy(), part
    acc = sendbuf.copy()
    right = (me + 1) % p
    left = (me - 1) % p
    vme = (me - shift) % p
    send_first = ring_send_first(env)
    for r in range(p - 1):
        with span(env, "round", r):
            send_block = (vme - 1 - r) % p
            recv_block = (vme - 2 - r) % p
            send_data = acc[part.slice_of(send_block)]
            recv_buf = np.empty(part.size(recv_block), dtype=acc.dtype)
            yield from full_exchange(comm, env, send_data, right, recv_buf,
                                     left, send_first)
            nels = part.size(recv_block)
            if nels:
                with span(env, "reduce", nels):
                    yield from env.consume(
                        env.latency.reduce_doubles(nels), "compute")
                sl = part.slice_of(recv_block)
                acc[sl] = op(acc[sl], recv_buf)
    return acc[part.slice_of(vme)].copy(), part
