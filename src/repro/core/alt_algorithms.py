"""Alternative collective algorithms (the RCKMPI/MPICH repertoire).

RCKMPI "contains sophisticated algorithms for collective operations.
These provide a set of routines for different message sizes and pick the
one that performs best at runtime" (Section III).  Beyond the ring and
binomial algorithms the main library uses, this module provides the other
classic shapes so the algorithm-selection ablation can compare them on
the simulated chip:

* :func:`recursive_doubling_allreduce` — log2(p) rounds of full-vector
  exchanges; latency-optimal for short vectors, bandwidth-hungry for long
  ones (the crossover against ReduceScatter+Allgather is a classic MPI
  tuning fact the ablation reproduces).
* :func:`recursive_halving_allreduce` — Rabenseifner's algorithm:
  recursive-halving reduce-scatter + recursive-doubling allgather.
* :func:`bruck_allgather` — ceil(log2 p) rounds with doubling block
  counts (plus the final local rotation Bruck pays for starting at every
  rank's own block).

All are SPMD generators over a :class:`~repro.core.comm.Communicator` and
work for arbitrary (non-power-of-two) rank counts via the standard
fold-in/fold-out of the excess ranks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.core.exchange import full_exchange, pairwise_send_first
from repro.core.ops import ReduceOp
from repro.hw.machine import CoreEnv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.comm import Communicator


def _largest_pow2_below(p: int) -> int:
    pow2 = 1
    while pow2 * 2 <= p:
        pow2 *= 2
    return pow2


def _fold_in(comm: "Communicator", env: CoreEnv, acc: np.ndarray,
             op: ReduceOp, pow2: int) -> Generator:
    """Excess ranks (>= pow2) send their vector to rank - pow2 and go
    passive; returns (active, acc)."""
    p, me = env.size, env.rank
    rest = p - pow2
    if me >= pow2:
        yield from comm.send(env, acc, me - pow2)
        return False, acc
    if me < rest:
        tmp = np.empty_like(acc)
        yield from comm.recv(env, tmp, me + pow2)
        yield from env.consume(env.latency.reduce_doubles(acc.size),
                               "compute")
        acc = op(acc, tmp)
    return True, acc


def _fold_out(comm: "Communicator", env: CoreEnv, acc: np.ndarray,
              pow2: int) -> Generator:
    """Mirror of :func:`_fold_in`: actives return the result to the
    passive ranks."""
    p, me = env.size, env.rank
    rest = p - pow2
    if me >= pow2:
        yield from comm.recv(env, acc, me - pow2)
    elif me < rest:
        yield from comm.send(env, acc, me + pow2)
    return acc


def recursive_doubling_allreduce(comm: "Communicator", env: CoreEnv,
                                 sendbuf: np.ndarray,
                                 op: ReduceOp) -> Generator:
    """log2(p) full-vector exchange rounds (plus non-pow2 folding)."""
    p, me = env.size, env.rank
    acc = sendbuf.copy()
    if p == 1:
        return acc
    pow2 = _largest_pow2_below(p)
    active, acc = yield from _fold_in(comm, env, acc, op, pow2)
    if active:
        mask = 1
        tmp = np.empty_like(acc)
        while mask < pow2:
            partner = me ^ mask
            yield from full_exchange(comm, env, acc, partner, tmp, partner,
                                     pairwise_send_first(env, partner))
            yield from env.consume(env.latency.reduce_doubles(acc.size),
                                   "compute")
            acc = op(acc, tmp)
            mask <<= 1
    acc = yield from _fold_out(comm, env, acc, pow2)
    return acc


def recursive_halving_allreduce(comm: "Communicator", env: CoreEnv,
                                sendbuf: np.ndarray,
                                op: ReduceOp) -> Generator:
    """Rabenseifner: recursive-halving reduce-scatter, then
    recursive-doubling allgather, on the pow2 active set."""
    p, me = env.size, env.rank
    acc = sendbuf.copy()
    n = acc.size
    if p == 1:
        return acc
    pow2 = _largest_pow2_below(p)
    active, acc = yield from _fold_in(comm, env, acc, op, pow2)
    if active:
        # Reduce-scatter by recursive halving: after each round I keep
        # responsibility for half my previous range.  The stack of
        # enclosing ranges drives the allgather phase (sibling halves can
        # be unequal when n is not divisible by pow2).
        lo, hi = 0, n
        levels: list[tuple[int, int]] = []
        mask = pow2 >> 1
        while mask >= 1:
            partner = me ^ mask
            levels.append((lo, hi))
            mid = lo + (hi - lo) // 2
            if me & mask:
                keep = (mid, hi)
                give = (lo, mid)
            else:
                keep = (lo, mid)
                give = (mid, hi)
            recv_buf = np.empty(keep[1] - keep[0], dtype=acc.dtype)
            yield from full_exchange(
                comm, env, acc[give[0]:give[1]], partner, recv_buf, partner,
                pairwise_send_first(env, partner))
            nels = recv_buf.size
            if nels:
                yield from env.consume(env.latency.reduce_doubles(nels),
                                       "compute")
                acc[keep[0]:keep[1]] = op(acc[keep[0]:keep[1]], recv_buf)
            lo, hi = keep
            mask >>= 1
        # Allgather by recursive doubling: unwind the range stack; each
        # round swaps my range for the sibling half of its enclosure.
        mask = 1
        for elo, ehi in reversed(levels):
            partner = me ^ mask
            mid = elo + (ehi - elo) // 2
            if (lo, hi) == (elo, mid):
                plo, phi = mid, ehi
            else:
                plo, phi = elo, mid
            recv_buf = np.empty(phi - plo, dtype=acc.dtype)
            yield from full_exchange(
                comm, env, acc[lo:hi], partner, recv_buf, partner,
                pairwise_send_first(env, partner))
            acc[plo:phi] = recv_buf
            lo, hi = elo, ehi
            mask <<= 1
    acc = yield from _fold_out(comm, env, acc, pow2)
    return acc


def bruck_allgather(comm: "Communicator", env: CoreEnv,
                    sendbuf: np.ndarray) -> Generator:
    """Bruck's allgather: ceil(log2 p) rounds, block counts doubling.

    Works directly for arbitrary p.  Returns the (p, n) matrix.  The
    final rotation (Bruck's tax for indexing blocks relative to self) is
    charged as a private-memory copy.
    """
    p, me = env.size, env.rank
    n = sendbuf.size
    work = np.empty((p, n), dtype=sendbuf.dtype)
    work[0] = sendbuf
    have = 1
    distance = 1
    while have < p:
        count = min(have, p - have)
        dst = (me - distance) % p
        src = (me + distance) % p
        recv_buf = np.empty((count, n), dtype=sendbuf.dtype)
        yield from full_exchange(
            comm, env, work[:count].reshape(-1), dst,
            recv_buf.reshape(-1), src,
            pairwise_send_first(env, dst))
        work[have:have + count] = recv_buf
        have += count
        distance <<= 1
    # Final rotation: work[i] currently holds rank (me + i) % p's vector.
    yield from env.consume(
        env.latency.private_copy_bytes(work.nbytes), "copy")
    out = np.empty_like(work)
    for i in range(p):
        out[(me + i) % p] = work[i]
    return out
