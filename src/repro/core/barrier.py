"""Barrier algorithms.

The blocking stack uses RCCE's master/worker flag barrier; the
non-blocking stacks use a dissemination barrier (log2(p) rounds of
zero-byte exchanges with stride-doubling partners), which the relaxed
synchronization of optimization A makes deadlock-free without any call
ordering.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.hw.machine import CoreEnv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.comm import Communicator

_EMPTY = np.empty(0, dtype=np.uint8)


def dissemination_barrier(comm: "Communicator", env: CoreEnv) -> Generator:
    """ceil(log2 p) rounds; round k synchronizes with ranks at stride 2^k."""
    p, me = env.size, env.rank
    if p == 1:
        return
    layer = comm.p2p
    rounds = max(1, math.ceil(math.log2(p)))
    recv_buf = np.empty(0, dtype=np.uint8)
    for k in range(rounds):
        stride = 1 << k
        dst = (me + stride) % p
        src = (me - stride) % p
        sreq = yield from layer.isend(env, _EMPTY, dst)
        rreq = yield from layer.irecv(env, recv_buf, src)
        yield from layer.wait_all(env, [sreq, rreq])
