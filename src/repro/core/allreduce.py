"""Allreduce: the paper's running example.

For long vectors RCCE_comm implements Allreduce as a ring ReduceScatter
followed by a ring Allgather of the reduced blocks (Section IV-A); short
vectors use binomial Reduce + Broadcast.  All of optimizations A (relaxed
synchronization), B (lightweight primitives) and C (balanced blocks) act
on the long-vector path; optimization D replaces it entirely with the
MPB-direct algorithm of :mod:`repro.core.mpb_allreduce`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.core.allgather import ring_allgather_blocks
from repro.core.bcast import binomial_bcast
from repro.core.ops import ReduceOp
from repro.core.reduce import binomial_reduce
from repro.core.reduce_scatter import ring_reduce_scatter
from repro.hw.machine import CoreEnv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.comm import Communicator


def rsag_allreduce(comm: "Communicator", env: CoreEnv, sendbuf: np.ndarray,
                   op: ReduceOp) -> Generator:
    """ReduceScatter + Allgather (the long-vector path)."""
    p = env.size
    if p == 1:
        return sendbuf.copy()
    my_block, part = yield from ring_reduce_scatter(comm, env, sendbuf, op)
    result = np.empty_like(sendbuf)
    result[part.slice_of(env.rank)] = my_block
    yield from ring_allgather_blocks(comm, env, result, part)
    return result


def reduce_bcast_allreduce(comm: "Communicator", env: CoreEnv,
                           sendbuf: np.ndarray, op: ReduceOp) -> Generator:
    """Binomial Reduce to rank 0 + binomial Broadcast (short vectors)."""
    reduced = yield from binomial_reduce(comm, env, sendbuf, op, root=0)
    buf = reduced if env.rank == 0 else np.empty_like(sendbuf)
    yield from binomial_bcast(comm, env, buf, root=0)
    return buf
