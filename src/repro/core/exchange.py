"""Full-duplex pairwise exchange, in blocking and non-blocking flavors.

This is the inner step of every ring/pairwise collective.  The blocking
flavor must order its two calls (RCCE's doubly-synchronizing primitives
deadlock otherwise — Fig. 4); callers supply ``send_first`` computed from
the odd-even rule (rings) or the rank comparison rule (pairwise Alltoall).
The non-blocking flavor issues both operations and synchronizes once
(Fig. 5), making the ordering irrelevant and overlapping the copies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.hw.machine import CoreEnv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.comm import Communicator


def full_exchange(comm: "Communicator", env: CoreEnv, send_data: np.ndarray,
                  dst: int, recv_buf: np.ndarray, src: int,
                  send_first: bool) -> Generator:
    """Send ``send_data`` to ``dst`` while receiving into ``recv_buf``
    from ``src`` (both may be the same peer or different ring neighbours)."""
    if comm.blocking:
        rcce = comm.p2p
        if send_first:
            yield from rcce.send(env, send_data, dst)
            yield from rcce.recv(env, recv_buf, src)
        else:
            yield from rcce.recv(env, recv_buf, src)
            yield from rcce.send(env, send_data, dst)
    else:
        layer = comm.p2p
        sreq = yield from layer.isend(env, send_data, dst)
        rreq = yield from layer.irecv(env, recv_buf, src)
        yield from layer.wait_all(env, [sreq, rreq])


def ring_send_first(env: CoreEnv) -> bool:
    """RCCE_comm's odd-even rule: even ranks send first (Fig. 4)."""
    return env.rank % 2 == 0


def pairwise_send_first(env: CoreEnv, partner: int) -> bool:
    """Deadlock-free ordering for symmetric pairwise exchanges."""
    return env.rank < partner
