"""The paper's primary contribution: optimized collective operations.

Public surface:

* :func:`~repro.core.registry.make_communicator` + the stack names of the
  paper's figures (``blocking``, ``ircce``, ``lightweight``,
  ``lightweight_balanced``, ``mpb``, ``rckmpi``),
* :class:`~repro.core.comm.Communicator` — the MPI-like collective API,
* :mod:`~repro.core.blocks` — standard vs balanced block partitioning
  (optimization C, Fig. 6),
* :mod:`~repro.core.ops` — reduction operators,
* the individual algorithms (ring ReduceScatter/Allgather, pairwise
  Alltoall, binomial trees, scatter-allgather Broadcast, MPB-direct
  Allreduce) for direct use and ablation.
"""

from repro.core.blocks import (
    Partition,
    balanced_partition,
    fig6_table,
    partitioner_by_name,
    standard_partition,
)
from repro.core.comm import Communicator
from repro.core.mpb_allreduce import MPBAllreduceError, mpb_allreduce
from repro.core.ops import MAX, MIN, OPS, PROD, SUM, ReduceOp, op_by_name
from repro.core.registry import NON_MPB_STACKS, STACKS, make_communicator

__all__ = [
    "Communicator",
    "MAX",
    "MIN",
    "MPBAllreduceError",
    "NON_MPB_STACKS",
    "OPS",
    "PROD",
    "Partition",
    "ReduceOp",
    "STACKS",
    "SUM",
    "balanced_partition",
    "fig6_table",
    "make_communicator",
    "mpb_allreduce",
    "op_by_name",
    "partitioner_by_name",
    "standard_partition",
]
