"""MPB-direct Allreduce — the paper's optimization D (Figs. 7 and 8).

The buffer-based ring copies every in-transit block out of the left
neighbour's MPB into private memory, reduces there, and copies the result
back into the local MPB for the right neighbour.  The MPB-direct variant
feeds the reduction operator straight from the left neighbour's MPB and
writes the result straight into the local MPB, eliminating the private
memory round trip.  Double buffering (the MPB payload split in halves)
lets a core fill one buffer while its right neighbour still reads the
other; the same sent/ready handshake as the non-blocking layer keeps the
halves consistent.

On real silicon the gain was only ~10% because the SCC's arbiter erratum
forces *local* MPB accesses through the mesh (15 → 45 core cycles + 8 mesh
cycles), and the result-write side of this algorithm is all local-MPB
traffic; the simulator reproduces both the buggy and the fixed chip via
``SCCConfig.erratum_enabled`` (see ``benchmarks/test_ablation_erratum``).

Pipeline layout (write counter ``k``; write ``k`` goes to MPB half
``k % 2``):

* ``k = 0``: seed — rank ``me`` puts its own input block ``me-1`` into its
  MPB.
* ``k = 1 .. p-1`` (reduce-scatter round ``r = k-1``): read block
  ``me-2-r`` from the left MPB, reduce with the local input block, write
  into the local MPB.  The final round's output is block ``me``.
* ``k = p .. 2p-3`` (allgather round ``g = k-p``): read block ``me-1-g``
  from the left MPB into the private result *and* forward it through the
  local MPB (in-transit data, Fig. 7's motivation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.core.ops import ReduceOp
from repro.hw.flags import Flag
from repro.hw.machine import CoreEnv
from repro.hw.mpb import MPBRegion, as_bytes
from repro.obs.spans import span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.comm import Communicator


class MPBAllreduceError(Exception):
    """The vector's blocks do not fit the MPB double buffers."""


def _halves(env: CoreEnv, rank: int) -> tuple[MPBRegion, MPBRegion]:
    mpb = env.mpb_of_rank(rank)
    whole = MPBRegion(mpb, mpb.payload_offset, mpb.payload_bytes)
    return whole.halves()


def _pair_flags(env: CoreEnv, producer: int, half: int) -> tuple[Flag, Flag]:
    """(sent, ready) flags for the producer→consumer edge of one half.

    ``sent`` lives at the consumer (the producer's right neighbour);
    ``ready`` lives at the producer.  ``ready`` starts True ("buffer
    free") and the handshake is self-restoring: every produced write is
    matched by a consume that re-raises ``ready``, so at the end of a
    call both halves are free again and a later call can rely on the
    flag state it inherits.
    """
    consumer = (producer + 1) % env.size
    sent = env.machine.flag(env.core_of_rank(consumer),
                            f"mpbar.sent.{half}")
    ready = env.machine.flag(env.core_of_rank(producer),
                             f"mpbar.ready.{half}")
    return sent, ready


def mpb_allreduce(comm: "Communicator", env: CoreEnv, sendbuf: np.ndarray,
                  op: ReduceOp, fault_epoch: int | None = None) -> Generator:
    """Allreduce working directly on the MPBs.  Returns the result vector.

    ``fault_epoch`` is the communicator's per-call epoch counter under
    fault injection; a "faulty" epoch (a rank-consistent classification
    by the injector) gets aggressive payload corruption on the double
    buffers, which the producer-side write-verify loop below detects and
    repairs (or converts into a typed
    :class:`~repro.faults.errors.MPBFaultError`).
    """
    p, me = env.size, env.rank
    if p == 1:
        return sendbuf.copy()
    part = comm.partition(sendbuf.size, p)
    half_bytes = _halves(env, me)[0].size
    max_block_bytes = part.max_size() * sendbuf.itemsize
    if max_block_bytes > half_bytes:
        raise MPBAllreduceError(
            f"block of {max_block_bytes} B exceeds the {half_bytes} B "
            "MPB double-buffer half; use the buffer-based ring instead")

    lat = env.latency
    cfg = env.config
    me_core = env.core_id
    left = (me - 1) % p
    left_core = env.core_of_rank(left)
    my_halves = _halves(env, me)
    left_halves = _halves(env, left)
    result = np.empty_like(sendbuf)
    dtype = sendbuf.dtype
    itemsize = sendbuf.itemsize

    # Flags: as producer I handshake with my right neighbour; as consumer
    # I handshake with my left neighbour.
    prod_flags = [_pair_flags(env, me, h) for h in (0, 1)]
    cons_flags = [_pair_flags(env, left, h) for h in (0, 1)]
    # Initialize ``ready`` ("my half is free") exactly once per (core,
    # half), the first time this core ever produces on that half.  The
    # handshake is self-restoring afterwards, and forcing on *every*
    # entry is a cross-call race: a producer that re-enters while its
    # (lagging) consumer has not yet drained the final write of the
    # previous call would wipe the consumer's hand-back and overwrite
    # the still-published half.  Found by the MPB sanitizer
    # (write-while-reader-pending); see docs/static-analysis.md.
    init_done = env.machine.services.setdefault("mpbar.ready_init", set())
    for half, (_sent, ready) in enumerate(prod_flags):
        if (me_core, half) not in init_done:
            init_done.add((me_core, half))
            ready.force(True, actor=me_core)

    round_overhead = lat.core_cycles(cfg.mpb_round_overhead_cycles)

    faults = env.machine.faults
    epoch_faulty = (faults is not None and fault_epoch is not None
                    and faults.mpb_epoch_faulty(fault_epoch))
    # Write-verify is armed only when the plan can actually corrupt
    # payloads; a plan without corruption keeps the exact baseline timing.
    verify_writes = faults is not None and (
        faults.plan.payload_corrupt_prob > 0
        or faults.plan.mpb_fault_epoch_prob > 0)

    def verify_half(half: int, raw: np.ndarray) -> Generator:
        """Producer-side write-verify: read the just-written half back,
        compare against the intended bytes, rewrite until it sticks
        (bounded by the retry budget).  Detects injected payload
        corruption before the consumer ever sees it."""
        region = my_halves[half]
        faults.maybe_corrupt(region, raw.size, actor=f"core{me_core}",
                             boost=epoch_faulty)
        verify_cost = lat.mpb_stream_read(me_core, me_core, raw.size)
        rewrite_cost = lat.mpb_stream_write(me_core, me_core, raw.size)
        attempts = 0
        while True:
            yield from env.consume(verify_cost, "overhead")
            # Direct region access: the verify read-back is charged above
            # as one fused burst.  # repro-lint: allow=mpb-direct-write
            if np.array_equal(region.read(raw.size, actor=me_core), raw):
                return
            attempts += 1
            faults.record("mpb_repair", f"core{me_core}",
                          {"half": half, "attempt": attempts,
                           "epoch": fault_epoch})
            if attempts > faults.plan.max_retries:
                faults.raise_fault(
                    "mpb", f"MPB half stayed corrupt after {attempts} "
                    f"rewrites", actor=f"core{me_core}", half=half,
                    epoch=fault_epoch)
            with span(env, "retry", attempts):
                yield from env.consume(rewrite_cost, "copy")
                # repro-lint: allow=mpb-direct-write (cost charged above)
                region.write(raw, actor=me_core)
            faults.maybe_corrupt(region, raw.size, actor=f"core{me_core}",
                                 boost=epoch_faulty)

    def produce(k: int, data: np.ndarray, write_cost: int) -> Generator:
        """Write ``data`` into my half ``k % 2`` once it is free."""
        half = k % 2
        sent, ready = prod_flags[half]
        with span(env, "sync", k):
            yield from ready.wait_set(env.core)
            yield from ready.clear_by(env.core)
        with span(env, "copy", data.nbytes):
            yield from env.consume(write_cost, "copy")
            # Direct region access is the whole point of this algorithm
            # (optimization D); the streaming cost is charged above.
            # repro-lint: allow=mpb-direct-write
            my_halves[half].write(as_bytes(data), actor=me_core)
        if verify_writes:
            yield from verify_half(half, as_bytes(data))
        yield from sent.set_by(env.core)

    def consume_begin(k: int) -> Generator:
        """Wait until left's half ``k % 2`` is full; return its region."""
        sent, _ready = cons_flags[k % 2]
        with span(env, "sync", k):
            yield from sent.wait_set(env.core)
        return left_halves[k % 2]

    def consume_end(k: int) -> Generator:
        """Release left's half ``k % 2``."""
        sent, ready = cons_flags[k % 2]
        yield from sent.clear_by(env.core)
        yield from ready.set_by(env.core)

    # k = 0: seed my MPB with my own input block (me - 1).
    seed_block = (me - 1) % p
    seed = sendbuf[part.slice_of(seed_block)]
    yield from produce(0, seed,
                       lat.mpb_write_bytes(me_core, me_core, seed.nbytes))

    # Reduce-scatter rounds r = 0 .. p-2 (writes k = r + 1).
    for r in range(p - 1):
        with span(env, "round", r):
            block = (me - 2 - r) % p
            nels = part.size(block)
            nbytes = nels * itemsize
            region = yield from consume_begin(r)
            # One fused pass: stream left's partial from its MPB, combine
            # with the local input block, stream the result into my MPB.
            cost = (round_overhead
                    + lat.mpb_stream_read(me_core, left_core, nbytes)
                    + lat.reduce_doubles(nels)
                    + lat.core_cycles(lat.lines(nbytes)
                                      * cfg.cache_line_core_cycles))
            with span(env, "reduce", nels):
                yield from env.consume(cost, "compute")
            operand = np.empty(nels, dtype=dtype)
            # repro-lint: allow=mpb-direct-write (fused-burst cost above)
            region.read_into(operand.view(np.uint8).reshape(-1),
                             actor=me_core)
            combined = op(sendbuf[part.slice_of(block)], operand)
            yield from consume_end(r)
            if r < p - 2:
                yield from produce(
                    r + 1, combined,
                    lat.mpb_stream_write(me_core, me_core, nbytes))
            else:
                # Final round: 'combined' is my reduced block (index me).
                result[part.slice_of(me)] = combined
                yield from produce(
                    r + 1, combined,
                    lat.mpb_stream_write(me_core, me_core, nbytes))

    # Allgather rounds g = 0 .. p-2 (reads of writes k = p-1+g).
    for g in range(p - 1):
        with span(env, "round", p - 1 + g):
            block = (me - 1 - g) % p
            nels = part.size(block)
            nbytes = nels * itemsize
            region = yield from consume_begin(p - 1 + g)
            with span(env, "copy", nbytes):
                yield from env.consume(
                    round_overhead
                    + lat.mpb_read_bytes(me_core, left_core, nbytes),
                    "copy")
            incoming = np.empty(nels, dtype=dtype)
            # repro-lint: allow=mpb-direct-write (copy cost charged above)
            region.read_into(incoming.view(np.uint8).reshape(-1),
                             actor=me_core)
            result[part.slice_of(block)] = incoming
            yield from consume_end(p - 1 + g)
            if g < p - 2:
                # Forward in-transit through my MPB for my right neighbour.
                yield from produce(
                    p + g, incoming,
                    lat.mpb_stream_write(me_core, me_core, nbytes))

    return result
