"""Prefix reductions: inclusive Scan and exclusive Exscan.

Not evaluated in the paper, but part of the MPI collective set RCKMPI
implements; included for API completeness.  The algorithm is the standard
recursive-doubling prefix scheme (Hillis-Steele over ranks): in round k,
rank ``me`` receives the partial prefix of rank ``me - 2^k`` and folds it
in; ceil(log2 p) rounds, deadlock-free with either p2p layer because every
edge points "upward" (no cycles).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

import numpy as np

from repro.core.ops import ReduceOp
from repro.hw.machine import CoreEnv

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.comm import Communicator


def recursive_doubling_scan(comm: "Communicator", env: CoreEnv,
                            sendbuf: np.ndarray, op: ReduceOp) -> Generator:
    """Inclusive scan: rank r gets op-fold of ranks 0..r."""
    p, me = env.size, env.rank
    acc = sendbuf.copy()
    tmp = np.empty_like(acc)
    stride = 1
    while stride < p:
        # Non-blocking posture: issue the send (if any) and the receive
        # (if any) together so neither layer's semantics deadlock.
        if comm.blocking:
            # Edges go from lower to higher ranks only: send-then-recv on
            # every rank is cycle-free.
            if me + stride < p:
                yield from comm.p2p.send(env, acc, me + stride)
            if me - stride >= 0:
                yield from comm.p2p.recv(env, tmp, me - stride)
        else:
            reqs = []
            if me + stride < p:
                req = yield from comm.p2p.isend(env, acc.copy(), me + stride)
                reqs.append(req)
            if me - stride >= 0:
                req = yield from comm.p2p.irecv(env, tmp, me - stride)
                reqs.append(req)
            if reqs:
                yield from comm.p2p.wait_all(env, reqs)
        if me - stride >= 0:
            yield from env.consume(env.latency.reduce_doubles(acc.size),
                                   "compute")
            acc = op(tmp, acc)
        stride <<= 1
    return acc


def exscan_from_scan(comm: "Communicator", env: CoreEnv,
                     sendbuf: np.ndarray, op: ReduceOp) -> Generator:
    """Exclusive scan: rank r gets op-fold of ranks 0..r-1 (rank 0 gets
    None, MPI-style: its buffer is undefined)."""
    p, me = env.size, env.rank
    inclusive = yield from recursive_doubling_scan(comm, env, sendbuf, op)
    # Shift down by one rank: rank r sends its inclusive prefix to r+1.
    out = np.empty_like(sendbuf)
    if comm.blocking:
        if me + 1 < p:
            yield from comm.p2p.send(env, inclusive, me + 1)
        if me - 1 >= 0:
            yield from comm.p2p.recv(env, out, me - 1)
    else:
        reqs = []
        if me + 1 < p:
            req = yield from comm.p2p.isend(env, inclusive, me + 1)
            reqs.append(req)
        if me - 1 >= 0:
            req = yield from comm.p2p.irecv(env, out, me - 1)
            reqs.append(req)
        if reqs:
            yield from comm.p2p.wait_all(env, reqs)
    return out if me > 0 else None
