"""RCCE's own naive collectives (Section III, related work).

RCCE ships very basic Broadcast and (All-)Reduce implementations in which
the root communicates with the remaining cores *serially*, and for Reduce
the root performs all reduction arithmetic alone.  They "do not use the
available parallelism and suffer from both high latency and low
efficiency" — the tree-based alternatives of [8]/[9] beat them by factors
of >20x (Broadcast) and >6x (Reduce).  We keep them as baselines for the
tree ablation benchmark.

All functions are SPMD generators: every rank calls the same function.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator, Optional

import numpy as np

from repro.hw.machine import CoreEnv
from repro.rcce.api import RCCE

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at runtime: repro.core pulls in the non-blocking
    # layers, which import this package (rcce) for the shared protocol.
    from repro.core.ops import ReduceOp


def _sum_op() -> "ReduceOp":
    from repro.core.ops import SUM
    return SUM


def native_bcast(rcce: RCCE, env: CoreEnv, buf: np.ndarray,
                 root: int = 0) -> Generator:
    """Serial broadcast: root sends the whole buffer to each rank in turn."""
    if env.rank == root:
        for rank in range(env.size):
            if rank != root:
                yield from rcce.send(env, buf, rank)
    else:
        yield from rcce.recv(env, buf, root)
    return buf


def native_reduce(rcce: RCCE, env: CoreEnv, sendbuf: np.ndarray,
                  op: Optional["ReduceOp"] = None,
                  root: int = 0) -> Generator:
    """Serial reduce: root receives every rank's vector and reduces alone."""
    op = op if op is not None else _sum_op()
    if env.rank == root:
        acc = sendbuf.copy()
        tmp = np.empty_like(sendbuf)
        for rank in range(env.size):
            if rank == root:
                continue
            yield from rcce.recv(env, tmp, rank)
            yield from env.consume(
                env.latency.reduce_doubles(acc.size), "compute")
            acc = op(acc, tmp)
        return acc
    yield from rcce.send(env, sendbuf, root)
    return None


def native_allreduce(rcce: RCCE, env: CoreEnv, sendbuf: np.ndarray,
                     op: Optional["ReduceOp"] = None,
                     root: int = 0) -> Generator:
    """RCCE-style Allreduce: serial Reduce followed by serial Broadcast."""
    op = op if op is not None else _sum_op()
    reduced = yield from native_reduce(rcce, env, sendbuf, op, root)
    if env.rank != root:
        reduced = np.empty_like(sendbuf)
    yield from native_bcast(rcce, env, reduced, root)
    return reduced
