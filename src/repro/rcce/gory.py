"""The "gory" RCCE interface: explicit MPB and flag management.

The paper notes that "the high-level flavor of RCCE (the so-called
non-gory interface) uses the MPBs exclusively for message-passing and
synchronization via flags" — and that lifting this restriction is what
enables the MPB-direct optimization.  This module reimplements the gory
interface those experiments build on:

* :meth:`GoryRCCE.malloc` — **symmetric** MPB allocation (like
  ``RCCE_malloc``): every core allocates the same offset in its own MPB,
  so an offset names a buffer on *every* core.
* :meth:`GoryRCCE.flag_alloc` / :meth:`GoryRCCE.flag_free` — allocate a
  synchronization flag slot (one per MPB flag-region word).
* :meth:`GoryRCCE.put` / :meth:`GoryRCCE.get` — raw cache-line-granular
  transfers between private memory and any core's MPB at an explicit
  offset.
* :meth:`GoryRCCE.flag_write` / :meth:`GoryRCCE.wait_until` — the flag
  primitives (``RCCE_flag_write`` / ``RCCE_wait_until``) custom protocols
  are built from.

All methods are SPMD generators charged with the same hardware costs as
the non-gory layer.  ``examples``/tests build a complete custom
neighbour-exchange protocol out of these primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

import numpy as np

from repro.hw.machine import CoreEnv, Machine
from repro.hw.mpb import MPBRegion
from repro.rcce.transfer import get_bytes, put_bytes


class GoryError(Exception):
    """Invalid gory-interface usage (exhausted flags, bad offsets...)."""


@dataclass(frozen=True)
class SymmetricBuffer:
    """A symmetric MPB allocation: the same window in every core's MPB."""

    offset: int
    size: int

    def region(self, machine: Machine, core_id: int) -> MPBRegion:
        return MPBRegion(machine.mpbs[core_id], self.offset, self.size)


@dataclass(frozen=True)
class FlagHandle:
    """A symmetric flag slot (the same flag id on every core)."""

    index: int


class GoryRCCE:
    """Explicit MPB/flag management over a machine."""

    #: Bytes of flag-region space per flag slot (RCCE packs tighter; one
    #: word per flag keeps the model simple and the capacity realistic).
    FLAG_SLOT_BYTES = 4

    def __init__(self, machine: Machine):
        self.machine = machine
        state = machine.services.setdefault("gory", {
            "alloc_ptr": machine.mpbs[0].payload_offset,
            "flags_used": 0,
            "flags_free": [],
        })
        self._state = state

    # -- symmetric allocation --------------------------------------------
    @property
    def flag_capacity(self) -> int:
        return self.machine.config.mpb_flag_bytes // self.FLAG_SLOT_BYTES

    def malloc(self, nbytes: int) -> SymmetricBuffer:
        """Symmetric MPB allocation (call identically on every core; the
        allocation itself is bookkeeping, not simulated time)."""
        line = self.machine.config.l1_line_bytes
        start = -(-self._state["alloc_ptr"] // line) * line
        if nbytes <= 0:
            raise GoryError(f"invalid allocation size {nbytes}")
        if start + nbytes > self.machine.config.mpb_bytes_per_core:
            raise GoryError(
                f"MPB exhausted: {nbytes} B requested, "
                f"{self.machine.config.mpb_bytes_per_core - start} B free")
        self._state["alloc_ptr"] = start + nbytes
        return SymmetricBuffer(start, nbytes)

    def free_all(self) -> None:
        """Release all symmetric allocations (RCCE has no fine-grained
        free either)."""
        self._state["alloc_ptr"] = self.machine.mpbs[0].payload_offset

    def flag_alloc(self) -> FlagHandle:
        if self._state["flags_free"]:
            return FlagHandle(self._state["flags_free"].pop())
        index = self._state["flags_used"]
        if index >= self.flag_capacity:
            raise GoryError(
                f"out of MPB flag slots (capacity {self.flag_capacity})")
        self._state["flags_used"] = index + 1
        return FlagHandle(index)

    def flag_free(self, handle: FlagHandle) -> None:
        self._state["flags_free"].append(handle.index)

    # -- data movement ------------------------------------------------------
    def put(self, env: CoreEnv, buffer: SymmetricBuffer, data: np.ndarray,
            target_rank: int, at: int = 0) -> Generator:
        """``RCCE_put``: write ``data`` into ``target_rank``'s copy of the
        symmetric buffer."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        if at + raw.size > buffer.size:
            raise GoryError(
                f"put of {raw.size} B at {at} exceeds buffer of "
                f"{buffer.size} B")
        region = buffer.region(self.machine, env.core_of_rank(target_rank))
        yield from put_bytes(env, region, raw, at=at)

    def get(self, env: CoreEnv, buffer: SymmetricBuffer, nbytes: int,
            source_rank: int, at: int = 0) -> Generator:
        """``RCCE_get``: read from ``source_rank``'s copy of the buffer."""
        if at + nbytes > buffer.size:
            raise GoryError(
                f"get of {nbytes} B at {at} exceeds buffer of "
                f"{buffer.size} B")
        region = buffer.region(self.machine, env.core_of_rank(source_rank))
        data = yield from get_bytes(env, region, nbytes, at=at)
        return data

    # -- flags ---------------------------------------------------------------
    def _flag(self, handle: FlagHandle, owner_core: int):
        return self.machine.flag(owner_core, f"gory.{handle.index}")

    def flag_write(self, env: CoreEnv, handle: FlagHandle, value: bool,
                   target_rank: int) -> Generator:
        """``RCCE_flag_write``: set/clear the flag on ``target_rank``."""
        flag = self._flag(handle, env.core_of_rank(target_rank))
        if value:
            yield from flag.set_by(env.core)
        else:
            yield from flag.clear_by(env.core)

    def flag_read(self, env: CoreEnv, handle: FlagHandle,
                  source_rank: int) -> Generator:
        """``RCCE_flag_read``: sample the flag on ``source_rank``."""
        cost = self.machine.latency.mpb_access(
            env.core_id, env.core_of_rank(source_rank))
        yield from env.consume(cost, "overhead")
        return self._flag(handle, env.core_of_rank(source_rank)).value

    def wait_until(self, env: CoreEnv, handle: FlagHandle,
                   value: bool) -> Generator:
        """``RCCE_wait_until``: poll the *local* flag until it reaches
        ``value`` (the call the thermodynamic application spends up to
        50% of its time in, Section IV-A)."""
        flag = self._flag(handle, env.core_id)
        if value:
            yield from flag.wait_set(env.core)
        else:
            yield from flag.wait_clear(env.core)
