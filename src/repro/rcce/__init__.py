"""RCCE: the SCC's native lightweight message-passing library (blocking).

This package reimplements the parts of RCCE v1.1.0 the paper builds on:

* :mod:`repro.rcce.transfer` — the low-level ``RCCE_put``/``RCCE_get``
  operations that move cache lines between private memory and MPBs,
  including the padded-tail-line behaviour responsible for the period-4
  latency spikes of Fig. 9.
* :mod:`repro.rcce.api` — the blocking ``send``/``recv`` pair implementing
  the doubly-synchronizing Fig.-3 flag protocol, message chunking through
  the 8 KB MPB, and a master/worker barrier.
* :mod:`repro.rcce.native` — RCCE's own naive collectives (serial-root
  Broadcast and Reduce), kept as the related-work baseline that tree-based
  algorithms beat by >20x / >6x.
"""

from repro.rcce.api import RCCE, RCCEError
from repro.rcce.gory import FlagHandle, GoryError, GoryRCCE, SymmetricBuffer
from repro.rcce.native import native_allreduce, native_bcast, native_reduce
from repro.rcce.transfer import get_bytes, put_bytes, putget_calls

__all__ = [
    "FlagHandle",
    "GoryError",
    "GoryRCCE",
    "RCCE",
    "RCCEError",
    "SymmetricBuffer",
    "get_bytes",
    "native_allreduce",
    "native_bcast",
    "native_reduce",
    "put_bytes",
    "putget_calls",
]
