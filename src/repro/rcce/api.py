"""RCCE blocking send/recv: the Fig.-3 doubly-synchronizing protocol.

Per message chunk (a chunk is what fits into the sender's MPB payload):

========  =============================================  ================
step      sender                                         receiver
========  =============================================  ================
1         put data into *local* MPB                      wait for sent flag
2         set sent flag (in receiver's MPB)              clear sent flag
3         wait for ready flag (in own MPB)               copy data from sender's MPB
4         clear ready flag                               set ready flag (in sender's MPB)
========  =============================================  ================

Both sides synchronize twice per chunk: the receiver waits for data to be
provided, and the sender waits until the data has been picked up.  A send
therefore cannot return before the matching receive is entered — the
property that forces RCCE_comm's odd-even call ordering in cyclic exchange
patterns and that the paper's optimization A removes.

Flag placement matches RCCE: each core polls flags in its **own** MPB
(cheap-ish local polling; remote cores pay a remote MPB write to update
them).  For the (src → dst) channel the ``sent`` flag lives in dst's MPB
and the ``ready`` flag lives in src's MPB.
"""

from __future__ import annotations

import zlib
from typing import Generator, Optional

import numpy as np

from repro.hw.flags import Flag
from repro.hw.machine import CoreEnv, Machine
from repro.hw.mpb import MPBRegion, as_bytes
from repro.obs.spans import span
from repro.rcce.transfer import get_bytes, put_bytes


class RCCEError(Exception):
    """Invalid use of the RCCE API."""


def comm_buffer(machine: Machine, core_id: int) -> MPBRegion:
    """The fixed MPB payload region RCCE uses as ``core_id``'s send buffer."""
    mpb = machine.mpbs[core_id]
    return MPBRegion(mpb, mpb.payload_offset, mpb.payload_bytes)


def sent_flag(machine: Machine, src: int, dst: int) -> Flag:
    """'Data available' flag for the src→dst channel (lives at dst)."""
    return machine.flag(dst, f"rcce.sent.{src}")


def ready_flag(machine: Machine, src: int, dst: int) -> Flag:
    """'Data picked up' flag for the src→dst channel (lives at src)."""
    return machine.flag(src, f"rcce.ready.{dst}")


def nack_flag(machine: Machine, src: int, dst: int) -> Flag:
    """'Chunk rejected, retransmit' flag for the src→dst channel.

    Only used by the fault-hardened protocol; lives at the sender (src)
    so the sender can poll it cheaply right after its ready-wait.
    """
    return machine.flag(src, f"rcce.nack.{dst}")


def _xfer_state(machine: Machine, src_core: int, dst_core: int) -> dict:
    """Per-channel sequence/checksum bookkeeping of the hardened protocol.

    ``seq_out``/``seq_in`` number chunks on the sender/receiver side;
    ``frame`` is the in-flight chunk's ``(seq, crc32)`` — the channel is
    doubly synchronizing, so at most one chunk is in flight at a time.
    """
    channels = machine.services.setdefault("faults.xfer", {})
    return channels.setdefault((src_core, dst_core),
                               {"seq_out": 0, "seq_in": 0, "frame": None})


def record_message(machine: Machine, src: int, dst: int,
                   nbytes: int) -> None:
    """Update the machine's traffic counters (see repro.bench.stats)."""
    stats = machine.services.get("p2p.stats")
    if stats is not None:
        stats.record(src, dst, nbytes)


def announce_send(machine: Machine, src: int, dst: int, nbytes: int) -> None:
    """Bookkeeping used by iRCCE's wildcard receive: record that ``src``
    has posted data for ``dst`` (called when the sent flag is raised)."""
    pending = machine.services.setdefault("p2p.pending", {})
    pending.setdefault(dst, []).append((src, nbytes))
    machine.flag(dst, "p2p.incoming").force(True, actor=src)


def take_announcement(machine: Machine, dst: int,
                      src: Optional[int] = None) -> Optional[tuple[int, int]]:
    """Pop a pending (src, nbytes) announcement for ``dst`` (FIFO); with
    ``src`` given, pop that sender's first announcement."""
    pending = machine.services.setdefault("p2p.pending", {})
    queue = pending.get(dst, [])
    index = None
    for i, (s, _n) in enumerate(queue):
        if src is None or s == src:
            index = i
            break
    if index is None:
        return None
    item = queue.pop(index)
    if not queue:
        machine.flag(dst, "p2p.incoming").force(False, actor=dst)
    return item


class RCCE:
    """Blocking point-to-point layer over a :class:`Machine`."""

    #: Identifier used by the stack registry / result tables.
    name = "rcce"

    def __init__(self, machine: Machine):
        self.machine = machine
        # Per-channel handle caches.  The flag/region helpers below build
        # name strings on every call; the protocol bodies touch each
        # channel once per message, so memoizing the handles here removes
        # that per-message cost.  Flags are already memoized per machine
        # (same objects), regions are stateless views.
        self._buffers: dict[int, MPBRegion] = {}
        self._sent: dict[tuple[int, int], Flag] = {}
        self._ready: dict[tuple[int, int], Flag] = {}

    # ------------------------------------------------------------------ #
    def chunk_bytes(self) -> int:
        """Largest message piece that fits the MPB send buffer."""
        return self.machine.config.mpb_payload_bytes

    def send(self, env: CoreEnv, data: np.ndarray, dst: int) -> Generator:
        """Blocking send of ``data`` to rank ``dst``."""
        if dst == env.rank:
            raise RCCEError("RCCE cannot send to self")
        cfg = env.config
        tracer = self.machine.sim.tracer
        if tracer.enabled:
            tracer.emit(env.now, f"core{env.core_id}", "send.begin", dst)
        yield from env.consume(
            env.latency.core_cycles(cfg.rcce_send_call_cycles), "overhead")
        yield from self._send_body(env, as_bytes(data), dst)
        if tracer.enabled:
            tracer.emit(env.now, f"core{env.core_id}", "send.end", dst)

    def recv(self, env: CoreEnv, out: np.ndarray, src: int) -> Generator:
        """Blocking receive into ``out`` from rank ``src``.

        RCCE requires both the sender identity and the message length to be
        known in advance; ``out`` provides both.
        """
        if src == env.rank:
            raise RCCEError("RCCE cannot receive from self")
        cfg = env.config
        tracer = self.machine.sim.tracer
        if tracer.enabled:
            tracer.emit(env.now, f"core{env.core_id}", "recv.begin", src)
        yield from env.consume(
            env.latency.core_cycles(cfg.rcce_recv_call_cycles), "overhead")
        yield from self._recv_body(env, out.view(np.uint8).reshape(-1), src)
        if tracer.enabled:
            tracer.emit(env.now, f"core{env.core_id}", "recv.end", src)
        return out

    # -- protocol bodies (shared with the non-blocking layers) -------------
    def _send_body(self, env: CoreEnv, raw: np.ndarray, dst: int) -> Generator:
        faults = self.machine.faults
        if faults is not None and faults.plan.checksums:
            yield from self._send_body_hardened(env, raw, dst)
            return
        machine = self.machine
        me_core = env.core_id
        dst_core = env.core_of_rank(dst)
        record_message(machine, me_core, dst_core, int(raw.size))
        buf = self._buffers.get(me_core)
        if buf is None:
            buf = self._buffers[me_core] = comm_buffer(machine, me_core)
        key = (me_core, dst_core)
        sent = self._sent.get(key)
        if sent is None:
            sent = self._sent[key] = sent_flag(machine, me_core, dst_core)
        ready = self._ready.get(key)
        if ready is None:
            ready = self._ready[key] = ready_flag(machine, me_core, dst_core)
        chunk = self.chunk_bytes()
        for start in range(0, raw.size, chunk) or [0]:
            piece = raw[start:start + chunk]
            yield from put_bytes(env, buf, piece)
            announce_send(machine, me_core, dst_core, int(piece.size))
            yield from sent.set_by(env.core)
            yield from ready.wait_set(env.core)
            yield from ready.clear_by(env.core)

    def _recv_body(self, env: CoreEnv, raw_out: np.ndarray, src: int) -> Generator:
        faults = self.machine.faults
        if faults is not None and faults.plan.checksums:
            yield from self._recv_body_hardened(env, raw_out, src)
            return
        machine = self.machine
        me_core = env.core_id
        src_core = env.core_of_rank(src)
        buf = self._buffers.get(src_core)
        if buf is None:
            buf = self._buffers[src_core] = comm_buffer(machine, src_core)
        key = (src_core, me_core)
        sent = self._sent.get(key)
        if sent is None:
            sent = self._sent[key] = sent_flag(machine, src_core, me_core)
        ready = self._ready.get(key)
        if ready is None:
            ready = self._ready[key] = ready_flag(machine, src_core, me_core)
        chunk = self.chunk_bytes()
        for start in range(0, raw_out.size, chunk) or [0]:
            nbytes = min(chunk, raw_out.size - start)
            yield from sent.wait_set(env.core)
            take_announcement(machine, me_core, src_core)
            yield from sent.clear_by(env.core)
            data = yield from get_bytes(env, buf, nbytes)
            raw_out[start:start + nbytes] = data
            yield from ready.set_by(env.core)

    # -- hardened protocol bodies (sequence numbers + CRC32 + NACK) --------
    #
    # Active whenever a fault injector with ``checksums`` enabled is
    # installed.  Each chunk carries a per-channel sequence number and the
    # CRC32 of the *intended* payload; the receiver verifies both after
    # reading the MPB and, on mismatch (corrupted payload, stale/duplicate
    # frame), raises the channel's NACK flag before releasing the sender,
    # which retransmits the same sequence number.  Both sides bound their
    # loops with the plan's retry budget and raise a typed
    # :class:`~repro.faults.errors.TransferFaultError` on exhaustion —
    # never a silent hang, never silently corrupted data.
    #
    # When no fault actually fires, this path's *timing* is identical to
    # the plain protocol: the checksum is modeled as computed on the fly
    # during the copy (folded into the per-line costs), and the NACK flag
    # is only ever touched on a retransmission.
    def _send_body_hardened(self, env: CoreEnv, raw: np.ndarray,
                            dst: int) -> Generator:
        machine = self.machine
        faults = machine.faults
        me_core = env.core_id
        dst_core = env.core_of_rank(dst)
        record_message(machine, me_core, dst_core, int(raw.size))
        buf = comm_buffer(machine, me_core)
        sent = sent_flag(machine, me_core, dst_core)
        ready = ready_flag(machine, me_core, dst_core)
        nack = nack_flag(machine, me_core, dst_core)
        state = _xfer_state(machine, me_core, dst_core)
        chunk = self.chunk_bytes()
        for start in range(0, raw.size, chunk) or [0]:
            piece = raw[start:start + chunk]
            seq = state["seq_out"]
            state["seq_out"] = seq + 1
            crc = zlib.crc32(piece.tobytes())
            attempts = 0
            while True:
                if attempts == 0:
                    yield from self._send_chunk_once(
                        env, buf, piece, seq, crc, sent, ready, state,
                        dst_core=dst_core, announce=True)
                else:
                    with span(env, "retry", attempts):
                        yield from self._send_chunk_once(
                            env, buf, piece, seq, crc, sent, ready, state,
                            dst_core=dst_core, announce=False)
                if not nack.value:
                    break
                yield from nack.clear_by(env.core)
                attempts += 1
                faults.record("retransmit", f"core{me_core}",
                              {"dst": dst_core, "seq": seq,
                               "attempt": attempts})
                if attempts > faults.plan.max_retries:
                    faults.raise_fault(
                        "transfer",
                        f"retransmit budget exhausted after {attempts} "
                        f"attempts",
                        actor=f"core{me_core}", peer=dst_core, seq=seq)

    def _send_chunk_once(self, env: CoreEnv, buf: MPBRegion,
                         piece: np.ndarray, seq: int, crc: int,
                         sent: Flag, ready: Flag, state: dict, *,
                         dst_core: int, announce: bool) -> Generator:
        yield from put_bytes(env, buf, piece)
        state["frame"] = (seq, crc)
        if announce:
            announce_send(self.machine, env.core_id, dst_core,
                          int(piece.size))
        yield from sent.set_by(env.core)
        yield from ready.wait_set(env.core)
        yield from ready.clear_by(env.core)

    def _recv_body_hardened(self, env: CoreEnv, raw_out: np.ndarray,
                            src: int) -> Generator:
        machine = self.machine
        faults = machine.faults
        me_core = env.core_id
        src_core = env.core_of_rank(src)
        buf = comm_buffer(machine, src_core)
        sent = sent_flag(machine, src_core, me_core)
        ready = ready_flag(machine, src_core, me_core)
        nack = nack_flag(machine, src_core, me_core)
        state = _xfer_state(machine, src_core, me_core)
        chunk = self.chunk_bytes()
        for start in range(0, raw_out.size, chunk) or [0]:
            nbytes = min(chunk, raw_out.size - start)
            expected = state["seq_in"]
            attempts = 0
            while True:
                if attempts == 0:
                    data = yield from self._recv_chunk_once(
                        env, buf, nbytes, sent, src_core)
                else:
                    with span(env, "retry", attempts):
                        data = yield from self._recv_chunk_once(
                            env, buf, nbytes, sent, src_core)
                frame = state["frame"]
                if (frame is not None and frame[0] == expected
                        and zlib.crc32(data.tobytes()) == frame[1]):
                    state["seq_in"] = expected + 1
                    raw_out[start:start + nbytes] = data
                    yield from ready.set_by(env.core)
                    break
                attempts += 1
                faults.record("chunk_reject", f"core{me_core}",
                              {"src": src_core, "seq": expected,
                               "attempt": attempts})
                if attempts > faults.plan.max_retries:
                    faults.raise_fault(
                        "transfer",
                        f"chunk verification failed {attempts} times",
                        actor=f"core{me_core}", peer=src_core, seq=expected)
                yield from nack.set_by(env.core)
                yield from ready.set_by(env.core)

    def _recv_chunk_once(self, env: CoreEnv, buf: MPBRegion, nbytes: int,
                         sent: Flag, src_core: int) -> Generator:
        yield from sent.wait_set(env.core)
        take_announcement(self.machine, env.core_id, src_core)
        yield from sent.clear_by(env.core)
        data = yield from get_bytes(env, buf, nbytes)
        return data

    # ------------------------------------------------------------------ #
    def barrier(self, env: CoreEnv) -> Generator:
        """RCCE-style master/worker barrier: every rank reports to rank 0
        via its arrival flag; rank 0 then releases everyone."""
        machine = self.machine
        cfg = env.config
        yield from env.consume(
            env.latency.core_cycles(cfg.barrier_flag_cycles), "overhead")
        root_core = env.core_of_rank(0)
        if env.rank == 0:
            # Collect arrivals, clear them *before* releasing so the flags
            # are reusable for the next barrier without sense reversal.
            for rank in range(1, env.size):
                arrived = machine.flag(root_core, f"rcce.bar.{rank}")
                yield from arrived.wait_set(env.core)
                yield from arrived.clear_by(env.core)
            for rank in range(1, env.size):
                release = machine.flag(env.core_of_rank(rank), "rcce.bar.go")
                yield from release.set_by(env.core)
        else:
            arrived = machine.flag(root_core, f"rcce.bar.{env.rank}")
            yield from arrived.set_by(env.core)
            release = machine.flag(env.core_id, "rcce.bar.go")
            yield from release.wait_set(env.core)
            yield from release.clear_by(env.core)
