"""Low-level RCCE put/get: cache-line-granular MPB transfers.

RCCE moves data by writing whole L1 cache lines (32 B) of the local core
into an MPB through the write-combining buffer.  A message whose size is
not a multiple of the line size cannot be transferred in one streaming
call: the full lines go in one invocation and the padded tail line requires
**a second call** to the low-level transfer function (paper Section V-A).
Each invocation costs ``rcce_putget_call_cycles`` of software overhead —
this is the mechanistic origin of the period-4-doubles latency spikes in
Fig. 9.

These functions charge the acting core and move real bytes; they are shared
by the blocking layer, both non-blocking layers and the collectives.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.hw.machine import CoreEnv
from repro.hw.mpb import MPBRegion


def putget_calls(nbytes: int, line_bytes: int) -> int:
    """Number of low-level transfer invocations for an ``nbytes`` message:
    one streaming call for the full lines plus one for a padded tail."""
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    if nbytes == 0:
        return 0
    full, tail = divmod(nbytes, line_bytes)
    calls = 0
    if full:
        calls += 1
    if tail:
        calls += 1
    return calls


def _call_overhead(env: CoreEnv, nbytes: int) -> int:
    cfg = env.config
    calls = putget_calls(nbytes, cfg.l1_line_bytes)
    return env.latency.core_cycles(calls * cfg.rcce_putget_call_cycles)


def put_bytes(env: CoreEnv, region: MPBRegion, raw: np.ndarray,
              at: int = 0) -> Generator:
    """``RCCE_put``: copy ``raw`` (uint8) from private memory into an MPB
    region, charging software call overhead plus the hardware copy cost.
    When MPB port contention is modeled, the copy burst holds the target
    MPB's port."""
    nbytes = int(raw.size)
    cost = (_call_overhead(env, nbytes)
            + env.latency.mpb_write_bytes(env.core_id, region.owner, nbytes))
    machine = env.machine
    faults = machine.faults
    if faults is not None:
        cost += faults.mesh_extra_ps(env.core_id, region.owner)
    if machine.mpb_ports is None:
        yield from env.core.consume(cost, "copy")
    else:
        yield from env.core.consume_at_mpb(region.owner, cost, "copy")
    region.write(raw, at=at, actor=env.core_id)
    if faults is not None:
        faults.maybe_corrupt(region, nbytes, at=at,
                             actor=f"core{env.core_id}")


def get_bytes(env: CoreEnv, region: MPBRegion, nbytes: int,
              at: int = 0) -> Generator:
    """``RCCE_get``: copy ``nbytes`` out of an MPB region into private
    memory.  Returns the bytes as a fresh uint8 array."""
    cost = (_call_overhead(env, nbytes)
            + env.latency.mpb_read_bytes(env.core_id, region.owner, nbytes))
    machine = env.machine
    faults = machine.faults
    if faults is not None:
        cost += faults.mesh_extra_ps(env.core_id, region.owner)
    if machine.mpb_ports is None:
        yield from env.core.consume(cost, "copy")
    else:
        yield from env.core.consume_at_mpb(region.owner, cost, "copy")
    return region.read(nbytes, at=at, actor=env.core_id)
