"""Phase-scoped spans on top of the raw :class:`~repro.sim.trace.Tracer`.

The tracer's native vocabulary is point records; the paper's profiling
methodology ("cores spend up to 50% of their time in rcce_wait_until",
the Fig. 10 wait profile) needs *intervals* attributable to a collective,
a round of that collective, and a phase within the round (sync, copy,
mesh transfer, reduce op).  This module provides

* :func:`span` — a context manager the communication layers wrap phases
  in.  It emits ``<name>.begin`` / ``<name>.end`` record pairs, the
  convention :class:`~repro.util.timeline.Timeline` already understands.
  With a disabled tracer it is a shared no-op object: one attribute check
  and no allocation per call site.
* :class:`Span` / :func:`extract_spans` — reassemble the begin/end pairs
  into a properly nested span tree per actor (collective > round > phase).
* :func:`phase_times` / :func:`round_times` — attribute *exclusive* time
  (time inside a span but outside its children) to phase names, and
  per-round totals, the numbers the wait-profile table and the search/
  validation workflows of the related work consume.

All spans are pure observation: they never consume simulated time, so an
instrumented run and an uninstrumented run have identical timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.trace import TraceRecord

#: Span names the collective layers emit, grouped by level.
COLLECTIVE_SPANS = ("allreduce", "reduce", "reduce_scatter", "allgather",
                    "alltoall", "bcast", "barrier", "scan", "exscan",
                    "scatter", "gather", "scatterv", "gatherv", "split")
ROUND_SPAN = "round"
PHASE_SPANS = ("sync", "copy", "transfer", "reduce", "send", "recv",
               "retry", "fallback")


class _NullSpan:
    """Shared no-op context manager for the disabled-tracer fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Emits the ``.begin`` / ``.end`` record pair around a block.

    When a runtime sanitizer is attached to the simulator, the span also
    feeds the sanitizer's per-core protocol context (so diagnostics can
    name the collective, round and phase they fired inside) — still pure
    observation, no simulated time is consumed either way.
    """

    __slots__ = ("_env", "_tracer", "_san", "name", "detail")

    def __init__(self, env: Any, tracer: Any, san: Any, name: str,
                 detail: Any):
        self._env = env
        self._tracer = tracer
        self._san = san
        self.name = name
        self.detail = detail

    def __enter__(self) -> "_LiveSpan":
        if self._tracer.enabled:
            self._tracer.emit(self._env.now, f"core{self._env.core_id}",
                              f"{self.name}.begin", self.detail)
        if self._san is not None:
            self._san.on_span_enter(self._env.core_id, self.name,
                                    self.detail)
        return self

    def __exit__(self, *exc: Any) -> None:
        if self._tracer.enabled:
            self._tracer.emit(self._env.now, f"core{self._env.core_id}",
                              f"{self.name}.end", self.detail)
        if self._san is not None:
            self._san.on_span_exit(self._env.core_id, self.name)
        return None


def span(env: Any, name: str, detail: Any = None) -> Any:
    """Scope a phase of simulated work for the tracer.

    Usage inside an SPMD generator (the ``with`` block may contain
    ``yield from``s; begin/end read ``env.now`` at entry/exit)::

        with span(env, "round", r):
            yield from full_exchange(...)

    ``env`` is anything with ``now``, ``core_id`` and a reachable tracer
    (a :class:`~repro.hw.machine.CoreEnv`).  Disabled tracer and no
    attached sanitizer → shared no-op, no records, no allocation.
    """
    sim = env.sim
    tracer = sim.tracer
    san = sim.san
    if san is None and not tracer.enabled:
        return _NULL_SPAN
    return _LiveSpan(env, tracer, san, name, detail)


@dataclass(eq=False)
class Span:
    """One reassembled interval of one actor's activity."""

    actor: str
    name: str
    start_ps: int
    end_ps: int
    detail: Any = None
    depth: int = 0
    parent: Optional["Span"] = None
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_ps(self) -> int:
        return self.end_ps - self.start_ps

    def exclusive_ps(self) -> int:
        """Duration minus the time covered by direct children."""
        return self.duration_ps - sum(c.duration_ps for c in self.children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.actor} {self.name} "
                f"[{self.start_ps}, {self.end_ps}) depth={self.depth}>")


def extract_spans(records: Iterable["TraceRecord"]) -> list[Span]:
    """Rebuild nested spans from ``.begin``/``.end`` record pairs.

    Nesting is per actor and purely stack-based: a span that begins while
    another span of the same actor is open becomes its child.  Unclosed
    spans are dropped (a trace cut off by a capacity limit stays usable).
    Records whose tag is not a begin/end pair are ignored.
    """
    done: list[Span] = []
    open_stack: dict[str, list[Span]] = {}
    for rec in records:
        if rec.tag.endswith(".begin"):
            stack = open_stack.setdefault(rec.actor, [])
            parent = stack[-1] if stack else None
            sp = Span(rec.actor, rec.tag[:-6], rec.time_ps, rec.time_ps,
                      rec.detail, depth=len(stack), parent=parent)
            stack.append(sp)
        elif rec.tag.endswith(".end"):
            name = rec.tag[:-4]
            stack = open_stack.get(rec.actor, [])
            # Close the innermost open span of this name; anything opened
            # deeper that never closed is discarded as malformed.
            index = None
            for i in range(len(stack) - 1, -1, -1):
                if stack[i].name == name:
                    index = i
                    break
            if index is None:
                continue
            sp = stack[index]
            del stack[index:]
            sp.end_ps = rec.time_ps
            if sp.parent is not None and any(sp.parent is s for s in stack):
                sp.parent.children.append(sp)
            else:
                sp.parent = None
                sp.depth = 0
            done.append(sp)
    done.sort(key=lambda s: (s.start_ps, -s.duration_ps))
    return done


def phase_times(spans: Iterable[Span],
                by_actor: bool = False) -> dict:
    """Exclusive time per span name: ``{name: ps}`` (or
    ``{actor: {name: ps}}`` with ``by_actor=True``).

    Exclusive attribution makes the numbers additive: summing every
    phase of one actor reproduces that actor's total spanned time, so a
    wait-profile table built from these entries is self-consistent.
    """
    out: dict = {}
    for sp in spans:
        excl = sp.exclusive_ps()
        if by_actor:
            bucket = out.setdefault(sp.actor, {})
        else:
            bucket = out
        bucket[sp.name] = bucket.get(sp.name, 0) + excl
    return out


def round_times(spans: Iterable[Span]) -> dict[Any, dict[str, int]]:
    """Per-round aggregation: ``{round_detail: {actor: duration_ps}}``.

    A round's detail is whatever the emitting algorithm passed (the ring
    algorithms pass the round index ``r``), so the caller can line the
    rows up with the algorithm structure.
    """
    out: dict[Any, dict[str, int]] = {}
    for sp in spans:
        if sp.name != ROUND_SPAN:
            continue
        bucket = out.setdefault(sp.detail, {})
        bucket[sp.actor] = bucket.get(sp.actor, 0) + sp.duration_ps
    return out


def collective_spans(spans: Iterable[Span]) -> list[Span]:
    """Only the top-level collective spans (depth 0, known names)."""
    return [s for s in spans
            if s.depth == 0 and s.name in COLLECTIVE_SPANS]
