"""Trace and metrics exporters.

Two output families:

* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the
  ``trace_event`` JSON array Chrome's ``chrome://tracing`` and Perfetto
  load: one complete-duration (``"ph": "X"``) event per reassembled span,
  one instant (``"ph": "i"``) event per non-span trace record, plus
  thread-name metadata so rows are labeled ``core0`` .. ``core47``.
  Timestamps are microseconds (the format's unit), converted from the
  simulator's integer picoseconds.
* :func:`run_metrics` / :func:`write_metrics_json` /
  :func:`write_metrics_csv` — a flat machine-readable profile: per-core
  busy/wait breakdown straight from the :class:`~repro.sim.trace.TimeAccount`
  data, per-mesh-link traffic (message counts and bytes attributed to
  every XY-routed link out of the p2p counters), and per-MPB read/write
  counters.

Everything here is dependency-free (stdlib ``json``/``csv`` only).
"""

from __future__ import annotations

import csv
import json
from typing import TYPE_CHECKING, Any, Iterable, Optional, Sequence, TextIO, Union

from repro.obs.spans import Span, extract_spans
from repro.sim.clock import ps_to_us

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.machine import Machine, SPMDResult
    from repro.hw.topology import Topology
    from repro.sim.trace import TraceRecord

#: TimeAccount states counted as waiting (the complement is busy).
#: ``stall`` only appears under fault injection (transient core stalls).
WAIT_STATES = ("wait_flag", "wait_request", "wait_port", "idle", "stall")


def _actor_tid(actor: str) -> int:
    """Stable numeric thread id for an actor name (``core7`` -> 7)."""
    digits = "".join(ch for ch in actor if ch.isdigit())
    return int(digits) if digits else abs(hash(actor)) % 10_000


# --------------------------------------------------------------------- #
# Chrome trace_event
# --------------------------------------------------------------------- #

def chrome_trace_events(records: Sequence["TraceRecord"],
                        spans: Optional[Iterable[Span]] = None,
                        pid: int = 0) -> list[dict[str, Any]]:
    """Build the ``trace_event`` array for a recorded run.

    ``spans`` defaults to :func:`~repro.obs.spans.extract_spans` of the
    records; pass them explicitly to avoid re-extraction.
    """
    if spans is None:
        spans = extract_spans(records)
    events: list[dict[str, Any]] = []
    actors = sorted({r.actor for r in records},
                    key=lambda a: (_actor_tid(a), a))
    for actor in actors:
        events.append({
            "name": "thread_name", "ph": "M", "pid": pid,
            "tid": _actor_tid(actor), "args": {"name": actor},
        })
    for sp in spans:
        event: dict[str, Any] = {
            "name": sp.name, "ph": "X", "cat": "sim",
            "ts": ps_to_us(sp.start_ps), "dur": ps_to_us(sp.duration_ps),
            "pid": pid, "tid": _actor_tid(sp.actor),
        }
        if sp.detail is not None:
            event["args"] = {"detail": _jsonable(sp.detail)}
        events.append(event)
    for rec in records:
        if rec.tag.endswith(".begin") or rec.tag.endswith(".end"):
            continue  # represented as "X" duration events above
        event = {
            "name": rec.tag, "ph": "i", "cat": "sim", "s": "t",
            "ts": ps_to_us(rec.time_ps), "pid": pid,
            "tid": _actor_tid(rec.actor),
        }
        if rec.detail is not None:
            event["args"] = {"detail": _jsonable(rec.detail)}
        events.append(event)
    return events


def write_chrome_trace(path_or_file: Union[str, TextIO],
                       records: Sequence["TraceRecord"],
                       spans: Optional[Iterable[Span]] = None) -> None:
    """Write the ``trace_event`` JSON array to ``path_or_file``."""
    events = chrome_trace_events(records, spans)
    if hasattr(path_or_file, "write"):
        json.dump(events, path_or_file, indent=1)
    else:
        with open(path_or_file, "w") as fh:
            json.dump(events, fh, indent=1)


def _jsonable(value: Any) -> Any:
    try:
        json.dumps(value)
        return value
    except TypeError:
        return repr(value)


# --------------------------------------------------------------------- #
# Flat metrics
# --------------------------------------------------------------------- #

def account_metrics(accounts: Sequence, labels: Optional[Sequence[str]] = None,
                    ) -> list[dict[str, Any]]:
    """Per-core busy/wait rows from a run's :class:`TimeAccount` list.

    Every row carries the raw per-state picoseconds plus derived
    ``busy_pct``/``wait_pct`` (of that core's accounted total), so the
    percentages always agree with the account totals by construction.
    """
    rows = []
    for i, acct in enumerate(accounts):
        total = acct.total()
        wait = sum(acct.get(s) for s in WAIT_STATES)
        rows.append({
            "core": labels[i] if labels else f"core{i}",
            "total_ps": total,
            "busy_ps": total - wait,
            "wait_ps": wait,
            "busy_pct": 100.0 * (total - wait) / total if total else 0.0,
            "wait_pct": 100.0 * wait / total if total else 0.0,
            "states": dict(sorted(acct.states.items())),
        })
    return rows


def link_traffic(machine: "Machine") -> list[dict[str, Any]]:
    """Per-mesh-link traffic from the machine's p2p counters.

    Every recorded (src, dst) message is walked along its XY route and
    its bytes charged to each traversed link; a link is the ordered pair
    of adjacent router coordinates.  Requires the traffic counters to
    have been enabled (``comm_stats(machine)``) before the run; returns
    an empty list otherwise.
    """
    stats = machine.services.get("p2p.stats")
    if stats is None:
        return []
    topo: "Topology" = machine.topology
    links: dict[tuple[tuple[int, int], tuple[int, int]], list[int]] = {}
    for (src, dst), (msgs, nbytes) in sorted(stats.by_pair.items()):
        route = topo.xy_route(src, dst)
        for a, b in zip(route, route[1:]):
            entry = links.setdefault((a, b), [0, 0])
            entry[0] += msgs
            entry[1] += nbytes
    return [
        {"from": list(a), "to": list(b), "messages": m, "bytes": n}
        for (a, b), (m, n) in sorted(links.items())
    ]


def mpb_counters(machine: "Machine") -> list[dict[str, Any]]:
    """Per-MPB read/write counters (bytes actually moved through SRAM)."""
    return [
        {"core": mpb.core_id,
         "reads": mpb.io_reads, "read_bytes": mpb.io_read_bytes,
         "writes": mpb.io_writes, "write_bytes": mpb.io_write_bytes}
        for mpb in machine.mpbs
    ]


def run_metrics(machine: "Machine", result: "SPMDResult",
                meta: Optional[dict[str, Any]] = None) -> dict[str, Any]:
    """The full machine-readable profile of one SPMD run."""
    cores = account_metrics(result.accounts)
    total = sum(r["total_ps"] for r in cores)
    wait = sum(r["wait_ps"] for r in cores)
    metrics = {
        "meta": dict(meta or {}),
        "elapsed_us": result.elapsed_us,
        "wait_fraction": wait / total if total else 0.0,
        "cores": cores,
        "mesh_links": link_traffic(machine),
        "mpb": mpb_counters(machine),
    }
    faults = getattr(machine, "faults", None)
    if faults is not None:
        metrics["faults"] = {
            "seed": faults.plan.seed,
            "counts": faults.summary(),
            "events": len(faults.events),
        }
    return metrics


def write_metrics_json(path_or_file: Union[str, TextIO],
                       metrics: dict[str, Any]) -> None:
    if hasattr(path_or_file, "write"):
        json.dump(metrics, path_or_file, indent=1)
    else:
        with open(path_or_file, "w") as fh:
            json.dump(metrics, fh, indent=1)


def write_metrics_csv(path_or_file: Union[str, TextIO],
                      metrics: dict[str, Any]) -> None:
    """Flatten the per-core rows to CSV (one row per core)."""
    rows = metrics["cores"]
    states = sorted({s for row in rows for s in row["states"]})
    fields = ["core", "total_ps", "busy_ps", "wait_ps",
              "busy_pct", "wait_pct", *states]

    def _write(fh: TextIO) -> None:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        for row in rows:
            flat = {k: row[k] for k in fields[:6]}
            flat.update({s: row["states"].get(s, 0) for s in states})
            writer.writerow(flat)

    if hasattr(path_or_file, "write"):
        _write(path_or_file)
    else:
        with open(path_or_file, "w", newline="") as fh:
            _write(fh)
