"""Observability: phase-scoped spans, trace export, collective profiling.

The paper's methodology is profiling-driven — every optimization came
from seeing where cores burn time.  This package is the simulator's
version of that instrument:

* :mod:`repro.obs.spans` — ``span(env, name)`` context managers the
  communication layers wrap collective calls, ring rounds and protocol
  phases in; span-tree reassembly and exclusive-time attribution.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (open in
  ``chrome://tracing`` or https://ui.perfetto.dev) and flat CSV/JSON
  metrics (per-core busy/wait, per-mesh-link traffic, MPB counters).
* :mod:`repro.obs.profile` — :func:`profile_collective`, the engine of
  the ``python -m repro profile`` subcommand.

See ``docs/observability.md`` for the end-to-end workflow.
"""

from repro.obs.export import (
    WAIT_STATES,
    account_metrics,
    chrome_trace_events,
    link_traffic,
    mpb_counters,
    run_metrics,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.obs.spans import (
    Span,
    collective_spans,
    extract_spans,
    phase_times,
    round_times,
    span,
)

__all__ = [
    "CollectiveProfile",
    "Span",
    "WAIT_STATES",
    "account_metrics",
    "chrome_trace_events",
    "collective_spans",
    "extract_spans",
    "link_traffic",
    "mpb_counters",
    "phase_times",
    "profile_collective",
    "round_times",
    "run_metrics",
    "span",
    "write_chrome_trace",
    "write_metrics_csv",
    "write_metrics_json",
]


def __getattr__(name: str):
    # repro.obs.profile pulls in the bench runner, whose communicator
    # imports span() from this package — importing it lazily keeps the
    # package importable from inside repro.core.comm (PEP 562).
    if name in ("CollectiveProfile", "profile_collective"):
        from repro.obs import profile
        return getattr(profile, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
