"""The profiling driver behind ``python -m repro profile``.

:func:`profile_collective` runs one collective (any registered kind, any
stack, any size) under an enabled tracer and returns a
:class:`CollectiveProfile` bundling the raw records, the reassembled
spans, the per-core time accounts, and the flat metrics — everything the
paper's Section IV profiling methodology needs:

* :meth:`CollectiveProfile.wait_profile_table` — the Fig.-10-style table
  (per-core busy/wait percentages plus the dominant wait states),
* :meth:`CollectiveProfile.phase_table` — exclusive time per span phase
  (collective / round / sync / copy / send / recv / reduce),
* :meth:`CollectiveProfile.write` — the export files (Chrome trace JSON,
  metrics JSON, metrics CSV) for ``chrome://tracing`` / Perfetto and
  downstream analysis.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.bench.runner import default_cores, program_for
from repro.core.ops import SUM, ReduceOp
from repro.core.registry import make_communicator
from repro.hw.config import SCCConfig
from repro.hw.machine import Machine, SPMDResult
from repro.obs.export import (
    WAIT_STATES,
    run_metrics,
    write_chrome_trace,
    write_metrics_csv,
    write_metrics_json,
)
from repro.obs.spans import Span, extract_spans, phase_times
from repro.sim.clock import ps_to_us
from repro.sim.trace import TraceRecord, Tracer
from repro.util.tables import format_table


@dataclass
class CollectiveProfile:
    """Everything one profiled collective run produced."""

    kind: str
    stack: str
    size: int
    cores: int
    machine: Machine
    result: SPMDResult
    records: list[TraceRecord]
    spans: list[Span] = field(default_factory=list)

    @property
    def elapsed_us(self) -> float:
        return self.result.elapsed_us

    def metrics(self) -> dict[str, Any]:
        return run_metrics(self.machine, self.result, meta={
            "kind": self.kind, "stack": self.stack,
            "size": self.size, "cores": self.cores,
        })

    # -- tables ----------------------------------------------------------
    def wait_profile_table(self, max_rows: Optional[int] = None) -> str:
        """Per-core busy/wait percentages (the Fig.-10 wait profile).

        Percentages come straight from the per-core
        :class:`~repro.sim.trace.TimeAccount` totals, so they agree with
        the accounts by construction.
        """
        headers = ["core", "total us", "busy %", "wait %",
                   "wait_flag %", "wait_request %", "wait_port %"]
        rows: list[list[Any]] = []
        accounts = self.result.accounts
        shown = accounts if max_rows is None else accounts[:max_rows]
        for i, acct in enumerate(shown):
            total = acct.total()
            wait = sum(acct.get(s) for s in WAIT_STATES)
            pct = (lambda ps: 100.0 * ps / total if total else 0.0)
            rows.append([
                f"core{i}", ps_to_us(total), pct(total - wait), pct(wait),
                pct(acct.get("wait_flag")), pct(acct.get("wait_request")),
                pct(acct.get("wait_port")),
            ])
        merged = accounts[0]
        for acct in accounts[1:]:
            merged = merged.merged(acct)
        total = merged.total()
        wait = sum(merged.get(s) for s in WAIT_STATES)
        pct = (lambda ps: 100.0 * ps / total if total else 0.0)
        rows.append([
            "ALL", ps_to_us(total), pct(total - wait), pct(wait),
            pct(merged.get("wait_flag")), pct(merged.get("wait_request")),
            pct(merged.get("wait_port")),
        ])
        title = (f"wait profile: {self.kind} on stack {self.stack!r}, "
                 f"{self.size} doubles, {self.cores} cores "
                 f"({self.elapsed_us:.1f} us simulated)")
        return title + "\n" + format_table(headers, rows)

    def phase_table(self) -> str:
        """Exclusive simulated time per span phase, summed over cores."""
        per_phase = phase_times(self.spans)
        if not per_phase:
            return "(no spans recorded — tracer disabled?)"
        total = sum(per_phase.values()) or 1
        rows = [
            [name, ps_to_us(ps), 100.0 * ps / total]
            for name, ps in sorted(per_phase.items(),
                                   key=lambda kv: -kv[1])
        ]
        return ("phase breakdown (exclusive core-time per span):\n"
                + format_table(["phase", "us", "%"], rows))

    # -- files -----------------------------------------------------------
    def basename(self) -> str:
        return f"profile_{self.kind}_{self.stack}_{self.size}"

    def write(self, outdir: str) -> dict[str, str]:
        """Write trace + metrics files; returns ``{kind: path}``."""
        os.makedirs(outdir, exist_ok=True)
        base = os.path.join(outdir, self.basename())
        paths = {
            "trace": base + ".trace.json",
            "metrics_json": base + ".metrics.json",
            "metrics_csv": base + ".metrics.csv",
        }
        if self.records:
            write_chrome_trace(paths["trace"], self.records, self.spans)
        else:
            del paths["trace"]  # untraced run: nothing to put in a trace
        metrics = self.metrics()
        write_metrics_json(paths["metrics_json"], metrics)
        write_metrics_csv(paths["metrics_csv"], metrics)
        return paths


def profile_collective(kind: str, stack: str, size: int, *,
                       cores: Optional[int] = None,
                       config: Optional[SCCConfig] = None,
                       op: ReduceOp = SUM,
                       trace: bool = True,
                       trace_capacity: Optional[int] = None,
                       rank_order: Optional[Sequence[int]] = None,
                       seed: int = 20120901) -> CollectiveProfile:
    """Run one collective under the profiler.

    Mirrors :func:`repro.bench.runner.measure_collective` (same program,
    same seed, same rank-0 timing convention) but keeps the machine,
    trace records and spans for analysis.  ``trace=False`` measures with
    the tracer disabled — the zero-overhead path; simulated time is
    identical either way because spans never consume simulated time.
    """
    cores = cores if cores is not None else default_cores()
    config = config if config is not None else SCCConfig()
    tracer = Tracer(enabled=trace, capacity=trace_capacity)
    machine = Machine(config, tracer=tracer)
    config.check_rank_count(cores)
    from repro.bench.stats import comm_stats
    comm_stats(machine)  # enable the traffic counters
    comm = make_communicator(machine, stack)
    rng = np.random.default_rng(seed)
    inputs = [rng.normal(size=size) for _ in range(cores)]
    program = program_for(kind, comm, inputs, op)
    ranks = list(rank_order) if rank_order is not None else list(range(cores))
    result = machine.run_spmd(program, ranks=ranks)
    records = list(tracer.records)
    return CollectiveProfile(
        kind=kind, stack=stack, size=size, cores=cores,
        machine=machine, result=result, records=records,
        spans=extract_spans(records),
    )
