"""Command-line interface: regenerate the paper's results from the shell.

Examples::

    python -m repro info
    python -m repro fig6
    python -m repro fig9 9f --sizes 548:581:1
    python -m repro fig10 --cycles 4
    python -m repro stepwise
    python -m repro sweep allreduce --stacks blocking mpb --sizes 552:577:4
    python -m repro sweep allreduce --stacks tuned --sizes 552:577:4 \\
        --algorithm sched:recursive_halving
    python -m repro sweep --topology cluster:2x24 --kinds allreduce
    python -m repro info --topology torus:6x4
    python -m repro tune --topology cluster:2x24
    python -m repro bench allreduce --stacks blocking mpb --jobs 4
    python -m repro bench --smoke
    python -m repro tune --cores 8 48 --sizes 16,64,256,600
    python -m repro tune --kinds scan bcast --cores 8
    python -m repro synth --smoke
    python -m repro synth --kinds scan --cores 48 --sizes 1024 --frontier
    python -m repro gcmc --stack mpb --cycles 5
    python -m repro profile allreduce --stack mpb --sizes 1024
    python -m repro chaos --profile heavy --seeds 1:6 --trace-out chaos
    python -m repro lint
    python -m repro sanitize allreduce --stacks mpb --cores 2 47 48
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.apps.gcmc.config import GCMCConfig
from repro.apps.gcmc.driver import run_gcmc
from repro.bench.figures import (
    FIG9_PANELS,
    FIG10_STACKS,
    fig6,
    fig9,
    fig10,
)
from repro.bench.report import Series, format_series_table
from repro.bench.runner import KINDS, default_cores, measure_collective, sweep
from repro.core.registry import STACKS, available_stacks, make_communicator
from repro.hw.config import CLOCK_PRESETS, SCCConfig
from repro.hw.machine import Machine
from repro.obs.profile import profile_collective
from repro.sched.builders import SCHEDULED_KINDS


def _parse_sizes(spec: str) -> list[int]:
    if ":" in spec:
        start, stop, step = (int(x) for x in spec.split(":"))
        return list(range(start, stop, step))
    return [int(x) for x in spec.split(",")]


def _cmd_info(args: argparse.Namespace) -> int:
    cfg = SCCConfig(topology=args.topology)
    machine = Machine(cfg)
    topo = machine.topology
    print(f"Simulated Intel SCC (standard preset, "
          f"topology {cfg.topology_key()!r})")
    chips = f" x {topo.chips} chips" if topo.chips > 1 else ""
    print(f"  cores            : {cfg.num_cores} "
          f"({topo.cols}x{topo.rows} tiles x "
          f"{topo.cores_per_tile} cores{chips})")
    print(f"  clocks           : core {cfg.core_freq_hz / 1e6:.0f} MHz, "
          f"mesh {cfg.mesh_freq_hz / 1e6:.0f} MHz, "
          f"DRAM {cfg.dram_freq_hz / 1e6:.0f} MHz")
    print(f"  MPB              : {cfg.mpb_bytes_per_core} B/core "
          f"({cfg.mpb_flag_bytes} B flags)")
    print(f"  L1 line          : {cfg.l1_line_bytes} B "
          f"({cfg.doubles_per_line} doubles)")
    print(f"  mesh diameter    : {topo.max_hops()} hops "
          f"(mean {topo.average_hops():.2f})")
    print(f"  arbiter erratum  : "
          f"{'modeled (workaround active)' if cfg.erratum_enabled else 'fixed'}")
    print(f"  stacks           : {', '.join(STACKS)}")
    print(f"  clock presets    : {', '.join(sorted(CLOCK_PRESETS))}")
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    print(fig6(p=args.cores))
    return 0


def _cmd_fig9(args: argparse.Namespace) -> int:
    sizes = _parse_sizes(args.sizes) if args.sizes else None
    result = fig9(args.panel, sizes=sizes, cores=args.cores)
    print(result.render())
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    stacks = tuple(args.stacks) if args.stacks else FIG10_STACKS
    result = fig10(cycles=args.cycles, stacks=stacks)
    print(result.render())
    return 0


def _cmd_stepwise(args: argparse.Namespace) -> int:
    n = args.size
    print(f"Section IV step-wise Allreduce speedups (n = {n}):")
    lat = {}
    for stack in ("blocking", "ircce", "lightweight",
                  "lightweight_balanced", "mpb"):
        lat[stack] = measure_collective("allreduce", stack, n,
                                        cores=args.cores)
    chain = list(lat)
    for before, after in zip(chain, chain[1:]):
        print(f"  {before:>22} -> {after:<22} "
              f"{lat[before] / lat[after]:5.2f}x")
    print(f"  {'blocking':>22} -> {'mpb':<22} "
          f"{lat['blocking'] / lat['mpb']:5.2f}x (combined)")
    return 0


#: Compact default sizes for `sweep` when --sizes is omitted: one short
#: vector plus the paper's 552-double application case.
SWEEP_DEFAULT_SIZES = (64, 552)


def _cmd_sweep(args: argparse.Namespace) -> int:
    kinds = list(args.kinds) if args.kinds else (
        [args.kind] if args.kind else [])
    if not kinds:
        print("sweep: name a collective (positional kind or --kinds)",
              file=sys.stderr)
        return 2
    sizes = (_parse_sizes(args.sizes) if args.sizes
             else list(SWEEP_DEFAULT_SIZES))
    for kind in kinds:
        data = sweep(kind, args.stacks, sizes, cores=args.cores,
                     algo=args.algorithm, engine=args.engine,
                     topology=args.topology)
        if len(kinds) > 1:
            print(f"== {kind} ==")
        series = [Series.from_lists(stack, sizes, data[stack])
                  for stack in args.stacks]
        print(format_series_table(series))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.executor import ResultCache, SweepPoint, run_sweep
    from repro.bench.runner import default_sizes
    from repro.bench.wallclock import (
        collect_baseline,
        format_baseline,
        write_baseline,
    )

    if args.smoke:
        data = collect_baseline(smoke=True, jobs=args.jobs,
                                cores=args.cores,
                                sizes=(_parse_sizes(args.sizes)
                                       if args.sizes else None))
        out = args.wallclock_out or "BENCH_wallclock.json"
        write_baseline(out, data)
        print(format_baseline(data))
        print(f"wrote {out}")
        return 0

    sizes = _parse_sizes(args.sizes) if args.sizes else default_sizes()
    config = SCCConfig(topology=args.topology)
    if args.cores is not None:
        cores = args.cores
    elif args.topology is not None:
        cores = config.num_cores
    else:
        cores = default_cores()
    cache = (False if args.no_cache
             else ResultCache(args.cache_dir) if args.cache_dir else None)
    points = [SweepPoint(kind=args.kind, stack=stack, size=n, cores=cores,
                         config=config, algo=args.algorithm)
              for stack in args.stacks for n in sizes]
    outcome = run_sweep(points, jobs=args.jobs, cache=cache,
                        engine=args.engine)
    values = iter(outcome.latencies)
    data = {stack: [next(values) for _ in sizes] for stack in args.stacks}
    series = [Series.from_lists(stack, sizes, data[stack])
              for stack in args.stacks]
    print(format_series_table(series))
    accounting = (f"{outcome.points} points in {outcome.wall_s:.2f}s "
                  f"(jobs={outcome.jobs}, cache hits {outcome.hits}, "
                  f"simulated {outcome.misses}")
    if outcome.analytic:
        accounting += f", analytic {outcome.analytic}"
    if outcome.validated:
        accounting += (f", validated {outcome.validated} "
                       f"[max drift {outcome.max_drift:+.1%}]")
    print(accounting + ")")
    if args.wallclock_out:
        payload = {
            "kind": args.kind, "stacks": list(args.stacks), "sizes": sizes,
            "cores": cores, "points": outcome.points,
            "wall_s": round(outcome.wall_s, 4), "jobs": outcome.jobs,
            "cache_hits": outcome.hits, "simulated": outcome.misses,
        }
        write_baseline(args.wallclock_out, payload)
        print(f"wrote {args.wallclock_out}")
    return 0


def _cmd_gcmc(args: argparse.Namespace) -> int:
    cfg = GCMCConfig(initial_particles=args.particles,
                     capacity=max(2 * args.particles, args.particles + 16))
    machine = Machine(SCCConfig())
    comm = make_communicator(machine, args.stack)
    result = run_gcmc(machine, comm, cfg, args.cycles)
    obs = result.observables
    print(f"GCMC on {machine.config.num_cores} simulated cores, "
          f"stack {args.stack!r}:")
    print(f"  cycles            : {result.cycles}")
    print(f"  final energy      : {result.final_energy:.4f}")
    print(f"  final particles   : {result.final_particles}")
    print(f"  mean energy       : {obs.mean_energy:.4f}")
    print(f"  acceptance ratio  : {obs.acceptance_ratio:.2f}")
    print(f"  simulated runtime : {result.elapsed_us / 1000:.1f} ms")
    print(f"  wait fraction     : {result.wait_fraction():.2f}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    for size in _parse_sizes(args.sizes):
        prof = profile_collective(args.kind, args.stack, size,
                                  cores=args.cores, trace=not args.no_trace)
        print(prof.wait_profile_table())
        print()
        if not args.no_trace:
            print(prof.phase_table())
            print()
        paths = prof.write(args.out)
        for path in paths.values():
            print(f"wrote {path}")
        print()
    return 0


def _parse_seeds(spec: str) -> list[int]:
    if ":" in spec:
        start, stop = (int(x) for x in spec.split(":"))
        return list(range(start, stop))
    return [int(x) for x in spec.split(",")]


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.campaign import (
        CHAOS_KINDS,
        CHAOS_PROFILES,
        GCMC_CHAOS_STACKS,
        run_campaign,
        run_gcmc_campaign,
        run_trial,
    )

    kinds = tuple(args.kinds) if args.kinds else CHAOS_KINDS
    seeds = _parse_seeds(args.seeds)
    if args.app == "gcmc":
        import pathlib

        from repro.ensemble.summary import EnsembleSummary

        stacks = (tuple(args.stacks) if args.stacks
                  else GCMC_CHAOS_STACKS)
        summary = EnsembleSummary.load(
            pathlib.Path(args.summary) if args.summary else None)
        camp = run_gcmc_campaign(summary, profile=args.profile,
                                 stacks=stacks, seeds=seeds)
    else:
        stacks = tuple(args.stacks) if args.stacks else tuple(STACKS)
        camp = run_campaign(profile=args.profile, kinds=kinds,
                            stacks=stacks, seeds=seeds, size=args.size,
                            cores=args.cores, iters=args.iters,
                            watchdog_us=args.watchdog_us)
    print(camp.survival_table())
    print()
    print("injected faults:",
          ", ".join(f"{k}={n}" for k, n in camp.fault_totals().items())
          or "(none)")
    for t in camp.failures():
        print(f"CONTRACT VIOLATION: {t.kind}/{t.stack} seed={t.seed} "
              f"-> {t.outcome}: {t.detail}")
    if args.trace_out and args.app == "collectives":
        import os

        from repro.faults.plan import FaultPlan
        from repro.obs.export import write_chrome_trace
        from repro.obs.spans import extract_spans

        plan = CHAOS_PROFILES[args.profile]
        traced = run_trial(kinds[0], stacks[0],
                           plan.with_seed(seeds[0]), size=args.size,
                           cores=args.cores, iters=args.iters,
                           watchdog_us=args.watchdog_us, trace=True)
        os.makedirs(args.trace_out, exist_ok=True)
        path = os.path.join(
            args.trace_out,
            f"chaos_{kinds[0]}_{stacks[0]}_{args.profile}.trace.json")
        write_chrome_trace(path, traced.records,
                           extract_spans(traced.records))
        print(f"wrote {path}")
    return 1 if camp.failures() else 0


def _cmd_tune(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.sched.select import (
        DEFAULT_PS,
        DEFAULT_SIZES,
        SelectionTable,
        build_selection_table,
    )

    kinds = tuple(args.kinds) if args.kinds else None
    ps = tuple(args.cores) if args.cores else DEFAULT_PS
    sizes = (tuple(_parse_sizes(args.sizes)) if args.sizes
             else DEFAULT_SIZES)
    config = SCCConfig(topology=args.topology)
    table = build_selection_table(kinds, ps, sizes, config,
                                  synth=not args.no_synth)
    tuned = sum(len(v) for v in table.entries.values())
    # A --topology run tunes one shape's slot; treat it as partial so it
    # merges into the committed table instead of replacing it.
    partial = bool(args.kinds or args.cores or args.sizes
                   or args.topology)
    out = pathlib.Path(args.out) if args.out else None
    if partial and not args.fresh:
        # A filtered run only re-tunes the requested slice; overlay it on
        # the existing table so the other points survive.
        try:
            existing = SelectionTable.load(out)
        except (OSError, ValueError, json.JSONDecodeError):
            existing = None
        if existing is not None:
            existing.merge(table)
            table = existing
            print(f"merged {tuned} re-tuned entries into the existing "
                  f"table (use --fresh to start over)")
    for kind in table.kinds():
        counts: dict[str, int] = {}
        for algo in table.entries[kind].values():
            counts[algo] = counts.get(algo, 0) + 1
        summary = ", ".join(f"{a} x{c}" for a, c in sorted(counts.items()))
        print(f"  {kind:<15} {summary}")
    path = table.save(out)
    entries = sum(len(v) for v in table.entries.values())
    line = f"wrote {path} ({entries} entries"
    if table.topologies:
        extra = sum(len(v) for sub in table.topologies.values()
                    for v in sub.entries.values())
        line += (f" + {extra} across {len(table.topologies)} extra "
                 f"topology slot(s)")
    print(line + ")")
    return 0


#: The `synth --smoke` grid: every pipelinable kind plus one partitioned
#: kind, small rank counts (odd + power of two), two sizes — enough to
#: exercise every candidate family through the verifier in seconds.
SYNTH_SMOKE_KINDS = ("bcast", "reduce", "scan", "allreduce")
SYNTH_SMOKE_PS = (2, 5, 8)
SYNTH_SMOKE_SIZES = (8, 64)


def _cmd_synth(args: argparse.Namespace) -> int:
    import time

    from repro.sched.synth import default_model, synthesize

    if args.smoke:
        kinds = SYNTH_SMOKE_KINDS
        ps, sizes, verify = SYNTH_SMOKE_PS, SYNTH_SMOKE_SIZES, True
    else:
        kinds = tuple(args.kinds) if args.kinds else SCHEDULED_KINDS
        ps = tuple(args.cores) if args.cores else (2, 8, 48)
        sizes = (tuple(_parse_sizes(args.sizes)) if args.sizes
                 else (8, 64, 1024))
        verify = args.verify
    model = default_model()
    points = priced = wins = 0
    started = time.perf_counter()
    for kind in kinds:
        for p in ps:
            if p > model.config.num_cores:
                print(f"  (skipping p={p}: chip has "
                      f"{model.config.num_cores} cores)")
                continue
            for n in sizes:
                res = synthesize(kind, p, n, model,
                                 blocking=args.blocking, verify=verify)
                points += 1
                priced += len(res.candidates)
                best, hand = res.best, res.best_hand
                line = (f"{kind:<14} p={p:<3} n={n:<5} "
                        f"best {best.name} ({best.cost / 1e6:.1f}us est)")
                if best.synthesized:
                    wins += 1
                    line += (f"  beats {hand.name} "
                             f"({hand.cost / 1e6:.1f}us, "
                             f"{hand.cost / best.cost:.2f}x)")
                print(line)
                if args.frontier:
                    for c in res.frontier:
                        print(f"    frontier {c.name:<30} "
                              f"lat {c.latency_cost / 1e6:8.2f}us  "
                              f"bw {c.cost / 1e6:8.2f}us  "
                              f"rounds {c.rounds}")
    wall = time.perf_counter() - started
    print(f"priced {priced} candidates over {points} points in "
          f"{wall:.2f}s ({priced / wall:.0f} candidates/s"
          + ("; synthesized candidates verified" if verify else "")
          + ")")
    print(f"synthesized winner at {wins}/{points} points")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import main as lint_main

    return lint_main(args.paths)


def _cmd_sanitize(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.analysis.sanitizer import Sanitizer
    from repro.bench.runner import program_for
    from repro.core.ops import SUM

    kinds = tuple(args.kinds) if args.kinds else KINDS
    stacks = tuple(args.stacks) if args.stacks else tuple(STACKS)
    total = 0
    for kind in kinds:
        for stack in stacks:
            for cores in args.cores:
                machine = Machine(SCCConfig())
                san = Sanitizer().install(machine)
                comm = make_communicator(machine, stack)
                rng = np.random.default_rng(20120901)
                inputs = [rng.normal(size=args.size) for _ in range(cores)]
                program = program_for(kind, comm, inputs, SUM)
                machine.run_spmd(program, ranks=list(range(cores)))
                label = f"{kind}/{stack} p={cores} n={args.size}"
                if san.total_findings:
                    total += san.total_findings
                    print(f"{label}: {san.total_findings} finding(s) "
                          f"{san.counts()}")
                    for diag in san.diagnostics[:args.show]:
                        print(f"  {diag}")
                else:
                    print(f"{label}: clean")
    if total:
        print(f"sanitize: {total} finding(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_race(args: argparse.Namespace) -> int:
    from repro.analysis.races import (collective_scenario, explore,
                                      run_detected, run_gate)

    kinds = tuple(args.kinds) if args.kinds else KINDS
    unknown = [k for k in kinds if k not in KINDS]
    if unknown:
        print(f"race: unknown kind(s) {unknown}; choose from "
              f"{', '.join(KINDS)}", file=sys.stderr)
        return 2
    stacks = tuple(args.stacks) if args.stacks else tuple(STACKS)
    seeds = tuple(range(1, args.seeds + 1))

    if args.fixtures:
        from repro.analysis.fixtures import (RACE_FIXTURES,
                                             race_fixture_scenario,
                                             run_race_fixture)

        missed = 0
        for fx in RACE_FIXTURES:
            detector = run_race_fixture(fx)
            rules = {d.rule for d in detector.diagnostics}
            if not set(fx.rules) <= rules:
                missed += 1
                print(f"{fx.name}: MISSED expected {fx.rules}, "
                      f"got {sorted(rules)}")
                continue
            line = f"{fx.name}: detected {sorted(rules)}"
            if not args.no_explore:
                report = explore(race_fixture_scenario(fx), seeds=seeds)
                verdict = ("confirmed" if report.confirmed else "benign")
                line += (f"; {verdict} after {report.runs} perturbed "
                         "run(s)")
                if report.confirmed:
                    line += f" [{report.confirmed[0].perturbation}]"
            print(line)
        if missed:
            print(f"race: {missed} fixture(s) undetected", file=sys.stderr)
            return 1
        return 0

    if args.gate:
        report = run_gate(kinds, stacks, cores=args.cores, size=args.size,
                          seeds=seeds, synth_limit=args.synth_limit,
                          progress=print)
        print(f"race gate: {report.scenarios} scenario(s), "
              f"{report.candidates} candidate(s), "
              f"{report.confirmed} confirmed")
        return 0 if report.clean else 1

    total_confirmed = 0
    total_candidates = 0
    for kind in kinds:
        for stack in stacks:
            for cores in args.cores:
                scenario = collective_scenario(kind, stack, cores,
                                               args.size)
                detector, failure = run_detected(scenario)
                if failure is not None:
                    print(f"{scenario.name}: baseline raised {failure}")
                candidates = detector.candidates()
                if not candidates:
                    print(f"{scenario.name}: clean")
                    continue
                total_candidates += len(candidates)
                print(f"{scenario.name}: {len(candidates)} candidate(s) "
                      f"{detector.counts()}")
                for diag in detector.diagnostics[:args.show]:
                    print(f"  {diag}")
                if args.no_explore:
                    continue
                report = explore(scenario, seeds=seeds, baseline=detector)
                total_confirmed += len(report.confirmed)
                for verdict in report.verdicts:
                    print(f"  {verdict}")
    if total_confirmed or (args.no_explore and total_candidates):
        print(f"race: {total_candidates} candidate(s), "
              f"{total_confirmed} confirmed", file=sys.stderr)
        return 1
    return 0


def _cmd_paper(args: argparse.Namespace) -> int:
    """One-shot reproduction digest: Fig. 6, the Section-IV chain, and a
    compact Fig. 10 (full Fig. 9 panels via `fig9`, they take minutes)."""
    print(fig6())
    print()
    _cmd_stepwise(argparse.Namespace(size=552, cores=48))
    print()
    result = fig10(cycles=args.cycles)
    print(result.render())
    return 0


def _cmd_ensemble_summarize(args: argparse.Namespace) -> int:
    import pathlib

    from repro.ensemble.summary import (
        REFERENCE_CORES,
        REFERENCE_CYCLES,
        REFERENCE_MEMBERS,
        build_summary,
        reference_config,
    )

    cfg = reference_config().copy(seed=args.base_seed)
    if args.particles is not None:
        cfg = cfg.copy(initial_particles=args.particles,
                       capacity=max(2 * args.particles,
                                    args.particles + 16))
    if args.box is not None:
        cfg = cfg.copy(box=args.box)
    cycles = REFERENCE_CYCLES if args.cycles is None else args.cycles
    cores = REFERENCE_CORES if args.cores is None else args.cores
    members = REFERENCE_MEMBERS if args.members is None else args.members
    if cycles < args.block_size:
        print(f"error: --cycles {cycles} is shorter than one "
              f"--block-size {args.block_size} block; raise --cycles or "
              f"lower --block-size", file=sys.stderr)
        return 2
    summary = build_summary(cfg, cycles, cores, members=members,
                            block_size=args.block_size, jobs=args.jobs)
    path = summary.save(pathlib.Path(args.out) if args.out else None)
    print(summary.describe())
    print(f"wrote {path}")
    return 0


def _cmd_ensemble_check(args: argparse.Namespace) -> int:
    import pathlib
    from dataclasses import replace as _replace

    from repro.ensemble.features import extract_features
    from repro.ensemble.members import CandidateSpec, run_candidate
    from repro.ensemble.summary import (
        DEFAULT_MAX_PC_FAIL,
        DEFAULT_THRESHOLD,
        EnsembleSummary,
    )
    from repro.faults.campaign import CHAOS_PROFILES

    summary = EnsembleSummary.load(
        pathlib.Path(args.summary) if args.summary else None)
    plan = None
    if args.profile != "off" or args.force_corruption:
        plan = CHAOS_PROFILES[args.profile].with_seed(args.fault_seed)
        if args.force_corruption:
            plan = _replace(plan, payload_corrupt_prob=1.0,
                            payload_corrupt_max=1, checksums=False)
    label_bits = [args.engine, args.stack]
    if args.algorithm:
        label_bits.append(f"algo={args.algorithm}")
    if plan is not None:
        label_bits.append(f"faults={args.profile}"
                          + ("+corrupt" if args.force_corruption else "")
                          + f" seed={args.fault_seed}")
    if args.engine == "serial" and plan is not None:
        print("fault profiles need the simulated machine; "
              "use --engine sim", file=sys.stderr)
        return 2
    spec = CandidateSpec(label=" ".join(label_bits), engine=args.engine,
                         stack=args.stack, seed=args.seed,
                         allreduce_algo=args.algorithm, plan=plan,
                         watchdog_us=(args.watchdog_us
                                      if args.engine == "sim" else None))
    cfg = summary.config()
    result = run_candidate(spec, cfg, int(summary.meta["cycles"]),
                           int(summary.meta["cores"]))
    check = summary.check(
        extract_features(result, int(summary.meta["block_size"])),
        threshold=(DEFAULT_THRESHOLD if args.threshold is None
                   else args.threshold),
        max_pc_fail=(DEFAULT_MAX_PC_FAIL if args.max_pc_fail is None
                     else args.max_pc_fail),
        label=spec.label)
    print(check.table())
    return 0 if check.passed else 1


def _cmd_ensemble_compare(args: argparse.Namespace) -> int:
    import pathlib

    from repro.ensemble.engines import GCMC_DRIFT_TOL, compare_engines
    from repro.ensemble.summary import EnsembleSummary

    summary = EnsembleSummary.load(
        pathlib.Path(args.summary) if args.summary else None)
    cmp = compare_engines(summary, stack=args.stack, seed=args.seed,
                          drift_tol=(GCMC_DRIFT_TOL if args.drift_tol
                                     is None else args.drift_tol))
    print(cmp.describe())
    return 0 if cmp.passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Low-Latency Collectives for the "
                    "Intel SCC' (CLUSTER 2012)")
    sub = parser.add_subparsers(dest="command", required=True)

    pinfo = sub.add_parser("info", help="describe the simulated chip")
    pinfo.add_argument("--topology", default=None,
                       help="describe a topology registry spec instead "
                            "of the default chip (e.g. 'torus:6x4', "
                            "'cluster:2x24')")
    pinfo.set_defaults(func=_cmd_info)

    p6 = sub.add_parser("fig6", help="block-size table (Fig. 6)")
    p6.add_argument("--cores", type=int, default=48)
    p6.set_defaults(func=_cmd_fig6)

    p9 = sub.add_parser("fig9", help="latency panel (Fig. 9a-f)")
    p9.add_argument("panel", choices=sorted(FIG9_PANELS))
    p9.add_argument("--sizes", help="start:stop:step or comma list")
    p9.add_argument("--cores", type=int, default=None)
    p9.set_defaults(func=_cmd_fig9)

    p10 = sub.add_parser("fig10", help="application comparison (Fig. 10)")
    p10.add_argument("--cycles", type=int, default=None)
    p10.add_argument("--stacks", nargs="+", choices=list(STACKS))
    p10.set_defaults(func=_cmd_fig10)

    pstep = sub.add_parser("stepwise",
                           help="Section IV step-wise speedups")
    pstep.add_argument("--size", type=int, default=552)
    pstep.add_argument("--cores", type=int, default=48)
    pstep.set_defaults(func=_cmd_stepwise)

    psweep = sub.add_parser("sweep", help="custom latency sweep")
    psweep.add_argument("kind", nargs="?", choices=list(KINDS),
                        default=None)
    psweep.add_argument("--kinds", nargs="+", choices=list(KINDS),
                        help="sweep several collectives in one run "
                             "(alternative to the positional kind)")
    psweep.add_argument("--stacks", nargs="+",
                        choices=list(available_stacks()),
                        default=["blocking", "lightweight_balanced"])
    psweep.add_argument("--sizes", default=None,
                        help="start:stop:step or comma list "
                             "(default: 64,552)")
    psweep.add_argument("--cores", type=int, default=None)
    psweep.add_argument("--topology", default=None,
                        help="topology registry spec to build every "
                             "machine on (e.g. 'mesh:4x4', "
                             "'cluster:2x24'); --cores defaults to the "
                             "shape's full core count — see "
                             "docs/topologies.md")
    psweep.add_argument("--algorithm", default=None,
                        help="override the per-size algorithm selection "
                             "(native name like 'rsag', or "
                             "'sched:<name>' for the schedule engine)")
    psweep.add_argument("--engine", choices=("sim", "analytic", "auto"),
                        default="sim",
                        help="pricing backend: simulate every point "
                             "(sim, default), closed-form BSP estimate "
                             "(analytic), or analytic with sampled sim "
                             "cross-validation (auto); see "
                             "docs/engines.md")
    psweep.set_defaults(func=_cmd_sweep)

    pbench = sub.add_parser(
        "bench",
        help="parallel, cached sweep engine + wall-clock baseline")
    pbench.add_argument("kind", nargs="?", choices=list(KINDS),
                        default="allreduce")
    pbench.add_argument("--stacks", nargs="+",
                        choices=list(available_stacks()),
                        default=["blocking", "lightweight_balanced"])
    pbench.add_argument("--sizes", default=None,
                        help="start:stop:step or comma list "
                             "(default: REPRO_BENCH_SIZES)")
    pbench.add_argument("--cores", type=int, default=None)
    pbench.add_argument("--topology", default=None,
                        help="topology registry spec for every point "
                             "(e.g. 'cluster:2x24'); --cores defaults to "
                             "the shape's full core count")
    pbench.add_argument("--jobs", type=int, default=None,
                        help="worker processes (default REPRO_BENCH_JOBS "
                             "or 1; 0 = all CPUs)")
    pbench.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    pbench.add_argument("--cache-dir", default=None,
                        help="cache directory (default "
                             "benchmarks/results/.cache or "
                             "REPRO_BENCH_CACHE_DIR)")
    pbench.add_argument("--algorithm", default=None,
                        help="override the per-size algorithm selection "
                             "(native name or 'sched:<name>')")
    pbench.add_argument("--engine", choices=("sim", "analytic", "auto"),
                        default="sim",
                        help="pricing backend: simulate every point "
                             "(sim, default), closed-form BSP estimate "
                             "(analytic), or analytic with sampled sim "
                             "cross-validation (auto); see "
                             "docs/engines.md")
    pbench.add_argument("--smoke", action="store_true",
                        help="run the wall-clock smoke baseline and write "
                             "BENCH_wallclock.json")
    pbench.add_argument("--wallclock-out", default=None,
                        help="write wall-clock numbers to this JSON file")
    pbench.set_defaults(func=_cmd_bench)

    pprof = sub.add_parser(
        "profile",
        help="per-phase wait profile + trace/metrics export")
    pprof.add_argument("kind", choices=list(KINDS))
    pprof.add_argument("--stack", default="mpb",
                       choices=list(available_stacks()))
    pprof.add_argument("--sizes", required=True,
                       help="start:stop:step or comma list")
    pprof.add_argument("--cores", type=int, default=None)
    pprof.add_argument("--out", default="profiles",
                       help="output directory for trace + metrics files")
    pprof.add_argument("--no-trace", action="store_true",
                       help="skip span tracing (accounts-only profile)")
    pprof.set_defaults(func=_cmd_profile)

    pchaos = sub.add_parser(
        "chaos",
        help="randomized fault campaign over collectives x stacks")
    pchaos.add_argument("--profile", default="default",
                        choices=["off", "light", "default", "heavy"])
    pchaos.add_argument("--kinds", nargs="+", choices=list(KINDS))
    pchaos.add_argument("--stacks", nargs="+", choices=list(STACKS))
    pchaos.add_argument("--seeds", default="1:4",
                        help="start:stop range or comma list")
    pchaos.add_argument("--size", type=int, default=64,
                        help="vector length per rank (doubles)")
    pchaos.add_argument("--cores", type=int, default=6)
    pchaos.add_argument("--iters", type=int, default=1,
                        help="repeat each collective (exercises the MPB "
                             "degradation fallback)")
    pchaos.add_argument("--watchdog-us", type=float, default=50_000.0,
                        help="virtual-time watchdog budget per trial")
    pchaos.add_argument("--trace-out", default=None,
                        help="directory for a Chrome trace of one "
                             "traced trial")
    pchaos.add_argument("--app", choices=("collectives", "gcmc"),
                        default="collectives",
                        help="what to put under chaos: single "
                             "collectives checked bit-exactly (default) "
                             "or full GCMC runs checked against the "
                             "statistical ensemble envelope")
    pchaos.add_argument("--summary", default=None,
                        help="ensemble summary JSON for --app gcmc "
                             "(default: the committed "
                             "benchmarks/results/ensemble_summary.json)")
    pchaos.set_defaults(func=_cmd_chaos)

    ptune = sub.add_parser(
        "tune",
        help="build the cost-model selection table for the tuned stack")
    ptune.add_argument("--kinds", nargs="+",
                       choices=list(SCHEDULED_KINDS),
                       help="collective kinds (default: every scheduled "
                            "kind)")
    ptune.add_argument("--cores", nargs="+", type=int,
                       help="rank counts to tune (default: the built-in "
                            "grid)")
    ptune.add_argument("--sizes", default=None,
                       help="start:stop:step or comma list (default: the "
                            "built-in grid)")
    ptune.add_argument("--topology", default=None,
                       help="tune for a topology registry spec (e.g. "
                            "'cluster:2x24'); the result merges into the "
                            "table's per-topology slot")
    ptune.add_argument("--out", default=None,
                       help="output path (default: "
                            "benchmarks/results/selection_table.json)")
    ptune.add_argument("--fresh", action="store_true",
                       help="with --kinds/--cores/--sizes: write only the "
                            "re-tuned slice instead of merging it into "
                            "the existing table")
    ptune.add_argument("--no-synth", action="store_true",
                       help="hand builders only (reproduce the pre-"
                            "synthesis tables)")
    ptune.set_defaults(func=_cmd_tune)

    psynth = sub.add_parser(
        "synth",
        help="search the synthesized schedule space (chunked transforms "
             "+ pipelined chains)")
    psynth.add_argument("--kinds", nargs="+",
                        choices=list(SCHEDULED_KINDS),
                        help="collective kinds (default: every scheduled "
                             "kind)")
    psynth.add_argument("--cores", nargs="+", type=int,
                        help="rank counts to search (default: 2 8 48)")
    psynth.add_argument("--sizes", default=None,
                        help="start:stop:step or comma list "
                             "(default: 8,64,1024)")
    psynth.add_argument("--verify", action="store_true",
                        help="push every synthesized candidate through "
                             "the static verifier and the numpy "
                             "interpreter before ranking it")
    psynth.add_argument("--blocking", action="store_true",
                        help="price for the blocking (RCCE rendezvous) "
                             "stack instead of the non-blocking ones")
    psynth.add_argument("--frontier", action="store_true",
                        help="print the latency/bandwidth Pareto "
                             "frontier at every point")
    psynth.add_argument("--smoke", action="store_true",
                        help="small fixed grid with verification on "
                             "(the CI gate)")
    psynth.set_defaults(func=_cmd_synth)

    plint = sub.add_parser(
        "lint",
        help="static determinism/protocol lint over src/repro")
    plint.add_argument("paths", nargs="*",
                       help="files or directories (default: the installed "
                            "repro package tree)")
    plint.set_defaults(func=_cmd_lint)

    psan = sub.add_parser(
        "sanitize",
        help="run collectives under the MPB/flag sanitizer")
    psan.add_argument("kinds", nargs="*", choices=list(KINDS),
                      help="collectives to check (default: all)")
    psan.add_argument("--stacks", nargs="+", choices=list(STACKS))
    psan.add_argument("--cores", nargs="+", type=int, default=[2, 47, 48])
    psan.add_argument("--size", type=int, default=96,
                      help="vector length per rank (doubles)")
    psan.add_argument("--show", type=int, default=5,
                      help="diagnostics to print per failing point")
    psan.set_defaults(func=_cmd_sanitize)

    prace = sub.add_parser(
        "race",
        help="happens-before race detection + adversarial interleaving "
             "explorer over the MPB flag protocol")
    # No choices= here: argparse (< 3.12.1) rejects an empty nargs="*"
    # list against choices, which would break bare `repro race --gate`;
    # _cmd_race validates the names itself.
    prace.add_argument("kinds", nargs="*", metavar="KIND",
                       help=f"collectives to check: {', '.join(KINDS)} "
                            "(default: all)")
    prace.add_argument("--stacks", nargs="+", choices=list(STACKS))
    prace.add_argument("--cores", nargs="+", type=int, default=[2, 47, 48])
    prace.add_argument("--size", type=int, default=96,
                       help="vector length per rank (doubles)")
    prace.add_argument("--show", type=int, default=5,
                       help="diagnostics to print per failing point")
    prace.add_argument("--seeds", type=int, default=3,
                       help="perturbation seeds per escalation level")
    prace.add_argument("--no-explore", action="store_true",
                       help="report candidates without re-executing them "
                            "under timing perturbations")
    prace.add_argument("--fixtures", action="store_true",
                       help="run the known-racy fixture catalogue instead "
                            "of the collective stacks")
    prace.add_argument("--gate", action="store_true",
                       help="clean-gate mode: kinds x stacks x cores plus "
                            "the synthesized winners of the committed "
                            "selection table; exit 1 on any confirmed race")
    prace.add_argument("--synth-limit", type=int, default=None,
                       help="cap the synthesized-winner scenarios in "
                            "--gate (default: all of them)")
    prace.set_defaults(func=_cmd_race)

    pp = sub.add_parser("paper",
                        help="one-shot digest: Fig. 6 + Section IV + Fig. 10")
    pp.add_argument("--cycles", type=int, default=4)
    pp.set_defaults(func=_cmd_paper)

    pens = sub.add_parser(
        "ensemble",
        help="statistical ensemble verification of GCMC (PCA envelope)")
    esub = pens.add_subparsers(dest="ensemble_command", required=True)

    psum = esub.add_parser(
        "summarize",
        help="run the seed ensemble and write the PCA envelope summary")
    psum.add_argument("--members", type=int, default=None,
                      help="ensemble size (default: the committed "
                           "reference, 32)")
    psum.add_argument("--cycles", type=int, default=None)
    psum.add_argument("--cores", type=int, default=None,
                      help="SPMD rank count the physics is decomposed "
                           "over")
    psum.add_argument("--base-seed", type=int, default=20120901,
                      help="members run base+1..base+members; the base "
                           "itself is held out for validation")
    psum.add_argument("--particles", type=int, default=None,
                      help="override the reference particle count")
    psum.add_argument("--box", type=float, default=None,
                      help="override the reference box edge")
    psum.add_argument("--block-size", type=int, default=8,
                      help="block size of the block-averaged energy "
                           "features")
    psum.add_argument("--jobs", type=int, default=None,
                      help="fork-pool workers (default REPRO_BENCH_JOBS "
                           "or 1; 0 = all CPUs)")
    psum.add_argument("--out", default=None,
                      help="output path (default: "
                           "benchmarks/results/ensemble_summary.json)")
    psum.set_defaults(func=_cmd_ensemble_summarize)

    pcheck = esub.add_parser(
        "check",
        help="score one candidate GCMC run against the stored envelope")
    pcheck.add_argument("--summary", default=None,
                        help="summary JSON (default: the committed one)")
    pcheck.add_argument("--engine", choices=("sim", "serial"),
                        default="sim",
                        help="run the candidate on the simulated machine "
                             "(default) or through the serial physics "
                             "runner")
    pcheck.add_argument("--stack", default="lightweight_balanced",
                        choices=list(available_stacks()))
    pcheck.add_argument("--seed", type=int, default=None,
                        help="GCMC seed (default: the summary's held-out "
                             "base seed)")
    pcheck.add_argument("--algorithm", default=None,
                        help="force one Allreduce algorithm for every "
                             "energy reduction (native name or "
                             "'sched:<name>')")
    pcheck.add_argument("--profile", default="off",
                        choices=["off", "light", "default", "heavy"],
                        help="chaos profile to run the candidate under")
    pcheck.add_argument("--fault-seed", type=int, default=1,
                        help="fault-injector seed for --profile/"
                             "--force-corruption")
    pcheck.add_argument("--force-corruption", action="store_true",
                        help="disable checksums and corrupt exactly one "
                             "MPB payload byte (the silent-corruption "
                             "scenario the gate exists for)")
    pcheck.add_argument("--threshold", type=float, default=None,
                        help="per-PC z-score bound (default 3.0)")
    pcheck.add_argument("--max-pc-fail", type=int, default=None,
                        help="PCs allowed outside the bound (default 1)")
    pcheck.add_argument("--watchdog-us", type=float, default=2_000_000.0,
                        help="virtual-time budget for the candidate run")
    pcheck.set_defaults(func=_cmd_ensemble_check)

    pcmp = esub.add_parser(
        "compare-engines",
        help="sim-vs-analytic GCMC acceptance test under the envelope")
    pcmp.add_argument("--summary", default=None,
                      help="summary JSON (default: the committed one)")
    pcmp.add_argument("--stack", default="lightweight_balanced",
                      choices=list(available_stacks()))
    pcmp.add_argument("--seed", type=int, default=None,
                      help="GCMC seed (default: the held-out base seed)")
    pcmp.add_argument("--drift-tol", type=float, default=None,
                      help="relative latency drift tolerance "
                           "(default 0.45)")
    pcmp.set_defaults(func=_cmd_ensemble_compare)

    pg = sub.add_parser("gcmc", help="run the GCMC application")
    pg.add_argument("--stack", default="mpb",
                    choices=list(available_stacks()))
    pg.add_argument("--cycles", type=int, default=4)
    pg.add_argument("--particles", type=int, default=240)
    pg.set_defaults(func=_cmd_gcmc)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
