"""Static schedule verifier: proves schedule-IR programs before they run.

The schedule engine (:mod:`repro.sched.engine`) will faithfully execute
whatever step lists it is handed — including wrong ones.  This module
checks a :class:`~repro.sched.ir.Schedule` *statically*, without a
machine or a simulation:

* **structure** — every interval lies inside its declared buffer, no
  step writes the read-only ``"in"`` operand, peers are real ranks and
  never the sender itself;
* **matching** — per ordered ``(src, dst)`` pair, sends and receives
  pair off FIFO with equal element counts;
* **deadlock freedom** — under the blocking RCCE lowering (rendezvous
  send/recv, ``Exchange`` decomposed in its baked ``send_first`` order)
  the whole schedule must make progress to completion; a stuck
  configuration is reported with every waiting rank's head operation;
* **symbolic correctness** — each buffer element is interpreted as a
  multiset of ``(origin rank, element index)`` atoms; steps move and
  merge atoms through FIFO channels, and the final ``"work"`` contents
  must equal the collective's postcondition exactly (e.g. Allreduce:
  every rank's atom for index ``j``, exactly once, in every element
  ``j``).  Dropped rounds surface as ``missing-contribution``, double
  folds as ``duplicate-contribution``, misrouted blocks as
  ``unexpected-contribution``.

Diagnostics follow the sanitizer's style (:mod:`repro.analysis.sanitizer`):
frozen records with a ``rule`` from a fixed catalogue, rendered one per
line, raised in bulk as an ``AssertionError`` subclass.
``tools/run_static_checks.py`` verifies the entire shipped repertoire on
every run; ``repro.analysis.sched_fixtures`` keeps known-broken
schedules that must stay flagged.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.core.blocks import Partition
from repro.sched.ir import (
    CopyBlock,
    Exchange,
    Recv,
    ReduceRecv,
    Rotate,
    Schedule,
    Send,
)

#: Diagnostic rule identifiers (the catalogue in docs/schedules.md).
RULES = (
    "interval-oob",
    "input-write",
    "bad-peer",
    "self-message",
    "unmatched-send",
    "unmatched-recv",
    "size-mismatch",
    "blocking-deadlock",
    "missing-contribution",
    "duplicate-contribution",
    "unexpected-contribution",
    "bad-meta",
)


@dataclass(frozen=True)
class ScheduleDiagnostic:
    """One verifier finding."""

    rule: str
    schedule: str                #: ``kind:name`` label
    rank: Optional[int] = None
    step: Optional[int] = None   #: index into the rank's plan
    message: str = ""

    def __str__(self) -> str:
        where = ""
        if self.rank is not None:
            where = f" rank{self.rank}"
            if self.step is not None:
                where += f".step{self.step}"
        return f"[{self.schedule}]{where} {self.rule}: {self.message}"


class ScheduleVerifyError(AssertionError):
    """Raised by :func:`assert_valid_schedule` when diagnostics exist."""

    def __init__(self, diagnostics: list[ScheduleDiagnostic]):
        self.diagnostics = diagnostics
        shown = "\n".join(str(d) for d in diagnostics[:20])
        more = (f"\n... and {len(diagnostics) - 20} more"
                if len(diagnostics) > 20 else "")
        super().__init__(
            f"schedule verifier found {len(diagnostics)} diagnostic(s):\n"
            f"{shown}{more}")


# --------------------------------------------------------------------- #
# Structure
# --------------------------------------------------------------------- #
def _intervals_of(step):
    """(interval, writes) views a step touches."""
    if isinstance(step, (Send, Recv, ReduceRecv)):
        yield step.data, not isinstance(step, Send)
    elif isinstance(step, Exchange):
        if step.send is not None:
            yield step.send, False
        if step.recv is not None:
            yield step.recv, True
    elif isinstance(step, CopyBlock):
        yield step.src, False
        yield step.dst, True


def _peers_of(step):
    if isinstance(step, (Send, Recv, ReduceRecv)):
        yield step.peer
    elif isinstance(step, Exchange):
        if step.send_peer is not None:
            yield step.send_peer
        if step.recv_peer is not None:
            yield step.recv_peer


def _check_structure(sched: Schedule) -> list[ScheduleDiagnostic]:
    out = []
    for rank, plan in enumerate(sched.plans):
        for i, step in enumerate(plan):
            for iv, writes in _intervals_of(step):
                size = sched.buffers.get(iv.buf)
                if size is None or iv.hi > size:
                    out.append(ScheduleDiagnostic(
                        "interval-oob", sched.label, rank, i,
                        f"{iv} outside buffers "
                        f"{dict(sched.buffers)}"))
                if writes and iv.buf == "in":
                    out.append(ScheduleDiagnostic(
                        "input-write", sched.label, rank, i,
                        f"{step.__class__.__name__} writes the "
                        f"read-only input {iv}"))
            if isinstance(step, Rotate):
                if step.buf == "in":
                    out.append(ScheduleDiagnostic(
                        "input-write", sched.label, rank, i,
                        "Rotate permutes the read-only input"))
                if sched.buffers.get(step.buf, -1) % max(step.rows, 1):
                    out.append(ScheduleDiagnostic(
                        "bad-meta", sched.label, rank, i,
                        f"Rotate rows={step.rows} does not divide "
                        f"buffer {step.buf!r}"))
            for peer in _peers_of(step):
                if not 0 <= peer < sched.p:
                    out.append(ScheduleDiagnostic(
                        "bad-peer", sched.label, rank, i,
                        f"peer {peer} outside 0..{sched.p - 1}"))
                elif peer == rank:
                    out.append(ScheduleDiagnostic(
                        "self-message", sched.label, rank, i,
                        "step communicates with its own rank"))
    return out


# --------------------------------------------------------------------- #
# Matching and deadlock freedom
# --------------------------------------------------------------------- #
def _blocking_ops(plan):
    """Decompose a plan into its blocking-lowering sync operations.

    Each op is ``(kind, peer, nels, step_index)`` with kind ``"send"``
    or ``"recv"``; Exchange decomposes in its baked ``send_first``
    order, exactly as the RCCE lowering executes it.
    """
    ops = []
    for i, step in enumerate(plan):
        if isinstance(step, Send):
            ops.append(("send", step.peer, step.data.nels, i))
        elif isinstance(step, (Recv, ReduceRecv)):
            ops.append(("recv", step.peer, step.data.nels, i))
        elif isinstance(step, Exchange):
            snd = (("send", step.send_peer, step.send.nels, i)
                   if step.send_peer is not None else None)
            rcv = (("recv", step.recv_peer, step.recv.nels, i)
                   if step.recv_peer is not None else None)
            pair = [snd, rcv] if step.send_first else [rcv, snd]
            ops.extend(op for op in pair if op is not None)
    return ops


def _check_matching(sched: Schedule) -> list[ScheduleDiagnostic]:
    out = []
    sends: dict[tuple[int, int], list] = {}
    recvs: dict[tuple[int, int], list] = {}
    for rank, plan in enumerate(sched.plans):
        for kind, peer, nels, i in _blocking_ops(plan):
            if not 0 <= peer < sched.p or peer == rank:
                continue  # structure already flagged it
            if kind == "send":
                sends.setdefault((rank, peer), []).append((nels, i))
            else:
                recvs.setdefault((peer, rank), []).append((nels, i))
    for key in sorted(set(sends) | set(recvs)):
        src, dst = key
        s, r = sends.get(key, []), recvs.get(key, [])
        for k in range(min(len(s), len(r))):
            if s[k][0] != r[k][0]:
                out.append(ScheduleDiagnostic(
                    "size-mismatch", sched.label, src, s[k][1],
                    f"message #{k} {src}->{dst} sends {s[k][0]} "
                    f"elements but the receiver expects {r[k][0]}"))
        for nels, i in s[len(r):]:
            out.append(ScheduleDiagnostic(
                "unmatched-send", sched.label, src, i,
                f"send of {nels} elements to rank {dst} has no "
                f"matching receive"))
        for nels, i in r[len(s):]:
            out.append(ScheduleDiagnostic(
                "unmatched-recv", sched.label, dst, i,
                f"receive of {nels} elements from rank {src} has no "
                f"matching send"))
    return out


def _check_deadlock(sched: Schedule) -> list[ScheduleDiagnostic]:
    """Simulate the rendezvous lowering; report a stuck configuration."""
    ops = [_blocking_ops(plan) for plan in sched.plans]
    pcs = [0] * sched.p
    progress = True
    while progress:
        progress = False
        for r in range(sched.p):
            while pcs[r] < len(ops[r]):
                kind, peer, _, _ = ops[r][pcs[r]]
                if peer == r or not 0 <= peer < sched.p:
                    pcs[r] += 1  # structure already flagged it
                    continue
                if pcs[peer] >= len(ops[peer]):
                    break
                pkind, ppeer, _, _ = ops[peer][pcs[peer]]
                want = "recv" if kind == "send" else "send"
                if ppeer == r and pkind == want:
                    pcs[r] += 1
                    pcs[peer] += 1
                    progress = True
                    continue
                break
    stuck = [r for r in range(sched.p) if pcs[r] < len(ops[r])]
    if not stuck:
        return []
    heads = "; ".join(
        f"rank{r} waits on {ops[r][pcs[r]][0]} with rank "
        f"{ops[r][pcs[r]][1]} (step {ops[r][pcs[r]][3]})"
        for r in stuck[:6])
    return [ScheduleDiagnostic(
        "blocking-deadlock", sched.label, stuck[0],
        ops[stuck[0]][pcs[stuck[0]]][3],
        f"rendezvous lowering stalls with {len(stuck)} rank(s) "
        f"blocked: {heads}")]


# --------------------------------------------------------------------- #
# Symbolic interpretation
# --------------------------------------------------------------------- #
def _atoms_in(rank: int, j: int) -> dict:
    return {(rank, j): 1}


def _merge(a: dict, b: dict) -> dict:
    out = dict(a)
    for atom, count in b.items():
        out[atom] = out.get(atom, 0) + count
    return out


def simulate_schedule(sched: Schedule):
    """Interpret the schedule symbolically; returns per-rank buffers.

    Every element is a multiset (atom -> count dict) of
    ``(origin rank, input index)`` contributions.  Sends are eager
    (non-blocking semantics); run :func:`verify_schedule` first if the
    schedule may be unmatched or deadlocked.
    """
    state = [
        {"in": [_atoms_in(r, j) for j in range(sched.buffers["in"])],
         "work": [dict() for _ in range(sched.buffers["work"])]}
        for r in range(sched.p)
    ]
    channels: dict[tuple[int, int], deque] = {}
    pcs = [0] * sched.p
    half_done = [False] * sched.p  # Exchange send side already pushed

    def read(rank, iv):
        return [dict(e) for e in state[rank][iv.buf][iv.lo:iv.hi]]

    def write(rank, iv, payload):
        state[rank][iv.buf][iv.lo:iv.hi] = payload

    def pop(src, dst):
        chan = channels.get((src, dst))
        if not chan:
            return None
        return chan.popleft()

    progress = True
    while progress:
        progress = False
        for r in range(sched.p):
            while pcs[r] < len(sched.plans[r]):
                step = sched.plans[r][pcs[r]]
                if isinstance(step, Send):
                    channels.setdefault((r, step.peer), deque()).append(
                        read(r, step.data))
                elif isinstance(step, Recv):
                    payload = pop(step.peer, r)
                    if payload is None:
                        break
                    write(r, step.data, payload)
                elif isinstance(step, ReduceRecv):
                    payload = pop(step.peer, r)
                    if payload is None:
                        break
                    target = state[r][step.data.buf]
                    for k, atoms in enumerate(payload):
                        target[step.data.lo + k] = _merge(
                            target[step.data.lo + k], atoms)
                elif isinstance(step, Exchange):
                    if step.send_peer is not None and not half_done[r]:
                        channels.setdefault(
                            (r, step.send_peer), deque()).append(
                                read(r, step.send))
                        half_done[r] = True
                    if step.recv_peer is not None:
                        payload = pop(step.recv_peer, r)
                        if payload is None:
                            break
                        if step.reduce:
                            target = state[r][step.recv.buf]
                            for k, atoms in enumerate(payload):
                                target[step.recv.lo + k] = _merge(
                                    target[step.recv.lo + k], atoms)
                        else:
                            write(r, step.recv, payload)
                    half_done[r] = False
                elif isinstance(step, CopyBlock):
                    write(r, step.dst, read(r, step.src))
                elif isinstance(step, Rotate):
                    buf = state[r][step.buf]
                    width = len(buf) // step.rows
                    out = [None] * len(buf)
                    for i in range(step.rows):
                        dst_row = (step.shift + i) % step.rows
                        out[dst_row * width:(dst_row + 1) * width] = \
                            buf[i * width:(i + 1) * width]
                    state[r][step.buf] = out
                pcs[r] += 1
                progress = True
    return state


def _expected_work(sched: Schedule, rank: int):
    """Element index -> expected multiset; None entries are don't-care."""
    p, n = sched.p, sched.n
    root = int(sched.meta.get("root", 0))
    kind = sched.kind
    size = sched.buffers["work"]
    expected: list = [None] * size
    if kind in ("allreduce", "reduce"):
        if kind == "reduce" and rank != root:
            return expected
        for j in range(n):
            expected[j] = {(s, j): 1 for s in range(p)}
    elif kind == "bcast":
        for j in range(n):
            expected[j] = {(root, j): 1}
    elif kind == "allgather":
        for s in range(p):
            for j in range(n):
                expected[s * n + j] = {(s, j): 1}
    elif kind == "alltoall":
        for s in range(p):
            for j in range(n):
                expected[s * n + j] = {(s, rank * n + j): 1}
    elif kind == "scan":
        for j in range(n):
            expected[j] = {(s, j): 1 for s in range(rank + 1)}
    elif kind == "reduce_scatter":
        sizes = sched.meta.get("part_sizes")
        if sizes is None:
            return expected
        part = Partition(n, tuple(sizes))
        block = part.slice_of(rank)
        for j in range(block.start, block.stop):
            expected[j] = {(s, j): 1 for s in range(p)}
    return expected


def _classify(actual: dict, expected: dict) -> str:
    for atom, count in actual.items():
        if atom not in expected:
            return "unexpected-contribution"
        if count > expected[atom]:
            return "duplicate-contribution"
    return "missing-contribution"


def _check_dataflow(sched: Schedule) -> list[ScheduleDiagnostic]:
    if sched.kind == "reduce_scatter" and \
            sched.meta.get("part_sizes") is None:
        return [ScheduleDiagnostic(
            "bad-meta", sched.label, None, None,
            "reduce_scatter schedule lacks part_sizes metadata")]
    state = simulate_schedule(sched)
    out = []
    for rank in range(sched.p):
        work = state[rank]["work"]
        flagged: set = set()
        for j, expected in enumerate(_expected_work(sched, rank)):
            if expected is None:
                continue
            actual = work[j]
            if actual == expected:
                continue
            rule = _classify(actual, expected)
            if rule in flagged:
                continue
            flagged.add(rule)
            out.append(ScheduleDiagnostic(
                rule, sched.label, rank, None,
                f"work[{j}] holds {_fmt(actual)}, expected "
                f"{_fmt(expected)}"))
    return out


def _fmt(atoms: dict) -> str:
    if not atoms:
        return "{}"
    parts = [f"r{s}[{j}]" + (f"x{c}" if c != 1 else "")
             for (s, j), c in sorted(atoms.items())]
    return "{" + ", ".join(parts[:6]) + \
        (", ..." if len(parts) > 6 else "") + "}"


# --------------------------------------------------------------------- #
# Entry points
# --------------------------------------------------------------------- #
def verify_schedule(sched: Schedule, *,
                    blocking: bool = True) -> list[ScheduleDiagnostic]:
    """All diagnostics for one schedule (empty list = verified).

    ``blocking=False`` skips the rendezvous deadlock simulation for
    schedules only ever lowered onto non-blocking stacks.
    """
    out = _check_structure(sched)
    out += _check_matching(sched)
    if out:
        # Channel bookkeeping below assumes structurally sound plans.
        return out
    if blocking:
        out += _check_deadlock(sched)
    if not out:
        out += _check_dataflow(sched)
    return out


def assert_valid_schedule(sched: Schedule, *,
                          blocking: bool = True) -> None:
    diagnostics = verify_schedule(sched, blocking=blocking)
    if diagnostics:
        raise ScheduleVerifyError(diagnostics)


def verify_repertoire(ps=(1, 2, 3, 4, 5, 7, 8, 48),
                      sizes=(1, 2, 8, 70)) -> int:
    """Verify every shipped builder across a (p, n) grid; returns the
    number of schedules checked.  Raises on the first bad schedule —
    the static-checks gate (`tools/run_static_checks.py`) calls this."""
    from repro.core.blocks import balanced_partition, standard_partition
    from repro.sched.builders import all_schedules

    checked = 0
    for p in ps:
        for n in sizes:
            for partitioner in (standard_partition, balanced_partition):
                part = partitioner(n, p)
                for root in (0,) if p == 1 else (0, p - 1):
                    for sched in all_schedules(p, n, part=part,
                                               root=root):
                        assert_valid_schedule(sched)
                        checked += 1
    return checked


def verify_hier_repertoire(specs=("mesh:4x4", "cluster:2x24"),
                           sizes=(1, 8, 70)) -> int:
    """Verify the hierarchical repertoire at the rank counts of real
    registry topologies (non-default shapes included); returns the
    number of schedules checked.  The static-checks gate runs this so
    ``hier/g<G>`` names meet the same bar as the hand repertoire on
    every shape they would be selected for."""
    from repro.hw.topo import get_topology
    from repro.sched.hier import HIER_KINDS, build_hier_schedule

    checked = 0
    for spec in specs:
        p = get_topology(spec).num_cores
        for groups in (2, 3, 4):
            if groups > p // 2:
                continue
            name = f"hier/g{groups}"
            for n in sizes:
                for kind in HIER_KINDS:
                    roots = (0,) if kind == "allreduce" else (0, p - 1)
                    for root in roots:
                        assert_valid_schedule(
                            build_hier_schedule(kind, name, p, n,
                                                root=root))
                        checked += 1
    return checked


def verify_synth_repertoire(ps=(2, 3, 5, 8, 48),
                            sizes=(1, 2, 8, 70)) -> int:
    """Verify every synthesized candidate (chunked transforms and
    pipelined chains) across a (p, n) grid; returns the number of
    schedules checked.  The static-checks gate sweeps this alongside
    :func:`verify_repertoire` so ``synth/...`` names meet the same bar
    as the hand repertoire."""
    from repro.sched.synth import synth_repertoire

    checked = 0
    for sched in synth_repertoire(ps=ps, sizes=sizes):
        assert_valid_schedule(sched)
        checked += 1
    return checked
