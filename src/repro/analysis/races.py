"""Vector-clock happens-before race detection for the MPB flag protocol.

The runtime sanitizer (:mod:`repro.analysis.sanitizer`) judges the *one*
interleaving the latency model happens to produce: it knows what each
byte's protocol state was when an access arrived, but not whether that
state was guaranteed or coincidental.  This module reasons about *all*
legal orderings of a run.  It threads a vector-clock happens-before
relation through the sim's synchronization events —

* **core-local program order**: every timed access on a core is ordered
  after the core's previous timed accesses (all of a core's processes
  serialize through its CPU lock);
* **flag release/acquire**: a timed flag write *releases* — the writer's
  clock joins the flag's clock; a completed flag wait *acquires* — the
  flag's clock joins the waiter's.  Release sequences are cumulative
  (RCCE flags are reused across chunks, calls and barriers, and a waiter
  synchronizes with every release that precedes the one it observes);
* **MPB publish/consume**: payload bytes carry their last writer's clock
  (a FastTrack-style epoch), reads are kept as pruned interval lists.

Two conflicting MPB/flag accesses that happen-before does *not* order are
**candidate races**: the observed execution put them in some order, but
only latency coincidence — not the flag protocol — did.  Candidates are
reported through a sanitizer-style diagnostic catalogue (:data:`RULES`)
carrying virtual time, both endpoints, the round and the actor's span
stack.

Candidates are then handed to the **adversarial interleaving explorer**:
a deterministic scheduler-perturbation loop that re-executes the same
program under bounded timing permutations (the fault injector's mesh
jitter / congestion / flag staleness / core stalls, with every
protocol-altering knob off) and watches each candidate's endpoint order.
A candidate whose endpoints *actually reorder* under some perturbation is
a **confirmed** race — a real alternative execution, not a modeling
artifact; a candidate that keeps its order through the whole budget is
classified **benign** (ordered by construction the analysis cannot see,
or by timing margins wider than the perturbation budget).

Design rules carried over from the sanitizer and the fault injector:

* **Zero overhead off.**  The detector attaches through the existing
  ``machine.san`` hook slot; no new hardware hook sites exist, so an
  uninstrumented run is bit-identical with the subsystem absent.
* **Pure observation on.**  The detector never consumes simulated time;
  instrumented runs keep bit-identical virtual time
  (``tests/analysis/test_races.py`` asserts both directions).
* **Determinism.**  The explorer's perturbation plans are a fixed,
  seeded list; a whole exploration is a pure function of the scenario.

Run ``python -m repro race`` for detection over the collective stacks,
``--fixtures`` for the known-racy catalogue, ``--gate`` for the clean
gate (all kinds x stacks x p in {2, 47, 48} plus the synthesized winners
of ``selection_table.json``).  See docs/static-analysis.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

import numpy as np

from repro.faults import FaultInjector, FaultPlan
from repro.faults.errors import FaultError
from repro.sim.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.flags import Flag
    from repro.hw.machine import Machine
    from repro.hw.mpb import MPB


# ---------------------------------------------------------------------- #
# Vector-clock algebra (pure helpers; property-tested in
# tests/analysis/test_races.py).  A clock is a 1-D int64 array indexed by
# core id; component c counts core c's timed synchronization-relevant
# operations.
# ---------------------------------------------------------------------- #
def vc_zero(num_cores: int) -> np.ndarray:
    """The bottom element: no knowledge of any core."""
    return np.zeros(num_cores, dtype=np.int64)


def vc_join(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Least upper bound (component-wise max); returns a fresh clock."""
    return np.maximum(a, b)


def vc_leq(a: np.ndarray, b: np.ndarray) -> bool:
    """Partial order: ``a`` happens-before-or-equals ``b``."""
    return bool(np.all(a <= b))


def vc_concurrent(a: np.ndarray, b: np.ndarray) -> bool:
    """Neither clock is ordered before the other."""
    return not vc_leq(a, b) and not vc_leq(b, a)


#: Race-diagnostic rule identifiers (catalogue in docs/static-analysis.md).
RULES = (
    "race-mpb-ww",
    "race-mpb-wr",
    "race-mpb-rw",
    "race-flag-set-set",
    "race-flag-set-clear",
    "race-guarded-payload",
    "race-latency-coincidence",
    "race-alloc-unordered",
)


@dataclass(frozen=True)
class Access:
    """One endpoint of a candidate race."""

    core: int       #: acting core
    clock: int      #: the core's own clock component at the access
    op: str         #: "write" | "read" | "set" | "clear" | "alloc"
    time_ps: int    #: virtual time the access was observed at

    def __str__(self) -> str:
        return f"core{self.core}.{self.op}@{self.time_ps}ps(c{self.clock})"


@dataclass(frozen=True)
class RaceDiagnostic:
    """One candidate race: two conflicting accesses unordered by HB.

    ``first`` is the endpoint that was observed earlier in virtual time,
    ``second`` the later one (the access whose hook detected the race).
    """

    time_ps: int
    rule: str
    owner: int                  #: core owning the MPB / flag
    first: Access
    second: Access
    offset: Optional[int] = None
    nbytes: Optional[int] = None
    flag: Optional[str] = None
    round: Any = None           #: innermost active ``round`` span detail
    spans: tuple = ()           #: detecting actor's span names, outermost first
    message: str = ""

    def key(self) -> tuple:
        """Cross-run identity of the race.

        Order-agnostic and rule-agnostic: when a perturbed execution
        reverses the endpoints, the detecting access (and therefore the
        reported rule) flips too, but the location and the (core, op)
        endpoint set stay fixed.
        """
        where = (("flag", self.owner, self.flag) if self.flag is not None
                 else ("mpb", self.owner, self.offset))
        ends = tuple(sorted(((self.first.core, self.first.op),
                             (self.second.core, self.second.op))))
        return where + ends

    def orientation(self) -> tuple[int, str]:
        """Which endpoint came first in this execution."""
        return (self.first.core, self.first.op)

    def __str__(self) -> str:
        where = (f"flag[{self.owner}].{self.flag}" if self.flag is not None
                 else f"mpb[{self.owner}]"
                 + (f"[{self.offset}:{self.offset + (self.nbytes or 0)}]"
                    if self.offset is not None else ""))
        ctx = ">".join(self.spans) or "-"
        rnd = f" round={self.round}" if self.round is not None else ""
        return (f"[{self.time_ps:>12d}ps] {self.rule}: {self.first} || "
                f"{self.second} @ {where}{rnd} span={ctx}: {self.message}")


class RaceError(AssertionError):
    """Raised by :meth:`RaceDetector.assert_clean` when candidates exist."""

    def __init__(self, diagnostics: list[RaceDiagnostic]):
        self.diagnostics = diagnostics
        shown = "\n".join(str(d) for d in diagnostics[:20])
        more = (f"\n... and {len(diagnostics) - 20} more"
                if len(diagnostics) > 20 else "")
        super().__init__(
            f"race detector found {len(diagnostics)} candidate(s):\n"
            f"{shown}{more}")


@dataclass
class _FlagState:
    """HB state of one synchronization flag."""

    vc: np.ndarray                   #: cumulative release clock
    last: Optional[Access] = None    #: last timed write endpoint


class _MPBState:
    """Per-MPB conflict shadow: last-writer epochs + pending reads."""

    __slots__ = ("write_core", "write_clock", "write_time", "reads")

    def __init__(self, size: int):
        self.write_core = np.full(size, -1, dtype=np.int16)
        self.write_clock = np.zeros(size, dtype=np.int64)
        self.write_time = np.zeros(size, dtype=np.int64)
        #: Unretired read intervals: (start, end, core, clock, time_ps).
        #: A read is retired by the next overlapping write — the write is
        #: either ordered after it (HB transitivity then orders every
        #: later access that is ordered after the write) or reported.
        self.reads: list[tuple[int, int, int, int, int]] = []


class RaceDetector:
    """Happens-before tracker attachable to one :class:`Machine`.

    Usage::

        det = RaceDetector().install(machine)
        machine.run_spmd(program)
        det.assert_clean()          # or inspect det.diagnostics

    Implements the same hook interface as the sanitizer and attaches
    through the same ``machine.san`` slot (one monitor at a time), so
    every existing hook site feeds it and no new hardware code exists.
    """

    def __init__(self, max_diagnostics: int = 1000):
        self.machine: Optional["Machine"] = None
        self.diagnostics: list[RaceDiagnostic] = []
        self.max_diagnostics = max_diagnostics
        #: Total findings, including those beyond the storage cap.
        self.total_findings = 0
        self._vc: Optional[np.ndarray] = None       #: (cores, cores) int64
        self._last_release: Optional[np.ndarray] = None
        self._flags: dict[tuple[int, str], _FlagState] = {}
        self._mpbs: dict[int, _MPBState] = {}
        self._spans: dict[int, list[tuple[str, Any]]] = {}

    # -- lifecycle -------------------------------------------------------
    def install(self, machine: "Machine") -> "RaceDetector":
        if machine.san is not None:
            raise RuntimeError("machine already has a monitor installed")
        self.machine = machine
        machine.san = self
        machine.sim.san = self
        n = machine.num_cores
        self._vc = np.zeros((n, n), dtype=np.int64)
        #: Each core's own clock at its most recent flag release; a write
        #: with a larger clock has never been published.
        self._last_release = np.zeros(n, dtype=np.int64)
        for mpb in machine.mpbs:
            mpb.san = self
            self._mpbs[mpb.core_id] = _MPBState(mpb.size)
        return self

    def uninstall(self) -> None:
        machine = self.machine
        if machine is None:
            return
        machine.san = None
        machine.sim.san = None
        for mpb in machine.mpbs:
            mpb.san = None
        self.machine = None

    def clock_of(self, core: int) -> np.ndarray:
        """A copy of ``core``'s current vector clock (for tests)."""
        return self._vc[core].copy()

    # -- reporting -------------------------------------------------------
    def _report(self, rule: str, owner: int, first: Access, second: Access,
                *, offset: Optional[int] = None,
                nbytes: Optional[int] = None, flag: Optional[str] = None,
                message: str = "") -> None:
        self.total_findings += 1
        if len(self.diagnostics) >= self.max_diagnostics:
            return
        stack = self._spans.get(second.core, [])
        rnd = next((d for n, d in reversed(stack) if n == "round"), None)
        self.diagnostics.append(RaceDiagnostic(
            time_ps=self.machine.sim.now if self.machine else 0,
            rule=rule, owner=owner, first=first, second=second,
            offset=offset, nbytes=nbytes, flag=flag, round=rnd,
            spans=tuple(n for n, _ in stack), message=message))

    def counts(self) -> dict[str, int]:
        """Findings per rule (of the stored diagnostics)."""
        out: dict[str, int] = {}
        for d in self.diagnostics:
            out[d.rule] = out.get(d.rule, 0) + 1
        return dict(sorted(out.items()))

    def candidates(self) -> dict[tuple, RaceDiagnostic]:
        """Stored diagnostics deduplicated by cross-run :meth:`~RaceDiagnostic.key`."""
        out: dict[tuple, RaceDiagnostic] = {}
        for d in self.diagnostics:
            out.setdefault(d.key(), d)
        return out

    def assert_clean(self) -> None:
        if self.diagnostics:
            raise RaceError(self.diagnostics)

    # -- span context (fed by repro.obs.spans) ---------------------------
    def on_span_enter(self, core_id: int, name: str, detail: Any) -> None:
        self._spans.setdefault(core_id, []).append((name, detail))

    def on_span_exit(self, core_id: int, name: str) -> None:
        stack = self._spans.get(core_id)
        if stack and stack[-1][0] == name:
            stack.pop()

    # -- clock plumbing --------------------------------------------------
    def _tick(self, core: int) -> int:
        vc = self._vc
        vc[core, core] += 1
        return int(vc[core, core])

    def _now(self) -> int:
        return self.machine.sim.now if self.machine is not None else 0

    # -- MPB hooks -------------------------------------------------------
    def on_oob(self, mpb: "MPB", kind: str, offset: int,
               nbytes: int) -> None:
        """Out-of-bounds accesses are the sanitizer's domain; the access
        raises :class:`~repro.hw.mpb.MPBError` and moves no bytes, so it
        cannot participate in a race."""

    def on_write(self, mpb: "MPB", offset: int, nbytes: int,
                 actor: Optional[int]) -> None:
        if nbytes <= 0:
            return
        shadow = self._mpbs[mpb.core_id]
        end = offset + nbytes
        if actor is None:
            # Untimed setup write: it resets the conflict state — setup
            # data is not protocol traffic and must not seed races.
            shadow.write_core[offset:end] = -1
            shadow.reads = _prune_reads(shadow.reads, offset, end)
            return
        clk = self._tick(actor)
        now = self._now()
        vc_actor = self._vc[actor]
        # W/W: overlapping bytes last written by another core, unordered.
        wc = shadow.write_core[offset:end]
        wk = shadow.write_clock[offset:end]
        mask = (wc >= 0) & (wc != actor)
        if mask.any():
            racy = np.zeros(mask.shape, dtype=bool)
            racy[mask] = wk[mask] > vc_actor[wc[mask]]
            if racy.any():
                i = int(np.flatnonzero(racy)[0])
                first = Access(int(wc[i]), int(wk[i]), "write",
                               int(shadow.write_time[offset + i]))
                second = Access(actor, clk, "write", now)
                self._report(
                    "race-mpb-ww", mpb.core_id, first, second,
                    offset=offset + i, nbytes=int(np.count_nonzero(racy)),
                    message=f"{int(np.count_nonzero(racy))} B written by "
                            f"core {int(wc[i])} with no happens-before "
                            "edge to this overwrite")
        # R/W: an unretired read by another core, unordered with us.
        for (s, t, rcore, rclk, rtime) in shadow.reads:
            if t <= offset or s >= end or rcore == actor:
                continue
            if rclk > int(vc_actor[rcore]):
                first = Access(rcore, rclk, "read", rtime)
                second = Access(actor, clk, "write", now)
                self._report(
                    "race-mpb-rw", mpb.core_id, first, second,
                    offset=max(s, offset),
                    nbytes=min(t, end) - max(s, offset),
                    message=f"overwrites bytes core {rcore} read with no "
                            "happens-before edge from the read (missing "
                            "consume acknowledgement?)")
        shadow.write_core[offset:end] = actor
        shadow.write_clock[offset:end] = clk
        shadow.write_time[offset:end] = now
        shadow.reads = _prune_reads(shadow.reads, offset, end)

    def on_read(self, mpb: "MPB", offset: int, nbytes: int,
                actor: Optional[int]) -> None:
        if nbytes <= 0 or actor is None:
            return
        shadow = self._mpbs[mpb.core_id]
        end = offset + nbytes
        clk = self._tick(actor)
        now = self._now()
        vc_actor = self._vc[actor]
        wc = shadow.write_core[offset:end]
        wk = shadow.write_clock[offset:end]
        mask = (wc >= 0) & (wc != actor)
        if mask.any():
            racy = np.zeros(mask.shape, dtype=bool)
            racy[mask] = wk[mask] > vc_actor[wc[mask]]
            if racy.any():
                i = int(np.flatnonzero(racy)[0])
                writer = int(wc[i])
                wclk = int(wk[i])
                first = Access(writer, wclk, "write",
                               int(shadow.write_time[offset + i]))
                second = Access(actor, clk, "read", now)
                count = int(np.count_nonzero(racy))
                if int(vc_actor[writer]) == 0:
                    rule = "race-latency-coincidence"
                    msg = (f"{count} B from core {writer} with no "
                           "synchronization path at all between reader "
                           "and writer; the observed order is pure "
                           "latency coincidence")
                elif int(self._last_release[writer]) < wclk:
                    rule = "race-guarded-payload"
                    msg = (f"{count} B written by core {writer} after "
                           "its last flag release — the guard flag was "
                           "raised before the payload it guards")
                else:
                    rule = "race-mpb-wr"
                    msg = (f"{count} B published by core {writer} "
                           "through a flag edge the reader never "
                           "acquired")
                self._report(rule, mpb.core_id, first, second,
                             offset=offset + i, nbytes=count, message=msg)
        shadow.reads.append((offset, end, actor, clk, now))

    def on_alloc(self, mpb: "MPB", offset: int, nbytes: int) -> None:
        """Slot allocation, attributed to the MPB owner (the stacks only
        ever allocate in their own MPB).  Covering bytes another core
        wrote or read without a happens-before edge to the owner means
        the slot is being recycled under a peer still using it."""
        if self._vc is None:
            return
        owner = mpb.core_id
        shadow = self._mpbs[owner]
        end = offset + nbytes
        vc_owner = self._vc[owner]
        now = self._now()
        wc = shadow.write_core[offset:end]
        wk = shadow.write_clock[offset:end]
        mask = (wc >= 0) & (wc != owner)
        if mask.any():
            racy = np.zeros(mask.shape, dtype=bool)
            racy[mask] = wk[mask] > vc_owner[wc[mask]]
            if racy.any():
                i = int(np.flatnonzero(racy)[0])
                first = Access(int(wc[i]), int(wk[i]), "write",
                               int(shadow.write_time[offset + i]))
                second = Access(owner, int(vc_owner[owner]), "alloc", now)
                self._report(
                    "race-alloc-unordered", owner, first, second,
                    offset=offset + i,
                    nbytes=int(np.count_nonzero(racy)),
                    message=f"allocation covers bytes core {int(wc[i])} "
                            "wrote with no happens-before edge to the "
                            "owner (slot reuse without a completed "
                            "handshake)")
        for (s, t, rcore, rclk, rtime) in shadow.reads:
            if t <= offset or s >= end or rcore == owner:
                continue
            if rclk > int(vc_owner[rcore]):
                first = Access(rcore, rclk, "read", rtime)
                second = Access(owner, int(vc_owner[owner]), "alloc", now)
                self._report(
                    "race-alloc-unordered", owner, first, second,
                    offset=max(s, offset), nbytes=min(t, end) - max(s, offset),
                    message=f"allocation covers bytes core {rcore} read "
                            "with no happens-before edge to the owner")

    def on_reset_alloc(self, mpb: "MPB") -> None:
        """Allocator rewind alone moves no bytes; conflicts surface at
        the next :meth:`on_alloc` over still-live data."""

    def on_clear(self, mpb: "MPB") -> None:
        """``MPB.clear`` is setup: wipe the conflict shadow."""
        shadow = self._mpbs[mpb.core_id]
        shadow.write_core[:] = -1
        shadow.reads.clear()

    def on_corrupt(self, mpb: "MPB", offset: int) -> None:
        """Injected corruption is untimed and unattributed — data
        integrity is the sanitizer's and the checksums' domain."""

    # -- flag hooks ------------------------------------------------------
    def _flag_state(self, flag: "Flag") -> _FlagState:
        key = (flag.owner, flag.name)
        state = self._flags.get(key)
        if state is None:
            state = self._flags[key] = _FlagState(
                vc=vc_zero(self.machine.num_cores))
        return state

    def on_flag_write(self, flag: "Flag", level: bool, actor: int) -> None:
        """A timed flag write: a release, and itself a checked access."""
        state = self._flag_state(flag)
        clk = self._tick(actor)
        now = self._now()
        last = state.last
        if (last is not None and last.core != actor
                and last.clock > int(self._vc[actor][last.core])):
            op = "set" if level else "clear"
            rule = ("race-flag-set-set" if level and last.op == "set"
                    else "race-flag-set-clear")
            self._report(
                rule, flag.owner, last, Access(actor, clk, op, now),
                flag=flag.name,
                message=f"flag {op} with no happens-before edge from "
                        f"core {last.core}'s {last.op} — one of the two "
                        "transitions can be lost")
        state.last = Access(actor, clk, "set" if level else "clear", now)
        np.maximum(state.vc, self._vc[actor], out=state.vc)
        self._last_release[actor] = clk

    def on_flag_observed(self, flag: "Flag", level: bool,
                         actor: int) -> None:
        """A completed wait: the waiter acquires the flag's clock."""
        state = self._flags.get((flag.owner, flag.name))
        if state is not None:
            np.maximum(self._vc[actor], state.vc, out=self._vc[actor])

    def on_flag_force(self, flag: "Flag", level: bool,
                      actor: Optional[int] = None) -> None:
        """Untimed flag write.

        With an ``actor`` it is an attributed bookkeeping release (the
        announcement channel models its flag write as part of an already
        charged access): the actor's clock joins the flag, but no
        endpoint is recorded — announcement forces are modeled as atomic
        and must not race each other.  Without an actor it is setup and
        resets the endpoint tracking.
        """
        state = self._flag_state(flag)
        state.last = None
        if actor is not None:
            clk = self._tick(actor)
            np.maximum(state.vc, self._vc[actor], out=state.vc)
            self._last_release[actor] = clk


def _prune_reads(reads: list[tuple[int, int, int, int, int]],
                 offset: int, end: int) -> list:
    """Retire the [offset, end) portion of every read interval."""
    out = []
    for iv in reads:
        s, t, core, clk, time_ps = iv
        if t <= offset or s >= end:
            out.append(iv)
            continue
        if s < offset:
            out.append((s, offset, core, clk, time_ps))
        if t > end:
            out.append((end, t, core, clk, time_ps))
    return out


# ---------------------------------------------------------------------- #
# Adversarial interleaving explorer
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class Scenario:
    """A re-executable program: everything the explorer needs to rebuild
    the same run on a fresh machine (determinism makes re-execution a
    pure function of the scenario plus the perturbation plan)."""

    name: str
    build: Callable[["Machine"], Callable[..., Generator]]
    ranks: int = 2
    watchdog_ps: Optional[int] = None


@dataclass(frozen=True)
class RaceVerdict:
    """Explorer classification of one candidate race."""

    key: tuple
    rule: str                       #: rule reported by the baseline run
    baseline: RaceDiagnostic
    confirmed: bool
    witness: Optional[RaceDiagnostic] = None   #: reordered-run diagnostic
    perturbation: Optional[str] = None         #: plan label that confirmed

    def __str__(self) -> str:
        if self.confirmed:
            return (f"CONFIRMED {self.rule} under {self.perturbation}: "
                    f"{self.baseline.first} reordered to run after "
                    f"{self.baseline.second}")
        return f"benign    {self.rule}: order held under every perturbation"


@dataclass
class ExplorationReport:
    """Outcome of exploring one scenario."""

    scenario: str
    verdicts: list[RaceVerdict]
    runs: int                       #: perturbed executions performed
    failures: int = 0               #: perturbed runs that raised (deadlock
    #: or watchdog) — their diagnostics are still harvested

    @property
    def confirmed(self) -> list[RaceVerdict]:
        return [v for v in self.verdicts if v.confirmed]

    @property
    def benign(self) -> list[RaceVerdict]:
        return [v for v in self.verdicts if not v.confirmed]


def perturbation_plans(seeds: Iterable[int] = (1, 2, 3),
                       ) -> list[tuple[str, FaultPlan]]:
    """The bounded, escalating timing-permutation budget.

    Every plan keeps ``checksums=False`` and all protocol-altering
    probabilities (drops, corruption) at zero: the perturbed run executes
    the *same* protocol bodies with the same data — only the interleaving
    moves.  Three escalation levels per seed: local mesh jitter, heavy
    jitter plus port congestion, and the full budget with flag-staleness
    and core stalls (the largest single shifts, ~microseconds).
    """
    levels = (
        ("jitter", dict(mesh_jitter_prob=0.5, mesh_jitter_max_cycles=64)),
        ("jitter+congestion", dict(mesh_jitter_prob=1.0,
                                   mesh_jitter_max_cycles=512,
                                   congestion_prob=0.25)),
        ("jitter+stale+stall", dict(mesh_jitter_prob=1.0,
                                    mesh_jitter_max_cycles=512,
                                    congestion_prob=0.25,
                                    flag_stale_prob=0.5,
                                    core_stall_prob=0.5)),
    )
    plans = []
    for label, kwargs in levels:
        for seed in seeds:
            plans.append((f"{label}#s{seed}",
                          FaultPlan(seed=seed, checksums=False, **kwargs)))
    return plans


def run_detected(scenario: Scenario, plan: Optional[FaultPlan] = None,
                 ) -> tuple[RaceDetector, Optional[str]]:
    """Execute ``scenario`` on a fresh machine under the race detector.

    Returns ``(detector, failure)``; ``failure`` names the exception when
    the (perturbed) run deadlocked, tripped the watchdog or raised a
    fault error — the diagnostics gathered up to that point are still
    valid observations of the partial execution.
    """
    from repro.hw.machine import Machine

    machine = Machine()
    if plan is not None:
        FaultInjector(plan).install(machine)
    detector = RaceDetector().install(machine)
    program = scenario.build(machine)
    try:
        machine.run_spmd(program, ranks=list(range(scenario.ranks)),
                         watchdog_ps=scenario.watchdog_ps)
    except (SimulationError, FaultError) as err:
        return detector, type(err).__name__
    return detector, None


def explore(scenario: Scenario, seeds: Iterable[int] = (1, 2, 3),
            baseline: Optional[RaceDetector] = None) -> ExplorationReport:
    """Classify every candidate race of ``scenario`` as confirmed/benign.

    ``baseline`` reuses an existing unperturbed detection run (the gate
    runs detection first and only explores scenarios with candidates).
    A candidate is *confirmed* the moment any perturbed execution reports
    the same race key with the opposite endpoint orientation — i.e. the
    two accesses actually happened in the other order in a legal
    execution.  Candidates that keep their orientation through the whole
    budget are *benign*.
    """
    if baseline is None:
        baseline, _failure = run_detected(scenario)
    candidates = baseline.candidates()
    if not candidates:
        return ExplorationReport(scenario.name, [], 0)
    confirmed: dict[tuple, tuple[str, RaceDiagnostic]] = {}
    runs = 0
    failures = 0
    for label, plan in perturbation_plans(seeds):
        if len(confirmed) == len(candidates):
            break
        detector, failure = run_detected(scenario, plan)
        runs += 1
        if failure is not None:
            failures += 1
        for diag in detector.diagnostics:
            key = diag.key()
            base = candidates.get(key)
            if (base is not None and key not in confirmed
                    and diag.orientation() != base.orientation()):
                confirmed[key] = (label, diag)
    verdicts = []
    for key, base in candidates.items():
        hit = confirmed.get(key)
        verdicts.append(RaceVerdict(
            key=key, rule=base.rule, baseline=base, confirmed=hit is not None,
            witness=hit[1] if hit else None,
            perturbation=hit[0] if hit else None))
    return ExplorationReport(scenario.name, verdicts, runs, failures)


# ---------------------------------------------------------------------- #
# Clean gate: detection (+ exploration of any candidates) across the
# collective repertoire.
# ---------------------------------------------------------------------- #
@dataclass
class GateEntry:
    """One scenario's outcome in the clean gate."""

    scenario: str
    candidates: int
    report: Optional[ExplorationReport]   #: None when detection was clean

    @property
    def confirmed(self) -> int:
        return len(self.report.confirmed) if self.report else 0


@dataclass
class GateReport:
    """Aggregate clean-gate outcome."""

    entries: list[GateEntry]

    @property
    def scenarios(self) -> int:
        return len(self.entries)

    @property
    def candidates(self) -> int:
        return sum(e.candidates for e in self.entries)

    @property
    def confirmed(self) -> int:
        return sum(e.confirmed for e in self.entries)

    @property
    def clean(self) -> bool:
        return self.confirmed == 0


def collective_scenario(kind: str, stack: str, cores: int, size: int,
                        algo: Optional[str] = None,
                        seed: int = 20120901) -> Scenario:
    """One collective call as an explorer scenario (fresh machine,
    fresh communicator, seeded inputs — bit-reproducible)."""

    def build(machine: "Machine") -> Callable[..., Generator]:
        from repro.bench.runner import program_for
        from repro.core.ops import SUM
        from repro.core.registry import make_communicator

        comm = make_communicator(machine, stack)
        rng = np.random.default_rng(seed)
        inputs = [rng.normal(size=size) for _ in range(cores)]
        if kind in ("scan", "exscan"):
            def program(env):
                yield from comm.barrier(env)
                coll = comm.scan if kind == "scan" else comm.exscan
                yield from coll(env, inputs[env.rank], SUM, algo=algo)
            return program
        return program_for(kind, comm, inputs, SUM, algo=algo)

    label = f"{kind}/{stack}" + (f"[{algo}]" if algo else "") \
        + f" p={cores} n={size}"
    return Scenario(label, build, ranks=cores)


def synth_winner_scenarios(stack: str = "lightweight_balanced",
                           limit: Optional[int] = None) -> list[Scenario]:
    """One scenario per unique synthesized winner in the committed
    selection table, run at the largest rank count it won at (and the
    smallest winning size there, to bound the gate's cost)."""
    import json

    from repro.sched.select import default_table_path

    table = json.loads(default_table_path().read_text())
    best: dict[tuple[str, str], tuple[int, int]] = {}
    for kind, rows in table.get("entries", {}).items():
        for p, n, algo in rows:
            if "synth/" not in algo:
                continue
            prev = best.get((kind, algo))
            if prev is None or (p, -n) > (prev[0], -prev[1]):
                best[(kind, algo)] = (int(p), int(n))
    # The table stores bare builder labels; the communicators dispatch
    # schedule-engine algorithms through the ``sched:`` prefix.
    scenarios = [collective_scenario(
                     kind, stack, p, n,
                     algo=algo if algo.startswith("sched:") else f"sched:{algo}")
                 for (kind, algo), (p, n) in sorted(best.items())]
    return scenarios[:limit] if limit is not None else scenarios


def run_gate(kinds: Iterable[str], stacks: Iterable[str],
             cores: Iterable[int] = (2, 47, 48), size: int = 96,
             seeds: Iterable[int] = (1, 2, 3), include_synth: bool = True,
             synth_limit: Optional[int] = None,
             progress: Optional[Callable[[str], None]] = None) -> GateReport:
    """Detection across kinds x stacks x rank counts (plus the synth
    winners); any scenario with candidates goes through the explorer."""
    scenarios = [collective_scenario(kind, stack, p, size)
                 for kind in kinds for stack in stacks for p in cores]
    if include_synth:
        scenarios.extend(synth_winner_scenarios(limit=synth_limit))
    entries = []
    for scenario in scenarios:
        detector, failure = run_detected(scenario)
        candidates = detector.candidates()
        if failure is not None and progress is not None:
            progress(f"{scenario.name}: baseline raised {failure}")
        if not candidates:
            entries.append(GateEntry(scenario.name, 0, None))
            if progress is not None:
                progress(f"{scenario.name}: clean")
            continue
        report = explore(scenario, seeds=seeds, baseline=detector)
        entries.append(GateEntry(scenario.name, len(candidates), report))
        if progress is not None:
            progress(f"{scenario.name}: {len(candidates)} candidate(s), "
                     f"{len(report.confirmed)} confirmed, "
                     f"{len(report.benign)} benign "
                     f"({report.runs} perturbed runs)")
    return GateReport(entries)
