"""Static determinism/protocol lint for the simulator's source tree.

The simulator's core guarantee is that a run is a pure function of its
inputs: integer virtual time, one seeded RNG stream per subsystem, and
every MPB byte moved through the timed transfer API.  Those invariants
are easy to break silently — a stray ``time.time()`` in a protocol
module, an unseeded ``default_rng()``, a direct ``region.write`` that
moves bytes nobody paid latency for.  This module is a small AST-based
checker that rejects such code at review time, complementing the
*runtime* sanitizer in :mod:`repro.analysis.sanitizer`.

Rules
-----

``wallclock-time``
    No wall-clock reads (``time.time``/``monotonic``/``perf_counter``,
    ``datetime.now``/``utcnow``/``today``) inside the deterministic
    packages (``sim``, ``hw``, ``core``, ``rcce``, ``ircce``, ``lwnb``,
    ``rckmpi``).  Wall-clock belongs in ``bench`` (host-performance
    measurement), never in simulated behaviour.
``unseeded-random``
    No stdlib ``random`` (process-global state) and no unseeded
    ``numpy.random.default_rng()`` / legacy ``np.random.*`` draws in the
    deterministic packages.  Every stream must derive from an explicit
    seed so runs replay bit-identically.
``mpb-direct-write``
    Outside ``hw``/``rcce``/``ircce``, modules that import the MPB types
    must not call ``.write``/``.read``/``.read_into`` on regions or poke
    ``.data[...]`` directly — bytes that bypass the timed transfer API
    are invisible to the latency model and the sanitizer.  Intentional
    sites (the MPB-direct Allreduce, the fault injector's corruption)
    carry a waiver with a rationale.
``unattributed-access``
    Inside the deterministic packages, MPB traffic
    (``.write``/``.read``/``.read_into`` in the sanctioned transfer
    layers, where ``mpb-direct-write`` does not apply) and flag
    ``.force`` calls anywhere must carry an explicit ``actor=``
    keyword.  An unattributed access reaches the
    runtime monitors as ``actor=None`` — the sanitizer loses its rank
    attribution and the happens-before race detector silently drops the
    access from its clocks, blinding both.
``span-unpaired``
    ``span(...)`` must be used as a ``with`` item: the begin/end pair
    (and the sanitizer's span stack) is only balanced by the context
    manager protocol.
``trace-begin-end``
    Literal trace tags ending in ``.begin`` must have a matching
    ``.end`` literal in the same module (and vice versa), so the
    timeline reassembler never sees systematically unclosed spans.
``float-time-eq``
    No ``==``/``!=`` on virtual-time floats (``ps_to_us(...)`` results,
    ``*_us`` values) — compare the integer picosecond values or use an
    explicit tolerance.
``unused-import``
    Imported names must be referenced (docstring/annotation mentions
    count; ``__init__.py`` re-export modules are exempt).

Waivers: a ``# repro-lint: allow=<rule>[,<rule>...]`` comment waives the
named rules on its own line and the line directly below it.

Run as ``python -m repro lint [paths...]`` (defaults to ``src/repro``)
or via :mod:`tools.run_lint`; findings print as ``path:line:col: rule
message`` and the exit status is non-zero when any finding survives.
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence

#: Packages whose behaviour is simulated and must stay deterministic.
DETERMINISTIC_PKGS = ("sim", "hw", "core", "rcce", "ircce", "lwnb",
                      "rckmpi")
#: Packages allowed to touch MPB bytes directly (they *are* the API).
TRANSFER_PKGS = ("hw", "rcce", "ircce")

_WALLCLOCK = {
    ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
    ("time", "process_time"), ("time", "clock"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}
_WALLCLOCK_FROMS = {"time", "monotonic", "perf_counter", "process_time"}
_LEGACY_NP_RANDOM = {"random", "rand", "randn", "randint", "choice",
                     "shuffle", "permutation", "seed"}
_MPB_NAMES = {"MPB", "MPBRegion"}
_DIRECT_CALLS = {"write", "read", "read_into"}

_WAIVER_RE = re.compile(r"#\s*repro-lint:\s*allow=([\w,\-]+)")


@dataclass(frozen=True)
class Finding:
    """One lint finding at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _module_key(path: Path) -> str:
    """Posix path from the ``repro`` package root (or the plain name)."""
    parts = path.resolve().parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            return "/".join(parts[i:])
    return path.name


def _in_pkgs(key: str, pkgs: Sequence[str]) -> bool:
    return any(key.startswith(f"repro/{p}/") for p in pkgs)


class _ModuleLint:
    """All rules over one parsed module."""

    def __init__(self, path: Path, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.key = _module_key(path)
        self.findings: list[Finding] = []
        self.waivers: dict[int, set[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _WAIVER_RE.search(text)
            if match:
                rules = set(match.group(1).split(","))
                for covered in (lineno, lineno + 1):
                    self.waivers.setdefault(covered, set()).update(rules)

    def report(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        if rule in self.waivers.get(line, ()):
            return
        self.findings.append(Finding(
            str(self.path), line, getattr(node, "col_offset", 0) + 1,
            rule, message))

    # -- rule passes -----------------------------------------------------
    def run(self) -> list[Finding]:
        imports = self._imports()
        deterministic = _in_pkgs(self.key, DETERMINISTIC_PKGS)
        mpb_module = (bool(imports["mpb_names"])
                      and not _in_pkgs(self.key, TRANSFER_PKGS))
        with_items = {
            id(item.context_expr)
            for node in ast.walk(self.tree)
            if isinstance(node, (ast.With, ast.AsyncWith))
            for item in node.items
        }
        begin_tags: dict[str, ast.Constant] = {}
        end_tags: dict[str, ast.Constant] = {}

        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                if deterministic:
                    self._check_wallclock(node, imports)
                    self._check_random(node)
                if mpb_module:
                    self._check_direct_call(node)
                if deterministic:
                    self._check_unattributed(node)
                self._check_span(node, with_items)
            elif isinstance(node, ast.Subscript) and mpb_module:
                self._check_data_poke(node)
            elif isinstance(node, ast.Compare):
                self._check_float_time_eq(node)
            elif (isinstance(node, ast.Constant)
                  and isinstance(node.value, str)):
                if node.value.endswith(".begin"):
                    begin_tags.setdefault(node.value[:-6], node)
                elif node.value.endswith(".end"):
                    end_tags.setdefault(node.value[:-4], node)

        for prefix, node in begin_tags.items():
            if prefix not in end_tags:
                self.report(node, "trace-begin-end",
                            f'"{prefix}.begin" has no matching '
                            f'"{prefix}.end" literal in this module')
        for prefix, node in end_tags.items():
            if prefix not in begin_tags:
                self.report(node, "trace-begin-end",
                            f'"{prefix}.end" has no matching '
                            f'"{prefix}.begin" literal in this module')

        if self.path.name != "__init__.py":
            self._check_unused_imports()
        return self.findings

    # -- helpers ---------------------------------------------------------
    def _imports(self) -> dict:
        """Names bound by imports, split by what the rules care about."""
        out = {"wallclock_names": set(), "mpb_names": set()}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module in ("time", "datetime"):
                    for alias in node.names:
                        if alias.name in _WALLCLOCK_FROMS | {"datetime",
                                                             "date"}:
                            out["wallclock_names"].add(
                                alias.asname or alias.name)
                if node.module in ("repro.hw.mpb", "repro.hw"):
                    for alias in node.names:
                        if alias.name in _MPB_NAMES:
                            out["mpb_names"].add(alias.asname or alias.name)
        return out

    @staticmethod
    def _dotted(node: ast.AST) -> Optional[tuple[str, str]]:
        """``base.attr`` of an Attribute over a Name, else None."""
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)):
            return node.value.id, node.attr
        return None

    def _check_wallclock(self, node: ast.Call, imports: dict) -> None:
        dotted = self._dotted(node.func)
        if dotted in _WALLCLOCK:
            self.report(node, "wallclock-time",
                        f"wall-clock read {dotted[0]}.{dotted[1]}() in a "
                        "deterministic package (virtual time only; "
                        "wall-clock measurement belongs in repro.bench)")
            return
        if (isinstance(node.func, ast.Name)
                and node.func.id in imports["wallclock_names"]
                and node.func.id in _WALLCLOCK_FROMS):
            self.report(node, "wallclock-time",
                        f"wall-clock read {node.func.id}() in a "
                        "deterministic package")

    def _check_random(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is None:
            # np.random.default_rng() etc: Attribute over Attribute.
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Attribute)
                    and func.value.attr == "random"
                    and isinstance(func.value.value, ast.Name)):
                if func.attr == "default_rng" and not node.args:
                    self.report(node, "unseeded-random",
                                "default_rng() without a seed in a "
                                "deterministic package")
                elif func.attr in _LEGACY_NP_RANDOM:
                    self.report(node, "unseeded-random",
                                f"legacy global-state np.random."
                                f"{func.attr}() in a deterministic "
                                "package (use a seeded default_rng)")
            return
        base, attr = dotted
        if base == "random":
            self.report(node, "unseeded-random",
                        f"stdlib random.{attr}() uses process-global "
                        "state; use a seeded numpy Generator")

    def _check_direct_call(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in _DIRECT_CALLS):
            self.report(node, "mpb-direct-write",
                        f".{node.func.attr}() on an MPB region outside "
                        "the transfer layer; route bytes through "
                        "repro.rcce.transfer (or waive with a rationale)")

    def _check_unattributed(self, node: ast.Call) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        attr = node.func.attr
        # Direct MPB calls outside the transfer layers are already flagged
        # wholesale by mpb-direct-write; attribution only matters where the
        # call is sanctioned.
        mpb_access = (attr in _DIRECT_CALLS
                      and _in_pkgs(self.key, TRANSFER_PKGS))
        if not mpb_access and attr != "force":
            return
        if any(kw.arg == "actor" for kw in node.keywords):
            return
        what = ("flag .force()" if attr == "force"
                else f"MPB .{attr}()")
        self.report(node, "unattributed-access",
                    f"{what} without an actor= keyword; unattributed "
                    "accesses are invisible to the sanitizer's rank "
                    "attribution and the race detector's clocks "
                    "(pass actor=, or waive for genuine setup)")

    def _check_data_poke(self, node: ast.Subscript) -> None:
        if (isinstance(node.value, ast.Attribute)
                and node.value.attr == "data"):
            self.report(node, "mpb-direct-write",
                        "raw MPB .data[...] access outside the transfer "
                        "layer (bytes invisible to the latency model)")

    def _check_span(self, node: ast.Call, with_items: set[int]) -> None:
        if (isinstance(node.func, ast.Name) and node.func.id == "span"
                and id(node) not in with_items):
            self.report(node, "span-unpaired",
                        "span(...) must be a `with` item so its "
                        "begin/end records always pair up")

    def _check_float_time_eq(self, node: ast.Compare) -> None:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        for operand in [node.left, *node.comparators]:
            name = None
            if isinstance(operand, ast.Call):
                func = operand.func
                name = (func.id if isinstance(func, ast.Name)
                        else func.attr if isinstance(func, ast.Attribute)
                        else None)
                if name != "ps_to_us":
                    name = None
            elif isinstance(operand, ast.Name):
                name = operand.id if operand.id.endswith("_us") else None
            elif isinstance(operand, ast.Attribute):
                name = operand.attr if operand.attr.endswith("_us") else None
            if name is not None:
                self.report(node, "float-time-eq",
                            f"float equality on virtual-time value "
                            f"{name!r}; compare integer picoseconds or "
                            "use an explicit tolerance")
                return

    def _check_unused_imports(self) -> None:
        lines = self.source.splitlines()
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                names = [(a.asname or a.name.split(".")[0], a) for a in
                         node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__" or any(
                        a.name == "*" for a in node.names):
                    continue
                names = [(a.asname or a.name, a) for a in node.names]
            else:
                continue
            span_lines = set(range(node.lineno,
                                   (node.end_lineno or node.lineno) + 1))
            for name, _alias in names:
                pattern = re.compile(rf"\b{re.escape(name)}\b")
                used = any(pattern.search(text)
                           for lineno, text in enumerate(lines, start=1)
                           if lineno not in span_lines)
                if not used:
                    self.report(node, "unused-import",
                                f"imported name {name!r} is never used")


def lint_file(path: Path) -> list[Finding]:
    """Lint one python file; syntax errors are findings, not crashes."""
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Finding(str(path), exc.lineno or 1, (exc.offset or 0) + 1,
                        "syntax-error", exc.msg or "invalid syntax")]
    return _ModuleLint(path, source, tree).run()


def default_root() -> Path:
    """The ``src/repro`` tree this module was loaded from."""
    return Path(__file__).resolve().parents[1]


def lint_paths(paths: Iterable[Path]) -> list[Finding]:
    findings: list[Finding] = []
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                findings.extend(lint_file(file))
        else:
            findings.extend(lint_file(path))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: print findings, return the exit status."""
    argv = list(sys.argv[1:] if argv is None else argv)
    paths = [Path(a) for a in argv] or [default_root()]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"repro-lint: no such path: {p}", file=sys.stderr)
        return 2
    findings = lint_paths(paths)
    for finding in findings:
        print(finding)
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
