"""Static and dynamic correctness tooling for the collective stack.

The paper's optimizations all trade synchronization away for speed, which
is exactly where flag races, stale MPB reads and buffer-reuse bugs creep
in.  This package catches those classes of bug mechanically:

* :mod:`repro.analysis.sanitizer` — an opt-in **runtime MPB/flag
  sanitizer** that shadow-tracks every MPB payload byte and every
  synchronization flag through a protocol state machine and reports
  diagnostics (read-before-publish, write-while-reader-pending,
  overlapping slot allocation, out-of-bounds access, flag races, stale
  reads).  Pure observation: it never consumes simulated time, and with
  the sanitizer absent every hook site is a single ``is not None`` check.
* :mod:`repro.analysis.lint` — an AST-based **static determinism/protocol
  lint** (``python -m repro lint``) enforcing repo invariants: no
  wall-clock time or unseeded randomness inside the simulation layers, no
  MPB accesses bypassing the transfer API outside the sanctioned layers,
  ``span(...)`` only used as a context manager, paired ``.begin``/.end``
  trace tags, no float equality on virtual-time values, no unused
  imports.
* :mod:`repro.analysis.races` — a **vector-clock happens-before race
  detector** plus an **adversarial interleaving explorer** (``python -m
  repro race``): conflicting MPB/flag accesses unordered by
  happens-before are candidate races, and each candidate is re-executed
  under bounded timing perturbations until it reorders into a confirmed
  counterexample or exhausts the budget as benign.  Same hook slot and
  zero-overhead contract as the sanitizer.
* :mod:`repro.analysis.fixtures` — known-bad SPMD programs that the
  sanitizer must flag, and known-racy ones (``RACE_FIXTURES``) the race
  detector must flag (the subsystem's own regression corpus).
* :mod:`repro.analysis.schedverify` — a **static schedule verifier**
  for the schedule-IR engine (:mod:`repro.sched`): send/recv matching,
  interval bounds, deadlock freedom under the blocking rendezvous
  lowering, and symbolic end-to-end correctness of every collective's
  dataflow.  ``tools/run_static_checks.py`` verifies the whole shipped
  repertoire on each run.
* :mod:`repro.analysis.sched_fixtures` — known-broken schedules the
  verifier must keep flagging.

See ``docs/static-analysis.md`` for the state machine, the diagnostic
catalogue and the lint rule list, and ``docs/schedules.md`` for the
schedule verifier's rules.
"""

from repro.analysis.races import (
    RaceDetector,
    RaceDiagnostic,
    RaceError,
)
from repro.analysis.sanitizer import (
    ByteState,
    Diagnostic,
    Sanitizer,
    SanitizerError,
)
from repro.analysis.schedverify import (
    ScheduleDiagnostic,
    ScheduleVerifyError,
    assert_valid_schedule,
    verify_repertoire,
    verify_schedule,
)

__all__ = [
    "ByteState",
    "Diagnostic",
    "RaceDetector",
    "RaceDiagnostic",
    "RaceError",
    "Sanitizer",
    "SanitizerError",
    "ScheduleDiagnostic",
    "ScheduleVerifyError",
    "assert_valid_schedule",
    "verify_repertoire",
    "verify_schedule",
]
