"""Static and dynamic correctness tooling for the collective stack.

The paper's optimizations all trade synchronization away for speed, which
is exactly where flag races, stale MPB reads and buffer-reuse bugs creep
in.  This package catches those classes of bug mechanically:

* :mod:`repro.analysis.sanitizer` — an opt-in **runtime MPB/flag
  sanitizer** that shadow-tracks every MPB payload byte and every
  synchronization flag through a protocol state machine and reports
  diagnostics (read-before-publish, write-while-reader-pending,
  overlapping slot allocation, out-of-bounds access, flag races, stale
  reads).  Pure observation: it never consumes simulated time, and with
  the sanitizer absent every hook site is a single ``is not None`` check.
* :mod:`repro.analysis.lint` — an AST-based **static determinism/protocol
  lint** (``python -m repro lint``) enforcing repo invariants: no
  wall-clock time or unseeded randomness inside the simulation layers, no
  MPB accesses bypassing the transfer API outside the sanctioned layers,
  ``span(...)`` only used as a context manager, paired ``.begin``/.end``
  trace tags, no float equality on virtual-time values, no unused
  imports.
* :mod:`repro.analysis.fixtures` — known-bad SPMD schedules that the
  sanitizer must flag (the subsystem's own regression corpus).

See ``docs/static-analysis.md`` for the state machine, the diagnostic
catalogue and the lint rule list.
"""

from repro.analysis.sanitizer import (
    ByteState,
    Diagnostic,
    Sanitizer,
    SanitizerError,
)

__all__ = [
    "ByteState",
    "Diagnostic",
    "Sanitizer",
    "SanitizerError",
]
