"""Known-bad SPMD schedules the sanitizer must flag.

Each fixture builds a tiny protocol that violates exactly one rule of the
MPB discipline (see :mod:`repro.analysis.sanitizer`): reading before the
writer's flag, overwriting a published buffer, reusing an unconsumed
slot, racing a flag, reading corrupted bytes.  They serve two purposes:

* **Detector tests** — ``tests/analysis/test_sanitizer_gate.py`` runs
  every fixture and asserts the expected rule fires (a sanitizer that
  goes quiet on these is broken, the mirror image of the clean-stack
  gate asserting zero findings on the real collectives).
* **Worked examples** — each fixture is the runnable form of one entry
  in the diagnostic catalogue of ``docs/static-analysis.md``.

The ``stale-read`` fixture is seeded through the fault injector's
payload-corruption hook (``payload_corrupt_prob=1``) rather than by
poking MPB bytes directly, so it exercises the same
:meth:`~repro.analysis.sanitizer.Sanitizer.on_corrupt` path real chaos
runs do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Generator, Optional

import numpy as np

from repro.analysis.sanitizer import Sanitizer
from repro.faults import FaultInjector, FaultPlan
from repro.hw.machine import CoreEnv, Machine
from repro.hw.mpb import MPBError
from repro.rcce.transfer import get_bytes, put_bytes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.races import RaceDetector, Scenario

#: Virtual-time offsets that order the two ranks' accesses decisively
#: (both are orders of magnitude above any single MPB access cost).
_EARLY_PS = 10_000_000      # 10 us: after the writer's copy has landed
_LATE_PS = 50_000_000       # 50 us: long after the reader misbehaved

_PAYLOAD = np.arange(64, dtype=np.uint8)


@dataclass(frozen=True)
class Fixture:
    """One known-bad schedule and the rule(s) it must trigger."""

    name: str
    rules: tuple[str, ...]
    builder: Callable[[Machine], Callable[[CoreEnv], Generator]]
    plan: Optional[FaultPlan] = None
    ranks: int = 2


def _read_before_publish(machine: Machine):
    region = machine.mpbs[1].alloc(_PAYLOAD.size)
    sent = machine.flag(1, "fx.sent")

    def program(env: CoreEnv) -> Generator:
        if env.rank == 1:
            yield from put_bytes(env, region, _PAYLOAD)
            yield from env.sleep(_LATE_PS)
            yield from sent.set_by(env.core)    # far too late
        else:
            yield from env.sleep(_EARLY_PS)
            # BUG: reads the freshly written bytes without waiting for
            # the writer's flag — the data is there, but nothing
            # synchronized on it.
            yield from get_bytes(env, region, _PAYLOAD.size)
            yield from sent.wait_set(env.core)
    return program


def _uninit_read(machine: Machine):
    region = machine.mpbs[1].alloc(_PAYLOAD.size)

    def program(env: CoreEnv) -> Generator:
        if env.rank == 0:
            # BUG: reads a slot nobody has ever written.
            yield from get_bytes(env, region, _PAYLOAD.size)
        else:
            yield from env.sleep(_EARLY_PS)
    return program


def _write_while_reader_pending(machine: Machine):
    region = machine.mpbs[0].alloc(_PAYLOAD.size)
    sent = machine.flag(1, "fx.sent")

    def program(env: CoreEnv) -> Generator:
        if env.rank == 0:
            yield from put_bytes(env, region, _PAYLOAD)
            yield from sent.set_by(env.core)    # published to rank 1
            # BUG: overwrites the buffer before rank 1 (who was just
            # signalled) consumed it — no ready hand-back in between.
            yield from put_bytes(env, region, _PAYLOAD[::-1].copy())
        else:
            yield from sent.wait_set(env.core)
            yield from env.sleep(_LATE_PS)      # lags; reads too late
            yield from get_bytes(env, region, _PAYLOAD.size)
    return program


def _overlapping_alloc(machine: Machine):
    sent = machine.flag(1, "fx.sent")

    def program(env: CoreEnv) -> Generator:
        if env.rank == 0:
            mpb = env.my_mpb()
            region = mpb.alloc(_PAYLOAD.size)
            yield from put_bytes(env, region, _PAYLOAD)
            yield from sent.set_by(env.core)
            # BUG: recycles the allocator while the slot's bytes are
            # still published to an unconsumed reader.
            mpb.reset_alloc()
            mpb.alloc(_PAYLOAD.size)
        else:
            yield from sent.wait_set(env.core)
            yield from env.sleep(_LATE_PS)
    return program


def _oob_access(machine: Machine):
    region = machine.mpbs[0].alloc(32)

    def program(env: CoreEnv) -> Generator:
        if env.rank == 0:
            try:
                # BUG: reads past the end of the allocated slot.  The
                # hardware model raises; the sanitizer records the site.
                region.read(region.size + 32, actor=env.core_id)
            except MPBError:
                pass
        yield from env.sleep(_EARLY_PS)
    return program


def _flag_double_set(machine: Machine):
    go = machine.flag(0, "fx.go")

    def program(env: CoreEnv) -> Generator:
        if env.rank == 0:
            yield from go.set_by(env.core)
        else:
            yield from env.sleep(_EARLY_PS)
            # BUG: second set while rank 0's (unobserved) signal is
            # still up — one of the two notifications is lost.
            yield from go.set_by(env.core)
    return program


def _stale_read(machine: Machine):
    region = machine.mpbs[1].alloc(_PAYLOAD.size)
    sent = machine.flag(1, "fx.sent")

    def program(env: CoreEnv) -> Generator:
        if env.rank == 1:
            # The injector (payload_corrupt_prob=1, checksums off)
            # flips a byte right after this copy lands; publishing and
            # reading it without any verify pass is a stale read.
            yield from put_bytes(env, region, _PAYLOAD)
            yield from sent.set_by(env.core)
        else:
            yield from sent.wait_set(env.core)
            yield from get_bytes(env, region, _PAYLOAD.size)
    return program


FIXTURES: tuple[Fixture, ...] = (
    Fixture("read-before-publish", ("read-before-publish",),
            _read_before_publish),
    Fixture("uninit-read", ("uninit-read",), _uninit_read),
    Fixture("write-while-reader-pending", ("write-while-reader-pending",),
            _write_while_reader_pending),
    Fixture("overlapping-alloc", ("overlapping-alloc",), _overlapping_alloc),
    Fixture("oob-access", ("oob-access",), _oob_access),
    Fixture("flag-double-set", ("flag-double-set",), _flag_double_set),
    Fixture("stale-read", ("stale-read",), _stale_read,
            plan=FaultPlan(payload_corrupt_prob=1.0, checksums=False,
                           seed=20120901)),
)


def fixture(name: str) -> Fixture:
    for fx in FIXTURES:
        if fx.name == name:
            return fx
    raise KeyError(f"no fixture named {name!r}; "
                   f"have {[f.name for f in FIXTURES]}")


def run_fixture(fx: Fixture) -> Sanitizer:
    """Run one fixture under a fresh machine; returns its sanitizer."""
    machine = Machine()
    if fx.plan is not None:
        FaultInjector(fx.plan).install(machine)
    san = Sanitizer().install(machine)
    program = fx.builder(machine)
    machine.run_spmd(program, ranks=list(range(fx.ranks)))
    return san


# ---------------------------------------------------------------------- #
# Known-racy fixtures for the happens-before detector.
#
# Unlike the sanitizer fixtures above (whose 10/50 us offsets make the
# misbehaviour unambiguous in the one observed schedule), these keep the
# two unordered accesses only a few hundred nanoseconds apart: close
# enough that the interleaving explorer's bounded timing perturbations
# (mesh jitter, port congestion, flag staleness, core stalls — see
# :func:`repro.analysis.races.perturbation_plans`) can actually reverse
# them, turning the candidate into a *confirmed* race.  The
# ``alloc-without-ack`` fixture is the deliberate exception: a reversed
# replay of it produces no conflicting access at all, so it stays a
# candidate the explorer classifies as benign — exercising that half of
# the verdict logic.
# ---------------------------------------------------------------------- #

#: Orders the two unordered accesses in the unperturbed schedule while
#: staying inside the explorer's perturbation budget (~0.6-9 us shifts).
_NEAR_PS = 300_000          # 0.3 us
_RACE_GAP_PS = 700_000      # 0.7 us
_ACK_GAP_PS = 1_500_000     # 1.5 us
_ALLOC_GAP_PS = 4_000_000   # 4 us: past the peer's full 64 B put (~2.3 us)


def _flag_before_payload(machine: Machine):
    region = machine.mpbs[1].alloc(_PAYLOAD.size)
    sent = machine.flag(1, "fx.sent")

    def program(env: CoreEnv) -> Generator:
        if env.rank == 1:
            # BUG: raises the guard flag *before* the payload it guards
            # lands — the flag edge orders nothing.
            yield from sent.set_by(env.core)
            yield from put_bytes(env, region, _PAYLOAD)
        else:
            yield from sent.wait_set(env.core)
            yield from env.sleep(_RACE_GAP_PS)
            yield from get_bytes(env, region, _PAYLOAD.size)
    return program


def _missing_consume_ack(machine: Machine):
    region = machine.mpbs[0].alloc(_PAYLOAD.size)
    sent = machine.flag(0, "fx.sent")

    def program(env: CoreEnv) -> Generator:
        if env.rank == 0:
            yield from put_bytes(env, region, _PAYLOAD)
            yield from sent.set_by(env.core)
            yield from env.sleep(_ACK_GAP_PS)
            # BUG: reuses the slot with no ready hand-back from the
            # reader — nothing orders the overwrite after the read.
            yield from put_bytes(env, region, _PAYLOAD[::-1].copy())
        else:
            yield from sent.wait_set(env.core)
            yield from get_bytes(env, region, _PAYLOAD.size)
    return program


def _unordered_write_write(machine: Machine):
    region = machine.mpbs[0].alloc(_PAYLOAD.size)

    def program(env: CoreEnv) -> Generator:
        # BUG: both ranks write the same slot with no flag edge between
        # them; only the sleep offsets pick a winner.
        if env.rank == 0:
            yield from put_bytes(env, region, _PAYLOAD)
        else:
            yield from env.sleep(_NEAR_PS)
            yield from put_bytes(env, region, _PAYLOAD[::-1].copy())
    return program


def _unsynced_read(machine: Machine):
    region = machine.mpbs[1].alloc(_PAYLOAD.size)

    def program(env: CoreEnv) -> Generator:
        if env.rank == 1:
            yield from put_bytes(env, region, _PAYLOAD)
        else:
            # BUG: no flag anywhere — the read lands after the write
            # purely because of the sleep.
            yield from env.sleep(_RACE_GAP_PS)
            yield from get_bytes(env, region, _PAYLOAD.size)
    return program


def _skipped_flag_wait(machine: Machine):
    region = machine.mpbs[1].alloc(_PAYLOAD.size)
    init = machine.flag(1, "fx.init")
    sent = machine.flag(1, "fx.sent")

    def program(env: CoreEnv) -> Generator:
        if env.rank == 1:
            yield from init.set_by(env.core)
            yield from put_bytes(env, region, _PAYLOAD)
            yield from sent.set_by(env.core)
        else:
            yield from init.wait_set(env.core)
            yield from env.sleep(_RACE_GAP_PS)
            # BUG: skips the sent wait — a publishing flag edge exists,
            # the reader just never acquires it.
            yield from get_bytes(env, region, _PAYLOAD.size)
    return program


def _flag_race_set_set(machine: Machine):
    go = machine.flag(0, "fx.go")

    def program(env: CoreEnv) -> Generator:
        # BUG: two unsynchronized setters; either transition can be the
        # one that survives.
        if env.rank == 1:
            yield from env.sleep(_NEAR_PS)
        yield from go.set_by(env.core)
    return program


def _flag_race_set_clear(machine: Machine):
    ack = machine.flag(0, "fx.ack")

    def program(env: CoreEnv) -> Generator:
        if env.rank == 0:
            yield from ack.set_by(env.core)
        else:
            yield from env.sleep(_NEAR_PS)
            # BUG: clears a signal it never observed being raised — in
            # the other order the set is silently lost.
            yield from ack.clear_by(env.core)
    return program


def _alloc_without_ack(machine: Machine):
    region = machine.mpbs[0].alloc(_PAYLOAD.size)

    def program(env: CoreEnv) -> Generator:
        if env.rank == 1:
            yield from put_bytes(env, region, _PAYLOAD)
        else:
            yield from env.sleep(_ALLOC_GAP_PS)
            # BUG: recycles the slot without any completed handshake
            # ordering it after the peer's write.
            mpb = env.my_mpb()
            mpb.reset_alloc()
            mpb.alloc(_PAYLOAD.size)
    return program


#: Known-racy schedules and the race rule each must trigger (one fixture
#: per rule of :data:`repro.analysis.races.RULES`).
RACE_FIXTURES: tuple[Fixture, ...] = (
    Fixture("flag-before-payload", ("race-guarded-payload",),
            _flag_before_payload),
    Fixture("missing-consume-ack", ("race-mpb-rw",), _missing_consume_ack),
    Fixture("unordered-write-write", ("race-mpb-ww",),
            _unordered_write_write),
    Fixture("unsynced-read", ("race-latency-coincidence",), _unsynced_read),
    Fixture("skipped-flag-wait", ("race-mpb-wr",), _skipped_flag_wait),
    Fixture("flag-race-set-set", ("race-flag-set-set",), _flag_race_set_set),
    Fixture("flag-race-set-clear", ("race-flag-set-clear",),
            _flag_race_set_clear),
    Fixture("alloc-without-ack", ("race-alloc-unordered",),
            _alloc_without_ack),
)


def race_fixture(name: str) -> Fixture:
    for fx in RACE_FIXTURES:
        if fx.name == name:
            return fx
    raise KeyError(f"no race fixture named {name!r}; "
                   f"have {[f.name for f in RACE_FIXTURES]}")


def race_fixture_scenario(fx: Fixture) -> "Scenario":
    """The fixture as an explorer :class:`~repro.analysis.races.Scenario`."""
    from repro.analysis.races import Scenario

    return Scenario(fx.name, fx.builder, ranks=fx.ranks)


def run_race_fixture(fx: Fixture) -> "RaceDetector":
    """Run one racy fixture under a fresh machine + race detector."""
    from repro.analysis.races import RaceDetector

    machine = Machine()
    if fx.plan is not None:
        FaultInjector(fx.plan).install(machine)
    detector = RaceDetector().install(machine)
    program = fx.builder(machine)
    machine.run_spmd(program, ranks=list(range(fx.ranks)))
    return detector
