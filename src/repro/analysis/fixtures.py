"""Known-bad SPMD schedules the sanitizer must flag.

Each fixture builds a tiny protocol that violates exactly one rule of the
MPB discipline (see :mod:`repro.analysis.sanitizer`): reading before the
writer's flag, overwriting a published buffer, reusing an unconsumed
slot, racing a flag, reading corrupted bytes.  They serve two purposes:

* **Detector tests** — ``tests/analysis/test_sanitizer_gate.py`` runs
  every fixture and asserts the expected rule fires (a sanitizer that
  goes quiet on these is broken, the mirror image of the clean-stack
  gate asserting zero findings on the real collectives).
* **Worked examples** — each fixture is the runnable form of one entry
  in the diagnostic catalogue of ``docs/static-analysis.md``.

The ``stale-read`` fixture is seeded through the fault injector's
payload-corruption hook (``payload_corrupt_prob=1``) rather than by
poking MPB bytes directly, so it exercises the same
:meth:`~repro.analysis.sanitizer.Sanitizer.on_corrupt` path real chaos
runs do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

import numpy as np

from repro.analysis.sanitizer import Sanitizer
from repro.faults import FaultInjector, FaultPlan
from repro.hw.machine import CoreEnv, Machine
from repro.hw.mpb import MPBError
from repro.rcce.transfer import get_bytes, put_bytes

#: Virtual-time offsets that order the two ranks' accesses decisively
#: (both are orders of magnitude above any single MPB access cost).
_EARLY_PS = 10_000_000      # 10 us: after the writer's copy has landed
_LATE_PS = 50_000_000       # 50 us: long after the reader misbehaved

_PAYLOAD = np.arange(64, dtype=np.uint8)


@dataclass(frozen=True)
class Fixture:
    """One known-bad schedule and the rule(s) it must trigger."""

    name: str
    rules: tuple[str, ...]
    builder: Callable[[Machine], Callable[[CoreEnv], Generator]]
    plan: Optional[FaultPlan] = None
    ranks: int = 2


def _read_before_publish(machine: Machine):
    region = machine.mpbs[1].alloc(_PAYLOAD.size)
    sent = machine.flag(1, "fx.sent")

    def program(env: CoreEnv) -> Generator:
        if env.rank == 1:
            yield from put_bytes(env, region, _PAYLOAD)
            yield from env.sleep(_LATE_PS)
            yield from sent.set_by(env.core)    # far too late
        else:
            yield from env.sleep(_EARLY_PS)
            # BUG: reads the freshly written bytes without waiting for
            # the writer's flag — the data is there, but nothing
            # synchronized on it.
            yield from get_bytes(env, region, _PAYLOAD.size)
            yield from sent.wait_set(env.core)
    return program


def _uninit_read(machine: Machine):
    region = machine.mpbs[1].alloc(_PAYLOAD.size)

    def program(env: CoreEnv) -> Generator:
        if env.rank == 0:
            # BUG: reads a slot nobody has ever written.
            yield from get_bytes(env, region, _PAYLOAD.size)
        else:
            yield from env.sleep(_EARLY_PS)
    return program


def _write_while_reader_pending(machine: Machine):
    region = machine.mpbs[0].alloc(_PAYLOAD.size)
    sent = machine.flag(1, "fx.sent")

    def program(env: CoreEnv) -> Generator:
        if env.rank == 0:
            yield from put_bytes(env, region, _PAYLOAD)
            yield from sent.set_by(env.core)    # published to rank 1
            # BUG: overwrites the buffer before rank 1 (who was just
            # signalled) consumed it — no ready hand-back in between.
            yield from put_bytes(env, region, _PAYLOAD[::-1].copy())
        else:
            yield from sent.wait_set(env.core)
            yield from env.sleep(_LATE_PS)      # lags; reads too late
            yield from get_bytes(env, region, _PAYLOAD.size)
    return program


def _overlapping_alloc(machine: Machine):
    sent = machine.flag(1, "fx.sent")

    def program(env: CoreEnv) -> Generator:
        if env.rank == 0:
            mpb = env.my_mpb()
            region = mpb.alloc(_PAYLOAD.size)
            yield from put_bytes(env, region, _PAYLOAD)
            yield from sent.set_by(env.core)
            # BUG: recycles the allocator while the slot's bytes are
            # still published to an unconsumed reader.
            mpb.reset_alloc()
            mpb.alloc(_PAYLOAD.size)
        else:
            yield from sent.wait_set(env.core)
            yield from env.sleep(_LATE_PS)
    return program


def _oob_access(machine: Machine):
    region = machine.mpbs[0].alloc(32)

    def program(env: CoreEnv) -> Generator:
        if env.rank == 0:
            try:
                # BUG: reads past the end of the allocated slot.  The
                # hardware model raises; the sanitizer records the site.
                region.read(region.size + 32, actor=env.core_id)
            except MPBError:
                pass
        yield from env.sleep(_EARLY_PS)
    return program


def _flag_double_set(machine: Machine):
    go = machine.flag(0, "fx.go")

    def program(env: CoreEnv) -> Generator:
        if env.rank == 0:
            yield from go.set_by(env.core)
        else:
            yield from env.sleep(_EARLY_PS)
            # BUG: second set while rank 0's (unobserved) signal is
            # still up — one of the two notifications is lost.
            yield from go.set_by(env.core)
    return program


def _stale_read(machine: Machine):
    region = machine.mpbs[1].alloc(_PAYLOAD.size)
    sent = machine.flag(1, "fx.sent")

    def program(env: CoreEnv) -> Generator:
        if env.rank == 1:
            # The injector (payload_corrupt_prob=1, checksums off)
            # flips a byte right after this copy lands; publishing and
            # reading it without any verify pass is a stale read.
            yield from put_bytes(env, region, _PAYLOAD)
            yield from sent.set_by(env.core)
        else:
            yield from sent.wait_set(env.core)
            yield from get_bytes(env, region, _PAYLOAD.size)
    return program


FIXTURES: tuple[Fixture, ...] = (
    Fixture("read-before-publish", ("read-before-publish",),
            _read_before_publish),
    Fixture("uninit-read", ("uninit-read",), _uninit_read),
    Fixture("write-while-reader-pending", ("write-while-reader-pending",),
            _write_while_reader_pending),
    Fixture("overlapping-alloc", ("overlapping-alloc",), _overlapping_alloc),
    Fixture("oob-access", ("oob-access",), _oob_access),
    Fixture("flag-double-set", ("flag-double-set",), _flag_double_set),
    Fixture("stale-read", ("stale-read",), _stale_read,
            plan=FaultPlan(payload_corrupt_prob=1.0, checksums=False,
                           seed=20120901)),
)


def fixture(name: str) -> Fixture:
    for fx in FIXTURES:
        if fx.name == name:
            return fx
    raise KeyError(f"no fixture named {name!r}; "
                   f"have {[f.name for f in FIXTURES]}")


def run_fixture(fx: Fixture) -> Sanitizer:
    """Run one fixture under a fresh machine; returns its sanitizer."""
    machine = Machine()
    if fx.plan is not None:
        FaultInjector(fx.plan).install(machine)
    san = Sanitizer().install(machine)
    program = fx.builder(machine)
    machine.run_spmd(program, ranks=list(range(fx.ranks)))
    return san
