"""Runtime MPB/flag sanitizer: shadow state for every payload byte.

The sanitizer mirrors the hardware the way a memory sanitizer mirrors the
heap: every MPB payload byte carries a protocol state

    UNWRITTEN -> WRITTEN -> PUBLISHED -> CONSUMED
                     \\________________/
                        STALE (invalidated)

* a timed MPB **write** by core ``w`` moves the bytes to ``WRITTEN`` and
  records ``w`` as the writer;
* a timed **flag set** by ``w`` *publishes* all of ``w``'s pending written
  bytes (the flag is the only mechanism a reader may synchronize on);
* a timed **read** by another core moves ``PUBLISHED`` bytes to
  ``CONSUMED``;
* injected payload corruption (and only corruption — see
  :meth:`Sanitizer.on_corrupt`) invalidates published bytes to ``STALE``.

Any access that does not fit the machine is a :class:`Diagnostic`:
reading bytes a writer has not published, overwriting bytes a reader has
been signalled about but has not yet consumed, re-reading consumed bytes,
reading stale or never-written bytes, allocating over unconsumed data,
out-of-bounds accesses, and flag write-write races (double set, double
clear, clearing an unobserved signal).

Design rules, mirroring the fault injector:

* **Zero overhead off.**  Every hook site guards on the sanitizer
  reference being ``None``; an uninstrumented run executes the exact
  pre-existing code path.
* **Pure observation on.**  The sanitizer never consumes simulated time,
  so even an *instrumented* run has bit-identical latencies
  (``tests/analysis/test_zero_overhead.py`` asserts both directions).
* **Attribution.**  Timed accesses carry the acting core
  (:mod:`repro.rcce.transfer` and the MPB-direct Allreduce pass it);
  untimed bookkeeping accesses (test setup, ``Flag.force``) pass no actor
  and are exempt from diagnostics.

Each diagnostic records the virtual time, the acting and owning cores,
the active ``round`` span and the full obs-span stack of the actor, so a
report line reads like a stack trace of the simulated protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.flags import Flag
    from repro.hw.machine import Machine
    from repro.hw.mpb import MPB


class ByteState(IntEnum):
    """Protocol state of one shadowed MPB payload byte."""

    UNWRITTEN = 0
    WRITTEN = 1    #: written, not yet published through a flag set
    PUBLISHED = 2  #: writer set a flag after writing
    CONSUMED = 3   #: read by a non-writer after publication
    STALE = 4      #: invalidated (corrupted after write/publish)


#: Diagnostic rule identifiers (the catalogue in docs/static-analysis.md).
RULES = (
    "oob-access",
    "flag-region-write",
    "read-before-publish",
    "uninit-read",
    "stale-read",
    "write-while-reader-pending",
    "overlapping-alloc",
    "flag-double-set",
    "flag-double-clear",
    "flag-unobserved-clear",
)


@dataclass(frozen=True)
class Diagnostic:
    """One sanitizer finding."""

    time_ps: int
    rule: str
    actor: Optional[int]        #: acting core (None = unattributed)
    owner: int                  #: core owning the MPB / flag
    offset: Optional[int] = None
    nbytes: Optional[int] = None
    flag: Optional[str] = None
    round: Any = None           #: innermost active ``round`` span detail
    spans: tuple = ()           #: actor's open span names, outermost first
    message: str = ""

    def __str__(self) -> str:
        where = (f"flag[{self.owner}].{self.flag}" if self.flag is not None
                 else f"mpb[{self.owner}]"
                 + (f"[{self.offset}:{self.offset + (self.nbytes or 0)}]"
                    if self.offset is not None else ""))
        actor = f"core{self.actor}" if self.actor is not None else "<setup>"
        ctx = ">".join(self.spans) or "-"
        rnd = f" round={self.round}" if self.round is not None else ""
        return (f"[{self.time_ps:>12d}ps] {self.rule}: {actor} @ {where}"
                f"{rnd} span={ctx}: {self.message}")


class SanitizerError(AssertionError):
    """Raised by :meth:`Sanitizer.assert_clean` when diagnostics exist."""

    def __init__(self, diagnostics: list[Diagnostic]):
        self.diagnostics = diagnostics
        shown = "\n".join(str(d) for d in diagnostics[:20])
        more = (f"\n... and {len(diagnostics) - 20} more"
                if len(diagnostics) > 20 else "")
        super().__init__(
            f"sanitizer found {len(diagnostics)} diagnostic(s):\n"
            f"{shown}{more}")


@dataclass
class _FlagShadow:
    """Tracked state of one synchronization flag."""

    level: bool = False
    setter: Optional[int] = None   #: core of the last timed set
    observed: bool = True          #: was the last change waited on/read?


@dataclass
class _MPBShadow:
    """Per-MPB shadow arrays."""

    state: np.ndarray
    writer: np.ndarray
    reader: np.ndarray
    live: list[tuple[int, int]] = field(default_factory=list)


class Sanitizer:
    """Shadow-state tracker attachable to one :class:`Machine`.

    Usage::

        san = Sanitizer().install(machine)
        machine.run_spmd(program)
        san.assert_clean()          # or inspect san.diagnostics
    """

    def __init__(self, max_diagnostics: int = 1000):
        self.machine: Optional["Machine"] = None
        self.diagnostics: list[Diagnostic] = []
        self.max_diagnostics = max_diagnostics
        #: Total findings, including those beyond the storage cap.
        self.total_findings = 0
        self._mpbs: dict[int, _MPBShadow] = {}
        self._flags: dict[tuple[int, str], _FlagShadow] = {}
        #: Pending (unpublished) write intervals per writer core.
        self._pending: dict[int, list[tuple[int, int, int]]] = {}
        #: Open obs spans per core: [(name, detail), ...].
        self._spans: dict[int, list[tuple[str, Any]]] = {}

    # -- lifecycle -------------------------------------------------------
    def install(self, machine: "Machine") -> "Sanitizer":
        if machine.san is not None:
            raise RuntimeError("machine already has a sanitizer")
        self.machine = machine
        machine.san = self
        machine.sim.san = self
        for mpb in machine.mpbs:
            mpb.san = self
            self._mpbs[mpb.core_id] = _MPBShadow(
                state=np.zeros(mpb.size, dtype=np.uint8),
                writer=np.full(mpb.size, -1, dtype=np.int16),
                reader=np.full(mpb.size, -1, dtype=np.int16),
            )
        return self

    def uninstall(self) -> None:
        machine = self.machine
        if machine is None:
            return
        machine.san = None
        machine.sim.san = None
        for mpb in machine.mpbs:
            mpb.san = None
        self.machine = None

    # -- reporting -------------------------------------------------------
    def _report(self, rule: str, actor: Optional[int], owner: int, *,
                offset: Optional[int] = None, nbytes: Optional[int] = None,
                flag: Optional[str] = None, message: str = "") -> None:
        self.total_findings += 1
        if len(self.diagnostics) >= self.max_diagnostics:
            return
        stack = self._spans.get(actor, []) if actor is not None else []
        rnd = next((d for n, d in reversed(stack) if n == "round"), None)
        self.diagnostics.append(Diagnostic(
            time_ps=self.machine.sim.now if self.machine else 0,
            rule=rule, actor=actor, owner=owner, offset=offset,
            nbytes=nbytes, flag=flag, round=rnd,
            spans=tuple(n for n, _ in stack), message=message))

    def counts(self) -> dict[str, int]:
        """Findings per rule (of the stored diagnostics)."""
        out: dict[str, int] = {}
        for d in self.diagnostics:
            out[d.rule] = out.get(d.rule, 0) + 1
        return dict(sorted(out.items()))

    def assert_clean(self) -> None:
        if self.diagnostics:
            raise SanitizerError(self.diagnostics)

    # -- span context (fed by repro.obs.spans) ---------------------------
    def on_span_enter(self, core_id: int, name: str, detail: Any) -> None:
        self._spans.setdefault(core_id, []).append((name, detail))

    def on_span_exit(self, core_id: int, name: str) -> None:
        stack = self._spans.get(core_id)
        if stack and stack[-1][0] == name:
            stack.pop()

    # -- MPB hooks -------------------------------------------------------
    def on_oob(self, mpb: "MPB", kind: str, offset: int,
               nbytes: int) -> None:
        """An out-of-bounds raw access (recorded just before MPBError)."""
        self._report("oob-access", None, mpb.core_id, offset=offset,
                     nbytes=nbytes,
                     message=f"{kind} outside MPB of {mpb.size} B")

    def on_write(self, mpb: "MPB", offset: int, nbytes: int,
                 actor: Optional[int]) -> None:
        if nbytes <= 0:
            return
        shadow = self._mpbs[mpb.core_id]
        end = offset + nbytes
        st = shadow.state[offset:end]
        if actor is not None:
            if offset < mpb.payload_offset:
                self._report(
                    "flag-region-write", actor, mpb.core_id, offset=offset,
                    nbytes=nbytes,
                    message="payload write overlaps the reserved flag "
                            "region")
            pending = int(np.count_nonzero(st == ByteState.PUBLISHED))
            if pending:
                self._report(
                    "write-while-reader-pending", actor, mpb.core_id,
                    offset=offset, nbytes=nbytes,
                    message=f"{pending} B still published to a reader that "
                            "has not consumed them (missing ready "
                            "handshake?)")
        st[:] = ByteState.WRITTEN if actor is not None else ByteState.PUBLISHED
        shadow.writer[offset:end] = actor if actor is not None else -1
        shadow.reader[offset:end] = -1
        if actor is not None:
            self._pending.setdefault(actor, []).append(
                (mpb.core_id, offset, end))

    def on_read(self, mpb: "MPB", offset: int, nbytes: int,
                actor: Optional[int]) -> None:
        if nbytes <= 0 or actor is None:
            return
        shadow = self._mpbs[mpb.core_id]
        end = offset + nbytes
        st = shadow.state[offset:end]
        wr = shadow.writer[offset:end]
        rd = shadow.reader[offset:end]
        stale = int(np.count_nonzero(st == ByteState.STALE))
        if stale:
            self._report(
                "stale-read", actor, mpb.core_id, offset=offset,
                nbytes=nbytes,
                message=f"{stale} B were invalidated after publication "
                        "(corrupted or superseded)")
        unpub = int(np.count_nonzero(
            (st == ByteState.WRITTEN) & (wr != actor) & (wr >= 0)))
        if unpub:
            self._report(
                "read-before-publish", actor, mpb.core_id, offset=offset,
                nbytes=nbytes,
                message=f"{unpub} B written by core "
                        f"{int(wr[(st == ByteState.WRITTEN) & (wr >= 0)][0])}"
                        " but never published through a flag")
        uninit = int(np.count_nonzero(st == ByteState.UNWRITTEN))
        if uninit:
            self._report(
                "uninit-read", actor, mpb.core_id, offset=offset,
                nbytes=nbytes,
                message=f"{uninit} B have never been written")
        reread = int(np.count_nonzero(
            (st == ByteState.CONSUMED) & (rd == actor)))
        if reread:
            self._report(
                "stale-read", actor, mpb.core_id, offset=offset,
                nbytes=nbytes,
                message=f"{reread} B re-read by their consumer without an "
                        "intervening write (duplicate/stale data)")
        # Transition: published bytes read by a non-writer are consumed.
        consume = (st == ByteState.PUBLISHED) & (wr != actor)
        st[consume] = ByteState.CONSUMED
        rd[consume] = actor
        # A different reader of consumed bytes is a legal multi-consumer
        # pattern; record the most recent reader.
        rd[(st == ByteState.CONSUMED) & (rd != actor) & (rd >= 0)] = actor

    def on_alloc(self, mpb: "MPB", offset: int, nbytes: int) -> None:
        shadow = self._mpbs[mpb.core_id]
        end = offset + nbytes
        st = shadow.state[offset:end]
        busy = int(np.count_nonzero(
            (st == ByteState.WRITTEN) | (st == ByteState.PUBLISHED)))
        if busy:
            self._report(
                "overlapping-alloc", None, mpb.core_id, offset=offset,
                nbytes=nbytes,
                message=f"allocation covers {busy} B of unconsumed data "
                        "from a previous slot (double-free / slot reuse "
                        "without a flag round)")
        shadow.live.append((offset, end))

    def on_reset_alloc(self, mpb: "MPB") -> None:
        self._mpbs[mpb.core_id].live.clear()

    def on_clear(self, mpb: "MPB") -> None:
        """``MPB.clear``: a full reset is setup, not protocol traffic."""
        shadow = self._mpbs[mpb.core_id]
        shadow.state[:] = ByteState.UNWRITTEN
        shadow.writer[:] = -1
        shadow.reader[:] = -1
        shadow.live.clear()
        for intervals in self._pending.values():
            intervals[:] = [iv for iv in intervals if iv[0] != mpb.core_id]

    def on_corrupt(self, mpb: "MPB", offset: int) -> None:
        """Injected payload corruption invalidates the byte: a later read
        without an intervening (repairing) write is a stale read."""
        self._mpbs[mpb.core_id].state[offset] = ByteState.STALE

    # -- flag hooks ------------------------------------------------------
    def _flag_shadow(self, flag: "Flag") -> _FlagShadow:
        key = (flag.owner, flag.name)
        shadow = self._flags.get(key)
        if shadow is None:
            shadow = self._flags[key] = _FlagShadow(level=flag.value)
        return shadow

    def _publish(self, actor: int) -> None:
        """A timed flag set by ``actor`` publishes its pending writes."""
        intervals = self._pending.get(actor)
        if not intervals:
            return
        written = ByteState.WRITTEN
        for mpb_id, start, end in intervals:
            shadow = self._mpbs[mpb_id]
            st = shadow.state[start:end]
            mask = (st == written) & (shadow.writer[start:end] == actor)
            st[mask] = ByteState.PUBLISHED
        intervals.clear()

    def on_flag_write(self, flag: "Flag", level: bool, actor: int) -> None:
        """A timed flag write, observed *before* the level is applied."""
        shadow = self._flag_shadow(flag)
        prev = flag.value
        if level:
            if prev:
                self._report(
                    "flag-double-set", actor, flag.owner, flag=flag.name,
                    message="set while already set"
                            + (f" by core {shadow.setter}"
                               if shadow.setter is not None else "")
                            + ("" if shadow.observed
                               else " and not yet observed (lost "
                                    "notification)"))
            shadow.level = True
            shadow.setter = actor
            shadow.observed = False
            self._publish(actor)
        else:
            if not prev:
                self._report(
                    "flag-double-clear", actor, flag.owner, flag=flag.name,
                    message="cleared while already clear")
            elif (not shadow.observed and shadow.setter is not None
                  and shadow.setter != actor):
                self._report(
                    "flag-unobserved-clear", actor, flag.owner,
                    flag=flag.name,
                    message=f"cleared core {shadow.setter}'s signal before "
                            "any core observed it")
            shadow.level = False

    def on_flag_observed(self, flag: "Flag", level: bool,
                         actor: int) -> None:
        """A wait/read on the flag completed: the level has been seen."""
        self._flag_shadow(flag).observed = True

    def on_flag_force(self, flag: "Flag", level: bool,
                      actor: Optional[int] = None) -> None:
        """Untimed bookkeeping write: reset tracking, no publication.

        ``actor`` (when the force models part of a charged protocol
        access) matters to the race detector's happens-before edges; the
        sanitizer's state-machine rules treat every force as a reset.
        """
        shadow = self._flag_shadow(flag)
        shadow.level = level
        shadow.setter = None
        shadow.observed = True
