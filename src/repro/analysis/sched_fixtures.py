"""Known-broken schedules the verifier must keep flagging.

Mirrors :mod:`repro.analysis.fixtures` (the sanitizer's bug corpus):
each fixture takes a *correct* builder output and breaks it in one
specific, realistic way — the kind of mistake a hand-edited or
mis-generated schedule would contain.  ``broken_schedules()`` returns
``name -> (schedule, expected_rule)``; the static-checks gate and
``tests/analysis/test_schedverify.py`` assert every fixture still
trips its rule while the shipped repertoire stays clean.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Tuple

from repro.core.blocks import standard_partition
from repro.sched.builders import build_schedule
from repro.sched.chunking import (
    build_pipeline_bcast,
    build_pipeline_reduce,
    chunk_schedule,
)
from repro.sched.ir import Exchange, Interval, Recv, ReduceRecv, Schedule, Send

FIXTURE_P = 4
FIXTURE_N = 8


def _base(kind: str, name: str) -> Schedule:
    part = standard_partition(FIXTURE_N, FIXTURE_P)
    return build_schedule(kind, name, FIXTURE_P, FIXTURE_N, part=part)


def _replace_plan(sched: Schedule, rank: int, plan) -> Schedule:
    plans = list(sched.plans)
    plans[rank] = tuple(plan)
    return dataclasses.replace(sched, plans=tuple(plans))


def all_send_first_ring() -> Tuple[Schedule, str]:
    """Every ring rank sends first: the rendezvous lowering livelocks.

    The seed's odd-even ordering exists exactly to break this cycle
    (``docs/collectives.md``); flipping every rank to ``send_first``
    recreates the classic all-blocking-sends deadlock.
    """
    sched = _base("allgather", "ring")
    plans = []
    for plan in sched.plans:
        plans.append(tuple(
            dataclasses.replace(s, send_first=True)
            if isinstance(s, Exchange) else s
            for s in plan))
    return dataclasses.replace(sched, plans=tuple(plans)), \
        "blocking-deadlock"


def dropped_last_round() -> Tuple[Schedule, str]:
    """Rank 0 stops one ring round early: its block never circulates."""
    sched = _base("allgather", "ring")
    last = max(s.round for s in sched.plans[0] if s.round is not None)
    plan = [s for s in sched.plans[0] if s.round != last]
    return _replace_plan(sched, 0, plan), "unmatched-send"


def truncated_send() -> Tuple[Schedule, str]:
    """One send interval is a element short of what the receiver posts."""
    sched = _base("allreduce", "recursive_doubling")
    plan = list(sched.plans[1])
    for i, step in enumerate(plan):
        if isinstance(step, Exchange) and step.send is not None:
            iv = step.send
            plan[i] = dataclasses.replace(
                step, send=Interval(iv.buf, iv.lo, iv.hi - 1))
            break
    return _replace_plan(sched, 1, plan), "size-mismatch"


def double_fold() -> Tuple[Schedule, str]:
    """An allgather-phase exchange folds instead of overwriting.

    The received block is added onto the block already resident from
    the reduce-scatter phase — every downstream rank then carries that
    contribution twice.
    """
    sched = _base("allreduce", "rsag")
    plan = list(sched.plans[0])
    for i in range(len(plan) - 1, -1, -1):
        step = plan[i]
        if isinstance(step, Exchange) and not step.reduce:
            plan[i] = dataclasses.replace(step, reduce=True)
            break
    return _replace_plan(sched, 0, plan), "duplicate-contribution"


def misrouted_block() -> Tuple[Schedule, str]:
    """A pairwise exchange ships the wrong input row to its partner."""
    sched = _base("alltoall", "pairwise")
    n = FIXTURE_N
    plan = list(sched.plans[1])
    for i, step in enumerate(plan):
        if isinstance(step, Exchange):
            wrong = (step.send_peer + 1) % FIXTURE_P
            plan[i] = dataclasses.replace(
                step, send=Interval("in", wrong * n, (wrong + 1) * n))
            break
    return _replace_plan(sched, 1, plan), "unexpected-contribution"


def oob_interval() -> Tuple[Schedule, str]:
    """A receive lands past the end of the work buffer."""
    sched = _base("reduce", "binomial")
    plan = list(sched.plans[0])
    for i, step in enumerate(plan):
        if hasattr(step, "data"):
            size = sched.buffers["work"]
            plan[i] = dataclasses.replace(
                step, data=Interval("work", size, size + FIXTURE_N))
            break
    return _replace_plan(sched, 0, plan), "interval-oob"


def clobbered_input() -> Tuple[Schedule, str]:
    """A pairwise exchange receives straight into the input matrix."""
    sched = _base("alltoall", "pairwise")
    plan = list(sched.plans[2])
    for i, step in enumerate(plan):
        if isinstance(step, Exchange):
            plan[i] = dataclasses.replace(
                step, recv=Interval("in", step.recv.lo, step.recv.hi))
            break
    return _replace_plan(sched, 2, plan), "input-write"


def all_send_first_chunked_ring() -> Tuple[Schedule, str]:
    """The chunk transform must not launder a deadlocking base.

    Same bug as :func:`all_send_first_ring`, introduced *after* the
    transform split every exchange into sub-messages — the verifier has
    to chase the cycle through the chunked step lists too.
    """
    sched = chunk_schedule(_base("allgather", "ring"), 2)
    plans = []
    for plan in sched.plans:
        plans.append(tuple(
            dataclasses.replace(s, send_first=True)
            if isinstance(s, Exchange) else s
            for s in plan))
    return dataclasses.replace(sched, plans=tuple(plans)), \
        "blocking-deadlock"


def dropped_chunk_forward() -> Tuple[Schedule, str]:
    """A pipeline interior rank never forwards its last chunk.

    The downstream rank still posts the receive for it — the classic
    off-by-one in a pipelined chain's drain phase.
    """
    part = standard_partition(FIXTURE_N, FIXTURE_P)
    sched = build_pipeline_bcast(FIXTURE_P, FIXTURE_N, part, 0, 2)
    plan = list(sched.plans[1])
    for i in range(len(plan) - 1, -1, -1):
        if isinstance(plan[i], Send):
            del plan[i]
            break
    return _replace_plan(sched, 1, plan), "unmatched-recv"


def pipeline_missing_fold() -> Tuple[Schedule, str]:
    """A reduce-chain chunk arrives as a plain receive: no fold.

    The overwrite drops every upstream contribution for that chunk, so
    the root's dataflow postcondition misses operands.
    """
    part = standard_partition(FIXTURE_N, FIXTURE_P)
    sched = build_pipeline_reduce(FIXTURE_P, FIXTURE_N, part, 0, 2)
    plan = list(sched.plans[0])
    for i, step in enumerate(plan):
        if isinstance(step, ReduceRecv):
            plan[i] = Recv(step.peer, step.data, round=step.round)
            break
    return _replace_plan(sched, 0, plan), "missing-contribution"


_FIXTURES: Tuple[Callable[[], Tuple[Schedule, str]], ...] = (
    all_send_first_ring,
    dropped_last_round,
    truncated_send,
    double_fold,
    misrouted_block,
    oob_interval,
    clobbered_input,
    all_send_first_chunked_ring,
    dropped_chunk_forward,
    pipeline_missing_fold,
)


def broken_schedules() -> Dict[str, Tuple[Schedule, str]]:
    """name -> (broken schedule, the rule it must trip)."""
    return {fn.__name__: fn() for fn in _FIXTURES}
