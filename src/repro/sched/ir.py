"""The schedule IR: a collective algorithm as per-rank lists of typed steps.

Following SCCL's framing (PAPERS.md), an algorithm is *data*: for every
rank, an ordered tuple of steps over intervals of named logical buffers.
Builders (:mod:`repro.sched.builders`) produce schedules; one executor
(:mod:`repro.sched.engine`) lowers them onto any point-to-point stack;
the verifier (:mod:`repro.analysis.schedverify`) checks them statically;
the cost model (:mod:`repro.sched.cost`) prices them for the selector.

Conventions every schedule obeys (the verifier enforces them):

* Buffer ``"in"`` holds the rank's input operand, flattened, and is
  **read-only**; buffer ``"work"`` receives the result.  The per-kind
  result extraction is the engine's job (`engine.RESULT_SPECS`).
* Intervals are half-open ``[lo, hi)`` element ranges of a flat buffer.
* Steps on one rank execute in order; cross-rank matching of sends and
  receives is FIFO per ordered ``(src, dst)`` pair.
* ``send_first`` orderings are *baked in* by the builder (odd-even for
  rings, rank comparison for pairwise exchanges) so the blocking RCCE
  lowering is deadlock-free by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Union


@dataclass(frozen=True)
class Interval:
    """A contiguous element range ``[lo, hi)`` of logical buffer ``buf``."""

    buf: str
    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi < self.lo:
            raise ValueError(f"bad interval [{self.lo}, {self.hi})")

    @property
    def nels(self) -> int:
        return self.hi - self.lo

    def __str__(self) -> str:
        return f"{self.buf}[{self.lo}:{self.hi}]"


@dataclass(frozen=True)
class Send:
    """Blocking-posture send of ``data`` to rank ``peer``.

    Lowered as ``comm.send``: an RCCE rendezvous send on the blocking
    stack, ``isend`` + ``wait`` on the non-blocking ones.
    """

    peer: int
    data: Interval
    round: Optional[int] = None


@dataclass(frozen=True)
class Recv:
    """Blocking-posture receive into ``data`` from rank ``peer``."""

    peer: int
    data: Interval
    round: Optional[int] = None


@dataclass(frozen=True)
class ReduceRecv:
    """Receive a vector from ``peer`` and fold it into ``data``.

    The binomial-tree step: receives into a scratch buffer, charges the
    reduction arithmetic, then stores ``op(data, received)`` into
    ``data`` (operand order as in the seed trees).
    """

    peer: int
    data: Interval
    round: Optional[int] = None


@dataclass(frozen=True)
class Exchange:
    """A (possibly one-sided) full-duplex exchange — the ring/pairwise step.

    Both-sided: lowered as :func:`repro.core.exchange.full_exchange`
    (ordered send/recv on the blocking stack per ``send_first``; paired
    ``isend`` + ``irecv`` + one ``wait_all`` on the non-blocking ones).
    One-sided (scan edges): the single operation, completed with
    ``wait_all`` on the non-blocking stacks.

    With ``reduce`` set the received vector is folded into ``recv``
    (charging the arithmetic only for non-empty blocks, like the ring
    reduce-scatter); ``reversed_fold`` selects ``op(received, local)``
    instead of ``op(local, received)`` — the prefix-scan convention.
    """

    send_peer: Optional[int]
    send: Optional[Interval]
    recv_peer: Optional[int]
    recv: Optional[Interval]
    send_first: bool = True
    reduce: bool = False
    reversed_fold: bool = False
    round: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.send_peer is None) != (self.send is None):
            raise ValueError("send_peer and send must be set together")
        if (self.recv_peer is None) != (self.recv is None):
            raise ValueError("recv_peer and recv must be set together")
        if self.send_peer is None and self.recv_peer is None:
            raise ValueError("exchange with neither side")
        if self.reduce and self.recv is None:
            raise ValueError("reduce exchange needs a receive side")


@dataclass(frozen=True)
class CopyBlock:
    """Local copy ``dst[:] = src``.

    ``charged`` copies pay :meth:`LatencyModel.private_copy_bytes` (the
    pairwise-alltoall self-row); uncharged ones model the free
    bookkeeping assignments of the seed algorithms (operand staging).
    """

    src: Interval
    dst: Interval
    charged: bool = False
    round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.src.nels != self.dst.nels:
            raise ValueError(
                f"copy size mismatch: {self.src} -> {self.dst}")


@dataclass(frozen=True)
class Rotate:
    """Bruck's final rotation: viewing ``buf`` as ``rows`` equal rows,
    store row ``i`` at row ``(shift + i) % rows``.  Charged as one
    private-memory copy of the whole buffer."""

    buf: str
    rows: int
    shift: int
    round: Optional[int] = None


Step = Union[Send, Recv, ReduceRecv, Exchange, CopyBlock, Rotate]

#: Steps that name a communication peer.
COMM_STEPS = (Send, Recv, ReduceRecv, Exchange)


@dataclass(frozen=True)
class Schedule:
    """A complete per-rank schedule for one collective instance.

    ``buffers`` maps logical buffer names to flat element counts (the
    same on every rank); ``plans[r]`` is rank ``r``'s step list.
    ``meta`` carries whatever the result extraction and the verifier
    need: ``root``, the partition block sizes, the allgather row count.
    """

    kind: str
    name: str
    p: int
    n: int
    buffers: Mapping[str, int]
    plans: tuple[tuple[Step, ...], ...]
    meta: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.plans) != self.p:
            raise ValueError(
                f"schedule has {len(self.plans)} plans for p={self.p}")

    @property
    def label(self) -> str:
        return f"{self.kind}:{self.name}"

    def total_steps(self) -> int:
        return sum(len(plan) for plan in self.plans)
