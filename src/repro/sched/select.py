"""Cost-model-driven algorithm selection and the ``tuned`` stack.

The seed communicator picks algorithms with one hard-coded byte
threshold (RCCE_comm's 512-byte rule).  The selector replaces the rule
with data: :func:`build_selection_table` prices every builder in the
repertoire through :mod:`repro.sched.cost` for a grid of ``(kind, p,
n)`` points and records the winners; the table is persisted as JSON
under ``benchmarks/results/`` (regenerate with ``python -m repro
tune``).

:class:`TunedCommunicator` — registered as stack ``"tuned"`` — is the
lightweight_balanced composition with one change: when the caller does
not force an algorithm, collectives run the table's pick through the
schedule engine (``algo="sched:<name>"``) instead of the built-in
threshold.  Points missing from the table fall back to pricing the
candidates on the fly against the machine's own memoized
:class:`~repro.hw.timing.LatencyModel`, so the stack works without a
table file (just slower on first use per point).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Generator, Iterable, Optional, Sequence

import numpy as np

from repro.core.blocks import balanced_partition
from repro.core.comm import Communicator
from repro.core.ops import ReduceOp, SUM
from repro.hw.config import SCCConfig
from repro.hw.machine import CoreEnv, Machine
from repro.hw.timing import LatencyModel
from repro.sched.builders import SCHEDULED_KINDS, build_schedule, builder_names
from repro.sched.cost import estimate_schedule_cost

#: On-disk table format version.  Schema 2 adds per-topology sub-tables
#: (the ``topologies`` payload); schema-1 files still load, as tables
#: for the default chip.
TABLE_SCHEMA = 2

#: Topology a table without explicit provenance is assumed to describe.
DEFAULT_TOPOLOGY_KEY = "mesh:6x4"

#: Default tuning grid: rank counts spanning the SCC's range (powers of
#: two, the odd prime 47, the full 48-core chip) and vector lengths from
#: single elements through the paper's 500..700-double band.
DEFAULT_PS = (2, 3, 4, 8, 16, 24, 32, 47, 48)
DEFAULT_SIZES = (1, 2, 4, 8, 16, 32, 48, 64, 96, 128, 192, 256, 384,
                 512, 600, 700, 768, 1024)


def default_table_path() -> pathlib.Path:
    """``benchmarks/results/selection_table.json`` in the repo tree."""
    repo_root = pathlib.Path(__file__).resolve().parents[3]
    return repo_root / "benchmarks" / "results" / "selection_table.json"


def known_algorithm(kind: str, name: str) -> bool:
    """True iff ``name`` resolves for ``kind`` — a hand builder, a
    well-formed synthesized ``synth/...`` name, or a hierarchical
    ``hier/g<G>`` name."""
    if name in builder_names(kind):
        return True
    if name.startswith("synth/"):
        from repro.sched.synth import parse_synth_name

        try:
            parse_synth_name(kind, name)
        except KeyError:
            return False
        return True
    if name.startswith("hier/"):
        from repro.sched.hier import parse_hier_name

        try:
            parse_hier_name(kind, name)
        except KeyError:
            return False
        return True
    return False


def select_algo(kind: str, p: int, n: int, model: LatencyModel, *,
                blocking: bool = False, synth: bool = True) -> str:
    """The cheapest algorithm for one ``(kind, p, n)`` point.

    Candidates are the hand builders plus (with ``synth``, the default)
    the synthesized repertoire — chunked transforms and pipelined
    chains, :func:`repro.sched.synth.candidate_names` — plus, on
    multi-chip topologies, the hierarchical leader schedules
    (:func:`repro.sched.hier.hier_candidate_names`).  Ties break
    towards the alphabetically first name so the table is deterministic
    across runs and machines.
    """
    from repro.sched.hier import hier_candidate_names
    from repro.sched.synth import candidate_names

    part = balanced_partition(n, p)
    names: list[str] = list(builder_names(kind))
    if synth:
        names += candidate_names(kind, p, n)
    names += hier_candidate_names(kind, p, model.topology)
    best_name: Optional[str] = None
    best_cost = 0
    for name in sorted(names):
        sched = build_schedule(kind, name, p, n, part=part)
        cost = estimate_schedule_cost(sched, model, blocking=blocking)
        if best_name is None or cost < best_cost:
            best_name, best_cost = name, cost
    assert best_name is not None  # every kind has at least one builder
    return best_name


@dataclass
class SelectionTable:
    """Per-``(kind, p, n)`` algorithm picks, with nearest-point lookup.

    A table describes one topology (``meta["topology"]``, the default
    chip when absent) through its flat ``entries``; picks for *other*
    topologies live in per-spec sub-tables under :attr:`topologies` and
    are reached by passing ``topology=`` to :meth:`record`/:meth:`pick`.
    There is no cross-topology fallback: an untuned topology returns
    ``None`` and the tuned stack prices candidates on the fly instead.
    """

    entries: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    topologies: dict = field(default_factory=dict)

    @property
    def topology_key(self) -> str:
        """The topology this table's flat entries describe."""
        return self.meta.get("topology", DEFAULT_TOPOLOGY_KEY)

    def _slot(self, topology: Optional[str]) -> "SelectionTable":
        """The (sub-)table holding entries for ``topology``; creates the
        sub-table on first use."""
        if topology is None or topology == self.topology_key:
            return self
        sub = self.topologies.get(topology)
        if sub is None:
            sub = self.topologies[topology] = SelectionTable(
                meta={"topology": topology})
        return sub

    def record(self, kind: str, p: int, n: int, algo: str, *,
               topology: Optional[str] = None) -> None:
        slot = self._slot(topology)
        if slot is not self:
            slot.record(kind, p, n, algo)
            return
        self.entries.setdefault(kind, {})[(p, n)] = algo

    def pick(self, kind: str, p: int, n: int, *,
             topology: Optional[str] = None) -> Optional[str]:
        """The recorded pick, or the nearest tuned point's pick.

        Nearest means: among entries for this kind, minimize first the
        rank-count distance then the size distance (log-ish problems
        shift with p much faster than with n).  Returns None for kinds
        the table has never tuned — and for topologies it has never
        tuned, so picks priced for one shape are never served to
        another.
        """
        if topology is not None and topology != self.topology_key:
            sub = self.topologies.get(topology)
            return sub.pick(kind, p, n) if sub is not None else None
        points = self.entries.get(kind)
        if not points:
            return None
        exact = points.get((p, n))
        if exact is not None:
            return exact
        key = min(points, key=lambda pn: (abs(pn[0] - p), abs(pn[1] - n),
                                          pn))
        return points[key]

    def kinds(self) -> tuple[str, ...]:
        return tuple(sorted(self.entries))

    def merge(self, other: "SelectionTable") -> None:
        """Overlay ``other``'s entries (and grid metadata) onto this table.

        The partial-regeneration primitive behind ``python -m repro tune
        --kinds/--cores/--topology``: points tuned by ``other`` replace
        this table's picks, every untouched point (including other
        topologies' sub-tables) survives, and the meta grid lists grow
        to the union so the provenance of a merged table stays readable.
        A table tuned for a different topology merges into that
        topology's sub-table, leaving the flat entries alone.
        """
        self._slot(other.topology_key)._merge_flat(other)
        for spec, sub in other.topologies.items():
            self._slot(spec)._merge_flat(sub)

    def _merge_flat(self, other: "SelectionTable") -> None:
        for kind, points in other.entries.items():
            self.entries.setdefault(kind, {}).update(points)
        for key in ("ps", "sizes"):
            ours = self.meta.get(key)
            theirs = other.meta.get(key)
            if ours is not None and theirs is not None:
                self.meta[key] = sorted(set(ours) | set(theirs))
            elif theirs is not None:
                self.meta[key] = list(theirs)
        for key, value in other.meta.items():
            if key not in ("ps", "sizes"):
                self.meta[key] = value

    # -- persistence -----------------------------------------------------
    def _entries_payload(self) -> dict:
        return {
            kind: [[p, n, algo]
                   for (p, n), algo in sorted(points.items())]
            for kind, points in sorted(self.entries.items())
        }

    def to_json(self) -> str:
        payload = {
            "schema": TABLE_SCHEMA,
            "meta": self.meta,
            "entries": self._entries_payload(),
        }
        if self.topologies:
            payload["topologies"] = {
                spec: {"meta": sub.meta,
                       "entries": sub._entries_payload()}
                for spec, sub in sorted(self.topologies.items())
            }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "SelectionTable":
        payload = json.loads(text)
        schema = payload.get("schema")
        if schema not in (1, TABLE_SCHEMA):
            raise ValueError(
                f"selection table schema {schema!r} unsupported "
                f"(expected {TABLE_SCHEMA}); re-run 'python -m repro tune'")
        table = cls(meta=dict(payload.get("meta", {})))
        for kind, rows in payload.get("entries", {}).items():
            for p, n, algo in rows:
                table.record(kind, int(p), int(n), str(algo))
        for spec, sub_payload in payload.get("topologies", {}).items():
            sub = cls(meta=dict(sub_payload.get("meta", {})))
            for kind, rows in sub_payload.get("entries", {}).items():
                for p, n, algo in rows:
                    sub.record(kind, int(p), int(n), str(algo))
            table.topologies[spec] = sub
        return table

    def save(self, path: Optional[pathlib.Path] = None) -> pathlib.Path:
        path = path if path is not None else default_table_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: Optional[pathlib.Path] = None) -> "SelectionTable":
        path = path if path is not None else default_table_path()
        return cls.from_json(path.read_text())


def build_selection_table(
        kinds: Optional[Iterable[str]] = None,
        ps: Sequence[int] = DEFAULT_PS,
        sizes: Sequence[int] = DEFAULT_SIZES,
        config: Optional[SCCConfig] = None, *,
        blocking: bool = False, synth: bool = True) -> SelectionTable:
    """Price the repertoire over a ``(kind, p, n)`` grid and keep winners.

    With ``synth`` (the default) the synthesized candidates compete at
    every point, so chunked/pipelined winners land in the table as
    ``synth/...`` names; ``synth=False`` reproduces the hand-only
    tables of earlier revisions.
    """
    config = config if config is not None else SCCConfig()
    topology = config.resolved_topology()
    model = LatencyModel(config, topology)
    kinds = tuple(kinds) if kinds is not None else SCHEDULED_KINDS
    table = SelectionTable(meta={
        "ps": list(ps),
        "sizes": list(sizes),
        "blocking": blocking,
        "cores": config.num_cores,
        "synth": synth,
        "topology": config.topology_key(),
    })
    for kind in kinds:
        for p in ps:
            if p > config.num_cores:
                continue
            for n in sizes:
                table.record(kind, p, n,
                             select_algo(kind, p, n, model,
                                         blocking=blocking,
                                         synth=synth))
    return table


class TunedCommunicator(Communicator):
    """lightweight_balanced + table-driven schedule selection.

    Explicit ``algo=`` arguments pass through untouched (including
    native names), so every seed behavior stays reachable; only the
    *default* selection changes.
    """

    def __init__(self, machine: Machine, *,
                 table: Optional[SelectionTable] = None,
                 table_path: Optional[pathlib.Path] = None):
        from repro.lwnb.api import LWNB
        super().__init__(machine, LWNB(machine),
                         partitioner=balanced_partition, name="tuned")
        self._table = table
        self._table_path = table_path
        self._table_loaded = table is not None
        self._fallback_picks: dict = {}

    # -- selection -------------------------------------------------------
    def _load_table(self) -> Optional[SelectionTable]:
        if not self._table_loaded:
            self._table_loaded = True
            path = (self._table_path if self._table_path is not None
                    else default_table_path())
            try:
                self._table = SelectionTable.load(path)
            except (OSError, ValueError, json.JSONDecodeError):
                self._table = None
        return self._table

    def pick_algo(self, kind: str, p: int, n: int) -> str:
        """Resolve the schedule name for one call (``sched:`` prefixed)."""
        table = self._load_table()
        topology = self.machine.config.topology_key()
        name = (table.pick(kind, p, n, topology=topology)
                if table is not None else None)
        if name is None or not known_algorithm(kind, name):
            key = (kind, p, n)
            name = self._fallback_picks.get(key)
            if name is None:
                name = select_algo(kind, p, n, self.machine.latency,
                                   blocking=self.blocking)
                self._fallback_picks[key] = name
        return f"sched:{name}"

    # -- collectives -----------------------------------------------------
    def allreduce(self, env: CoreEnv, sendbuf: np.ndarray,
                  op: ReduceOp = SUM,
                  algo: Optional[str] = None) -> Generator:
        if algo is None:
            algo = self.pick_algo("allreduce", env.size, sendbuf.size)
        return super().allreduce(env, sendbuf, op, algo)

    def reduce(self, env: CoreEnv, sendbuf: np.ndarray,
               op: ReduceOp = SUM, root: int = 0,
               algo: Optional[str] = None) -> Generator:
        if algo is None:
            algo = self.pick_algo("reduce", env.size, sendbuf.size)
        return super().reduce(env, sendbuf, op, root, algo)

    def bcast(self, env: CoreEnv, buf: np.ndarray, root: int = 0,
              algo: Optional[str] = None) -> Generator:
        if algo is None:
            algo = self.pick_algo("bcast", env.size, buf.size)
        return super().bcast(env, buf, root, algo)

    def allgather(self, env: CoreEnv, sendbuf: np.ndarray,
                  algo: Optional[str] = None) -> Generator:
        if algo is None:
            algo = self.pick_algo("allgather", env.size, sendbuf.size)
        return super().allgather(env, sendbuf, algo)

    def reduce_scatter(self, env: CoreEnv, sendbuf: np.ndarray,
                       op: ReduceOp = SUM,
                       algo: Optional[str] = None) -> Generator:
        if algo is None:
            algo = self.pick_algo("reduce_scatter", env.size,
                                  sendbuf.size)
        return super().reduce_scatter(env, sendbuf, op, algo)

    def alltoall(self, env: CoreEnv, sendbuf: np.ndarray,
                 algo: Optional[str] = None) -> Generator:
        if algo is None:
            algo = self.pick_algo("alltoall", env.size,
                                  sendbuf.size // env.size)
        return super().alltoall(env, sendbuf, algo)

    def scan(self, env: CoreEnv, sendbuf: np.ndarray,
             op: ReduceOp = SUM,
             algo: Optional[str] = None) -> Generator:
        if algo is None:
            algo = self.pick_algo("scan", env.size, sendbuf.size)
        return super().scan(env, sendbuf, op, algo)


def make_tuned(machine: Machine) -> TunedCommunicator:
    return TunedCommunicator(machine)


def install_tuned_stack() -> None:
    """Register the ``tuned`` stack (idempotent; called by the registry)."""
    from repro.core.registry import _FACTORIES, register_stack

    if "tuned" not in _FACTORIES:
        register_stack("tuned", make_tuned)
