"""Schedule-IR collective engine.

One algorithm repertoire, expressed as data (:mod:`repro.sched.ir`),
built by pure functions (:mod:`repro.sched.builders`), executed by a
single lowering engine on every point-to-point stack
(:mod:`repro.sched.engine`), priced by an analytic cost model
(:mod:`repro.sched.cost`), auto-selected per problem size
(:mod:`repro.sched.select`), and widened beyond the hand repertoire by
the chunked/pipelined synthesizer (:mod:`repro.sched.chunking`,
:mod:`repro.sched.synth`).
"""

from repro.sched.builders import (
    BUILDERS,
    DEFAULT_ALGOS,
    SCHEDULED_KINDS,
    all_schedules,
    build_schedule,
    builder_names,
)
from repro.sched.chunking import (
    PIPELINE_BUILDERS,
    chunk_bounds,
    chunk_schedule,
)
from repro.sched.engine import parse_sched_algo, run_schedule, schedule_for
from repro.sched.ir import (
    COMM_STEPS,
    CopyBlock,
    Exchange,
    Interval,
    Recv,
    ReduceRecv,
    Rotate,
    Schedule,
    Send,
    Step,
)
from repro.sched.synth import (
    build_synth_schedule,
    candidate_names,
    synthesize,
)

__all__ = [
    "BUILDERS",
    "COMM_STEPS",
    "CopyBlock",
    "DEFAULT_ALGOS",
    "Exchange",
    "Interval",
    "PIPELINE_BUILDERS",
    "Recv",
    "ReduceRecv",
    "Rotate",
    "SCHEDULED_KINDS",
    "Schedule",
    "Send",
    "Step",
    "all_schedules",
    "build_schedule",
    "build_synth_schedule",
    "builder_names",
    "candidate_names",
    "chunk_bounds",
    "chunk_schedule",
    "parse_sched_algo",
    "run_schedule",
    "schedule_for",
    "synthesize",
]
