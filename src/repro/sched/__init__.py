"""Schedule-IR collective engine.

One algorithm repertoire, expressed as data (:mod:`repro.sched.ir`),
built by pure functions (:mod:`repro.sched.builders`), executed by a
single lowering engine on every point-to-point stack
(:mod:`repro.sched.engine`), priced by an analytic cost model
(:mod:`repro.sched.cost`) and auto-selected per problem size
(:mod:`repro.sched.select`).
"""

from repro.sched.builders import (
    BUILDERS,
    DEFAULT_ALGOS,
    SCHEDULED_KINDS,
    all_schedules,
    build_schedule,
    builder_names,
)
from repro.sched.engine import parse_sched_algo, run_schedule, schedule_for
from repro.sched.ir import (
    COMM_STEPS,
    CopyBlock,
    Exchange,
    Interval,
    Recv,
    ReduceRecv,
    Rotate,
    Schedule,
    Send,
    Step,
)

__all__ = [
    "BUILDERS",
    "COMM_STEPS",
    "CopyBlock",
    "DEFAULT_ALGOS",
    "Exchange",
    "Interval",
    "Recv",
    "ReduceRecv",
    "Rotate",
    "SCHEDULED_KINDS",
    "Schedule",
    "Send",
    "Step",
    "all_schedules",
    "build_schedule",
    "builder_names",
    "parse_sched_algo",
    "run_schedule",
    "schedule_for",
]
