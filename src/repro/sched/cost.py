"""Analytic schedule pricing for the algorithm selector.

The simulator gives exact virtual times, but pricing every candidate
schedule through a full SPMD run per ``(kind, p, n)`` point would make
tuning as expensive as the benchmark sweeps themselves.  Instead the
selector uses a BSP-style estimate over the builder's round tags:

* every message is priced through the *real* memoized
  :class:`~repro.hw.timing.LatencyModel` (MPB write + flag handshake +
  MPB read, at the actual core-to-core distances of the rank placement);
* within a round each rank's step costs add up; the round costs the
  **maximum** over ranks (the tightly coupled algorithms synchronize
  every round, so the slowest rank paces it);
* rounds add up along the schedule, plus the untagged prologue steps
  (operand staging) and epilogue steps (Bruck's rotation).

This deliberately ignores cross-round pipelining skew — it is a *ranking
heuristic*, not the simulator, and ``tests/sched/test_select.py`` holds
it only to ordering the repertoire sensibly (trees beat rings for short
vectors, reduce-scatter pipelines beat trees for long ones), never to
matching simulated latencies.
"""

from __future__ import annotations

from typing import Optional

from repro.hw.timing import LatencyModel
from repro.sched.ir import (
    CopyBlock,
    Exchange,
    Recv,
    ReduceRecv,
    Rotate,
    Schedule,
    Send,
)

#: The paper's element type: IEEE doubles.
ELEMENT_BYTES = 8


def message_cost(model: LatencyModel, src: int, dst: int,
                 nels: int) -> int:
    """Price one ``src -> dst`` vector transfer (picoseconds).

    One hop through the sender's MPB: the sender stages the payload into
    its own buffer and raises the receiver's flag; the receiver notices
    and pulls the payload across the mesh.  Zero-length vectors still
    pay the flag handshake — the protocol runs regardless, which is why
    the seed's empty-block ring steps are not free.
    """
    nbytes = nels * ELEMENT_BYTES
    return (model.mpb_write_bytes(src, src, nbytes)
            + model.flag_write(src, dst)
            + model.flag_notify(dst, src)
            + model.mpb_read_bytes(dst, src, nbytes))


def step_cost(model: LatencyModel, step, rank: int, *,
              blocking: bool = False,
              buffers: Optional[dict] = None) -> int:
    """Price one IR step as seen by ``rank`` (picoseconds).

    ``buffers`` (the schedule's name -> element-count mapping) is needed
    only to price :class:`~repro.sched.ir.Rotate`, whose operand is a
    whole buffer rather than an interval.
    """
    if isinstance(step, Send):
        return message_cost(model, rank, step.peer, step.data.nels)
    if isinstance(step, Recv):
        return message_cost(model, step.peer, rank, step.data.nels)
    if isinstance(step, ReduceRecv):
        return (message_cost(model, step.peer, rank, step.data.nels)
                + model.reduce_doubles(step.data.nels))
    if isinstance(step, Exchange):
        out = (message_cost(model, rank, step.send_peer, step.send.nels)
               if step.send_peer is not None else 0)
        inn = (message_cost(model, step.recv_peer, rank, step.recv.nels)
               if step.recv_peer is not None else 0)
        cost = out + inn if blocking else max(out, inn)
        if step.reduce and step.recv.nels:
            cost += model.reduce_doubles(step.recv.nels)
        return cost
    if isinstance(step, CopyBlock):
        if step.charged:
            return model.private_copy_bytes(step.src.nels * ELEMENT_BYTES)
        return 0
    if isinstance(step, Rotate):
        # One private-memory pass over the whole buffer.
        nels = buffers[step.buf] if buffers is not None else 0
        return model.private_copy_bytes(nels * ELEMENT_BYTES)
    raise TypeError(f"unknown schedule step {step!r}")


def estimate_schedule_cost(sched: Schedule, model: LatencyModel, *,
                           blocking: bool = False) -> int:
    """BSP estimate of the schedule makespan (picoseconds).

    Sums, over the ordered sequence of round tags, the maximum per-rank
    cost of that round.  Untagged steps are grouped by their position
    relative to the tagged rounds (prologue before, epilogue after).
    """
    # phase key -> rank -> accumulated cost.  Phases are ordered by
    # first appearance on any rank; untagged prologue/epilogue steps get
    # sentinel keys that sort before/after every real round.
    phases: dict[object, dict[int, int]] = {}
    order: list[object] = []
    buffers = dict(sched.buffers)
    for rank, plan in enumerate(sched.plans):
        seen_round = False
        for step in plan:
            if step.round is not None:
                key: object = ("round", step.round)
                seen_round = True
            elif not seen_round:
                key = ("pre", None)
            else:
                key = ("post", None)
            if key not in phases:
                phases[key] = {}
                order.append(key)
            bucket = phases[key]
            bucket[rank] = (bucket.get(rank, 0)
                            + step_cost(model, step, rank,
                                        blocking=blocking,
                                        buffers=buffers))
    return sum(max(phases[key].values()) for key in order)
