"""Analytic schedule pricing for the algorithm selector.

The simulator gives exact virtual times, but pricing every candidate
schedule through a full SPMD run per ``(kind, p, n)`` point would make
tuning as expensive as the benchmark sweeps themselves.  Instead the
selector uses a BSP-style estimate over the builder's round tags:

* every message is priced through the *real* memoized
  :class:`~repro.hw.timing.LatencyModel` (MPB write + flag handshake +
  MPB read, at the actual core-to-core distances of the rank placement);
* within a round each rank's step costs add up; the round costs the
  **maximum** over ranks (the tightly coupled algorithms synchronize
  every round, so the slowest rank paces it);
* rounds add up along the schedule, plus the untagged prologue steps
  (operand staging) and epilogue steps (Bruck's rotation).

This deliberately ignores cross-round pipelining skew — it is a *ranking
heuristic*, not the simulator, and ``tests/sched/test_select.py`` holds
it only to ordering the repertoire sensibly (trees beat rings for short
vectors, reduce-scatter pipelines beat trees for long ones), never to
matching simulated latencies.

The analytic benchmark engine (:mod:`repro.bench.analytic`) reuses the
same estimator but additionally charges the per-call *software* costs the
simulator models — the calibrated library-call cycles that differentiate
the blocking, iRCCE and lightweight stacks on identical hardware.  Those
enter through the optional :class:`SoftwareOverhead` parameter; with the
default ``overhead=None`` every function below behaves exactly as before
(the selection tables and the ``tuned`` stack are unaffected).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hw.timing import LatencyModel
from repro.sched.ir import (
    CopyBlock,
    Exchange,
    Recv,
    ReduceRecv,
    Rotate,
    Schedule,
    Send,
)

#: The paper's element type: IEEE doubles.
ELEMENT_BYTES = 8


@dataclass(frozen=True)
class SoftwareOverhead:
    """Per-call software costs (picoseconds) of one point-to-point stack.

    ``send_ps``/``recv_ps`` are charged per :class:`~repro.sched.ir.Send`
    and :class:`~repro.sched.ir.Recv` side of a step — for the blocking
    stack these are the RCCE send/recv call cycles, for the non-blocking
    stacks the issue + completion cycles of one request.  ``call_ps`` is
    the collective-layer entry cost, charged once per schedule by
    :func:`estimate_schedule_cost`.

    The selector passes ``overhead=None`` (all-zero, the historical
    behavior); the analytic benchmark engine builds one instance per
    stack from the machine's :class:`~repro.hw.config.SCCConfig` — see
    :func:`repro.bench.analytic.stack_overhead`.
    """

    send_ps: int = 0
    recv_ps: int = 0
    call_ps: int = 0


#: The all-zero overhead used when ``overhead=None`` is passed.
_NO_OVERHEAD = SoftwareOverhead()


def message_cost(model: LatencyModel, src: int, dst: int,
                 nels: int) -> int:
    """Price one ``src -> dst`` vector transfer (picoseconds).

    One hop through the sender's MPB: the sender stages the payload into
    its own buffer and raises the receiver's flag; the receiver notices
    and pulls the payload across the mesh.  Zero-length vectors still
    pay the flag handshake — the protocol runs regardless, which is why
    the seed's empty-block ring steps are not free.

    The composed cost is memoized in the model's own per-erratum-level
    table (like every primitive it is built from), so ``invalidate()``
    and the fault injector's erratum toggle stay correct: pricing a full
    pairwise-alltoall schedule touches thousands of (src, dst) pairs and
    the four-primitive recomputation dominates the analytic engine's
    wall-clock otherwise.
    """
    memo = (model._memo[model.config.erratum_enabled]
            if model._cache_enabled else None)
    if memo is not None:
        key = ("msgcost", src, dst, nels)
        value = memo.get(key)
        if value is not None:
            return value
    nbytes = nels * ELEMENT_BYTES
    value = (model.mpb_write_bytes(src, src, nbytes)
             + model.flag_write(src, dst)
             + model.flag_notify(dst, src)
             + model.mpb_read_bytes(dst, src, nbytes))
    if memo is not None:
        memo[key] = value
    return value


def handshake_cost(model: LatencyModel, src: int, dst: int) -> int:
    """The back-channel half of the Fig.-3 flag protocol (picoseconds).

    :func:`message_cost` prices the *forward* path only (payload staging,
    sent-flag raise, the receiver's successful poll, payload drain) —
    enough to rank schedules.  The simulated protocol additionally
    clears the sent flag (receiver, local MPB), raises the ready flag
    (receiver -> sender's MPB), polls it (sender, local) and clears it
    (sender, local).  The analytic engine adds these four flag
    operations per message so its estimates track simulated latencies
    instead of merely ordering them.
    """
    memo = (model._memo[model.config.erratum_enabled]
            if model._cache_enabled else None)
    if memo is not None:
        key = ("hscost", src, dst)
        value = memo.get(key)
        if value is not None:
            return value
    value = (model.flag_write(dst, dst)       # sent.clear
             + model.flag_write(dst, src)     # ready.set
             + model.flag_notify(src, src)    # ready poll
             + model.flag_write(src, src))    # ready.clear
    if memo is not None:
        memo[key] = value
    return value


def _copy_pair_cost(model: LatencyModel, src: int, dst: int,
                    nels: int) -> int:
    """MPB write (at ``src``) + mesh read (by ``dst``) of one payload."""
    memo = (model._memo[model.config.erratum_enabled]
            if model._cache_enabled else None)
    if memo is not None:
        key = ("cpcost", src, dst, nels)
        value = memo.get(key)
        if value is not None:
            return value
    nbytes = nels * ELEMENT_BYTES
    value = (model.mpb_write_bytes(src, src, nbytes)
             + model.mpb_read_bytes(dst, src, nbytes))
    if memo is not None:
        memo[key] = value
    return value


def step_cost(model: LatencyModel, step, rank: int, *,
              blocking: bool = False,
              buffers: Optional[dict] = None,
              overhead: Optional[SoftwareOverhead] = None) -> int:
    """Price one IR step as seen by ``rank`` (picoseconds).

    ``buffers`` (the schedule's name -> element-count mapping) is needed
    only to price :class:`~repro.sched.ir.Rotate`, whose operand is a
    whole buffer rather than an interval.

    ``overhead`` switches between the two pricing regimes:

    * ``None`` (the selector) — hardware forward-path costs only, with
      non-blocking exchanges overlapping (``max``).  This is the
      historical ranking heuristic, bit-for-bit.
    * a :class:`SoftwareOverhead` (the analytic engine) — adds the
      stack's per-call software cycles and the full flag handshake
      (:func:`handshake_cost`), and prices exchanges by stack: blocking
      rendezvous drains the two directions serially (both copies, both
      partners' call overheads); the non-blocking stacks pay both
      directions' flag traffic but only one direction's copy pair — each
      endpoint's CPU performs just its own write and read while the
      partner copies concurrently.
    """
    if overhead is None:
        return _step_cost_hw(model, step, rank, blocking=blocking,
                             buffers=buffers)
    ov = overhead
    if isinstance(step, Send):
        return (ov.send_ps
                + message_cost(model, rank, step.peer, step.data.nels)
                + handshake_cost(model, rank, step.peer))
    if isinstance(step, Recv):
        return (ov.recv_ps
                + message_cost(model, step.peer, rank, step.data.nels)
                + handshake_cost(model, step.peer, rank))
    if isinstance(step, ReduceRecv):
        return (ov.recv_ps
                + message_cost(model, step.peer, rank, step.data.nels)
                + handshake_cost(model, step.peer, rank)
                + model.reduce_doubles(step.data.nels))
    if isinstance(step, Exchange):
        cost = 0
        copies = []
        # On the blocking stack the exchange is a rendezvous in lockstep
        # with the partner's complementary recv/send pair, so *both*
        # endpoints' call overheads sit on each direction's critical
        # path; the non-blocking stacks overlap the partner's call work
        # with the transfer waits.
        coupling = ov.send_ps + ov.recv_ps if blocking else 0
        if step.send_peer is not None:
            copies.append(_copy_pair_cost(model, rank, step.send_peer,
                                          step.send.nels))
            cost += (ov.send_ps + coupling
                     + message_cost(model, rank, step.send_peer, 0)
                     + handshake_cost(model, rank, step.send_peer))
        if step.recv_peer is not None:
            copies.append(_copy_pair_cost(model, step.recv_peer, rank,
                                          step.recv.nels))
            cost += (ov.recv_ps
                     + message_cost(model, step.recv_peer, rank, 0)
                     + handshake_cost(model, step.recv_peer, rank))
        # Copy time: the blocking rendezvous drains each direction fully
        # before the next starts (sum); on the non-blocking stacks each
        # endpoint's CPU performs only its *own* write and read — the
        # partner's copies run concurrently on the partner's core — so a
        # symmetric exchange pays for one direction's copy pair (the max
        # covers asymmetric block sizes).
        if copies:
            cost += sum(copies) if blocking else max(copies)
        if step.reduce and step.recv.nels:
            cost += model.reduce_doubles(step.recv.nels)
        return cost
    if isinstance(step, CopyBlock):
        if step.charged:
            return model.private_copy_bytes(step.src.nels * ELEMENT_BYTES)
        return 0
    if isinstance(step, Rotate):
        nels = buffers[step.buf] if buffers is not None else 0
        return model.private_copy_bytes(nels * ELEMENT_BYTES)
    raise TypeError(f"unknown schedule step {step!r}")


def _step_cost_hw(model: LatencyModel, step, rank: int, *,
                  blocking: bool = False,
                  buffers: Optional[dict] = None) -> int:
    """The hardware-only regime (the selector's historical behavior)."""
    if isinstance(step, Send):
        return message_cost(model, rank, step.peer, step.data.nels)
    if isinstance(step, Recv):
        return message_cost(model, step.peer, rank, step.data.nels)
    if isinstance(step, ReduceRecv):
        return (message_cost(model, step.peer, rank, step.data.nels)
                + model.reduce_doubles(step.data.nels))
    if isinstance(step, Exchange):
        out = (message_cost(model, rank, step.send_peer, step.send.nels)
               if step.send_peer is not None else 0)
        inn = (message_cost(model, step.recv_peer, rank, step.recv.nels)
               if step.recv_peer is not None else 0)
        cost = out + inn if blocking else max(out, inn)
        if step.reduce and step.recv.nels:
            cost += model.reduce_doubles(step.recv.nels)
        return cost
    if isinstance(step, CopyBlock):
        if step.charged:
            return model.private_copy_bytes(step.src.nels * ELEMENT_BYTES)
        return 0
    if isinstance(step, Rotate):
        # One private-memory pass over the whole buffer.
        nels = buffers[step.buf] if buffers is not None else 0
        return model.private_copy_bytes(nels * ELEMENT_BYTES)
    raise TypeError(f"unknown schedule step {step!r}")


def schedule_cost_key(sched: Schedule, *, blocking: bool,
                      overhead: Optional[SoftwareOverhead]) -> tuple:
    """Memo key for one whole-schedule estimate.

    Includes everything the estimate is a function of: the schedule
    identity ``(kind, name, p, n)``, the partition block sizes and root
    it was built with, the **chunk layout** (``meta["chunks"]`` — a
    chunked variant must never collide with its base builder or with a
    different chunk count, even though all share the base's step
    shapes), the pricing regime, and a structural hash of the plans —
    so a hand-mutated schedule (the verifier's broken fixtures) can
    never be served its pristine namesake's estimate.
    """
    meta = sched.meta
    sizes = meta.get("part_sizes")
    return ("schedcost", sched.kind, sched.name, sched.p, sched.n,
            tuple(sizes) if sizes is not None else None,
            meta.get("root"), meta.get("chunks"), hash(sched.plans),
            blocking, overhead)


def invalidate_schedule_costs(model: LatencyModel) -> int:
    """Drop every memoized whole-schedule estimate from ``model``.

    The mirror of :meth:`~repro.hw.timing.LatencyModel.invalidate` for
    the schedule level: the estimates live inside the model's own
    per-erratum-level memo, so a full ``model.invalidate()`` (config
    mutation) already clears them — this narrower hook is for when the
    *schedule* side changes (a transform under development, a rebuilt
    repertoire) while the hardware latencies are still good.  Returns
    the number of entries dropped (both erratum levels).
    """
    dropped = 0
    for memo in model._memo:
        stale = [key for key in memo
                 if isinstance(key, tuple) and key
                 and key[0] == "schedcost"]
        for key in stale:
            del memo[key]
        dropped += len(stale)
    return dropped


def estimate_schedule_cost(sched: Schedule, model: LatencyModel, *,
                           blocking: bool = False,
                           overhead: Optional[SoftwareOverhead] = None) -> int:
    """BSP estimate of the schedule makespan (picoseconds).

    Sums, over the ordered sequence of round tags, the maximum per-rank
    cost of that round.  Untagged steps are grouped by their position
    relative to the tagged rounds (prologue before, epilogue after).
    With ``overhead`` set, every message side additionally pays the
    stack's per-call software cost and the total includes one
    collective-layer entry charge (``overhead.call_ps``).

    Whole-schedule results are memoized in the model's per-erratum
    table under :func:`schedule_cost_key` — the synthesizer prices the
    same candidates across repeated searches and the tuned stack's
    fallback prices per call site, so the second look-up of any
    ``(schedule, regime)`` pair is a dict hit.
    """
    sched_memo = (model._memo[model.config.erratum_enabled]
                  if model._cache_enabled else None)
    cache_key = None
    if sched_memo is not None:
        cache_key = schedule_cost_key(sched, blocking=blocking,
                                      overhead=overhead)
        cached = sched_memo.get(cache_key)
        if cached is not None:
            return cached
    # phase key -> rank -> accumulated cost.  Phases are ordered by
    # first appearance on any rank; untagged prologue/epilogue steps get
    # sentinel keys that sort before/after every real round.
    phases: dict[object, dict[int, int]] = {}
    order: list[object] = []
    buffers = dict(sched.buffers)
    # Per-call step-cost memo (overhead regime only, where the analytic
    # engine prices thousands of steps per schedule).  Every overhead
    # cost is a pure function of the step *shape* and the mesh hop
    # distance to the peer — hops are symmetric and all MPB/flag
    # latencies depend on the core pair only through them — so steps
    # collapse onto a handful of (shape, hops, nels) keys even for
    # pairwise alltoall's p*(p-1) distinct core pairs.
    step_memo: dict = {}
    hop_table = None
    if overhead is not None:
        # Hop lookups happen once per step; the coordinate arithmetic in
        # Topology.hops costs more than the pricing it keys, so build the
        # full pairwise table once per model (stashed alongside the
        # model's other memoized latencies).
        memo = (model._memo[model.config.erratum_enabled]
                if model._cache_enabled else None)
        hop_table = memo.get("hoptbl") if memo is not None else None
        if hop_table is None:
            topo = model.topology
            n = topo.num_cores
            if topo.chips > 1:
                # Hops alone no longer determine the latency: the
                # inter-chip tier depends on the crossing count, so the
                # memo key must carry both.
                hop_table = [[(topo.hops(a, b), topo.chip_crossings(a, b))
                              for b in range(n)] for a in range(n)]
            else:
                hop_table = [[topo.hops(a, b) for b in range(n)]
                             for a in range(n)]
            if memo is not None:
                memo["hoptbl"] = hop_table
    for rank, plan in enumerate(sched.plans):
        seen_round = False
        for step in plan:
            if step.round is not None:
                key: object = ("round", step.round)
                seen_round = True
            elif not seen_round:
                key = ("pre", None)
            else:
                key = ("post", None)
            if key not in phases:
                phases[key] = {}
                order.append(key)
            bucket = phases[key]
            if overhead is None:
                cost = step_cost(model, step, rank, blocking=blocking,
                                 buffers=buffers, overhead=None)
            else:
                cls = step.__class__
                row = hop_table[rank]
                if cls is Exchange:
                    sp, rp = step.send_peer, step.recv_peer
                    memo_key = (
                        1,
                        row[sp] if sp is not None else -1,
                        step.send.nels if sp is not None else -1,
                        row[rp] if rp is not None else -1,
                        step.recv.nels if rp is not None else -1,
                        step.reduce)
                elif cls is Send:
                    memo_key = (2, row[step.peer], step.data.nels)
                elif cls is Recv:
                    memo_key = (3, row[step.peer], step.data.nels)
                elif cls is ReduceRecv:
                    memo_key = (4, row[step.peer], step.data.nels)
                elif cls is CopyBlock:
                    memo_key = (5, step.src.nels if step.charged else -1)
                elif cls is Rotate:
                    memo_key = (6, step.buf)
                else:
                    memo_key = None
                cost = (step_memo.get(memo_key)
                        if memo_key is not None else None)
                if cost is None:
                    cost = step_cost(model, step, rank, blocking=blocking,
                                     buffers=buffers, overhead=overhead)
                    if memo_key is not None:
                        step_memo[memo_key] = cost
            bucket[rank] = bucket.get(rank, 0) + cost
    total = sum(max(phases[key].values()) for key in order)
    if overhead is not None:
        total += overhead.call_ps
    if cache_key is not None:
        sched_memo[cache_key] = total
    return total
