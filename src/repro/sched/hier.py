"""Hierarchical (leader-based) collective schedules.

The classic multi-level composition for clustered machines (the
MPI-for-multi-core-clusters pattern): partition the ranks into ``G``
contiguous groups, elect one leader per group, and run each collective
as *intra-group phase -> leader phase -> intra-group phase*:

* ``allreduce``: intra-group binomial reduce to the leader, recursive
  doubling (with non-power-of-two folding) among the leaders, intra-group
  binomial bcast;
* ``reduce``: intra-group binomial reduce, binomial reduce among leaders
  to the root (the root leads its own group, so the result lands exactly
  where the flat algorithms put it);
* ``bcast``: binomial bcast from the root among the leaders, intra-group
  binomial bcast.

On a multi-chip ``cluster:`` topology with ``G`` equal to the chip count,
groups coincide with chips, so only the leader phase crosses the slow
board-level links — once, instead of every round of a flat ring or
doubling pattern.  The schedules themselves are pure ``(p, n, root)``
functions: they are valid (and verified) on any topology; only their
*price* depends on where the group boundaries fall.

Names follow the ``synth/`` convention: ``hier/g<G>`` with ``G >= 2``
(e.g. ``hier/g2``); :func:`~repro.sched.builders.build_schedule` routes
the prefix here, so the whole selection/engine/analytic stack can use
hierarchical names anywhere a builder name is accepted.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING, Optional

from repro.core.blocks import Partition
from repro.sched.builders import (_init_copy, _largest_pow2_below,
                                  _pair_send_first)
from repro.sched.ir import Exchange, Interval, Recv, ReduceRecv, Schedule, \
    Send, Step

if TYPE_CHECKING:
    from repro.hw.topology import Topology

#: Name prefix of hierarchical schedules.
HIER_PREFIX = "hier/"

#: Collective kinds with a hierarchical builder.
HIER_KINDS: tuple[str, ...] = ("allreduce", "reduce", "bcast")


def parse_hier_name(kind: str, name: str) -> int:
    """Parse ``hier/g<G>``; returns the group count.

    Raises :class:`KeyError` (the unknown-schedule-name error type) on
    anything that is not a well-formed hierarchical name for ``kind``.
    """

    def _bad(reason: str) -> KeyError:
        return KeyError(
            f"unknown {kind} schedule {name!r} ({reason}); hierarchical "
            f"names are 'hier/g<G>' with G >= 2 groups, for kinds "
            f"{list(HIER_KINDS)}")

    if not name.startswith(HIER_PREFIX):
        raise _bad(f"missing {HIER_PREFIX!r} prefix")
    if kind not in HIER_KINDS:
        raise _bad("kind has no hierarchical builder")
    body = name[len(HIER_PREFIX):]
    if not body.startswith("g") or not body[1:].isdigit():
        raise _bad("expected 'g' followed by the group count")
    groups = int(body[1:])
    if groups < 2:
        raise _bad("group count must be >= 2")
    return groups


def group_bounds(p: int, groups: int) -> list[tuple[int, int]]:
    """Contiguous balanced rank blocks ``[lo, hi)``, one per group.

    The first ``p % groups`` groups take one extra rank.  When ``p``
    equals a cluster topology's core count and ``groups`` its chip
    count, block ``i`` is exactly chip ``i``.
    """
    base, rem = divmod(p, groups)
    if base == 0:
        raise ValueError(f"cannot split {p} ranks into {groups} groups")
    bounds = []
    lo = 0
    for i in range(groups):
        hi = lo + base + (1 if i < rem else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _group_of(bounds: list[tuple[int, int]], rank: int) -> int:
    for i, (lo, hi) in enumerate(bounds):
        if lo <= rank < hi:
            return i
    raise ValueError(f"rank {rank} outside all groups")


# -- intra-group trees (global-rank binomial over a member window) --------

def _sub_reduce_steps(me: int, lo: int, m: int, root: int,
                      data: Interval) -> list[Step]:
    """Binomial reduce to ``root`` over the ranks ``lo .. lo+m-1``."""
    steps: list[Step] = []
    vrank = (me - root) % m if m else 0
    # Ranks are contiguous, so the flat binomial body applies with the
    # window's offset folded into the peer computation.
    mask = 1
    while mask < m:
        if vrank & mask:
            steps.append(Send(lo + ((vrank - mask) + root - lo) % m, data))
            return steps
        src_v = vrank | mask
        if src_v < m:
            steps.append(ReduceRecv(lo + (src_v + root - lo) % m, data))
        mask <<= 1
    return steps


def _sub_bcast_steps(me: int, lo: int, m: int, root: int,
                     data: Interval) -> list[Step]:
    """Binomial bcast from ``root`` over the ranks ``lo .. lo+m-1``."""
    steps: list[Step] = []
    vrank = (me - root) % m if m else 0
    mask = 1
    while mask < m:
        if vrank & mask:
            steps.append(Recv(lo + ((vrank - mask) + root - lo) % m, data))
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < m:
            steps.append(Send(lo + (vrank + mask + root - lo) % m, data))
        mask >>= 1
    return steps


# -- leader phases (binomial / recursive doubling over a leader list) -----

def _leader_allreduce_steps(gi: int, leaders: list[int],
                            whole: Interval) -> list[Step]:
    """Recursive-doubling allreduce among the leaders (with folding)."""
    g = len(leaders)
    pow2 = _largest_pow2_below(g)
    rest = g - pow2
    me = leaders[gi]
    steps: list[Step] = []
    if gi >= pow2:
        steps.append(Send(leaders[gi - pow2], whole))
    elif gi < rest:
        steps.append(ReduceRecv(leaders[gi + pow2], whole))
    if gi < pow2:
        mask = 1
        while mask < pow2:
            partner = leaders[gi ^ mask]
            steps.append(Exchange(
                send_peer=partner, send=whole,
                recv_peer=partner, recv=whole,
                send_first=_pair_send_first(me, partner),
                reduce=True))
            mask <<= 1
    if gi >= pow2:
        steps.append(Recv(leaders[gi - pow2], whole))
    elif gi < rest:
        steps.append(Send(leaders[gi + pow2], whole))
    return steps


def _leader_reduce_steps(gi: int, root_gi: int, leaders: list[int],
                         whole: Interval) -> list[Step]:
    """Binomial reduce among the leaders to the root group's leader."""
    g = len(leaders)
    steps: list[Step] = []
    vrank = (gi - root_gi) % g
    mask = 1
    while mask < g:
        if vrank & mask:
            steps.append(Send(leaders[((vrank - mask) + root_gi) % g], whole))
            return steps
        src_v = vrank | mask
        if src_v < g:
            steps.append(ReduceRecv(leaders[(src_v + root_gi) % g], whole))
        mask <<= 1
    return steps


def _leader_bcast_steps(gi: int, root_gi: int, leaders: list[int],
                        whole: Interval) -> list[Step]:
    """Binomial bcast among the leaders from the root group's leader."""
    g = len(leaders)
    steps: list[Step] = []
    vrank = (gi - root_gi) % g
    mask = 1
    while mask < g:
        if vrank & mask:
            steps.append(Recv(leaders[((vrank - mask) + root_gi) % g], whole))
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < g:
            steps.append(Send(leaders[(vrank + mask + root_gi) % g], whole))
        mask >>= 1
    return steps


# -- builders -------------------------------------------------------------

def _leaders_for(bounds: list[tuple[int, int]], root: int,
                 rooted: bool) -> list[int]:
    """One leader per group: the first rank, except that for rooted kinds
    the root leads its own group (so results land at the root without an
    extra move)."""
    leaders = [lo for lo, _hi in bounds]
    if rooted:
        leaders[_group_of(bounds, root)] = root
    return leaders


def build_hier_allreduce(p: int, n: int, groups: int) -> Schedule:
    whole = Interval("work", 0, n)
    bounds = group_bounds(p, groups)
    leaders = _leaders_for(bounds, 0, rooted=False)
    plans = []
    for me in range(p):
        gi = _group_of(bounds, me)
        lo, hi = bounds[gi]
        steps: list[Step] = [_init_copy(me, n)]
        if p > 1:
            steps += _sub_reduce_steps(me, lo, hi - lo, leaders[gi], whole)
            if me == leaders[gi]:
                steps += _leader_allreduce_steps(gi, leaders, whole)
            steps += _sub_bcast_steps(me, lo, hi - lo, leaders[gi], whole)
        plans.append(tuple(steps))
    return Schedule("allreduce", f"hier/g{groups}", p, n,
                    {"in": n, "work": n}, tuple(plans),
                    {"root": 0, "groups": groups})


def build_hier_reduce(p: int, n: int, groups: int, root: int) -> Schedule:
    whole = Interval("work", 0, n)
    bounds = group_bounds(p, groups)
    leaders = _leaders_for(bounds, root, rooted=True)
    root_gi = _group_of(bounds, root)
    plans = []
    for me in range(p):
        gi = _group_of(bounds, me)
        lo, hi = bounds[gi]
        steps: list[Step] = [_init_copy(me, n)]
        if p > 1:
            steps += _sub_reduce_steps(me, lo, hi - lo, leaders[gi], whole)
            if me == leaders[gi]:
                steps += _leader_reduce_steps(gi, root_gi, leaders, whole)
        plans.append(tuple(steps))
    return Schedule("reduce", f"hier/g{groups}", p, n,
                    {"in": n, "work": n}, tuple(plans),
                    {"root": root, "groups": groups})


def build_hier_bcast(p: int, n: int, groups: int, root: int) -> Schedule:
    whole = Interval("work", 0, n)
    bounds = group_bounds(p, groups)
    leaders = _leaders_for(bounds, root, rooted=True)
    root_gi = _group_of(bounds, root)
    plans = []
    for me in range(p):
        gi = _group_of(bounds, me)
        lo, hi = bounds[gi]
        steps: list[Step] = []
        if me == root:
            steps.append(_init_copy(me, n))
        if p > 1:
            if me == leaders[gi]:
                steps += _leader_bcast_steps(gi, root_gi, leaders, whole)
            steps += _sub_bcast_steps(me, lo, hi - lo, leaders[gi], whole)
        plans.append(tuple(steps))
    return Schedule("bcast", f"hier/g{groups}", p, n,
                    {"in": n, "work": n}, tuple(plans),
                    {"root": root, "groups": groups})


@lru_cache(maxsize=1024)
def _build_hier_cached(kind: str, groups: int, p: int, n: int,
                       root: int) -> Schedule:
    if groups > p:
        raise ValueError(
            f"hier/g{groups} needs at least {groups} ranks, got p={p}")
    if kind == "allreduce":
        return build_hier_allreduce(p, n, groups)
    if kind == "reduce":
        return build_hier_reduce(p, n, groups, root)
    if kind == "bcast":
        return build_hier_bcast(p, n, groups, root)
    raise KeyError(f"no hierarchical builder for kind {kind!r}")


def build_hier_schedule(kind: str, name: str, p: int, n: int, *,
                        part: Optional[Partition] = None,
                        root: int = 0) -> Schedule:
    """Build a ``hier/g<G>`` schedule (the partition is unused: all
    phases move whole vectors)."""
    groups = parse_hier_name(kind, name)
    return _build_hier_cached(kind, groups, p, n, root)


# -- candidates -----------------------------------------------------------

def hier_candidate_names(kind: str, p: int,
                         topology: Optional["Topology"] = None) \
        -> tuple[str, ...]:
    """Hierarchical names worth pricing for a selection decision.

    Only multi-chip topologies get candidates (on one chip a hierarchy
    merely adds rounds), with the chip count first and a two-group
    fallback; group counts leaving fewer than two ranks per group are
    dropped (they degenerate into the flat patterns).
    """
    if topology is None or topology.chips <= 1:
        return ()
    if kind not in HIER_KINDS:
        return ()
    names = []
    for g in (topology.chips, 2):
        if 2 <= g <= p // 2 and f"hier/g{g}" not in names:
            names.append(f"hier/g{g}")
    return tuple(names)


def hier_repertoire(ps: tuple[int, ...] = (4, 6, 8, 48),
                    sizes: tuple[int, ...] = (1, 2, 8, 70),
                    groups: tuple[int, ...] = (2, 3, 4)):
    """Yield the hierarchical repertoire over a (p, groups, size) grid --
    every kind, with both a corner and an interior root for the rooted
    kinds.  Used by the schedule-verifier gate."""
    for p in ps:
        for g in groups:
            if g < 2 or g > p // 2:
                continue
            for n in sizes:
                for kind in HIER_KINDS:
                    roots = (0,) if kind == "allreduce" else (0, p - 1)
                    for root in roots:
                        yield build_hier_schedule(kind, f"hier/g{g}", p, n,
                                                  root=root)
